# Developer entry points. Install `just`, or copy the commands verbatim.

# Build everything in release mode.
build:
    cargo build --workspace --release

# Run the full test suite.
test:
    cargo test -q

# Lint: clippy (warnings are errors) + formatting check.
lint:
    cargo clippy --workspace --all-targets -- -D warnings
    cargo fmt --check

# Auto-format the workspace.
fmt:
    cargo fmt

# Everything CI runs, locally.
ci: build test lint

# Regenerate every paper table/figure (scaled down for speed).
repro scale="0.5":
    cargo run --release -p shm-bench --bin repro -- all --scale {{scale}}

# Quickstart run with telemetry: JSONL trace + summary.
telemetry out="run.jsonl":
    cargo run --release -p shm-cli -- run -b fdtd2d -d SHM --telemetry --trace-out {{out}}

# Timed multi-point repro throughput trajectory (see docs/PERFORMANCE.md).
# Covers scales {0.05, 0.25, scale} × jobs {1, N}, verifies every parallel
# point is byte-identical to its serial reference, and records the whole
# trajectory in BENCH_throughput.json.
bench-repro scale="0.25":
    cargo run --release -p shm-bench --bin repro -- bench --scale {{scale}}

# Hot-path microbenches: single-block AES (per-byte reference vs T-tables vs
# AES-NI) and the batched-vs-unbatched issue loop (see docs/PERFORMANCE.md).
bench-micro:
    cargo bench -p shm-bench --bench micro_hotpath

# Perf smoke: the default throughput trajectory plus an explicit check that
# no point diverged (repro bench also exits non-zero on divergence).
perf-smoke:
    cargo run --release -p shm-bench --bin repro -- bench --bench-out BENCH_throughput.json
    ! grep -q '"identical": false' BENCH_throughput.json

# Adversary-campaign smoke: every tamper class must surface as the expected
# VerifyError with zero false alarms (exit 3 otherwise — docs/ROBUSTNESS.md).
attack-smoke seed="7":
    cargo run --release -p shm-cli -- attack --campaign smoke --seed {{seed}}

# Crash-consistency smoke: the power-cut matrix must classify every cut with
# zero silent divergence, and a sweep killed mid-run must --resume to
# byte-identical tables without re-executing completed jobs.
recovery-smoke scale="0.25":
    cargo run --release -p shm-cli -- crash --sweep --seed 7
    rm -rf /tmp/shm_recovery_j
    cargo run --release -p shm-bench --bin repro -- fig16 --scale {{scale}} > /tmp/shm_recovery_golden.txt
    cargo run --release -p shm-bench --bin repro -- fig16 --scale {{scale}} --journal /tmp/shm_recovery_j --crash-after-jobs 5; test $? -eq 130
    cargo run --release -p shm-bench --bin repro -- fig16 --scale {{scale}} --journal /tmp/shm_recovery_j --resume > /tmp/shm_recovery_resumed.txt
    diff /tmp/shm_recovery_golden.txt /tmp/shm_recovery_resumed.txt
    rm -rf /tmp/shm_recovery_j /tmp/shm_recovery_golden.txt /tmp/shm_recovery_resumed.txt

# Observability smoke: live /metrics during a loopback dist sweep must serve
# the key series (per-worker gauges included), the sweep table must stay
# byte-identical to a metrics-off serial run, and trace-report + the phase
# profiler must render (see docs/OBSERVABILITY.md).
obs-smoke:
    bash scripts/obs_smoke.sh

# Chaos smoke: the seeded cluster fault gauntlet (network faults, byzantine
# workers, coordinator crash-resume) must end every scenario byte-identical
# or loudly labelled — never silent (exit 4 — docs/ROBUSTNESS.md).
chaos-smoke seed="7" scale="0.02":
    cargo run --release -p shm-cli -- chaos --schedule smoke --seed {{seed}} --scale {{scale}} | tee /tmp/shm_chaos_smoke.txt
    ! grep -q 'silent:true' /tmp/shm_chaos_smoke.txt
    rm -f /tmp/shm_chaos_smoke.txt

# Service smoke: `shm serve` must survive a chaos-seeded multi-tenant loadgen
# run with zero silent divergence, reproduce the one-shot sweep table
# byte-for-byte through the service path, and drain cleanly on SIGTERM
# (exit 0 — docs/SERVICE.md).
serve-smoke:
    bash scripts/serve_smoke.sh

# Heterogeneous-pool smoke: a capacity-pressured sweep across all three
# placement policies must show the policy signatures (pressure under
# gpu-only, real migrations with non-zero inter-pool byte counters under
# hot-page-migrate), stay byte-identical across job counts, and the
# inter_pool_tamper campaign class must detect every migration tamper
# (exit 3 — docs/HETERO.md).
hetero-smoke:
    bash scripts/hetero_smoke.sh

# Distributed-sweep smoke: a loopback coordinator + 2 worker cluster must
# render fig16 byte-identical to the serial run (see docs/DISTRIBUTED.md).
dist-smoke scale="0.25":
    cargo run --release -p shm-bench --bin repro -- fig16 --scale {{scale}} --jobs 1 > /tmp/shm_dist_serial.txt
    SHM_DIST_WORKERS=2 cargo run --release -p shm-bench --bin repro -- fig16 --scale {{scale}} --dist 127.0.0.1:0 > /tmp/shm_dist_cluster.txt
    diff /tmp/shm_dist_serial.txt /tmp/shm_dist_cluster.txt
    rm -f /tmp/shm_dist_serial.txt /tmp/shm_dist_cluster.txt
