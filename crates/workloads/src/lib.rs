//! Synthetic workload generators for the SHM evaluation.
//!
//! The paper evaluates fifteen memory-intensive benchmarks from Rodinia,
//! Parboil and Polybench (Table VII).  We cannot ship the original GPU
//! binaries, but only their *memory access streams* ever reach the
//! secure-memory engine, so each benchmark is modelled as a synthetic
//! generator reproducing its published characteristics:
//!
//! * bandwidth utilisation (Table VII) via per-access think cycles,
//! * read-only access fraction and streaming access fraction (Fig. 5),
//! * write intensity and L2 locality,
//! * constant/texture memory usage (Table VII's "Memory Space" column),
//! * kernel count and input-reuse behaviour (which exercises the
//!   `InputReadOnlyReset` API and predictor initialisation effects).
//!
//! [`BenchmarkProfile::suite`] returns the Table-VII suite;
//! [`BenchmarkProfile::generate`] turns a profile into a
//! [`gpu_mem_sim::ContextTrace`].  [`micro`] holds microbenchmarks used by
//! unit tests and ablation benches.

pub mod micro;
pub mod profile;
pub mod synth;

pub use profile::BenchmarkProfile;
