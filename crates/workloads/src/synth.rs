//! The trace synthesizer turning a profile into a context trace.

use gpu_mem_sim::{ContextTrace, HostAction, KernelTrace};
use gpu_types::{AccessKind, MemEvent, MemorySpace, PhysAddr, SplitMix64, Warp};

use crate::profile::BenchmarkProfile;

/// Buffers are aligned to one local 16 KB region per partition: with 12
/// partitions interleaved at 256 B, 16 KB of local space corresponds to
/// 192 KB of contiguous physical space.
const BUFFER_ALIGN: u64 = 16 * 1024 * 12;

/// Number of distinct warps generated.
const NUM_WARPS: u32 = 60;

/// Size of the hot working set used for local (L2-friendly) random accesses.
const HOT_SET_BYTES: u64 = 256 * 1024;

/// One synthetic device buffer.
#[derive(Clone, Copy, Debug)]
struct Buffer {
    base: u64,
    len: u64,
}

impl Buffer {
    fn sectors(&self) -> u64 {
        self.len / 32
    }
}

/// Builds a [`ContextTrace`] matching a [`BenchmarkProfile`].
pub struct Synthesizer<'a> {
    profile: &'a BenchmarkProfile,
    rng: SplitMix64,
    ro_stream: Buffer,
    ro_random: Buffer,
    rw_stream: Buffer,
    rw_random: Buffer,
}

impl<'a> Synthesizer<'a> {
    /// Creates a synthesizer for `profile` with deterministic `seed`.
    pub fn new(profile: &'a BenchmarkProfile, seed: u64) -> Self {
        // Split the footprint into four buffers proportional to the access
        // mix, aligned so read-only and read/write data never share a 16 KB
        // local region (matching how real allocations separate buffers).
        let n = profile.events_per_kernel as f64;
        let ro = profile.readonly_frac;
        let st = profile.streaming_frac;
        let weights = [
            ro * st,
            ro * (1.0 - st),
            (1.0 - ro) * st,
            (1.0 - ro) * (1.0 - st),
        ];
        let total_w: f64 = weights.iter().sum();
        let budget = profile.footprint_bytes as f64;
        let mut bufs = [Buffer { base: 0, len: 0 }; 4];
        let mut cursor = BUFFER_ALIGN; // leave page zero unused
        for (i, w) in weights.iter().enumerate() {
            let len = ((budget * w / total_w) as u64)
                .max(BUFFER_ALIGN)
                .next_multiple_of(BUFFER_ALIGN);
            bufs[i] = Buffer { base: cursor, len };
            cursor += len;
        }
        let _ = n;
        Self {
            profile,
            rng: SplitMix64::new(seed ^ 0xC0FF_EE00_DEAD_BEEF),
            ro_stream: bufs[0],
            ro_random: bufs[1],
            rw_stream: bufs[2],
            rw_random: bufs[3],
        }
    }

    /// The physical ranges the host copies in at context initialisation
    /// (the read-only inputs).
    ///
    /// A fraction of each read-only buffer (`unmarked_readonly_frac`) is
    /// deliberately left unmarked — data that is read-only in practice but
    /// never went through a tracked memory-copy API — which becomes the
    /// `MP_Init` component of the Fig. 10 prediction breakdown.
    fn readonly_ranges(&self) -> Vec<(PhysAddr, u64)> {
        let marked = (1.0 - self.profile.unmarked_readonly_frac).clamp(0.0, 1.0);
        let span = |b: Buffer| ((b.len as f64 * marked) as u64 / BUFFER_ALIGN) * BUFFER_ALIGN;
        vec![
            (
                PhysAddr::new(self.ro_stream.base),
                span(self.ro_stream).max(BUFFER_ALIGN.min(self.ro_stream.len)),
            ),
            (
                PhysAddr::new(self.ro_random.base),
                span(self.ro_random).max(BUFFER_ALIGN.min(self.ro_random.len)),
            ),
        ]
    }

    /// Builds the full context trace.
    pub fn build(mut self) -> ContextTrace {
        let mut trace = ContextTrace::new(self.profile.name);
        trace.readonly_init = self.readonly_ranges();
        for k in 0..self.profile.kernels {
            let mut kernel = KernelTrace::new(
                format!("{}-k{}", self.profile.name, k),
                self.kernel_events(k),
            );
            if k > 0 && self.profile.reuses_input {
                // Host refreshes the input and re-arms the read-only fast
                // path via the paper's new API.
                kernel.pre_actions.push(HostAction::MemcpyToDevice {
                    start: PhysAddr::new(self.ro_stream.base),
                    len: self.ro_stream.len,
                });
                kernel.pre_actions.push(HostAction::InputReadOnlyReset {
                    start: PhysAddr::new(self.ro_stream.base),
                    len: self.ro_stream.len,
                });
            }
            trace.kernels.push(kernel);
        }
        trace
    }

    /// Generates one kernel's events.
    fn kernel_events(&mut self, kernel_idx: u32) -> Vec<MemEvent> {
        let p = self.profile;
        let n = p.events_per_kernel;
        let think = p.think_cycles();

        // Event-class budget (see profile invariants: ro + write <= 1).
        let n_write = (n as f64 * p.write_frac) as u64;
        let n_ro = (n as f64 * p.readonly_frac) as u64;
        let n_rw_read = n.saturating_sub(n_write + n_ro);

        let st = p.streaming_frac;
        let plan = [
            // (count, streaming-fraction source buffer pair, write?, read-only?)
            ((n_ro as f64 * st) as u64, self.ro_stream, false, true, true),
            (
                (n_ro as f64 * (1.0 - st)) as u64,
                self.ro_random,
                false,
                true,
                false,
            ),
            (
                (n_rw_read as f64 * st) as u64,
                self.rw_stream,
                false,
                false,
                true,
            ),
            (
                (n_rw_read as f64 * (1.0 - st)) as u64,
                self.rw_random,
                false,
                false,
                false,
            ),
            (
                (n_write as f64 * st) as u64,
                self.rw_stream,
                true,
                false,
                true,
            ),
            (
                (n_write as f64 * (1.0 - st)) as u64,
                self.rw_random,
                true,
                false,
                false,
            ),
        ];

        // Generate each class's event stream.
        let mut streams: Vec<Vec<MemEvent>> = Vec::new();
        for (count, buf, is_write, read_only, streaming) in plan {
            if count == 0 {
                streams.push(Vec::new());
                continue;
            }
            let events = if streaming {
                self.streaming_events(count, buf, is_write, read_only, think, kernel_idx)
            } else {
                self.random_events(count, buf, is_write, read_only, think)
            };
            streams.push(events);
        }

        // Interleave the class streams round-robin, weighted by length, to
        // mimic concurrent warps touching different buffers.
        interleave(streams, &mut self.rng)
    }

    /// Sequential sweep over `buf` (wrapping), 4-sector (one block) bursts
    /// per warp for coalescing.
    fn streaming_events(
        &mut self,
        count: u64,
        buf: Buffer,
        is_write: bool,
        read_only: bool,
        think: u32,
        kernel_idx: u32,
    ) -> Vec<MemEvent> {
        let kind = if is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let space = self.space_for(read_only);
        let sectors = buf.sectors();
        // Different kernels start their sweep at different offsets to vary
        // which chunks complete (keeps multi-kernel traces from being
        // byte-identical).
        let start = (kernel_idx as u64 * 8192) % sectors;
        (0..count)
            .map(|i| {
                let s = (start + i) % sectors;
                MemEvent {
                    addr: PhysAddr::new(buf.base + s * 32),
                    kind,
                    space,
                    warp: Warp(((s / 4) % NUM_WARPS as u64) as u32),
                    think_cycles: think,
                }
            })
            .collect()
    }

    /// Random accesses over `buf`: clustered at the 64 KB scale (GPU
    /// "random" access — pointer chasing, tree walks, histogram bins —
    /// clusters heavily at the page scale even when chunk coverage stays
    /// partial), with `l2_locality` of them drawn from a strided hot subset
    /// that the L2 absorbs.
    ///
    /// The strided hot set (every 5th block) is reuse-friendly for the L2
    /// but incapable of fully covering any 4 KB chunk, so locality never
    /// turns a random buffer into a streaming-classified one.
    fn random_events(
        &mut self,
        count: u64,
        buf: Buffer,
        is_write: bool,
        read_only: bool,
        think: u32,
    ) -> Vec<MemEvent> {
        const CLUSTER_BYTES: u64 = 64 * 1024;
        const BURST: u64 = 32;
        let kind = if is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let space = self.space_for(read_only);
        let locality = self.profile.l2_locality;
        let buf_blocks = buf.len / 128;
        let hot_blocks = (HOT_SET_BYTES / 128).min(buf_blocks / 5).max(1);
        let clusters = (buf.len / CLUSTER_BYTES).max(1);
        let cluster_sectors = CLUSTER_BYTES.min(buf.len) / 32;

        let mut cluster_base = 0u64;
        let mut burst_left = 0u64;
        (0..count)
            .map(|_| {
                let addr = if self.rng.chance(locality) {
                    let block = (self.rng.next_below(hot_blocks) * 5) % buf_blocks;
                    buf.base + block * 128 + self.rng.next_below(4) * 32
                } else {
                    if burst_left == 0 {
                        cluster_base = self.rng.next_below(clusters) * CLUSTER_BYTES;
                        burst_left = BURST;
                    }
                    burst_left -= 1;
                    buf.base + cluster_base + self.rng.next_below(cluster_sectors) * 32
                };
                MemEvent {
                    addr: PhysAddr::new(addr),
                    kind,
                    space,
                    warp: Warp(self.rng.next_below(NUM_WARPS as u64) as u32),
                    think_cycles: think,
                }
            })
            .collect()
    }

    fn space_for(&mut self, read_only: bool) -> MemorySpace {
        if !read_only {
            return MemorySpace::Global;
        }
        if self.profile.uses_texture && self.rng.chance(0.4) {
            MemorySpace::Texture
        } else if self.rng.chance(0.15) {
            MemorySpace::Constant
        } else {
            MemorySpace::Global
        }
    }
}

/// Weighted round-robin interleave of several event streams.
fn interleave(mut streams: Vec<Vec<MemEvent>>, rng: &mut SplitMix64) -> Vec<MemEvent> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut cursors = vec![0usize; streams.len()];
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        // Pick a stream with probability proportional to remaining events.
        let remaining: Vec<u64> = streams
            .iter()
            .zip(&cursors)
            .map(|(s, &c)| (s.len() - c) as u64)
            .collect();
        let total_rem: u64 = remaining.iter().sum();
        let mut pick = rng.next_below(total_rem);
        let mut chosen = 0;
        for (i, &r) in remaining.iter().enumerate() {
            if pick < r {
                chosen = i;
                break;
            }
            pick -= r;
        }
        // Take a small burst to preserve intra-warp locality.
        let burst = 8.min(streams[chosen].len() - cursors[chosen]);
        for _ in 0..burst {
            out.push(streams[chosen][cursors[chosen]]);
            cursors[chosen] += 1;
        }
    }
    for (s, c) in streams.iter_mut().zip(&cursors) {
        debug_assert_eq!(s.len(), *c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BenchmarkProfile;
    use gpu_types::PartitionMap;
    use shm::OracleProfile;

    fn check_fractions(name: &str, ro_tol: f64, st_tol: f64) {
        let p = BenchmarkProfile::by_name(name).expect("profile exists");
        let trace = p.generate(42);
        let map = PartitionMap::new(12, 256);
        let events: Vec<_> = trace.all_events().cloned().collect();
        let oracle = OracleProfile::from_trace(&events, map);
        let ro = oracle.read_only_fraction(&events, map);
        let st = oracle.streaming_fraction(&events, map);
        assert!(
            (ro - p.readonly_frac).abs() < ro_tol,
            "{name}: read-only fraction {ro:.3} target {:.3}",
            p.readonly_frac
        );
        assert!(
            (st - p.streaming_frac).abs() < st_tol,
            "{name}: streaming fraction {st:.3} target {:.3}",
            p.streaming_frac
        );
    }

    #[test]
    fn fdtd2d_fractions_match() {
        check_fractions("fdtd2d", 0.05, 0.10);
    }

    #[test]
    fn atax_fractions_match() {
        check_fractions("atax", 0.10, 0.15);
    }

    #[test]
    fn bfs_fractions_match() {
        check_fractions("bfs", 0.12, 0.20);
    }

    #[test]
    fn traces_are_deterministic() {
        let p = BenchmarkProfile::by_name("mvt").expect("profile exists");
        let a = p.generate(7);
        let b = p.generate(7);
        let ea: Vec<_> = a.all_events().collect();
        let eb: Vec<_> = b.all_events().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let p = BenchmarkProfile::by_name("histo").expect("profile exists");
        let a: Vec<_> = p.generate(1).all_events().cloned().collect();
        let b: Vec<_> = p.generate(2).all_events().cloned().collect();
        assert_ne!(a, b);
    }

    #[test]
    fn event_counts_match_profile() {
        for p in BenchmarkProfile::suite() {
            let t = p.generate(3);
            assert_eq!(t.kernels.len() as u32, p.kernels, "{}", p.name);
            for k in &t.kernels {
                let n = k.events.len() as u64;
                assert!(
                    n >= p.events_per_kernel - 8 && n <= p.events_per_kernel + 8,
                    "{}: {} events, wanted ~{}",
                    p.name,
                    n,
                    p.events_per_kernel
                );
            }
        }
    }

    #[test]
    fn writes_never_touch_readonly_buffers() {
        for p in BenchmarkProfile::suite() {
            let t = p.generate(4);
            let ranges = t.readonly_init.clone();
            for ev in t.all_events() {
                if ev.kind.is_write() {
                    for (base, len) in &ranges {
                        assert!(
                            ev.addr.raw() < base.raw() || ev.addr.raw() >= base.raw() + len,
                            "{}: write at {:#x} inside read-only range",
                            p.name,
                            ev.addr.raw()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn texture_events_only_when_flagged() {
        for p in BenchmarkProfile::suite() {
            let t = p.generate(5);
            let has_texture = t
                .all_events()
                .any(|e| e.space == gpu_types::MemorySpace::Texture);
            if p.uses_texture {
                assert!(has_texture, "{} should emit texture accesses", p.name);
            } else {
                assert!(!has_texture, "{} should not emit texture accesses", p.name);
            }
        }
    }

    #[test]
    fn reusing_benchmarks_emit_reset_actions() {
        let p = BenchmarkProfile::by_name("fdtd2d").expect("profile exists");
        let t = p.generate(6);
        assert!(t.kernels.len() >= 2);
        assert!(t.kernels[0].pre_actions.is_empty());
        assert!(t.kernels[1]
            .pre_actions
            .iter()
            .any(|a| matches!(a, HostAction::InputReadOnlyReset { .. })));
    }
}
