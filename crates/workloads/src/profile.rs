//! Benchmark profiles calibrated to Table VII and Fig. 5.

use gpu_mem_sim::ContextTrace;

use crate::synth::Synthesizer;

/// Characterisation of one benchmark's memory behaviour.
///
/// Fractions are over warp-level memory accesses.  `readonly_frac +
/// write_frac` must not exceed 1 (writes never target read-only data).
#[derive(Clone, Debug, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name (Table VII).
    pub name: &'static str,
    /// Target DRAM bandwidth utilisation (midpoint of Table VII's range).
    pub bandwidth_util: f64,
    /// Fraction of accesses touching read-only data (Fig. 5).
    pub readonly_frac: f64,
    /// Fraction of accesses with a streaming pattern (Fig. 5).
    pub streaming_frac: f64,
    /// Fraction of accesses that are writes.
    pub write_frac: f64,
    /// Fraction of random accesses served by a small hot working set
    /// (controls the L2 hit rate).
    pub l2_locality: f64,
    /// Whether the benchmark uses texture memory (Table VII).
    pub uses_texture: bool,
    /// Number of kernel invocations.
    pub kernels: u32,
    /// Whether the host re-copies input between kernels (exercising
    /// `InputReadOnlyReset`).
    pub reuses_input: bool,
    /// Fraction of the read-only data the command processor does *not* mark
    /// at initialisation (data that becomes read-only without going through
    /// a tracked memory-copy API — the paper's `MP_Init` source, Fig. 10).
    pub unmarked_readonly_frac: f64,
    /// Total device footprint in bytes.
    pub footprint_bytes: u64,
    /// Warp-level events generated per kernel.
    pub events_per_kernel: u64,
}

impl BenchmarkProfile {
    /// The Table VII benchmark suite.
    ///
    /// Bandwidth utilisations are Table VII midpoints; read-only and
    /// streaming fractions are calibrated to Fig. 5 (exact for fdtd2d,
    /// which the paper quotes numerically; estimated from the figure for
    /// the rest).
    pub fn suite() -> Vec<BenchmarkProfile> {
        let base = BenchmarkProfile {
            name: "",
            bandwidth_util: 0.5,
            readonly_frac: 0.5,
            streaming_frac: 0.5,
            write_frac: 0.2,
            l2_locality: 0.3,
            uses_texture: false,
            kernels: 1,
            reuses_input: false,
            unmarked_readonly_frac: 0.10,
            footprint_bytes: 6 << 20,
            events_per_kernel: 60_000,
        };
        vec![
            BenchmarkProfile {
                name: "atax",
                bandwidth_util: 0.23,
                readonly_frac: 0.90,
                streaming_frac: 0.93,
                write_frac: 0.05,
                l2_locality: 0.40,
                ..base.clone()
            },
            BenchmarkProfile {
                name: "backprop",
                unmarked_readonly_frac: 0.25,
                bandwidth_util: 0.38,
                readonly_frac: 0.60,
                streaming_frac: 0.72,
                write_frac: 0.22,
                kernels: 2,
                ..base.clone()
            },
            BenchmarkProfile {
                name: "bfs",
                unmarked_readonly_frac: 0.35,
                bandwidth_util: 0.32,
                readonly_frac: 0.30,
                streaming_frac: 0.32,
                write_frac: 0.30,
                l2_locality: 0.20,
                kernels: 3,
                ..base.clone()
            },
            BenchmarkProfile {
                name: "b+tree",
                bandwidth_util: 0.14,
                readonly_frac: 0.72,
                streaming_frac: 0.30,
                write_frac: 0.08,
                l2_locality: 0.50,
                ..base.clone()
            },
            BenchmarkProfile {
                name: "cfd",
                bandwidth_util: 0.51,
                readonly_frac: 0.50,
                streaming_frac: 0.80,
                write_frac: 0.25,
                kernels: 2,
                ..base.clone()
            },
            BenchmarkProfile {
                name: "fdtd2d",
                unmarked_readonly_frac: 0.001,
                bandwidth_util: 0.915,
                readonly_frac: 0.9987,
                streaming_frac: 0.9935,
                write_frac: 0.001,
                l2_locality: 0.05,
                kernels: 2,
                reuses_input: true,
                events_per_kernel: 80_000,
                ..base.clone()
            },
            BenchmarkProfile {
                name: "kmeans",
                bandwidth_util: 0.74,
                readonly_frac: 0.85,
                streaming_frac: 0.80,
                write_frac: 0.06,
                uses_texture: true,
                ..base.clone()
            },
            BenchmarkProfile {
                name: "mvt",
                bandwidth_util: 0.22,
                readonly_frac: 0.90,
                streaming_frac: 0.92,
                write_frac: 0.05,
                l2_locality: 0.40,
                ..base.clone()
            },
            BenchmarkProfile {
                name: "histo",
                bandwidth_util: 0.55,
                readonly_frac: 0.50,
                streaming_frac: 0.60,
                write_frac: 0.35,
                l2_locality: 0.45,
                ..base.clone()
            },
            BenchmarkProfile {
                name: "lbm",
                bandwidth_util: 0.95,
                readonly_frac: 0.45,
                streaming_frac: 0.70,
                write_frac: 0.45,
                l2_locality: 0.05,
                events_per_kernel: 80_000,
                ..base.clone()
            },
            BenchmarkProfile {
                name: "mri-gridding",
                unmarked_readonly_frac: 0.30,
                bandwidth_util: 0.385,
                readonly_frac: 0.35,
                streaming_frac: 0.40,
                write_frac: 0.35,
                l2_locality: 0.25,
                ..base.clone()
            },
            BenchmarkProfile {
                name: "sad",
                bandwidth_util: 0.17,
                readonly_frac: 0.80,
                streaming_frac: 0.70,
                write_frac: 0.15,
                uses_texture: true,
                l2_locality: 0.10,
                ..base.clone()
            },
            BenchmarkProfile {
                name: "stencil",
                bandwidth_util: 0.265,
                readonly_frac: 0.60,
                streaming_frac: 0.85,
                write_frac: 0.25,
                ..base.clone()
            },
            BenchmarkProfile {
                name: "srad",
                unmarked_readonly_frac: 0.30,
                bandwidth_util: 0.21,
                readonly_frac: 0.55,
                streaming_frac: 0.70,
                write_frac: 0.25,
                kernels: 2,
                ..base.clone()
            },
            BenchmarkProfile {
                name: "srad_v2",
                bandwidth_util: 0.75,
                readonly_frac: 0.60,
                streaming_frac: 0.85,
                write_frac: 0.25,
                ..base.clone()
            },
            BenchmarkProfile {
                name: "streamcluster",
                bandwidth_util: 0.78,
                readonly_frac: 0.88,
                streaming_frac: 0.90,
                write_frac: 0.08,
                ..base.clone()
            },
        ]
    }

    /// Confidential-AI profiles for the heterogeneous-pool design axis.
    /// Deliberately *not* part of [`Self::suite`] — their footprints exceed
    /// the default GPU-pool capacity to force spill/migration, so they only
    /// run in pool-aware sweeps and never perturb the paper tables.
    pub fn hetero_suite() -> Vec<BenchmarkProfile> {
        vec![Self::weight_stream(), Self::kv_cache_growth()]
    }

    /// Model-weight streaming: a large, almost entirely read-only footprint
    /// scanned sequentially (inference reading layer weights), far bigger
    /// than the default 8 MiB GPU pool.
    pub fn weight_stream() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "weight-stream",
            bandwidth_util: 0.85,
            readonly_frac: 0.95,
            streaming_frac: 0.95,
            write_frac: 0.03,
            l2_locality: 0.05,
            uses_texture: false,
            kernels: 2,
            reuses_input: false,
            unmarked_readonly_frac: 0.05,
            footprint_bytes: 24 << 20,
            events_per_kernel: 60_000,
        }
    }

    /// KV-cache growth: a read-write footprint with a hot recent-token
    /// working set, growing past GPU-pool capacity (decode-time attention
    /// over an ever-longer context).
    pub fn kv_cache_growth() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "kv-cache-growth",
            bandwidth_util: 0.60,
            readonly_frac: 0.25,
            streaming_frac: 0.35,
            write_frac: 0.35,
            l2_locality: 0.45,
            uses_texture: false,
            kernels: 3,
            reuses_input: false,
            unmarked_readonly_frac: 0.10,
            footprint_bytes: 32 << 20,
            events_per_kernel: 60_000,
        }
    }

    /// Looks up a profile by name, covering both the Table VII suite and
    /// the heterogeneous-pool profiles.
    pub fn by_name(name: &str) -> Option<BenchmarkProfile> {
        Self::suite()
            .into_iter()
            .chain(Self::hetero_suite())
            .find(|p| p.name == name)
    }

    /// Per-access think cycles that achieve roughly `bandwidth_util` on the
    /// Table-V GPU: utilisation is the ratio of the DRAM sectors the SMs can
    /// demand per cycle to what the channels can deliver (~7 sectors/cycle).
    pub fn think_cycles(&self) -> u32 {
        let sm_issue_rate = 30.0; // accesses/cycle at think = 0
        let dram_sectors_per_cycle = 7.0;
        // Only DRAM-missing accesses consume bandwidth.
        let miss_rate = (1.0 - self.l2_locality).max(0.05);
        let target_issue = dram_sectors_per_cycle * self.bandwidth_util / miss_rate;
        let think = sm_issue_rate / target_issue - 1.0;
        think.clamp(0.0, 255.0) as u32
    }

    /// Generates the context trace for this profile.
    pub fn generate(&self, seed: u64) -> ContextTrace {
        let _gen_phase = shm_metrics::phase::guard(shm_metrics::phase::Phase::TraceGen);
        Synthesizer::new(self, seed).build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_table_vii() {
        let suite = BenchmarkProfile::suite();
        assert_eq!(suite.len(), 16);
        for p in &suite {
            assert!(
                p.readonly_frac + p.write_frac <= 1.0 + 1e-9,
                "{}: writes into read-only data",
                p.name
            );
            assert!(p.bandwidth_util > 0.0 && p.bandwidth_util <= 1.0);
            assert!(p.kernels >= 1);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(BenchmarkProfile::by_name("fdtd2d").is_some());
        assert!(BenchmarkProfile::by_name("nonesuch").is_none());
    }

    #[test]
    fn fdtd2d_matches_paper_quotes() {
        let p = BenchmarkProfile::by_name("fdtd2d").expect("in suite");
        assert!((p.readonly_frac - 0.9987).abs() < 1e-6);
        assert!((p.streaming_frac - 0.9935).abs() < 1e-6);
        assert!(p.bandwidth_util > 0.9);
    }

    #[test]
    fn high_bandwidth_means_low_think() {
        let lbm = BenchmarkProfile::by_name("lbm").expect("in suite");
        let sad = BenchmarkProfile::by_name("sad").expect("in suite");
        assert!(lbm.think_cycles() < sad.think_cycles());
    }

    #[test]
    fn hetero_profiles_exceed_default_gpu_pool() {
        let hetero = BenchmarkProfile::hetero_suite();
        assert_eq!(hetero.len(), 2);
        for p in &hetero {
            // The default GPU pool is 8 MiB; these must overflow it.
            assert!(p.footprint_bytes > 8 << 20, "{}: fits in GPU pool", p.name);
            assert!(p.readonly_frac + p.write_frac <= 1.0 + 1e-9);
            // Not part of the Table VII suite.
            assert!(BenchmarkProfile::suite().iter().all(|s| s.name != p.name));
        }
        assert!(BenchmarkProfile::by_name("weight-stream").is_some());
        assert!(BenchmarkProfile::by_name("kv-cache-growth").is_some());
    }

    #[test]
    fn texture_benchmarks_flagged() {
        for name in ["kmeans", "sad"] {
            assert!(
                BenchmarkProfile::by_name(name)
                    .expect("in suite")
                    .uses_texture
            );
        }
        assert!(
            !BenchmarkProfile::by_name("lbm")
                .expect("in suite")
                .uses_texture
        );
    }
}
