//! Microbenchmark traces for targeted tests and ablation benches.

use gpu_mem_sim::{ContextTrace, KernelTrace};
use gpu_types::{AccessKind, MemEvent, MemorySpace, PhysAddr, SplitMix64, Warp};

/// Pure streaming reads over `bytes` of read-only data.
pub fn pure_stream_read(bytes: u64) -> ContextTrace {
    let events = sweep(bytes, AccessKind::Read, 0);
    let mut t = ContextTrace::new("micro-stream-read");
    t.readonly_init = vec![(PhysAddr::new(0), bytes)];
    t.kernels.push(KernelTrace::new("sweep", events));
    t
}

/// Pure streaming writes over `bytes` of output data.
pub fn pure_stream_write(bytes: u64) -> ContextTrace {
    let events = sweep(bytes, AccessKind::Write, 0);
    let mut t = ContextTrace::new("micro-stream-write");
    t.kernels.push(KernelTrace::new("sweep", events));
    t
}

/// Uniform random reads: `n` accesses over `bytes` of read/write data.
pub fn pure_random_read(bytes: u64, n: u64, seed: u64) -> ContextTrace {
    let mut rng = SplitMix64::new(seed);
    let events = (0..n)
        .map(|_| MemEvent {
            addr: PhysAddr::new(rng.next_below(bytes / 32) * 32),
            kind: AccessKind::Read,
            space: MemorySpace::Global,
            warp: Warp(rng.next_below(60) as u32),
            think_cycles: 0,
        })
        .collect();
    let mut t = ContextTrace::new("micro-random-read");
    t.kernels.push(KernelTrace::new("random", events));
    t
}

/// Uniform random writes: `n` accesses over `bytes` of read/write data.
pub fn pure_random_write(bytes: u64, n: u64, seed: u64) -> ContextTrace {
    let mut rng = SplitMix64::new(seed);
    let events = (0..n)
        .map(|_| MemEvent {
            addr: PhysAddr::new(rng.next_below(bytes / 32) * 32),
            kind: AccessKind::Write,
            space: MemorySpace::Global,
            warp: Warp(rng.next_below(60) as u32),
            think_cycles: 0,
        })
        .collect();
    let mut t = ContextTrace::new("micro-random-write");
    t.kernels.push(KernelTrace::new("random-write", events));
    t
}

/// A half-stream / half-random read mix (each half over its own buffer).
pub fn mixed_read(bytes: u64, seed: u64) -> ContextTrace {
    let half = bytes / 2;
    let stream = sweep(half, AccessKind::Read, 0);
    let mut rng = SplitMix64::new(seed);
    let random: Vec<MemEvent> = (0..stream.len() as u64)
        .map(|_| MemEvent {
            addr: PhysAddr::new(half + rng.next_below(half / 32) * 32),
            kind: AccessKind::Read,
            space: MemorySpace::Global,
            warp: Warp(rng.next_below(60) as u32),
            think_cycles: 0,
        })
        .collect();
    let mut events = Vec::with_capacity(stream.len() * 2);
    for (s, r) in stream.into_iter().zip(random) {
        events.push(s);
        events.push(r);
    }
    let mut t = ContextTrace::new("micro-mixed-read");
    t.readonly_init = vec![(PhysAddr::new(0), half)];
    t.kernels.push(KernelTrace::new("mixed", events));
    t
}

fn sweep(bytes: u64, kind: AccessKind, think: u32) -> Vec<MemEvent> {
    (0..bytes / 32)
        .map(|s| MemEvent {
            addr: PhysAddr::new(s * 32),
            kind,
            space: MemorySpace::Global,
            warp: Warp(((s / 4) % 60) as u32),
            think_cycles: think,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_read_covers_every_sector() {
        let t = pure_stream_read(64 * 1024);
        assert_eq!(t.all_events().count() as u64, 64 * 1024 / 32);
        let mut addrs: Vec<u64> = t.all_events().map(|e| e.addr.raw()).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len() as u64, 64 * 1024 / 32);
    }

    #[test]
    fn random_read_stays_in_bounds() {
        let t = pure_random_read(1 << 20, 10_000, 1);
        for e in t.all_events() {
            assert!(e.addr.raw() < 1 << 20);
        }
    }

    #[test]
    fn mixed_read_interleaves_both_halves() {
        let t = mixed_read(1 << 20, 2);
        let half = 1u64 << 19;
        let (lo, hi): (Vec<&MemEvent>, Vec<&MemEvent>) =
            t.all_events().partition(|e| e.addr.raw() < half);
        assert!(!lo.is_empty() && !hi.is_empty());
        assert_eq!(lo.len(), hi.len());
    }

    #[test]
    fn stream_write_is_all_writes() {
        let t = pure_stream_write(64 * 1024);
        assert!(t.all_events().all(|e| e.kind.is_write()));
    }
}
