//! `shm serve`: a long-running, fault-tolerant, multi-tenant simulation
//! daemon over the sim-dist frame protocol (v4 service frames).
//!
//! Tenants connect over TCP, complete the same versioned
//! [`Frame::Hello`] handshake workers use (version + config-hash checked,
//! quarantined identities refused), then pipeline
//! [`Frame::SubmitSweep`] requests.  The daemon multiplexes every
//! tenant's jobs onto one local execution pool with **deficit
//! round-robin** fair scheduling, streams one seq/ts_ms-tagged
//! [`Frame::JobProgress`] per finished job, and terminates each request
//! with a digest-protected [`Frame::SweepResult`].
//!
//! The robustness surface:
//!
//! * **Admission control** — per-tenant job queues are bounded
//!   ([`QUEUE_DEPTH_ENV`]); a request that does not fit is shed
//!   fail-fast with a structured [`Frame::Reject`] carrying a
//!   `retry_after_ms` hint.  Memory is bounded by construction: nothing
//!   is buffered beyond the admitted queues.
//! * **Deadlines** — each request carries (or inherits,
//!   [`DEADLINE_ENV`]) a deadline; expiry cancels cooperatively via the
//!   shared [`CancelToken`] idiom: queued jobs resolve as
//!   [`JOB_SKIPPED`], running jobs finish, and the response is marked
//!   `partial` deterministically.
//! * **Quarantine** — a malformed or oversized frame poisons the
//!   connection's [`FrameReader`] (fail-closed, PR 8's pattern) and
//!   quarantines the tenant: existing work dies with the connection and
//!   re-hellos under that identity are refused.
//! * **Graceful drain** — [`Daemon::run`] watches a [`CancelToken`]
//!   (wired to SIGTERM by the CLI): on trip it stops admitting
//!   (structured rejects), notifies every connection with a
//!   [`Frame::Drain`], finishes or deadline-cancels in-flight requests
//!   within [`DRAIN_ENV`], flushes per-tenant journals, and returns so
//!   the process can exit 0.
//! * **Idle reaping** — connections with no live requests and no
//!   traffic for [`IDLE_ENV`] are closed.
//!
//! Liveness/readiness surfaces through the shared metrics registry:
//! `shm_serve_queue_depth{tenant=}`, `shm_serve_rejects`,
//! `shm_serve_deadline_cancels`, `shm_serve_active_tenants`.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use shm_recovery::JobJournal;
use sim_dist::protocol::{
    sweep_result_digest, write_frame, Frame, FrameError, FrameReader, JOB_FAILED, JOB_OK,
    JOB_SKIPPED, PROTOCOL_VERSION,
};
use sim_dist::{env_u64, DistError};
use sim_exec::{effective_jobs, CancelToken};

/// Environment variable: per-tenant bounded queue depth in jobs; a
/// submission that would exceed it is shed with [`Frame::Reject`].
pub const QUEUE_DEPTH_ENV: &str = "SHM_SERVE_QUEUE_DEPTH";

/// Environment variable: default per-request deadline in milliseconds
/// (0/unset = none).  A request's own `deadline_ms` field, when non-zero,
/// takes precedence.
pub const DEADLINE_ENV: &str = "SHM_SERVE_DEADLINE_MS";

/// Environment variable: grace period in milliseconds a SIGTERM drain
/// waits for in-flight requests before cancelling them to partial results.
pub const DRAIN_ENV: &str = "SHM_SERVE_DRAIN_MS";

/// Environment variable: idle-connection reap window in milliseconds — a
/// connection with no live requests and no frames for this long is closed.
pub const IDLE_ENV: &str = "SHM_SERVE_IDLE_MS";

/// Environment variable: maximum simultaneously active tenants; beyond
/// it, new tenants are shed with [`Frame::Reject`] until load subsides.
pub const MAX_TENANTS_ENV: &str = "SHM_SERVE_MAX_TENANTS";

/// Environment variable: deficit-round-robin quantum — consecutive jobs
/// one tenant may run before the scheduler moves to the next tenant.
pub const QUANTUM_ENV: &str = "SHM_SERVE_QUANTUM";

/// Environment variable (daemon side): path to a `tenant:token` table.
/// When set, every hello must present the matching token for its tenant
/// id — compared in constant time — or it is refused at the handshake.
/// Unset = open admission (today's behaviour).
pub const TOKENS_ENV: &str = "SHM_SERVE_TOKENS";

/// Environment variable (client side): the auth token `shm loadgen` and
/// other [`ServeClient`] users present in their hello.
pub const TOKEN_ENV: &str = "SHM_SERVE_TOKEN";

/// Every `SHM_SERVE_*` knob: (name, default, meaning).  The `shm env`
/// table extends itself from this list and a test asserts the list covers
/// every knob parsed anywhere in cli/sim-serve.
pub const ENV_KNOBS: &[(&str, &str, &str)] = &[
    (
        QUEUE_DEPTH_ENV,
        "64",
        "serve: bounded per-tenant queue depth in jobs (admission control)",
    ),
    (
        DEADLINE_ENV,
        "0 (off)",
        "serve: default per-request deadline before cooperative cancel to partial results",
    ),
    (
        DRAIN_ENV,
        "5000",
        "serve: SIGTERM grace period for in-flight requests before forced partial results",
    ),
    (
        IDLE_ENV,
        "30000",
        "serve: idle-connection reap window (no requests, no frames)",
    ),
    (
        MAX_TENANTS_ENV,
        "16",
        "serve: maximum simultaneously active tenants before shedding new ones",
    ),
    (
        QUANTUM_ENV,
        "4",
        "serve: deficit-round-robin quantum (jobs per tenant per scheduling turn)",
    ),
    (
        TOKENS_ENV,
        "unset (open admission)",
        "serve: path to a tenant:token table; hellos must present the matching token",
    ),
    (
        TOKEN_ENV,
        "empty",
        "serve client: auth token presented in the hello (loadgen and ServeClient users)",
    ),
];

/// Daemon tunables; [`ServeOptions::from_env`] resolves every
/// `SHM_SERVE_*` knob.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bounded per-tenant queue depth in jobs.
    pub queue_depth: usize,
    /// Default per-request deadline (ms); 0 disables.
    pub deadline_ms: u64,
    /// SIGTERM drain grace period (ms).
    pub drain_ms: u64,
    /// Idle-connection reap window (ms).
    pub idle_ms: u64,
    /// Maximum simultaneously active tenants.
    pub max_tenants: usize,
    /// DRR quantum: consecutive jobs per tenant per scheduling turn.
    pub quantum: u32,
    /// Execution pool width; `None` resolves like `Executor::from_env`.
    pub pool: Option<usize>,
    /// Bounded per-read socket timeout (ms) — doubles as the poll tick
    /// for drain/idle/deadline checks.
    pub read_timeout_ms: u64,
    /// When set, every completed job is appended to
    /// `<dir>/<tenant>.jsonl` (one [`JobJournal`] per tenant).
    pub journal_dir: Option<PathBuf>,
    /// Config hash checked at hello, exactly like the dist coordinator.
    pub config_hash: u64,
    /// Per-tenant auth tokens, keyed by tenant id.  `None` = open
    /// admission; `Some` refuses any hello whose token does not match its
    /// tenant's entry (unknown tenants are refused outright).
    pub tokens: Option<HashMap<String, String>>,
}

impl ServeOptions {
    pub fn new(config_hash: u64) -> Self {
        Self {
            queue_depth: 64,
            deadline_ms: 0,
            drain_ms: 5_000,
            idle_ms: 30_000,
            max_tenants: 16,
            quantum: 4,
            pool: None,
            read_timeout_ms: 50,
            journal_dir: None,
            config_hash,
            tokens: None,
        }
    }

    /// Defaults with every `SHM_SERVE_*` knob applied.
    pub fn from_env(config_hash: u64) -> Self {
        let mut o = Self::new(config_hash);
        if let Some(v) = env_u64(QUEUE_DEPTH_ENV) {
            o.queue_depth = v as usize;
        }
        if let Some(v) = env_u64(DEADLINE_ENV) {
            o.deadline_ms = v;
        }
        if let Some(v) = env_u64(DRAIN_ENV) {
            o.drain_ms = v;
        }
        if let Some(v) = env_u64(IDLE_ENV) {
            o.idle_ms = v;
        }
        if let Some(v) = env_u64(MAX_TENANTS_ENV) {
            o.max_tenants = v as usize;
        }
        if let Some(v) = env_u64(QUANTUM_ENV) {
            o.quantum = v.min(u32::MAX as u64) as u32;
        }
        if let Ok(path) = std::env::var(TOKENS_ENV) {
            if !path.trim().is_empty() {
                // Fail closed: a configured-but-unreadable table admits
                // nobody rather than everybody.
                o.tokens = Some(load_token_table(&path).unwrap_or_else(|e| {
                    eprintln!("serve: {TOKENS_ENV}: {e}; refusing all tenants");
                    HashMap::new()
                }));
            }
        }
        o
    }
}

/// Parses a `tenant:token` table (one pair per line; blank lines and
/// `#` comments ignored; token may itself contain `:`).
pub fn load_token_table(path: &str) -> Result<HashMap<String, String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut table = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((tenant, token)) = line.split_once(':') else {
            return Err(format!("{path}:{}: expected tenant:token", lineno + 1));
        };
        table.insert(tenant.trim().to_string(), token.trim().to_string());
    }
    Ok(table)
}

/// Constant-time string equality: scans `max(len)` bytes regardless of
/// where (or whether) the inputs diverge, so a rejected hello leaks no
/// prefix-length timing signal about the expected token.
fn ct_str_eq(a: &str, b: &str) -> bool {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

/// Handshake verdict for a presenting tenant: open admission when no
/// table is configured, otherwise the tenant must exist in the table and
/// the token must match in constant time.
fn token_ok(tokens: Option<&HashMap<String, String>>, tenant: &str, presented: &str) -> bool {
    match tokens {
        None => true,
        Some(table) => match table.get(tenant) {
            // Unknown tenant: burn a comparison anyway so "tenant not in
            // the table" is not distinguishable by timing from "wrong
            // token".
            None => {
                let _ = ct_str_eq(presented, "\u{0}absent");
                false
            }
            Some(expected) => ct_str_eq(presented, expected),
        },
    }
}

/// What the daemon did over its lifetime, returned by [`Daemon::run`]
/// after a graceful drain.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Requests admitted past admission control.
    pub accepted: u64,
    /// Requests shed with a structured [`Frame::Reject`].
    pub rejected: u64,
    /// Requests that reached a terminal [`Frame::SweepResult`].
    pub completed: u64,
    /// Completed requests whose result was partial (deadline or drain).
    pub partial: u64,
    /// Requests cancelled by deadline expiry.
    pub deadline_cancels: u64,
    /// Tenants quarantined for malformed traffic.
    pub quarantines: u64,
    /// Jobs that ran to a clean result.
    pub jobs_ok: u64,
    /// Jobs whose handler panicked.
    pub jobs_failed: u64,
    /// Jobs resolved as skipped without running.
    pub jobs_skipped: u64,
    /// True when every in-flight request terminated within the drain
    /// grace period (no forced cancellation was needed).
    pub drained_clean: bool,
}

type Handler = Arc<dyn Fn(&str, &str) -> String + Send + Sync>;

struct QueuedJob {
    req: u64,
    index: usize,
}

#[derive(Default)]
struct TenantState {
    queue: VecDeque<QueuedJob>,
    deficit: u32,
    live_requests: usize,
}

struct RequestState {
    tenant: String,
    client_req_id: u64,
    conn: u64,
    labels: Vec<String>,
    payloads: Vec<String>,
    results: Vec<Option<(u8, String)>>,
    remaining: usize,
    running: usize,
    deadline: Option<Instant>,
    accepted: Instant,
    cancelled: bool,
    /// Client connection died: keep accounting, stop writing frames.
    dead: bool,
    seq: u64,
    writer: Arc<Mutex<TcpStream>>,
}

#[derive(Default)]
struct ServeState {
    draining: bool,
    shutdown: bool,
    next_req: u64,
    requests: HashMap<u64, RequestState>,
    tenants: BTreeMap<String, TenantState>,
    rr_cursor: usize,
    quarantined: HashSet<String>,
    report: ServeReport,
}

struct Shared {
    opts: ServeOptions,
    handler: Handler,
    started: Instant,
    inner: Mutex<ServeState>,
    work: Condvar,
    journals: Mutex<HashMap<String, Option<JobJournal>>>,
}

impl Shared {
    fn queue_gauge(&self, tenant: &str, depth: usize) {
        shm_metrics::labeled_gauge(
            "shm_serve_queue_depth",
            "Queued jobs per tenant on the serve daemon",
            &[("tenant", tenant)],
        )
        .set(depth as i64);
    }

    fn active_tenants_gauge(&self, state: &ServeState) {
        let active = state
            .tenants
            .values()
            .filter(|t| t.live_requests > 0 || !t.queue.is_empty())
            .count();
        shm_metrics::gauge!(
            "shm_serve_active_tenants",
            "Tenants with live requests on the serve daemon"
        )
        .set(active as i64);
    }
}

/// Deficit round-robin: visit tenants in stable order from a rotating
/// cursor; a visited tenant refills its deficit with the quantum and
/// spends one unit per job until it runs dry, then the cursor moves on.
fn next_job(state: &mut ServeState, quantum: u32) -> Option<(u64, usize)> {
    let keys: Vec<String> = state
        .tenants
        .iter()
        .filter(|(_, t)| !t.queue.is_empty())
        .map(|(k, _)| k.clone())
        .collect();
    if keys.is_empty() {
        return None;
    }
    let start = state.rr_cursor % keys.len();
    for step in 0..keys.len() {
        let idx = (start + step) % keys.len();
        let Some(t) = state.tenants.get_mut(&keys[idx]) else {
            continue;
        };
        let Some(job) = t.queue.pop_front() else {
            continue;
        };
        if t.deficit == 0 {
            t.deficit = quantum.max(1);
        }
        t.deficit -= 1;
        if t.deficit == 0 || t.queue.is_empty() {
            t.deficit = 0;
            state.rr_cursor = idx + 1;
        } else {
            state.rr_cursor = idx;
        }
        return Some((job.req, job.index));
    }
    None
}

/// Best-effort frame write; a dead client is discovered on its reader.
fn send(writer: &Arc<Mutex<TcpStream>>, frame: &Frame) {
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    let _ = write_frame(&mut *w, frame);
}

/// Terminal work for a finished request, extracted under the state lock
/// and performed after it is released (socket + journal I/O).
struct Finalize {
    writer: Option<Arc<Mutex<TcpStream>>>,
    frame: Frame,
    tenant: String,
    journal: Vec<(String, String)>,
}

/// Remove a finished request (remaining == 0) and build its terminal
/// [`Frame::SweepResult`].  Must be called with the state lock held.
fn finalize_locked(shared: &Shared, state: &mut ServeState, req: u64) -> Option<Finalize> {
    let r = state.requests.remove(&req)?;
    if let Some(t) = state.tenants.get_mut(&r.tenant) {
        t.live_requests = t.live_requests.saturating_sub(1);
    }
    let results: Vec<(u8, String)> = r
        .results
        .into_iter()
        .map(|e| e.unwrap_or((JOB_SKIPPED, String::new())))
        .collect();
    let partial = r.cancelled || results.iter().any(|(s, _)| *s == JOB_SKIPPED);
    state.report.completed += 1;
    if partial {
        state.report.partial += 1;
    }
    shared.active_tenants_gauge(state);
    let digest = sweep_result_digest(partial, &results);
    let journal: Vec<(String, String)> = results
        .iter()
        .enumerate()
        .filter(|(_, (s, _))| *s == JOB_OK)
        .map(|(i, (_, p))| (format!("req{}/{}", r.client_req_id, r.labels[i]), p.clone()))
        .collect();
    let frame = Frame::SweepResult {
        req_id: r.client_req_id,
        seq: r.seq,
        ts_ms: r.accepted.elapsed().as_millis() as u64,
        partial,
        results,
        digest,
    };
    Some(Finalize {
        writer: (!r.dead).then(|| Arc::clone(&r.writer)),
        frame,
        tenant: r.tenant,
        journal,
    })
}

fn apply_finalize(shared: &Shared, f: Finalize) {
    if let Some(w) = &f.writer {
        send(w, &f.frame);
    }
    if let Some(dir) = &shared.opts.journal_dir {
        if !f.journal.is_empty() {
            let mut journals = shared.journals.lock().unwrap_or_else(|e| e.into_inner());
            let entry = journals.entry(f.tenant.clone()).or_insert_with(|| {
                let safe: String = f
                    .tenant
                    .chars()
                    .map(|c| {
                        if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                            c
                        } else {
                            '_'
                        }
                    })
                    .collect();
                JobJournal::open(dir.join(format!("{safe}.jsonl")), shared.opts.config_hash).ok()
            });
            if let Some(j) = entry {
                for (label, payload) in &f.journal {
                    let _ = j.record(label, payload);
                }
            }
        }
    }
}

/// Cancel a request in place: scrub its queued jobs to [`JOB_SKIPPED`]
/// (running jobs finish cooperatively).  Returns the finalize work when
/// the scrub emptied it.  Must be called with the state lock held.
fn cancel_request_locked(
    shared: &Shared,
    state: &mut ServeState,
    req: u64,
    mark_dead: bool,
) -> Option<Finalize> {
    let r = state.requests.get_mut(&req)?;
    r.cancelled = true;
    if mark_dead {
        r.dead = true;
    }
    let tenant = r.tenant.clone();
    let mut skipped = 0u64;
    let mine: Vec<usize> = match state.tenants.get_mut(&tenant) {
        Some(t) => {
            let (keep, mine): (VecDeque<QueuedJob>, VecDeque<QueuedJob>) =
                t.queue.drain(..).partition(|q| q.req != req);
            t.queue = keep;
            mine.into_iter().map(|q| q.index).collect()
        }
        None => Vec::new(),
    };
    let depth = state.tenants.get(&tenant).map_or(0, |t| t.queue.len());
    shared.queue_gauge(&tenant, depth);
    let r = state.requests.get_mut(&req)?;
    for index in mine {
        if r.results[index].is_none() {
            r.results[index] = Some((JOB_SKIPPED, String::new()));
            r.remaining -= 1;
            skipped += 1;
        }
    }
    state.report.jobs_skipped += skipped;
    let r = state.requests.get(&req)?;
    (r.remaining == 0)
        .then(|| finalize_locked(shared, state, req))
        .flatten()
}

/// The long-running daemon.  Bind, then [`Daemon::run`] until the cancel
/// token trips (SIGTERM), which triggers the graceful drain.
pub struct Daemon {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Daemon {
    pub fn bind<H>(addr: &str, opts: ServeOptions, handler: H) -> Result<Self, DistError>
    where
        H: Fn(&str, &str) -> String + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr).map_err(DistError::Io)?;
        Ok(Self {
            listener,
            shared: Arc::new(Shared {
                opts,
                handler: Arc::new(handler),
                started: Instant::now(),
                inner: Mutex::new(ServeState::default()),
                work: Condvar::new(),
                journals: Mutex::new(HashMap::new()),
            }),
        })
    }

    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// Serve until `token` trips, then drain gracefully: stop admitting,
    /// announce [`Frame::Drain`] on every connection, give in-flight
    /// requests [`ServeOptions::drain_ms`] to terminate, cancel the rest
    /// to deterministic partial results, flush journals, and return.
    pub fn run(self, token: &CancelToken) -> Result<ServeReport, DistError> {
        self.listener.set_nonblocking(true).map_err(DistError::Io)?;
        let pool_width = effective_jobs(self.shared.opts.pool).max(1);

        let mut pool = Vec::new();
        for _ in 0..pool_width {
            let shared = Arc::clone(&self.shared);
            pool.push(std::thread::spawn(move || pool_thread(&shared)));
        }
        let reaper = {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || reaper_thread(&shared))
        };

        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut next_conn = 0u64;
        while !token.is_cancelled() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    let conn_id = next_conn;
                    next_conn += 1;
                    conns.push(std::thread::spawn(move || {
                        serve_connection(&shared, conn_id, stream);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
            conns.retain(|h| !h.is_finished());
        }

        // --- Graceful drain ---
        {
            let mut state = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            state.draining = true;
        }
        let grace = Duration::from_millis(self.shared.opts.drain_ms.max(1));
        let t0 = Instant::now();
        let mut drained_clean = true;
        loop {
            let outstanding = {
                let state = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
                state.requests.len()
            };
            if outstanding == 0 {
                break;
            }
            if t0.elapsed() >= grace {
                drained_clean = false;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        if !drained_clean {
            // Force-cancel what the grace period did not finish: queued
            // jobs resolve as skipped, running jobs finish cooperatively.
            let finals: Vec<Finalize> = {
                let mut state = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
                let ids: Vec<u64> = state.requests.keys().copied().collect();
                ids.iter()
                    .filter_map(|&req| cancel_request_locked(&self.shared, &mut state, req, false))
                    .collect()
            };
            for f in finals {
                apply_finalize(&self.shared, f);
            }
            // One more bounded wait for running jobs to land.
            let t1 = Instant::now();
            while t1.elapsed() < grace {
                let outstanding = {
                    let state = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
                    state.requests.len()
                };
                if outstanding == 0 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }

        {
            let mut state = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in pool {
            let _ = h.join();
        }
        let _ = reaper.join();
        for h in conns {
            let _ = h.join();
        }
        // Journals flush per record; dropping the map closes the files.
        self.shared
            .journals
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();

        let state = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut report = state.report.clone();
        report.drained_clean = drained_clean;
        Ok(report)
    }
}

fn pool_thread(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = next_job(&mut state, shared.opts.quantum) {
                    let (req, index) = job;
                    let Some(tenant) = state.requests.get(&req).map(|r| r.tenant.clone()) else {
                        continue;
                    };
                    let depth = state.tenants.get(&tenant).map_or(0, |t| t.queue.len());
                    shared.queue_gauge(&tenant, depth);
                    let r = state.requests.get_mut(&req).expect("checked above");
                    if r.cancelled || r.dead {
                        // Deadline fired or the client vanished while this
                        // job sat queued: resolve as skipped, never run it.
                        if r.results[index].is_none() {
                            r.results[index] = Some((JOB_SKIPPED, String::new()));
                            r.remaining -= 1;
                            state.report.jobs_skipped += 1;
                        }
                        let done = state.requests.get(&req).is_some_and(|r| r.remaining == 0);
                        if done {
                            if let Some(f) = finalize_locked(shared, &mut state, req) {
                                drop(state);
                                apply_finalize(shared, f);
                                state = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
                            }
                        }
                        continue;
                    }
                    r.running += 1;
                    break Some((
                        req,
                        index,
                        r.labels[index].clone(),
                        r.payloads[index].clone(),
                    ));
                }
                if state.shutdown {
                    break None;
                }
                state = shared
                    .work
                    .wait_timeout(state, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        };
        let Some((req, index, label, payload)) = job else {
            return;
        };

        let outcome = catch_unwind(AssertUnwindSafe(|| (shared.handler)(&label, &payload)));
        let (status, body) = match outcome {
            Ok(result) => (JOB_OK, result),
            Err(panic) => (JOB_FAILED, panic_text(panic)),
        };

        let (progress, finalize) = {
            let mut state = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            match status {
                JOB_OK => state.report.jobs_ok += 1,
                _ => state.report.jobs_failed += 1,
            }
            let Some(r) = state.requests.get_mut(&req) else {
                continue;
            };
            r.running -= 1;
            if r.results[index].is_none() {
                r.results[index] = Some((status, body));
                r.remaining -= 1;
            }
            let progress = (!r.dead).then(|| {
                let seq = r.seq;
                r.seq += 1;
                (
                    Arc::clone(&r.writer),
                    Frame::JobProgress {
                        req_id: r.client_req_id,
                        seq,
                        ts_ms: r.accepted.elapsed().as_millis() as u64,
                        index: index as u32,
                        label,
                        status,
                    },
                )
            });
            let finalize = (r.remaining == 0 && r.running == 0)
                .then(|| finalize_locked(shared, &mut state, req))
                .flatten();
            (progress, finalize)
        };
        if let Some((w, frame)) = progress {
            send(&w, &frame);
        }
        if let Some(f) = finalize {
            apply_finalize(shared, f);
        }
    }
}

/// Deadline watchdog: ticks every 20ms, cancels expired requests
/// (cooperatively — queued jobs skip, running jobs finish) and counts
/// each expiry once.
fn reaper_thread(shared: &Shared) {
    loop {
        let finals: Vec<Finalize> = {
            let mut state = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if state.shutdown {
                return;
            }
            let now = Instant::now();
            let expired: Vec<u64> = state
                .requests
                .iter()
                .filter(|(_, r)| !r.cancelled && r.deadline.is_some_and(|d| now >= d))
                .map(|(&id, _)| id)
                .collect();
            expired
                .iter()
                .filter_map(|&req| {
                    state.report.deadline_cancels += 1;
                    shm_metrics::counter!(
                        "shm_serve_deadline_cancels",
                        "Requests cancelled by deadline expiry on the serve daemon"
                    )
                    .inc();
                    cancel_request_locked(shared, &mut state, req, false)
                })
                .collect()
        };
        for f in finals {
            apply_finalize(shared, f);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn reject(writer: &Arc<Mutex<TcpStream>>, req_id: u64, retry_after_ms: u64, reason: &str) {
    shm_metrics::counter!(
        "shm_serve_rejects",
        "Requests shed by serve admission control"
    )
    .inc();
    send(
        writer,
        &Frame::Reject {
            req_id,
            retry_after_ms,
            reason: reason.to_string(),
        },
    );
}

fn quarantine_tenant(shared: &Shared, tenant: &str, reason: &str) {
    let mut state = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
    if state.quarantined.insert(tenant.to_string()) {
        state.report.quarantines += 1;
        shm_metrics::counter!(
            "shm_serve_quarantines",
            "Tenants quarantined for malformed traffic"
        )
        .inc();
        eprintln!("serve: quarantined tenant '{tenant}': {reason}");
    }
}

fn serve_connection(shared: &Shared, conn_id: u64, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let tick = Duration::from_millis(shared.opts.read_timeout_ms.clamp(10, 100));
    if stream.set_read_timeout(Some(tick)).is_err() {
        return;
    }
    let Ok(writer_stream) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(writer_stream));
    let mut reader = FrameReader::new(stream);

    // --- Handshake: same versioned hello as the dist cluster ---
    let hello_deadline = Instant::now() + Duration::from_secs(10);
    let tenant = loop {
        match reader.read_frame() {
            Ok(Frame::Hello {
                version,
                config_hash,
                worker_id,
                token,
                ..
            }) => {
                let refusal = {
                    let state = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
                    if version != PROTOCOL_VERSION {
                        Some(format!(
                            "protocol version mismatch: daemon {PROTOCOL_VERSION}, client {version}"
                        ))
                    } else if config_hash != shared.opts.config_hash {
                        Some("config hash mismatch".to_string())
                    } else if state.quarantined.contains(&worker_id) {
                        Some(format!("tenant '{worker_id}' is quarantined"))
                    } else if !token_ok(shared.opts.tokens.as_ref(), &worker_id, &token) {
                        shm_metrics::counter!(
                            "shm_serve_auth_rejects",
                            "Hellos refused for a missing or wrong tenant token"
                        )
                        .inc();
                        Some(format!("tenant '{worker_id}': bad auth token"))
                    } else if state.draining {
                        Some("daemon is draining".to_string())
                    } else {
                        None
                    }
                };
                match refusal {
                    Some(reason) => {
                        send(
                            &writer,
                            &Frame::HelloAck {
                                accepted: false,
                                reason,
                            },
                        );
                        return;
                    }
                    None => {
                        send(
                            &writer,
                            &Frame::HelloAck {
                                accepted: true,
                                reason: String::new(),
                            },
                        );
                        break worker_id;
                    }
                }
            }
            Ok(_) => return, // not a hello: drop pre-handshake
            Err(FrameError::Timeout) if Instant::now() < hello_deadline => continue,
            Err(_) => return,
        }
    };

    let mut drain_sent = false;
    let mut client_leaving = false;
    let mut last_activity = Instant::now();
    let idle = Duration::from_millis(shared.opts.idle_ms.max(1));
    loop {
        let (draining, active) = {
            let state = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            (
                state.draining,
                state.requests.values().any(|r| r.conn == conn_id),
            )
        };
        if draining && !drain_sent {
            drain_sent = true;
            send(
                &writer,
                &Frame::Drain {
                    reason: "daemon draining (rolling restart)".into(),
                },
            );
        }
        if (draining || client_leaving) && !active {
            break;
        }
        if !active && last_activity.elapsed() >= idle {
            break; // idle reap
        }
        match reader.read_frame() {
            Ok(Frame::SubmitSweep {
                tenant: claimed,
                req_id,
                deadline_ms,
                jobs,
            }) => {
                last_activity = Instant::now();
                if claimed != tenant {
                    // Identity spoofing across the handshake boundary.
                    quarantine_tenant(shared, &tenant, "tenant id mismatch on submit");
                    reject(&writer, req_id, 0, "tenant id does not match handshake");
                    break;
                }
                admit(shared, conn_id, &tenant, req_id, deadline_ms, jobs, &writer);
            }
            Ok(Frame::Heartbeat { .. }) => last_activity = Instant::now(),
            Ok(Frame::Drain { .. }) => {
                // Polite client goodbye: stop reading new work, close once
                // its outstanding requests have terminated.
                last_activity = Instant::now();
                client_leaving = true;
            }
            Ok(_) => {
                quarantine_tenant(shared, &tenant, "unexpected frame type");
                break;
            }
            Err(FrameError::Timeout) => {}
            Err(FrameError::Eof) => break,
            Err(FrameError::Corrupt(why)) => {
                // Fail-closed poisoned reader (PR 8's pattern): the stream
                // is untrustworthy and so is the tenant behind it.
                quarantine_tenant(shared, &tenant, &format!("corrupt frame: {why}"));
                break;
            }
            Err(FrameError::Io(_)) => break,
        }
    }

    // Connection teardown: anything this connection still owned dies with
    // it — cancelled, marked dead (no more writes), queued jobs skipped.
    let finals: Vec<Finalize> = {
        let mut state = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mine: Vec<u64> = state
            .requests
            .iter()
            .filter(|(_, r)| r.conn == conn_id)
            .map(|(&id, _)| id)
            .collect();
        mine.iter()
            .filter_map(|&req| cancel_request_locked(shared, &mut state, req, true))
            .collect()
    };
    for f in finals {
        apply_finalize(shared, f);
    }
}

#[allow(clippy::too_many_arguments)]
fn admit(
    shared: &Shared,
    conn_id: u64,
    tenant: &str,
    req_id: u64,
    deadline_ms: u64,
    jobs: Vec<(String, String)>,
    writer: &Arc<Mutex<TcpStream>>,
) {
    let verdict = {
        let mut state = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        if state.draining {
            state.report.rejected += 1;
            Err((0u64, "daemon is draining".to_string()))
        } else if state.quarantined.contains(tenant) {
            state.report.rejected += 1;
            Err((0, format!("tenant '{tenant}' is quarantined")))
        } else if jobs.len() > shared.opts.queue_depth {
            state.report.rejected += 1;
            Err((
                0,
                format!(
                    "request of {} jobs exceeds the tenant queue depth {}",
                    jobs.len(),
                    shared.opts.queue_depth
                ),
            ))
        } else {
            let queued = state.tenants.get(tenant).map_or(0, |t| t.queue.len());
            let tenant_active = state
                .tenants
                .get(tenant)
                .is_some_and(|t| t.live_requests > 0 || !t.queue.is_empty());
            let active_tenants = state
                .tenants
                .values()
                .filter(|t| t.live_requests > 0 || !t.queue.is_empty())
                .count();
            if queued + jobs.len() > shared.opts.queue_depth {
                state.report.rejected += 1;
                let retry = ((queued as u64) * 25).clamp(50, 2_000);
                Err((retry, "tenant queue full".to_string()))
            } else if !tenant_active && active_tenants >= shared.opts.max_tenants {
                state.report.rejected += 1;
                Err((500, "tenant limit reached".to_string()))
            } else if jobs.is_empty() {
                // Nothing to do: terminal empty result, not an error.
                state.report.accepted += 1;
                state.report.completed += 1;
                Ok(None)
            } else {
                let internal = state.next_req;
                state.next_req += 1;
                let deadline_ms = if deadline_ms > 0 {
                    deadline_ms
                } else {
                    shared.opts.deadline_ms
                };
                let (labels, payloads): (Vec<String>, Vec<String>) = jobs.into_iter().unzip();
                let count = labels.len();
                state.requests.insert(
                    internal,
                    RequestState {
                        tenant: tenant.to_string(),
                        client_req_id: req_id,
                        conn: conn_id,
                        labels,
                        payloads,
                        results: vec![None; count],
                        remaining: count,
                        running: 0,
                        deadline: (deadline_ms > 0)
                            .then(|| Instant::now() + Duration::from_millis(deadline_ms)),
                        accepted: Instant::now(),
                        cancelled: false,
                        dead: false,
                        seq: 0,
                        writer: Arc::clone(writer),
                    },
                );
                let t = state.tenants.entry(tenant.to_string()).or_default();
                t.live_requests += 1;
                for index in 0..count {
                    t.queue.push_back(QueuedJob {
                        req: internal,
                        index,
                    });
                }
                let depth = t.queue.len();
                shared.queue_gauge(tenant, depth);
                state.report.accepted += 1;
                shared.active_tenants_gauge(&state);
                Ok(Some(()))
            }
        }
    };
    match verdict {
        Ok(Some(())) => shared.work.notify_all(),
        Ok(None) => send(
            writer,
            &Frame::SweepResult {
                req_id,
                seq: 0,
                ts_ms: shared.started.elapsed().as_millis() as u64,
                partial: false,
                results: Vec::new(),
                digest: sweep_result_digest(false, &[]),
            },
        ),
        Err((retry_after_ms, reason)) => reject(writer, req_id, retry_after_ms, &reason),
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// One decoded response-stream event, from [`ServeClient::next_event`].
#[derive(Clone, Debug)]
pub enum ServeEvent {
    /// One job finished; `seq`/`ts_ms` order and gap-check the stream.
    Progress {
        req_id: u64,
        seq: u64,
        ts_ms: u64,
        index: u32,
        label: String,
        status: u8,
    },
    /// Terminal result for a request.
    Done(SweepOutcome),
    /// Admission control shed the request.
    Rejected {
        req_id: u64,
        retry_after_ms: u64,
        reason: String,
    },
    /// The daemon is draining for a rolling restart: stop submitting.
    Draining { reason: String },
}

/// A terminal [`Frame::SweepResult`], with the end-to-end digest
/// re-verified (`digest_ok` false = silent corruption past the CRC).
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    pub req_id: u64,
    pub partial: bool,
    pub results: Vec<(u8, String)>,
    pub digest_ok: bool,
}

/// Minimal blocking client for the serve protocol, shared by
/// `shm loadgen` and the robustness tests.
pub struct ServeClient {
    tenant: String,
    writer: TcpStream,
    reader: FrameReader<TcpStream>,
    next_req: u64,
}

impl ServeClient {
    /// Connect and complete the versioned hello as tenant `tenant`,
    /// presenting `token` (empty against an open-admission daemon).
    pub fn connect(
        addr: &str,
        tenant: &str,
        config_hash: u64,
        token: &str,
    ) -> Result<Self, DistError> {
        let stream = TcpStream::connect(addr).map_err(DistError::Io)?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(DistError::Io)?;
        let mut writer = stream.try_clone().map_err(DistError::Io)?;
        let mut reader = FrameReader::new(stream);
        write_frame(
            &mut writer,
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                config_hash,
                worker_id: tenant.to_string(),
                window: 0,
                token: token.to_string(),
            },
        )
        .map_err(DistError::Io)?;
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match reader.read_frame() {
                Ok(Frame::HelloAck { accepted: true, .. }) => {
                    return Ok(Self {
                        tenant: tenant.to_string(),
                        writer,
                        reader,
                        next_req: 1,
                    })
                }
                Ok(Frame::HelloAck {
                    accepted: false,
                    reason,
                }) => return Err(DistError::Rejected { reason }),
                Ok(other) => {
                    return Err(DistError::Protocol(format!(
                        "expected hello ack, got {other:?}"
                    )))
                }
                Err(FrameError::Timeout) if Instant::now() < deadline => continue,
                Err(FrameError::Timeout) => {
                    return Err(DistError::Protocol("hello ack timed out".into()))
                }
                Err(e) => return Err(DistError::Protocol(e.to_string())),
            }
        }
    }

    /// Submit one sweep; returns the client-chosen request id to match
    /// against response events.
    pub fn submit(
        &mut self,
        deadline_ms: u64,
        jobs: &[(String, String)],
    ) -> Result<u64, DistError> {
        let req_id = self.next_req;
        self.next_req += 1;
        write_frame(
            &mut self.writer,
            &Frame::SubmitSweep {
                tenant: self.tenant.clone(),
                req_id,
                deadline_ms,
                jobs: jobs.to_vec(),
            },
        )
        .map_err(DistError::Io)?;
        Ok(req_id)
    }

    /// Announce a polite goodbye so the daemon can reap the connection
    /// as soon as outstanding requests terminate.
    pub fn goodbye(&mut self) {
        let _ = write_frame(
            &mut self.writer,
            &Frame::Drain {
                reason: "client done".into(),
            },
        );
    }

    /// Next response-stream event, or `None` when `timeout` elapses
    /// first.  Verifies the [`sweep_result_digest`] on terminal frames.
    pub fn next_event(&mut self, timeout: Duration) -> Result<Option<ServeEvent>, DistError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.reader.read_frame() {
                Ok(Frame::JobProgress {
                    req_id,
                    seq,
                    ts_ms,
                    index,
                    label,
                    status,
                }) => {
                    return Ok(Some(ServeEvent::Progress {
                        req_id,
                        seq,
                        ts_ms,
                        index,
                        label,
                        status,
                    }))
                }
                Ok(Frame::SweepResult {
                    req_id,
                    partial,
                    results,
                    digest,
                    ..
                }) => {
                    let digest_ok = sweep_result_digest(partial, &results) == digest;
                    return Ok(Some(ServeEvent::Done(SweepOutcome {
                        req_id,
                        partial,
                        results,
                        digest_ok,
                    })));
                }
                Ok(Frame::Reject {
                    req_id,
                    retry_after_ms,
                    reason,
                }) => {
                    return Ok(Some(ServeEvent::Rejected {
                        req_id,
                        retry_after_ms,
                        reason,
                    }))
                }
                Ok(Frame::Drain { reason }) => return Ok(Some(ServeEvent::Draining { reason })),
                Ok(_) => return Err(DistError::Protocol("unexpected frame from daemon".into())),
                Err(FrameError::Timeout) => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                }
                Err(e) => return Err(DistError::Protocol(e.to_string())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(hash: u64) -> ServeOptions {
        let mut o = ServeOptions::new(hash);
        o.pool = Some(2);
        o.drain_ms = 2_000;
        o
    }

    fn echo_jobs(n: usize) -> Vec<(String, String)> {
        (0..n)
            .map(|i| (format!("job-{i}"), format!("payload-{i}")))
            .collect()
    }

    fn start(opts: ServeOptions) -> (String, CancelToken, std::thread::JoinHandle<ServeReport>) {
        let daemon = Daemon::bind("127.0.0.1:0", opts, |label, payload| {
            format!("{label}:{payload}:ok")
        })
        .unwrap();
        let addr = daemon.local_addr().to_string();
        let token = CancelToken::new();
        let t = token.clone();
        let h = std::thread::spawn(move || daemon.run(&t).unwrap());
        (addr, token, h)
    }

    #[test]
    fn single_tenant_sweep_round_trips_in_order() {
        let (addr, token, daemon) = start(quick_opts(0x5E57));
        let mut c = ServeClient::connect(&addr, "t0", 0x5E57, "").unwrap();
        let req = c.submit(0, &echo_jobs(6)).unwrap();
        let mut seqs = Vec::new();
        let outcome = loop {
            match c.next_event(Duration::from_secs(10)).unwrap() {
                Some(ServeEvent::Progress { seq, .. }) => seqs.push(seq),
                Some(ServeEvent::Done(o)) => break o,
                other => panic!("unexpected event: {other:?}"),
            }
        };
        // Concurrent pool threads may interleave writes; the seq tags let
        // the client prove the stream is complete and gap-free.
        seqs.sort_unstable();
        assert_eq!(seqs, (0..6).collect::<Vec<u64>>());
        assert_eq!(outcome.req_id, req);
        assert!(outcome.digest_ok);
        assert!(!outcome.partial);
        assert_eq!(outcome.results.len(), 6);
        for (i, (status, payload)) in outcome.results.iter().enumerate() {
            assert_eq!(*status, JOB_OK);
            assert_eq!(payload, &format!("job-{i}:payload-{i}:ok"));
        }
        token.cancel();
        let report = daemon.join().unwrap();
        assert_eq!(report.accepted, 1);
        assert_eq!(report.completed, 1);
        assert!(report.drained_clean);
    }

    #[test]
    fn token_table_gates_the_handshake() {
        let mut opts = quick_opts(0xA07);
        opts.tokens = Some(HashMap::from([
            ("alice".to_string(), "open-sesame".to_string()),
            ("bob".to_string(), "hunter2".to_string()),
        ]));
        let (addr, token, daemon) = start(opts);

        // Wrong token, missing token, and unknown tenant are all refused
        // at the hello with the same shape of reason.
        for (tenant, presented) in [
            ("alice", "hunter2"),
            ("alice", ""),
            ("mallory", "open-sesame"),
        ] {
            match ServeClient::connect(&addr, tenant, 0xA07, presented) {
                Err(DistError::Rejected { reason }) => {
                    assert!(reason.contains("bad auth token"), "{reason}");
                }
                Err(other) => panic!("expected an auth reject, got {other:?}"),
                Ok(_) => panic!("{tenant:?} with token {presented:?} must not be admitted"),
            }
        }

        // The right token admits and the request round-trips normally.
        let mut c = ServeClient::connect(&addr, "alice", 0xA07, "open-sesame").unwrap();
        c.submit(0, &echo_jobs(2)).unwrap();
        loop {
            match c.next_event(Duration::from_secs(10)).unwrap() {
                Some(ServeEvent::Done(o)) => {
                    assert!(o.digest_ok);
                    assert_eq!(o.results.len(), 2);
                    break;
                }
                Some(ServeEvent::Progress { .. }) => continue,
                other => panic!("unexpected event: {other:?}"),
            }
        }
        token.cancel();
        daemon.join().unwrap();
    }

    #[test]
    fn token_table_parses_and_compares_in_constant_time_shape() {
        let dir = std::env::temp_dir().join(format!("shm-tokens-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tokens.txt");
        std::fs::write(
            &path,
            "# staging tenants\nalice: open-sesame\n\nbob:with:colons\n",
        )
        .unwrap();
        let table = load_token_table(path.to_str().unwrap()).unwrap();
        assert_eq!(table["alice"], "open-sesame");
        assert_eq!(table["bob"], "with:colons");
        std::fs::remove_dir_all(&dir).ok();

        assert!(token_ok(None, "anyone", ""));
        assert!(token_ok(Some(&table), "alice", "open-sesame"));
        assert!(!token_ok(Some(&table), "alice", "open-sesam"));
        assert!(!token_ok(Some(&table), "alice", "open-sesame-and-more"));
        assert!(!token_ok(Some(&table), "mallory", "open-sesame"));
        assert!(ct_str_eq("", ""));
        assert!(!ct_str_eq("", "x"));
    }

    #[test]
    fn oversized_request_is_rejected_structurally() {
        let mut opts = quick_opts(1);
        opts.queue_depth = 4;
        let (addr, token, daemon) = start(opts);
        let mut c = ServeClient::connect(&addr, "greedy", 1, "").unwrap();
        let req = c.submit(0, &echo_jobs(5)).unwrap();
        match c.next_event(Duration::from_secs(5)).unwrap() {
            Some(ServeEvent::Rejected { req_id, reason, .. }) => {
                assert_eq!(req_id, req);
                assert!(reason.contains("queue depth"), "{reason}");
            }
            other => panic!("expected a reject, got {other:?}"),
        }
        token.cancel();
        let report = daemon.join().unwrap();
        assert_eq!(report.rejected, 1);
        assert_eq!(report.accepted, 0);
    }

    #[test]
    fn drr_cursor_cycles_tenants() {
        let mut state = ServeState::default();
        for (t, n) in [("a", 4usize), ("b", 4)] {
            let ts = state.tenants.entry(t.into()).or_default();
            for i in 0..n {
                ts.queue.push_back(QueuedJob {
                    req: u64::from(t.as_bytes()[0]),
                    index: i,
                });
            }
        }
        let mut order = Vec::new();
        while let Some((req, _)) = next_job(&mut state, 2) {
            order.push(req);
        }
        // Quantum 2: two from a, two from b, two from a, two from b.
        let a = u64::from(b'a');
        let b = u64::from(b'b');
        assert_eq!(order, vec![a, a, b, b, a, a, b, b]);
    }
}
