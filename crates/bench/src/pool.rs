//! Placement-policy sweep over the heterogeneous-pool design axis.
//!
//! The paper tables never touch pools (the default configuration is
//! single-pool and byte-identical to a pool-free build); this module runs
//! the confidential-AI profiles whose footprints exceed GPU-pool capacity
//! under each [`PlacementPolicy`] and reports the migration/spill/link
//! counters alongside cycles.

use gpu_mem_sim::{DesignPoint, Simulator};
use gpu_types::{GpuConfig, SimStats};
use shm_pool::{PlacementPolicy, PoolsConfig};
use shm_workloads::BenchmarkProfile;
use sim_exec::{Executor, SweepError};

use crate::trace_seed;

/// The heterogeneous-pool profiles, event-scaled like [`crate::scaled_suite`].
pub fn scaled_hetero_suite(scale: f64) -> Vec<BenchmarkProfile> {
    BenchmarkProfile::hetero_suite()
        .into_iter()
        .map(|mut p| {
            p.events_per_kernel = ((p.events_per_kernel as f64 * scale) as u64).max(4096);
            p
        })
        .collect()
}

/// One `(profile, policy)` cell of the placement sweep.
#[derive(Clone, Debug)]
pub struct PoolRow {
    /// Benchmark name.
    pub name: String,
    /// Placement policy this cell ran under.
    pub policy: PlacementPolicy,
    /// Full simulation stats (pool counters included).
    pub stats: SimStats,
}

/// Runs one profile under one placement policy (SHM design point; the pool
/// sweep's axis is placement, not protection scheme).
pub fn run_one_pooled(profile: &BenchmarkProfile, pools: PoolsConfig) -> SimStats {
    let cfg = GpuConfig::default();
    let trace = profile.generate(trace_seed(profile.name));
    Simulator::new(&cfg, DesignPoint::Shm)
        .with_pools(pools)
        .run(&trace)
}

/// Fallible `(profile × policy)` sweep on the work-stealing pool.
///
/// Jobs reassemble in submission order, so the rows — and the rendered
/// table — are identical for any `--jobs` count.
///
/// # Errors
///
/// Returns a [`SweepError`] labelling every `(profile, policy)` job that
/// panicked.
pub fn try_run_pool_sweep(
    policies: &[PlacementPolicy],
    scale: f64,
    jobs: Option<usize>,
) -> Result<Vec<PoolRow>, SweepError> {
    let profiles = scaled_hetero_suite(scale);
    let pairs: Vec<(usize, PlacementPolicy)> = (0..profiles.len())
        .flat_map(|p| policies.iter().map(move |&pol| (p, pol)))
        .collect();

    let stats = Executor::from_request(jobs).try_map(
        &pairs,
        |_, &(p, pol)| format!("{} under {}", profiles[p].name, pol.label()),
        |_, &(p, pol)| run_one_pooled(&profiles[p], PoolsConfig::from_env(pol)),
    )?;

    Ok(pairs
        .iter()
        .zip(stats)
        .map(|(&(p, pol), s)| PoolRow {
            name: profiles[p].name.to_string(),
            policy: pol,
            stats: s,
        })
        .collect())
}

/// Renders the placement sweep as aligned columns (separate formatter from
/// the paper tables; the default `shm sweep` output is untouched).
pub fn format_pool_table(rows: &[PoolRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== Heterogeneous pools: placement-policy sweep ==");
    let _ = writeln!(
        out,
        "{:<16}{:>18}{:>14}{:>12}{:>10}{:>12}{:>10}{:>14}{:>14}",
        "benchmark",
        "policy",
        "cycles",
        "migrations",
        "spills",
        "cpu_acc",
        "cap_evt",
        "link_to_gpu",
        "link_to_cpu",
    );
    for r in rows {
        let s = &r.stats;
        let _ = writeln!(
            out,
            "{:<16}{:>18}{:>14}{:>12}{:>10}{:>12}{:>10}{:>14}{:>14}",
            r.name,
            r.policy.label(),
            s.cycles,
            s.pool_migrations,
            s.pool_spills,
            s.pool_cpu_accesses,
            s.pool_capacity_events,
            s.link_bytes_to_gpu,
            s.link_bytes_to_cpu,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hetero_suite_scales() {
        let small = scaled_hetero_suite(0.05);
        assert_eq!(small.len(), 2);
        assert!(small[0].events_per_kernel < BenchmarkProfile::weight_stream().events_per_kernel);
    }

    #[test]
    fn table_mentions_every_policy() {
        let rows: Vec<PoolRow> = PlacementPolicy::ALL
            .iter()
            .map(|&p| PoolRow {
                name: "x".into(),
                policy: p,
                stats: SimStats::default(),
            })
            .collect();
        let table = format_pool_table(&rows);
        for p in PlacementPolicy::ALL {
            assert!(table.contains(p.label()), "missing {}", p.label());
        }
    }
}
