//! `repro` — regenerates every table and figure of the SHM evaluation.
//!
//! Usage: `repro [fig5|fig10|fig11|fig12|fig13|fig14|fig15|fig16|table1|table3_4|table7|table9|all] [--scale X] [--telemetry-dir DIR]`
//!
//! With `--telemetry-dir DIR`, every figure target additionally captures a
//! representative telemetry trace (first suite benchmark under SHM) as
//! `DIR/<figure>.jsonl` — epoch bandwidth series for Fig. 14-style plots.
//!
//! Absolute numbers differ from the paper (the substrate is a trace-driven
//! simulator, not GPGPU-Sim on the authors' machines); the *shapes* —
//! design ordering, approximate factors, which benchmarks benefit — are the
//! reproduction target (see EXPERIMENTS.md).

use std::collections::BTreeMap;
use std::env;
use std::process::ExitCode;

use gpu_mem_sim::{DesignPoint, EnergyModel, Simulator};
use gpu_types::{GpuConfig, ShmConfig};
use shm::{required_mechanisms, DataProperty, OracleProfile};
use shm_bench::{mean, print_table, run_benchmark, scaled_suite, traffic_breakdown};
use shm_telemetry::{Probe, TelemetryConfig};

/// Every figure target, in `all` order (tables have no telemetry series).
const FIGURES: &[&str] = &[
    "fig5", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
];

/// A repro failure carrying the process exit code and, when a telemetry
/// capture was in flight, the probe whose flight recorder gets dumped.
struct ReproError {
    message: String,
    code: u8,
    probe: Probe,
}

impl ReproError {
    fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 2,
            probe: Probe::disabled(),
        }
    }

    fn runtime(message: impl Into<String>, probe: &Probe) -> Self {
        Self {
            message: message.into(),
            code: 1,
            probe: probe.clone(),
        }
    }

    fn report(self) -> ExitCode {
        eprintln!("error: {}", self.message);
        if let Some(dump) = self.probe.flight_dump().filter(|d| !d.is_empty()) {
            eprintln!("--- flight recorder (last events before failure) ---");
            eprint!("{dump}");
        }
        ExitCode::from(self.code)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => e.report(),
    }
}

fn run(args: &[String]) -> Result<(), ReproError> {
    let mut what = "all".to_string();
    let mut scale = 0.5f64;
    let mut telemetry_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ReproError::usage("--scale needs a number"))?;
                i += 2;
            }
            "--telemetry-dir" => {
                telemetry_dir = Some(
                    args.get(i + 1)
                        .cloned()
                        .ok_or_else(|| ReproError::usage("--telemetry-dir needs a path"))?,
                );
                i += 2;
            }
            other => {
                what = other.to_string();
                i += 1;
            }
        }
    }

    match what.as_str() {
        "table1" => table1(),
        "table3_4" => table3_4(),
        "table7" => table7(scale),
        "table9" => table9(),
        "fig5" => fig5(scale),
        "fig10" => fig10(scale),
        "fig11" => fig11(scale),
        "fig12" => fig12(scale),
        "fig13" => fig13(scale),
        "fig14" => fig14(scale),
        "fig15" => fig15(scale),
        "fig16" => fig16(scale),
        "micro" => micro_diag(),
        "sensitivity" => sensitivity(scale),
        "all" => {
            table1();
            table9();
            table3_4();
            fig5(scale);
            table7(scale);
            fig10(scale);
            fig11(scale);
            fig12(scale);
            fig13(scale);
            fig14(scale);
            fig15(scale);
            fig16(scale);
        }
        other => return Err(ReproError::usage(format!("unknown target: {other}"))),
    }

    if let Some(dir) = &telemetry_dir {
        let figures: Vec<&str> = if what == "all" {
            FIGURES.to_vec()
        } else if FIGURES.contains(&what.as_str()) {
            vec![what.as_str()]
        } else {
            println!("(no telemetry series for target {what})");
            Vec::new()
        };
        for fig in figures {
            dump_figure_telemetry(dir, fig, scale)?;
        }
    }
    Ok(())
}

/// Captures one representative telemetry trace for `figure` — the first
/// suite benchmark under the SHM design — into `dir/<figure>.jsonl`.
fn dump_figure_telemetry(dir: &str, figure: &str, scale: f64) -> Result<(), ReproError> {
    std::fs::create_dir_all(dir).map_err(|e| ReproError::usage(format!("create {dir}: {e}")))?;
    let profile = scaled_suite(scale)
        .into_iter()
        .next()
        .ok_or_else(|| ReproError::usage("benchmark suite is empty"))?;
    let trace = profile.generate(0xBEEF ^ profile.name.len() as u64);
    let probe = Probe::enabled(TelemetryConfig::default());
    Simulator::new(&GpuConfig::default(), DesignPoint::Shm)
        .with_probe(probe.clone())
        .run(&trace);
    let path = std::path::Path::new(dir).join(format!("{figure}.jsonl"));
    probe
        .write_jsonl(&path)
        .map_err(|e| ReproError::runtime(format!("write {}: {e}", path.display()), &probe))?;
    println!("telemetry for {figure} written to {}", path.display());
    Ok(())
}

/// Sensitivity analysis for the design choices DESIGN.md calls out:
/// metadata-cache capacity, chunk size and read-only region size.
fn sensitivity(scale: f64) {
    use gpu_types::MdcConfig;
    let profiles: Vec<_> = scaled_suite(scale)
        .into_iter()
        .filter(|p| ["fdtd2d", "kmeans", "bfs", "lbm"].contains(&p.name))
        .collect();

    println!("\n== Sensitivity: metadata-cache capacity (SHM normalized IPC) ==");
    print!("{:<12}", "benchmark");
    for kb in [1u64, 2, 4, 8] {
        print!("{:>10}", format!("{kb} KB"));
    }
    println!();
    for p in &profiles {
        let trace = p.generate(0xBEEF ^ p.name.len() as u64);
        print!("{:<12}", p.name);
        for kb in [1u64, 2, 4, 8] {
            let cfg = GpuConfig {
                mdc: MdcConfig {
                    cache_bytes: kb * 1024,
                    ..MdcConfig::default()
                },
                ..GpuConfig::default()
            };
            let base = Simulator::new(&cfg, DesignPoint::Unprotected).run(&trace);
            let s = Simulator::new(&cfg, DesignPoint::Shm).run(&trace);
            print!("{:>10.4}", base.cycles as f64 / s.cycles as f64);
        }
        println!();
    }

    println!("\n== Sensitivity: streaming chunk size (SHM normalized IPC) ==");
    print!("{:<12}", "benchmark");
    for kb in [2u64, 4, 8] {
        print!("{:>10}", format!("{kb} KB"));
    }
    println!();
    let base_cfg = GpuConfig::default();
    for p in &profiles {
        let trace = p.generate(0xBEEF ^ p.name.len() as u64);
        let base = Simulator::new(&base_cfg, DesignPoint::Unprotected).run(&trace);
        print!("{:<12}", p.name);
        for kb in [2u64, 4, 8] {
            let shm_cfg = ShmConfig {
                chunk_bytes: kb * 1024,
                tracker_phase_accesses: (kb * 1024 / 128) as u32,
                ..ShmConfig::default()
            };
            let s = Simulator::new(&base_cfg, DesignPoint::Shm)
                .with_shm_config(shm_cfg)
                .run(&trace);
            print!("{:>10.4}", base.cycles as f64 / s.cycles as f64);
        }
        println!();
    }

    println!("\n== Sensitivity: read-only region size (SHM normalized IPC) ==");
    print!("{:<12}", "benchmark");
    for kb in [4u64, 16, 64] {
        print!("{:>10}", format!("{kb} KB"));
    }
    println!();
    for p in &profiles {
        let trace = p.generate(0xBEEF ^ p.name.len() as u64);
        let base = Simulator::new(&base_cfg, DesignPoint::Unprotected).run(&trace);
        print!("{:<12}", p.name);
        for kb in [4u64, 16, 64] {
            let shm_cfg = ShmConfig {
                readonly_region_bytes: kb * 1024,
                ..ShmConfig::default()
            };
            let s = Simulator::new(&base_cfg, DesignPoint::Shm)
                .with_shm_config(shm_cfg)
                .run(&trace);
            print!("{:>10.4}", base.cycles as f64 / s.cycles as f64);
        }
        println!();
    }
}

/// Calibration diagnostics: per-class overheads on pure access patterns.
fn micro_diag() {
    let cfg = GpuConfig::default();
    let stream = shm_workloads::micro::pure_stream_read(12 * 64 * 4096);
    let swrite = shm_workloads::micro::pure_stream_write(12 * 64 * 4096);
    let random = shm_workloads::micro::pure_random_read(8 << 20, 60_000, 9);
    {
        let (s, parts) = Simulator::new(&cfg, DesignPoint::Naive).run_inspect(&stream);
        println!("naive stream-read: cycles={}", s.cycles);
        for (i, (r, w, free)) in parts.iter().enumerate() {
            println!("  P{i:<3} read={r:<9} write={w:<9} bus_free={free}");
        }
    }
    for (label, trace) in [
        ("stream-read", &stream),
        ("stream-write", &swrite),
        ("random-read", &random),
    ] {
        println!("\n-- {label} --");
        for d in [
            DesignPoint::Unprotected,
            DesignPoint::Naive,
            DesignPoint::CommonCtr,
            DesignPoint::Pssm,
            DesignPoint::ShmReadOnly,
            DesignPoint::Shm,
        ] {
            let s = Simulator::new(&cfg, d).run(trace);
            print!(
                "  {:<14} cycles={:<9} ovh={:<7.3} hits={:<6} miss={:<6} data={:<9}",
                d.name(),
                s.cycles,
                s.traffic.overhead_ratio(),
                s.l2_hits,
                s.l2_misses,
                s.traffic.data_bytes()
            );
            let n = (s.l2_hits + s.l2_misses).max(1);
            print!(
                " lat_avg={:.0} lat_max={}",
                s.lat_sum as f64 / n as f64,
                s.lat_max
            );
            for (l, v) in traffic_breakdown(&s) {
                print!(" {l}={v:.3}");
            }
            println!();
        }
    }
}

/// Table I/II: security mechanisms per memory space and data class.
fn table1() {
    println!("\n== Table I: security mechanisms for GPU heterogeneous memory ==");
    use gpu_types::MemorySpace::*;
    for (space, loc) in [
        (Global, "off-chip"),
        (Local, "off-chip"),
        (Constant, "off-chip"),
        (Texture, "off-chip"),
        (Instruction, "off-chip"),
    ] {
        println!(
            "{:<14} {:<10} {}",
            space.to_string(),
            loc,
            required_mechanisms(space).notation()
        );
    }
    println!("(register / shared memory / caches: on-chip, no mechanisms)");

    println!("\n== Table II: security mechanisms for application data ==");
    for (d, label) in [
        (DataProperty::ApplicationCode, "application code"),
        (DataProperty::Input, "input"),
        (DataProperty::Output, "output"),
        (DataProperty::InFlight, "in-flight data"),
    ] {
        let prop = if d.is_read_only() {
            "read-only"
        } else {
            "read/write"
        };
        println!("{label:<18} {prop:<11} {}", d.required().notation());
    }
}

/// Table IX: hardware storage overhead of the predictors and trackers.
fn table9() {
    let cfg = GpuConfig::default();
    let shm = ShmConfig::default();
    println!("\n== Table IX: hardware overhead ==");
    println!(
        "read-only predictor : {} entries x 1 bit = {} B/partition",
        shm.readonly_predictor_entries,
        shm.readonly_predictor_entries / 8
    );
    println!(
        "streaming predictor : {} entries x 1 bit = {} B/partition",
        shm.streaming_predictor_entries,
        shm.streaming_predictor_entries / 8
    );
    println!(
        "access trackers     : {} x 71 bit = {} B/partition",
        shm.num_trackers,
        shm.num_trackers * 71 / 8
    );
    println!(
        "TOTAL ({} partitions): {} B ({:.2} KB)",
        cfg.num_partitions,
        shm.total_storage_bytes(cfg.num_partitions),
        shm.total_storage_bytes(cfg.num_partitions) as f64 / 1024.0
    );
}

/// Tables III/IV: misprediction handling — demonstrated by measuring the
/// fix-up traffic of deliberately adversarial access patterns.
fn table3_4() {
    println!("\n== Tables III/IV: misprediction handling (fix-up traffic measured) ==");
    let cfg = GpuConfig::default();

    // Stream-predicted chunk that is actually random (reads): the failed
    // second-chance check falls back to the per-block MAC and corrects the
    // predictor (Table III, read rows).
    let trace = shm_workloads::micro::pure_random_read(8 << 20, 40_000, 7);
    let stats = Simulator::new(&cfg, DesignPoint::Shm).run(&trace);
    println!(
        "random-read trace (predicted streaming at init): fixup bytes = {}  stream mispredictions = {}",
        stats
            .traffic
            .class_total(gpu_types::TrafficClass::MispredictFixup),
        stats.stream_mispredictions
    );

    // Stream-predicted chunks written randomly: the costliest case — block
    // MACs went stale under chunk-MAC mode, so detection re-fetches the
    // chunk's data blocks to reproduce them (Table IV, stream→random row).
    let trace = shm_workloads::micro::pure_random_write(16 << 20, 200_000, 7);
    let stats = Simulator::new(&cfg, DesignPoint::Shm).run(&trace);
    println!(
        "random-write trace (predicted streaming at init): fixup bytes = {}  stream mispredictions = {}",
        stats
            .traffic
            .class_total(gpu_types::TrafficClass::MispredictFixup),
        stats.stream_mispredictions
    );

    // Fully streaming read over read-only data: zero fix-up expected.
    let trace = shm_workloads::micro::pure_stream_read(12 * 8 * 4096);
    let stats = Simulator::new(&cfg, DesignPoint::Shm).run(&trace);
    println!(
        "read-only streaming trace (correct prediction): fixup bytes = {}  stream mispredictions = {}",
        stats
            .traffic
            .class_total(gpu_types::TrafficClass::MispredictFixup),
        stats.stream_mispredictions
    );
}

/// Table VII: measured bandwidth utilisation and memory-space usage.
fn table7(scale: f64) {
    println!("\n== Table VII: benchmarks (measured on the unprotected baseline) ==");
    println!(
        "{:<16}{:>12}{:>12}{:>18}",
        "benchmark", "bw util", "l2 miss", "memory space"
    );
    let cfg = GpuConfig::default();
    for p in scaled_suite(scale) {
        let trace = p.generate(0xBEEF ^ p.name.len() as u64);
        let stats = Simulator::new(&cfg, DesignPoint::Unprotected).run(&trace);
        let util = stats
            .bandwidth_utilization(cfg.partition_bytes_per_cycle() * cfg.num_partitions as f64);
        let spaces = if p.uses_texture {
            "constant/texture"
        } else {
            "constant"
        };
        println!(
            "{:<16}{:>11.1}%{:>11.1}%{:>18}",
            p.name,
            util * 100.0,
            stats.l2_miss_rate() * 100.0,
            spaces
        );
    }
}

/// Fig. 5: fraction of accesses touching streaming and read-only data.
fn fig5(scale: f64) {
    let map = GpuConfig::default().partition_map();
    let rows: Vec<(String, Vec<f64>)> = scaled_suite(scale)
        .iter()
        .map(|p| {
            let trace = p.generate(0xBEEF ^ p.name.len() as u64);
            let events: Vec<_> = trace.all_events().cloned().collect();
            let oracle = OracleProfile::from_trace(&events, map);
            (
                p.name.to_string(),
                vec![
                    oracle.streaming_fraction(&events, map),
                    oracle.read_only_fraction(&events, map),
                ],
            )
        })
        .collect();
    print_table(
        "Fig. 5: streaming / read-only access fractions",
        &["streaming", "read-only"],
        &rows,
    );
}

/// Fig. 10: read-only prediction breakdown.
fn fig10(scale: f64) {
    let cfg = GpuConfig::default();
    let rows: Vec<(String, Vec<f64>)> = scaled_suite(scale)
        .iter()
        .map(|p| {
            let trace = p.generate(0xBEEF ^ p.name.len() as u64);
            let (_, ro, _) = Simulator::new(&cfg, DesignPoint::Shm).run_detailed(&trace);
            let t = ro.total().max(1) as f64;
            (
                p.name.to_string(),
                vec![
                    ro.correct as f64 / t,
                    ro.mp_init as f64 / t,
                    ro.mp_aliasing as f64 / t,
                ],
            )
        })
        .collect();
    print_table(
        "Fig. 10: read-only prediction breakdown",
        &["correct", "mp_init", "mp_aliasing"],
        &rows,
    );
}

/// Fig. 11: streaming prediction breakdown.
fn fig11(scale: f64) {
    let cfg = GpuConfig::default();
    let rows: Vec<(String, Vec<f64>)> = scaled_suite(scale)
        .iter()
        .map(|p| {
            let trace = p.generate(0xBEEF ^ p.name.len() as u64);
            let (_, _, st) = Simulator::new(&cfg, DesignPoint::Shm).run_detailed(&trace);
            let t = st.total().max(1) as f64;
            (
                p.name.to_string(),
                vec![
                    st.correct as f64 / t,
                    st.mp_init as f64 / t,
                    st.mp_runtime_read_only as f64 / t,
                    st.mp_runtime_non_read_only as f64 / t,
                    st.mp_aliasing as f64 / t,
                ],
            )
        })
        .collect();
    print_table(
        "Fig. 11: streaming prediction breakdown",
        &["correct", "mp_init", "mp_rt_ro", "mp_rt_nro", "mp_alias"],
        &rows,
    );
}

fn norm_ipc_table(title: &str, designs: &[DesignPoint], scale: f64) {
    let header: Vec<&str> = designs.iter().map(|d| d.name()).collect();
    let rows: Vec<(String, Vec<f64>)> = scaled_suite(scale)
        .iter()
        .map(|p| {
            let row = run_benchmark(p, designs);
            (
                p.name.to_string(),
                designs.iter().map(|d| row.norm_ipc(*d)).collect(),
            )
        })
        .collect();
    print_table(title, &header, &rows);
}

/// Fig. 12: normalized IPC of the main designs.
fn fig12(scale: f64) {
    norm_ipc_table(
        "Fig. 12: normalized IPC",
        &[
            DesignPoint::Naive,
            DesignPoint::CommonCtr,
            DesignPoint::Pssm,
            DesignPoint::Shm,
            DesignPoint::ShmUpperBound,
        ],
        scale,
    );
}

/// Fig. 13: optimisation breakdown.
fn fig13(scale: f64) {
    norm_ipc_table(
        "Fig. 13: performance impact of each optimisation",
        &[
            DesignPoint::Pssm,
            DesignPoint::PssmCctr,
            DesignPoint::ShmReadOnly,
            DesignPoint::Shm,
            DesignPoint::ShmCctr,
        ],
        scale,
    );
}

/// Fig. 14: bandwidth overheads of security metadata.
fn fig14(scale: f64) {
    let designs = [
        DesignPoint::Naive,
        DesignPoint::CommonCtr,
        DesignPoint::Pssm,
        DesignPoint::ShmReadOnly,
        DesignPoint::Shm,
    ];
    let header: Vec<&str> = designs.iter().map(|d| d.name()).collect();
    let mut breakdown_acc: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    let rows: Vec<(String, Vec<f64>)> = scaled_suite(scale)
        .iter()
        .map(|p| {
            let row = run_benchmark(p, &designs);
            for d in &designs {
                for (label, v) in traffic_breakdown(&row.stats[d.name()]) {
                    breakdown_acc
                        .entry(label)
                        .or_insert_with(|| vec![0.0; designs.len()])
                        [designs.iter().position(|x| x == d).expect("d in designs")] += v;
                }
            }
            (
                p.name.to_string(),
                designs.iter().map(|d| row.bandwidth_overhead(*d)).collect(),
            )
        })
        .collect();
    print_table(
        "Fig. 14: bandwidth overhead (metadata bytes / data bytes)",
        &header,
        &rows,
    );
    println!("\nmean per-class breakdown (normalized to data bytes):");
    let n = rows.len() as f64;
    for (label, sums) in &breakdown_acc {
        print!("  {label:<8}");
        for s in sums {
            print!("{:>12.4}", s / n);
        }
        println!();
    }
}

/// Fig. 15: normalized energy per instruction.
fn fig15(scale: f64) {
    let designs = [
        DesignPoint::Naive,
        DesignPoint::CommonCtr,
        DesignPoint::Pssm,
        DesignPoint::Shm,
    ];
    let model = EnergyModel::default();
    let header: Vec<&str> = designs.iter().map(|d| d.name()).collect();
    let rows: Vec<(String, Vec<f64>)> = scaled_suite(scale)
        .iter()
        .map(|p| {
            let row = run_benchmark(p, &designs);
            (
                p.name.to_string(),
                designs
                    .iter()
                    .map(|d| row.normalized_energy(*d, &model))
                    .collect(),
            )
        })
        .collect();
    print_table("Fig. 15: normalized energy per instruction", &header, &rows);
}

/// Fig. 16: SHM vs SHM with the L2 victim cache.
fn fig16(scale: f64) {
    norm_ipc_table(
        "Fig. 16: L2 as victim cache for security metadata",
        &[DesignPoint::Shm, DesignPoint::ShmVL2],
        scale,
    );
    // Also report the average gain, the paper's headline for this figure.
    let rows: Vec<(f64, f64)> = scaled_suite(scale)
        .iter()
        .map(|p| {
            let row = run_benchmark(p, &[DesignPoint::Shm, DesignPoint::ShmVL2]);
            (
                row.norm_ipc(DesignPoint::Shm),
                row.norm_ipc(DesignPoint::ShmVL2),
            )
        })
        .collect();
    let gain: Vec<f64> = rows.iter().map(|(a, b)| b - a).collect();
    println!("mean vL2 gain: {:+.4} normalized IPC", mean(&gain));
}
