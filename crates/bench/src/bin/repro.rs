//! `repro` — regenerates every table and figure of the SHM evaluation.
//!
//! Usage: `repro [fig5|fig10|fig11|fig12|fig13|fig14|fig15|fig16|table1|table3_4|table7|table9|micro|sensitivity|hetero|bench|all] [--scale X] [--jobs N] [--telemetry-dir DIR] [--bench-out PATH] [--journal DIR [--resume] [--crash-after-jobs N]]`
//!
//! The `hetero` target renders the heterogeneous-pool placement sweep; it
//! is deliberately *not* part of `all`, which stays byte-identical to a
//! pool-free build.
//!
//! With `--journal DIR`, the suite-based figures (fig12–fig16) checkpoint
//! every completed (benchmark, design) job to `DIR/<figure>.jsonl` as it
//! lands.  An interrupted run (SIGINT/SIGTERM, exit code 130) leaves those
//! journals valid; re-running with `--resume` skips the completed jobs and
//! produces byte-identical tables.  `--crash-after-jobs N` deterministically
//! cancels the sweep after N fresh completions (CI crash-recovery smoke).
//!
//! Figures run their (benchmark × design) simulations on the `sim-exec`
//! work-stealing pool; `--jobs N` bounds the pool (1 = serial) and the
//! `SHM_JOBS` environment variable is the session-wide override.  Results
//! are reassembled in submission order, so the printed tables are
//! byte-identical at any worker count.
//!
//! The `bench` target renders every figure across a (scale × jobs) grid —
//! scales {0.05, 0.25} plus any explicit `--scale`, serial plus the
//! resolved worker count — timing each point, verifying every parallel
//! rendering matches its serial reference byte-for-byte, and writing the
//! whole trajectory to `BENCH_throughput.json` (see `--bench-out`).
//!
//! With `--telemetry-dir DIR`, every figure target additionally captures a
//! representative telemetry trace (first suite benchmark under SHM) as
//! `DIR/<figure>.jsonl` — epoch bandwidth series for Fig. 14-style plots.
//!
//! Absolute numbers differ from the paper (the substrate is a trace-driven
//! simulator, not GPGPU-Sim on the authors' machines); the *shapes* —
//! design ordering, approximate factors, which benchmarks benefit — are the
//! reproduction target (see EXPERIMENTS.md).

use std::collections::BTreeMap;
use std::env;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use gpu_mem_sim::{DesignPoint, EnergyModel, Simulator};
use gpu_types::{GpuConfig, ShmConfig};
use shm::{required_mechanisms, DataProperty, OracleProfile};
use shm_bench::dist::{try_run_suite_dist, try_run_suite_dist_journaled, DistSweepConfig};
use shm_bench::{
    format_table, mean, scaled_suite, traffic_breakdown, try_run_suite_jobs,
    try_run_suite_journaled, BenchRow, Executor,
};
use shm_telemetry::{Probe, TelemetryConfig};

/// Every figure target, in `all` order (tables have no telemetry series).
const FIGURES: &[&str] = &[
    "fig5", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
];

/// A repro failure carrying the process exit code and, when a telemetry
/// capture was in flight, the probe whose flight recorder gets dumped.
struct ReproError {
    message: String,
    code: u8,
    probe: Probe,
}

impl ReproError {
    fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 2,
            probe: Probe::disabled(),
        }
    }

    fn runtime(message: impl Into<String>, probe: &Probe) -> Self {
        Self {
            message: message.into(),
            code: 1,
            probe: probe.clone(),
        }
    }

    /// Cooperative cancellation stopped a journaled sweep early; exit code
    /// 130 so scripts can tell resumable interruption from failure.
    fn interrupted(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 130,
            probe: Probe::disabled(),
        }
    }

    fn report(self) -> ExitCode {
        eprintln!("error: {}", self.message);
        if let Some(dump) = self.probe.flight_dump().filter(|d| !d.is_empty()) {
            eprintln!("--- flight recorder (last events before failure) ---");
            eprint!("{dump}");
        }
        ExitCode::from(self.code)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => e.report(),
    }
}

/// Checkpoint/resume options for the suite-based figures.
#[derive(Clone)]
struct JournalCtx {
    dir: String,
    resume: bool,
    crash_after_jobs: Option<usize>,
}

/// How the suite-based figures execute their sweeps: optionally through a
/// journal (`--journal`), optionally on a worker cluster (`--dist`); the
/// two compose (dist results land in the same journals local runs use).
#[derive(Default)]
struct SweepCtx {
    jctx: Option<JournalCtx>,
    dist: Option<DistSweepConfig>,
}

/// Prints the cluster accounting of a distributed sweep to stderr (stdout
/// must stay byte-identical to a local run).
fn report_dist(figure: &str, summary: &shm_bench::dist::DistSummary) {
    if summary.degraded {
        return; // the fallback path already warned
    }
    for w in &summary.workers {
        eprintln!(
            "{figure}: worker {}: {} job(s), {} B out, {} B in, {} reassigned",
            w.id, w.jobs_done, w.bytes_sent, w.bytes_received, w.reassigned
        );
    }
    if summary.reassignments > 0 {
        eprintln!(
            "{figure}: {} job(s) reassigned after worker loss",
            summary.reassignments
        );
    }
}

/// How a figure rendering failed: a resumable interruption of a journaled
/// sweep, or an ordinary failure.
enum FigError {
    Interrupted { journal: String, done: Vec<String> },
    Failed(String),
}

impl From<String> for FigError {
    fn from(message: String) -> Self {
        FigError::Failed(message)
    }
}

/// Runs one figure's suite sweep, through the journal when `--journal` was
/// given.  `Err(Interrupted)` means everything completed so far is safely
/// journaled and a `--resume` re-run will skip it.
fn suite_rows(
    figure: &str,
    designs: &[DesignPoint],
    scale: f64,
    jobs: Option<usize>,
    sctx: &SweepCtx,
) -> Result<Vec<BenchRow>, FigError> {
    let Some(ctx) = &sctx.jctx else {
        if let Some(cfg) = &sctx.dist {
            let (rows, summary) = try_run_suite_dist(designs, scale, cfg)
                .map_err(|e| FigError::Failed(format!("{figure} distributed sweep: {e}")))?;
            report_dist(figure, &summary);
            return Ok(rows);
        }
        return try_run_suite_jobs(designs, scale, jobs)
            .map_err(|e| FigError::Failed(format!("{figure} sweep failed: {e}")));
    };
    let dir = std::path::Path::new(&ctx.dir);
    if !ctx.resume && dir.join(format!("{figure}.jsonl")).exists() {
        return Err(FigError::Failed(format!(
            "journal {}/{figure}.jsonl already exists; pass --resume to continue it or remove it",
            ctx.dir
        )));
    }
    let sweep = if let Some(cfg) = &sctx.dist {
        let (sweep, summary) =
            try_run_suite_dist_journaled(figure, designs, scale, cfg, dir, ctx.crash_after_jobs)
                .map_err(|e| {
                    FigError::Failed(format!("{figure} distributed journaled sweep: {e}"))
                })?;
        report_dist(figure, &summary);
        sweep
    } else {
        try_run_suite_journaled(figure, designs, scale, jobs, dir, ctx.crash_after_jobs)
            .map_err(|e| FigError::Failed(format!("{figure} journaled sweep failed: {e}")))?
    };
    if sweep.reused > 0 {
        eprintln!(
            "{figure}: resumed from {}: {} job(s) reused, {} executed",
            sweep.journal_path.display(),
            sweep.reused,
            sweep.executed
        );
    }
    match sweep.rows {
        Some(rows) => Ok(rows),
        None => Err(FigError::Interrupted {
            journal: sweep.journal_path.display().to_string(),
            done: sweep.completed_labels,
        }),
    }
}

fn run(args: &[String]) -> Result<(), ReproError> {
    let mut what = "all".to_string();
    let mut scale = 0.5f64;
    let mut scale_explicit = false;
    let mut jobs: Option<usize> = None;
    let mut telemetry_dir: Option<String> = None;
    let mut bench_out = "BENCH_throughput.json".to_string();
    let mut journal_dir: Option<String> = None;
    let mut resume = false;
    let mut crash_after_jobs: Option<usize> = None;
    let mut dist_bind: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--journal" => {
                journal_dir = Some(
                    args.get(i + 1)
                        .cloned()
                        .ok_or_else(|| ReproError::usage("--journal needs a directory"))?,
                );
                i += 2;
                continue;
            }
            "--resume" => {
                resume = true;
                i += 1;
                continue;
            }
            "--crash-after-jobs" => {
                crash_after_jobs = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| ReproError::usage("--crash-after-jobs needs a count"))?,
                );
                i += 2;
                continue;
            }
            _ => {}
        }
        match args[i].as_str() {
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ReproError::usage("--scale needs a number"))?;
                scale_explicit = true;
                i += 2;
            }
            "--jobs" => {
                let raw = args
                    .get(i + 1)
                    .ok_or_else(|| ReproError::usage("--jobs needs a value"))?;
                jobs = sim_exec::parse_jobs_spec(raw);
                if jobs.is_none() {
                    eprintln!(
                        "warning: ignoring --jobs {raw:?} (expected a positive integer); \
                         using auto parallelism"
                    );
                }
                i += 2;
            }
            "--dist" => {
                dist_bind = Some(
                    args.get(i + 1)
                        .cloned()
                        .ok_or_else(|| ReproError::usage("--dist needs a bind address"))?,
                );
                i += 2;
            }
            "--telemetry-dir" => {
                telemetry_dir = Some(
                    args.get(i + 1)
                        .cloned()
                        .ok_or_else(|| ReproError::usage("--telemetry-dir needs a path"))?,
                );
                i += 2;
            }
            "--bench-out" => {
                bench_out = args
                    .get(i + 1)
                    .cloned()
                    .ok_or_else(|| ReproError::usage("--bench-out needs a path"))?;
                i += 2;
            }
            other => {
                what = other.to_string();
                i += 1;
            }
        }
    }

    if (resume || crash_after_jobs.is_some()) && journal_dir.is_none() {
        return Err(ReproError::usage(
            "--resume/--crash-after-jobs require --journal DIR",
        ));
    }
    let sctx = SweepCtx {
        jctx: journal_dir.map(|dir| JournalCtx {
            dir,
            resume,
            crash_after_jobs,
        }),
        dist: dist_bind.map(|bind| DistSweepConfig::from_env(&bind)),
    };

    if what == "bench" {
        bench_mode(scale_explicit.then_some(scale), jobs, &bench_out)?;
    } else {
        match render_target(&what, scale, jobs, &sctx) {
            Ok(Some(text)) => print!("{text}"),
            Ok(None) => return Err(ReproError::usage(format!("unknown target: {what}"))),
            Err(FigError::Interrupted { journal, done }) => {
                eprintln!(
                    "interrupted: {} job(s) completed and journaled in {journal}",
                    done.len()
                );
                for label in &done {
                    eprintln!("  done {label}");
                }
                eprintln!("re-run with --resume to pick up where this left off");
                return Err(ReproError::interrupted("figure sweep interrupted"));
            }
            Err(FigError::Failed(e)) => {
                return Err(ReproError::runtime(e, &Probe::disabled()));
            }
        }
    }

    if let Some(dir) = &telemetry_dir {
        let figures: Vec<&str> = if what == "all" {
            FIGURES.to_vec()
        } else if FIGURES.contains(&what.as_str()) {
            vec![what.as_str()]
        } else {
            println!("(no telemetry series for target {what})");
            Vec::new()
        };
        for fig in figures {
            dump_figure_telemetry(dir, fig, scale)?;
        }
    }
    Ok(())
}

/// Renders one named target (or `all`) to a string; `Ok(None)` for unknown
/// targets, `Err` when a simulation job failed or a journaled sweep was
/// interrupted.  Keeping figures as strings lets `bench` compare serial and
/// parallel renderings byte-for-byte.
fn render_target(
    what: &str,
    scale: f64,
    jobs: Option<usize>,
    sctx: &SweepCtx,
) -> Result<Option<String>, FigError> {
    Ok(Some(match what {
        "table1" => table1(),
        "table3_4" => table3_4(),
        "table7" => table7(scale, jobs)?,
        "table9" => table9(),
        "fig5" => fig5(scale, jobs)?,
        "fig10" => fig10(scale, jobs)?,
        "fig11" => fig11(scale, jobs)?,
        "fig12" => fig12(scale, jobs, sctx)?,
        "fig13" => fig13(scale, jobs, sctx)?,
        "fig14" => fig14(scale, jobs, sctx)?,
        "fig15" => fig15(scale, jobs, sctx)?,
        "fig16" => fig16(scale, jobs, sctx)?,
        "micro" => micro_diag(),
        "sensitivity" => sensitivity(scale),
        "hetero" => hetero(scale, jobs)?,
        "all" => {
            let mut out = String::new();
            out.push_str(&table1());
            out.push_str(&table9());
            out.push_str(&table3_4());
            out.push_str(&fig5(scale, jobs)?);
            out.push_str(&table7(scale, jobs)?);
            out.push_str(&fig10(scale, jobs)?);
            out.push_str(&fig11(scale, jobs)?);
            out.push_str(&fig12(scale, jobs, sctx)?);
            out.push_str(&fig13(scale, jobs, sctx)?);
            out.push_str(&fig14(scale, jobs, sctx)?);
            out.push_str(&fig15(scale, jobs, sctx)?);
            out.push_str(&fig16(scale, jobs, sctx)?);
            out
        }
        _ => return Ok(None),
    }))
}

/// Trace-scale grid every `bench` run covers (an explicit `--scale` adds a
/// third point).  Small scale exposes fixed per-job overhead; the larger
/// one is dominated by the simulation hot loop.
const BENCH_SCALES: [f64; 2] = [0.05, 0.25];

/// `bench` target: renders every figure across a (scale × jobs) grid,
/// timing each point and verifying that every parallel rendering is
/// byte-identical to the serial reference at the same scale.  The whole
/// trajectory is recorded as JSON (see `--bench-out`).
fn bench_mode(
    explicit_scale: Option<f64>,
    jobs: Option<usize>,
    out_path: &str,
) -> Result<(), ReproError> {
    let workers = Executor::from_request(jobs).jobs();
    let mut scales: Vec<f64> = BENCH_SCALES.to_vec();
    if let Some(s) = explicit_scale {
        if !scales.iter().any(|&x| (x - s).abs() < 1e-12) {
            scales.push(s);
        }
    }
    scales.sort_by(f64::total_cmp);
    // The jobs axis: the serial reference, plus the resolved worker count
    // when it actually is parallel.
    let mut jobs_axis = vec![1usize];
    if workers > 1 {
        jobs_axis.push(workers);
    }

    let render_all = |scale: f64, jobs: usize| -> Result<String, ReproError> {
        render_target("all", scale, Some(jobs), &SweepCtx::default())
            .map_err(|e| match e {
                FigError::Interrupted { journal, .. } => {
                    ReproError::interrupted(format!("bench sweep interrupted (journal {journal})"))
                }
                FigError::Failed(msg) => ReproError::runtime(msg, &Probe::disabled()),
            })?
            .ok_or_else(|| ReproError::usage("render target \"all\" is unknown"))
    };

    let mut point_lines: Vec<String> = Vec::new();
    let mut all_identical = true;
    let mut first_divergence: Option<String> = None;
    for &scale in &scales {
        let t0 = Instant::now();
        let reference = render_all(scale, 1)?;
        let serial_wall = t0.elapsed().as_secs_f64();
        for &j in &jobs_axis {
            let (wall, identical) = if j == 1 {
                // The serial rendering IS the reference for this scale.
                (serial_wall, true)
            } else {
                let t1 = Instant::now();
                let parallel = render_all(scale, j)?;
                let wall = t1.elapsed().as_secs_f64();
                let identical = parallel == reference;
                if !identical && first_divergence.is_none() {
                    first_divergence = Some(
                        reference
                            .lines()
                            .zip(parallel.lines())
                            .enumerate()
                            .find(|(_, (a, b))| a != b)
                            .map(|(n, (a, b))| {
                                format!(
                                    "scale={scale} jobs={j}: first divergence at line {}: \
                                     {a:?} vs {b:?}",
                                    n + 1
                                )
                            })
                            .unwrap_or_else(|| {
                                format!("scale={scale} jobs={j}: outputs differ in length")
                            }),
                    );
                }
                (wall, identical)
            };
            all_identical &= identical;
            let speedup = if wall > 0.0 { serial_wall / wall } else { 0.0 };
            point_lines.push(format!(
                "    {{\"scale\": {scale}, \"jobs\": {j}, \"wall_s\": {wall:.3}, \
                 \"serial_wall_s\": {serial_wall:.3}, \"speedup\": {speedup:.3}, \
                 \"identical\": {identical}}}"
            ));
            println!(
                "repro bench: scale={scale} jobs={j} wall={wall:.3}s \
                 speedup={speedup:.2}x identical={identical}"
            );
        }
    }

    let json = format!(
        "{{\n  \"schema\": \"shm-bench-trajectory/v1\",\n  \"host_parallelism\": {},\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        point_lines.join(",\n"),
    );
    std::fs::write(out_path, &json)
        .map_err(|e| ReproError::usage(format!("write {out_path}: {e}")))?;
    println!("throughput trajectory written to {out_path}");

    if all_identical {
        Ok(())
    } else {
        Err(ReproError::runtime(
            format!(
                "parallel output diverges from serial ({})",
                first_divergence.unwrap_or_else(|| "divergence detail unavailable".to_string())
            ),
            &Probe::disabled(),
        ))
    }
}

/// Captures one representative telemetry trace for `figure` — the first
/// suite benchmark under the SHM design — into `dir/<figure>.jsonl`.
fn dump_figure_telemetry(dir: &str, figure: &str, scale: f64) -> Result<(), ReproError> {
    std::fs::create_dir_all(dir).map_err(|e| ReproError::usage(format!("create {dir}: {e}")))?;
    let profile = scaled_suite(scale)
        .into_iter()
        .next()
        .ok_or_else(|| ReproError::usage("benchmark suite is empty"))?;
    let trace = profile.generate(shm_bench::trace_seed(profile.name));
    let path = std::path::Path::new(dir).join(format!("{figure}.jsonl"));
    // Stream the JSONL document to disk as the run produces it rather than
    // buffering the whole trace in memory.
    let probe = Probe::enabled_streaming(TelemetryConfig::default(), &path)
        .map_err(|e| ReproError::usage(format!("create {}: {e}", path.display())))?;
    Simulator::new(&GpuConfig::default(), DesignPoint::Shm)
        .with_probe(probe.clone())
        .run(&trace);
    if let Some(e) = probe.stream_error() {
        return Err(ReproError::runtime(
            format!("write {}: {e}", path.display()),
            &probe,
        ));
    }
    println!("telemetry for {figure} streamed to {}", path.display());
    Ok(())
}

/// Sensitivity analysis for the design choices DESIGN.md calls out:
/// metadata-cache capacity, chunk size and read-only region size.
fn sensitivity(scale: f64) -> String {
    use gpu_types::MdcConfig;
    let mut out = String::new();
    let profiles: Vec<_> = scaled_suite(scale)
        .into_iter()
        .filter(|p| ["fdtd2d", "kmeans", "bfs", "lbm"].contains(&p.name))
        .collect();

    let _ = writeln!(
        out,
        "\n== Sensitivity: metadata-cache capacity (SHM normalized IPC) =="
    );
    let _ = write!(out, "{:<12}", "benchmark");
    for kb in [1u64, 2, 4, 8] {
        let _ = write!(out, "{:>10}", format!("{kb} KB"));
    }
    let _ = writeln!(out);
    for p in &profiles {
        let trace = p.generate(shm_bench::trace_seed(p.name));
        let _ = write!(out, "{:<12}", p.name);
        for kb in [1u64, 2, 4, 8] {
            let cfg = GpuConfig {
                mdc: MdcConfig {
                    cache_bytes: kb * 1024,
                    ..MdcConfig::default()
                },
                ..GpuConfig::default()
            };
            let base = Simulator::new(&cfg, DesignPoint::Unprotected).run(&trace);
            let s = Simulator::new(&cfg, DesignPoint::Shm).run(&trace);
            let _ = write!(out, "{:>10.4}", base.cycles as f64 / s.cycles as f64);
        }
        let _ = writeln!(out);
    }

    let _ = writeln!(
        out,
        "\n== Sensitivity: streaming chunk size (SHM normalized IPC) =="
    );
    let _ = write!(out, "{:<12}", "benchmark");
    for kb in [2u64, 4, 8] {
        let _ = write!(out, "{:>10}", format!("{kb} KB"));
    }
    let _ = writeln!(out);
    let base_cfg = GpuConfig::default();
    for p in &profiles {
        let trace = p.generate(shm_bench::trace_seed(p.name));
        let base = Simulator::new(&base_cfg, DesignPoint::Unprotected).run(&trace);
        let _ = write!(out, "{:<12}", p.name);
        for kb in [2u64, 4, 8] {
            let shm_cfg = ShmConfig {
                chunk_bytes: kb * 1024,
                tracker_phase_accesses: (kb * 1024 / 128) as u32,
                ..ShmConfig::default()
            };
            let s = Simulator::new(&base_cfg, DesignPoint::Shm)
                .with_shm_config(shm_cfg)
                .run(&trace);
            let _ = write!(out, "{:>10.4}", base.cycles as f64 / s.cycles as f64);
        }
        let _ = writeln!(out);
    }

    let _ = writeln!(
        out,
        "\n== Sensitivity: read-only region size (SHM normalized IPC) =="
    );
    let _ = write!(out, "{:<12}", "benchmark");
    for kb in [4u64, 16, 64] {
        let _ = write!(out, "{:>10}", format!("{kb} KB"));
    }
    let _ = writeln!(out);
    for p in &profiles {
        let trace = p.generate(shm_bench::trace_seed(p.name));
        let base = Simulator::new(&base_cfg, DesignPoint::Unprotected).run(&trace);
        let _ = write!(out, "{:<12}", p.name);
        for kb in [4u64, 16, 64] {
            let shm_cfg = ShmConfig {
                readonly_region_bytes: kb * 1024,
                ..ShmConfig::default()
            };
            let s = Simulator::new(&base_cfg, DesignPoint::Shm)
                .with_shm_config(shm_cfg)
                .run(&trace);
            let _ = write!(out, "{:>10.4}", base.cycles as f64 / s.cycles as f64);
        }
        let _ = writeln!(out);
    }
    out
}

/// Heterogeneous-pool placement sweep: the confidential-AI profiles under
/// every placement policy.  `SHM_POOL_*` / `SHM_LINK_*` knobs shape the
/// pool geometry; not part of `all` (the paper tables stay single-pool).
fn hetero(scale: f64, jobs: Option<usize>) -> Result<String, String> {
    let rows = shm_bench::pool::try_run_pool_sweep(&shm_pool::PlacementPolicy::ALL, scale, jobs)
        .map_err(|e| format!("hetero sweep failed: {e}"))?;
    Ok(shm_bench::pool::format_pool_table(&rows))
}

/// Calibration diagnostics: per-class overheads on pure access patterns.
fn micro_diag() -> String {
    let mut out = String::new();
    let cfg = GpuConfig::default();
    let stream = shm_workloads::micro::pure_stream_read(12 * 64 * 4096);
    let swrite = shm_workloads::micro::pure_stream_write(12 * 64 * 4096);
    let random = shm_workloads::micro::pure_random_read(8 << 20, 60_000, 9);
    {
        let (s, parts) = Simulator::new(&cfg, DesignPoint::Naive).run_inspect(&stream);
        let _ = writeln!(out, "naive stream-read: cycles={}", s.cycles);
        for (i, (r, w, free)) in parts.iter().enumerate() {
            let _ = writeln!(out, "  P{i:<3} read={r:<9} write={w:<9} bus_free={free}");
        }
    }
    for (label, trace) in [
        ("stream-read", &stream),
        ("stream-write", &swrite),
        ("random-read", &random),
    ] {
        let _ = writeln!(out, "\n-- {label} --");
        for d in [
            DesignPoint::Unprotected,
            DesignPoint::Naive,
            DesignPoint::CommonCtr,
            DesignPoint::Pssm,
            DesignPoint::ShmReadOnly,
            DesignPoint::Shm,
        ] {
            let s = Simulator::new(&cfg, d).run(trace);
            let _ = write!(
                out,
                "  {:<14} cycles={:<9} ovh={:<7.3} hits={:<6} miss={:<6} data={:<9}",
                d.name(),
                s.cycles,
                s.traffic.overhead_ratio(),
                s.l2_hits,
                s.l2_misses,
                s.traffic.data_bytes()
            );
            let n = (s.l2_hits + s.l2_misses).max(1);
            let _ = write!(
                out,
                " lat_avg={:.0} lat_max={}",
                s.lat_sum as f64 / n as f64,
                s.lat_max
            );
            for (l, v) in traffic_breakdown(&s) {
                let _ = write!(out, " {l}={v:.3}");
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Table I/II: security mechanisms per memory space and data class.
fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n== Table I: security mechanisms for GPU heterogeneous memory =="
    );
    use gpu_types::MemorySpace::*;
    for (space, loc) in [
        (Global, "off-chip"),
        (Local, "off-chip"),
        (Constant, "off-chip"),
        (Texture, "off-chip"),
        (Instruction, "off-chip"),
    ] {
        let _ = writeln!(
            out,
            "{:<14} {:<10} {}",
            space.to_string(),
            loc,
            required_mechanisms(space).notation()
        );
    }
    let _ = writeln!(
        out,
        "(register / shared memory / caches: on-chip, no mechanisms)"
    );

    let _ = writeln!(
        out,
        "\n== Table II: security mechanisms for application data =="
    );
    for (d, label) in [
        (DataProperty::ApplicationCode, "application code"),
        (DataProperty::Input, "input"),
        (DataProperty::Output, "output"),
        (DataProperty::InFlight, "in-flight data"),
    ] {
        let prop = if d.is_read_only() {
            "read-only"
        } else {
            "read/write"
        };
        let _ = writeln!(out, "{label:<18} {prop:<11} {}", d.required().notation());
    }
    out
}

/// Table IX: hardware storage overhead of the predictors and trackers.
fn table9() -> String {
    let mut out = String::new();
    let cfg = GpuConfig::default();
    let shm = ShmConfig::default();
    let _ = writeln!(out, "\n== Table IX: hardware overhead ==");
    let _ = writeln!(
        out,
        "read-only predictor : {} entries x 1 bit = {} B/partition",
        shm.readonly_predictor_entries,
        shm.readonly_predictor_entries / 8
    );
    let _ = writeln!(
        out,
        "streaming predictor : {} entries x 1 bit = {} B/partition",
        shm.streaming_predictor_entries,
        shm.streaming_predictor_entries / 8
    );
    let _ = writeln!(
        out,
        "access trackers     : {} x 71 bit = {} B/partition",
        shm.num_trackers,
        shm.num_trackers * 71 / 8
    );
    let _ = writeln!(
        out,
        "TOTAL ({} partitions): {} B ({:.2} KB)",
        cfg.num_partitions,
        shm.total_storage_bytes(cfg.num_partitions),
        shm.total_storage_bytes(cfg.num_partitions) as f64 / 1024.0
    );
    out
}

/// Tables III/IV: misprediction handling — demonstrated by measuring the
/// fix-up traffic of deliberately adversarial access patterns.
fn table3_4() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n== Tables III/IV: misprediction handling (fix-up traffic measured) =="
    );
    let cfg = GpuConfig::default();

    // Stream-predicted chunk that is actually random (reads): the failed
    // second-chance check falls back to the per-block MAC and corrects the
    // predictor (Table III, read rows).
    let trace = shm_workloads::micro::pure_random_read(8 << 20, 40_000, 7);
    let stats = Simulator::new(&cfg, DesignPoint::Shm).run(&trace);
    let _ = writeln!(
        out,
        "random-read trace (predicted streaming at init): fixup bytes = {}  stream mispredictions = {}",
        stats
            .traffic
            .class_total(gpu_types::TrafficClass::MispredictFixup),
        stats.stream_mispredictions
    );

    // Stream-predicted chunks written randomly: the costliest case — block
    // MACs went stale under chunk-MAC mode, so detection re-fetches the
    // chunk's data blocks to reproduce them (Table IV, stream→random row).
    let trace = shm_workloads::micro::pure_random_write(16 << 20, 200_000, 7);
    let stats = Simulator::new(&cfg, DesignPoint::Shm).run(&trace);
    let _ = writeln!(
        out,
        "random-write trace (predicted streaming at init): fixup bytes = {}  stream mispredictions = {}",
        stats
            .traffic
            .class_total(gpu_types::TrafficClass::MispredictFixup),
        stats.stream_mispredictions
    );

    // Fully streaming read over read-only data: zero fix-up expected.
    let trace = shm_workloads::micro::pure_stream_read(12 * 8 * 4096);
    let stats = Simulator::new(&cfg, DesignPoint::Shm).run(&trace);
    let _ = writeln!(
        out,
        "read-only streaming trace (correct prediction): fixup bytes = {}  stream mispredictions = {}",
        stats
            .traffic
            .class_total(gpu_types::TrafficClass::MispredictFixup),
        stats.stream_mispredictions
    );
    out
}

/// Table VII: measured bandwidth utilisation and memory-space usage.
fn table7(scale: f64, jobs: Option<usize>) -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n== Table VII: benchmarks (measured on the unprotected baseline) =="
    );
    let _ = writeln!(
        out,
        "{:<16}{:>12}{:>12}{:>18}",
        "benchmark", "bw util", "l2 miss", "memory space"
    );
    let cfg = GpuConfig::default();
    let profiles = scaled_suite(scale);
    let lines = Executor::from_request(jobs)
        .try_map(
            &profiles,
            |_, p| format!("table7 {}", p.name),
            |_, p| {
                let trace = p.generate(shm_bench::trace_seed(p.name));
                let stats = Simulator::new(&cfg, DesignPoint::Unprotected).run(&trace);
                let util = stats.bandwidth_utilization(
                    cfg.partition_bytes_per_cycle() * cfg.num_partitions as f64,
                );
                let spaces = if p.uses_texture {
                    "constant/texture"
                } else {
                    "constant"
                };
                format!(
                    "{:<16}{:>11.1}%{:>11.1}%{:>18}\n",
                    p.name,
                    util * 100.0,
                    stats.l2_miss_rate() * 100.0,
                    spaces
                )
            },
        )
        .map_err(|e| format!("table7 sweep failed: {e}"))?;
    for line in lines {
        out.push_str(&line);
    }
    Ok(out)
}

/// Fig. 5: fraction of accesses touching streaming and read-only data.
fn fig5(scale: f64, jobs: Option<usize>) -> Result<String, String> {
    let map = GpuConfig::default().partition_map();
    let profiles = scaled_suite(scale);
    let rows: Vec<(String, Vec<f64>)> = Executor::from_request(jobs)
        .try_map(
            &profiles,
            |_, p| format!("fig5 {}", p.name),
            |_, p| {
                let trace = p.generate(shm_bench::trace_seed(p.name));
                let events: Vec<_> = trace.all_events().cloned().collect();
                let oracle = OracleProfile::from_trace(&events, map);
                (
                    p.name.to_string(),
                    vec![
                        oracle.streaming_fraction(&events, map),
                        oracle.read_only_fraction(&events, map),
                    ],
                )
            },
        )
        .map_err(|e| format!("fig5 sweep failed: {e}"))?;
    Ok(format_table(
        "Fig. 5: streaming / read-only access fractions",
        &["streaming", "read-only"],
        &rows,
    ))
}

/// Fig. 10: read-only prediction breakdown.
fn fig10(scale: f64, jobs: Option<usize>) -> Result<String, String> {
    let cfg = GpuConfig::default();
    let profiles = scaled_suite(scale);
    let rows: Vec<(String, Vec<f64>)> = Executor::from_request(jobs)
        .try_map(
            &profiles,
            |_, p| format!("fig10 {}", p.name),
            |_, p| {
                let trace = p.generate(shm_bench::trace_seed(p.name));
                let (_, ro, _) = Simulator::new(&cfg, DesignPoint::Shm).run_detailed(&trace);
                let t = ro.total().max(1) as f64;
                (
                    p.name.to_string(),
                    vec![
                        ro.correct as f64 / t,
                        ro.mp_init as f64 / t,
                        ro.mp_aliasing as f64 / t,
                    ],
                )
            },
        )
        .map_err(|e| format!("fig10 sweep failed: {e}"))?;
    Ok(format_table(
        "Fig. 10: read-only prediction breakdown",
        &["correct", "mp_init", "mp_aliasing"],
        &rows,
    ))
}

/// Fig. 11: streaming prediction breakdown.
fn fig11(scale: f64, jobs: Option<usize>) -> Result<String, String> {
    let cfg = GpuConfig::default();
    let profiles = scaled_suite(scale);
    let rows: Vec<(String, Vec<f64>)> = Executor::from_request(jobs)
        .try_map(
            &profiles,
            |_, p| format!("fig11 {}", p.name),
            |_, p| {
                let trace = p.generate(shm_bench::trace_seed(p.name));
                let (_, _, st) = Simulator::new(&cfg, DesignPoint::Shm).run_detailed(&trace);
                let t = st.total().max(1) as f64;
                (
                    p.name.to_string(),
                    vec![
                        st.correct as f64 / t,
                        st.mp_init as f64 / t,
                        st.mp_runtime_read_only as f64 / t,
                        st.mp_runtime_non_read_only as f64 / t,
                        st.mp_aliasing as f64 / t,
                    ],
                )
            },
        )
        .map_err(|e| format!("fig11 sweep failed: {e}"))?;
    Ok(format_table(
        "Fig. 11: streaming prediction breakdown",
        &["correct", "mp_init", "mp_rt_ro", "mp_rt_nro", "mp_alias"],
        &rows,
    ))
}

#[allow(clippy::too_many_arguments)]
fn norm_ipc_table(
    title: &str,
    figure: &str,
    designs: &[DesignPoint],
    scale: f64,
    jobs: Option<usize>,
    sctx: &SweepCtx,
) -> Result<String, FigError> {
    let header: Vec<&str> = designs.iter().map(|d| d.name()).collect();
    let rows: Vec<(String, Vec<f64>)> = suite_rows(figure, designs, scale, jobs, sctx)?
        .iter()
        .map(|row| {
            (
                row.name.clone(),
                designs.iter().map(|d| row.norm_ipc(*d)).collect(),
            )
        })
        .collect();
    Ok(format_table(title, &header, &rows))
}

/// Fig. 12: normalized IPC of the main designs.
fn fig12(scale: f64, jobs: Option<usize>, sctx: &SweepCtx) -> Result<String, FigError> {
    norm_ipc_table(
        "Fig. 12: normalized IPC",
        "fig12",
        &[
            DesignPoint::Naive,
            DesignPoint::CommonCtr,
            DesignPoint::Pssm,
            DesignPoint::Shm,
            DesignPoint::ShmUpperBound,
        ],
        scale,
        jobs,
        sctx,
    )
}

/// Fig. 13: optimisation breakdown.
fn fig13(scale: f64, jobs: Option<usize>, sctx: &SweepCtx) -> Result<String, FigError> {
    norm_ipc_table(
        "Fig. 13: performance impact of each optimisation",
        "fig13",
        &[
            DesignPoint::Pssm,
            DesignPoint::PssmCctr,
            DesignPoint::ShmReadOnly,
            DesignPoint::Shm,
            DesignPoint::ShmCctr,
        ],
        scale,
        jobs,
        sctx,
    )
}

/// Fig. 14: bandwidth overheads of security metadata.
fn fig14(scale: f64, jobs: Option<usize>, sctx: &SweepCtx) -> Result<String, FigError> {
    let designs = [
        DesignPoint::Naive,
        DesignPoint::CommonCtr,
        DesignPoint::Pssm,
        DesignPoint::ShmReadOnly,
        DesignPoint::Shm,
    ];
    let header: Vec<&str> = designs.iter().map(|d| d.name()).collect();
    let mut breakdown_acc: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    let suite_rows = suite_rows("fig14", &designs, scale, jobs, sctx)?;
    let rows: Vec<(String, Vec<f64>)> = suite_rows
        .iter()
        .map(|row| {
            for (di, d) in designs.iter().enumerate() {
                for (label, v) in traffic_breakdown(&row.stats[d.name()]) {
                    breakdown_acc
                        .entry(label)
                        .or_insert_with(|| vec![0.0; designs.len()])[di] += v;
                }
            }
            (
                row.name.clone(),
                designs.iter().map(|d| row.bandwidth_overhead(*d)).collect(),
            )
        })
        .collect();
    let mut out = format_table(
        "Fig. 14: bandwidth overhead (metadata bytes / data bytes)",
        &header,
        &rows,
    );
    let _ = writeln!(
        out,
        "\nmean per-class breakdown (normalized to data bytes):"
    );
    let n = rows.len() as f64;
    for (label, sums) in &breakdown_acc {
        let _ = write!(out, "  {label:<8}");
        for s in sums {
            let _ = write!(out, "{:>12.4}", s / n);
        }
        let _ = writeln!(out);
    }
    Ok(out)
}

/// Fig. 15: normalized energy per instruction.
fn fig15(scale: f64, jobs: Option<usize>, sctx: &SweepCtx) -> Result<String, FigError> {
    let designs = [
        DesignPoint::Naive,
        DesignPoint::CommonCtr,
        DesignPoint::Pssm,
        DesignPoint::Shm,
    ];
    let model = EnergyModel::default();
    let header: Vec<&str> = designs.iter().map(|d| d.name()).collect();
    let rows: Vec<(String, Vec<f64>)> = suite_rows("fig15", &designs, scale, jobs, sctx)?
        .iter()
        .map(|row| {
            (
                row.name.clone(),
                designs
                    .iter()
                    .map(|d| row.normalized_energy(*d, &model))
                    .collect(),
            )
        })
        .collect();
    Ok(format_table(
        "Fig. 15: normalized energy per instruction",
        &header,
        &rows,
    ))
}

/// Fig. 16: SHM vs SHM with the L2 victim cache.
fn fig16(scale: f64, jobs: Option<usize>, sctx: &SweepCtx) -> Result<String, FigError> {
    let designs = [DesignPoint::Shm, DesignPoint::ShmVL2];
    let header: Vec<&str> = designs.iter().map(|d| d.name()).collect();
    // One sweep feeds both the table and the mean-gain headline (the old
    // implementation re-ran the whole suite for the second number).
    let suite_rows = suite_rows("fig16", &designs, scale, jobs, sctx)?;
    let rows: Vec<(String, Vec<f64>)> = suite_rows
        .iter()
        .map(|row| {
            (
                row.name.clone(),
                designs.iter().map(|d| row.norm_ipc(*d)).collect(),
            )
        })
        .collect();
    let mut out = format_table(
        "Fig. 16: L2 as victim cache for security metadata",
        &header,
        &rows,
    );
    let gain: Vec<f64> = suite_rows
        .iter()
        .map(|row| row.norm_ipc(DesignPoint::ShmVL2) - row.norm_ipc(DesignPoint::Shm))
        .collect();
    let _ = writeln!(out, "mean vL2 gain: {:+.4} normalized IPC", mean(&gain));
    Ok(out)
}
