//! The chaos campaign: adversarial validation of the distributed sweep.
//!
//! Every robustness claim the cluster makes — CRC fail-closed framing,
//! end-to-end result digests, byzantine audit + quarantine, dispatch
//! timeouts, reconnect backoff, coordinator checkpoints — is only worth
//! what survives contact with an adversary.  This module runs the full
//! suite sweep through a gauntlet of deterministic, seeded fault
//! scenarios (a [`ChaosProxy`] between workers and coordinator, byzantine
//! worker knobs, a simulated coordinator crash) and classifies each
//! outcome:
//!
//! * [`Verdict::Identical`] — the sweep completed and its merged tables
//!   are byte-identical to the fault-free golden run.  The defense
//!   *recovered*.
//! * [`Verdict::Detected`] — the sweep failed with a clean, labelled
//!   error.  The defense *refused* rather than guessed.
//! * [`Verdict::Silent`] — the sweep "succeeded" with different bytes.
//!   This is the one outcome that must never happen; the campaign exit
//!   code and CI both key off it.
//!
//! Everything is seeded: same `--seed` and schedule, same fault pattern,
//! same classification — which is itself a regression test
//! (`tests/chaos_campaign.rs`).

use std::path::Path;
use std::thread;

use gpu_mem_sim::DesignPoint;
use gpu_types::SimStats;
use shm_recovery::{JournalCodec, RecoveryError};
use sim_dist::{
    run_worker, ChaosConfig, ChaosProxy, ChaosStats, Coordinator, DistOptions, PartitionWindow,
    WorkerOptions,
};
use sim_exec::CancelToken;

use crate::dist::{
    dist_config_hash, dist_worker_handler, suite_dist_jobs, try_run_suite_dist_checkpointed,
    DistSweepConfig, DistSweepError,
};
use crate::{format_table, BenchRow};

/// Design points the campaign sweeps (baseline rides along implicitly).
pub const CHAOS_DESIGNS: &[DesignPoint] = &[DesignPoint::Pssm, DesignPoint::Shm];

/// How a chaos scenario ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Sweep completed; merged tables byte-identical to the golden run.
    Identical,
    /// Sweep failed with a clean labelled error (the attached detail).
    Detected(String),
    /// Sweep reported success but the tables differ — silent divergence.
    Silent(String),
}

impl Verdict {
    /// True only for the forbidden outcome.
    pub fn is_silent(&self) -> bool {
        matches!(self, Verdict::Silent(_))
    }
}

/// One scenario's outcome plus its fault/defense accounting.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Scenario name (stable identifier, also the flight-recorder key).
    pub name: &'static str,
    /// Outcome classification.
    pub verdict: Verdict,
    /// Faults the proxy injected (0 for proxy-less scenarios).
    pub faults: u64,
    /// Proxy-side fault breakdown, when a proxy was in the path.
    pub proxy: Option<ChaosStats>,
    /// Workers quarantined by the byzantine defense.
    pub quarantines: u64,
    /// Audit copy disagreements observed.
    pub audit_mismatches: u64,
    /// End-to-end digest mismatches observed.
    pub digest_mismatches: u64,
    /// Dispatch timeouts that rescued dropped frames.
    pub dispatch_timeouts: u64,
    /// Jobs requeued off dead workers.
    pub reassignments: u64,
}

impl ScenarioResult {
    /// One greppable line: `scenario=<name> verdict=<v> ... silent:<bool>`.
    /// CI greps for `silent:true`; none may ever appear.
    pub fn render_line(&self) -> String {
        let (verdict, detail) = match &self.verdict {
            Verdict::Identical => ("identical", String::new()),
            Verdict::Detected(d) => ("detected", format!(" detail={:?}", d)),
            Verdict::Silent(d) => ("SILENT-DIVERGENCE", format!(" detail={:?}", d)),
        };
        format!(
            "scenario={} verdict={verdict}{detail} faults={} quarantines={} \
             audit_mismatches={} digest_mismatches={} dispatch_timeouts={} \
             reassignments={} silent:{}",
            self.name,
            self.faults,
            self.quarantines,
            self.audit_mismatches,
            self.digest_mismatches,
            self.dispatch_timeouts,
            self.reassignments,
            self.verdict.is_silent(),
        )
    }
}

/// A full campaign run: per-scenario results plus the golden table text.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Schedule name (`smoke` or `full`).
    pub schedule: String,
    /// Campaign seed (drives fault rolls and audit sampling).
    pub seed: u64,
    /// Per-scenario outcomes, schedule order.
    pub scenarios: Vec<ScenarioResult>,
    /// Rendered golden table every scenario was compared against.
    pub golden_table: String,
}

impl ChaosReport {
    /// Scenarios that diverged silently (must be 0).
    pub fn silent_divergences(&self) -> usize {
        self.scenarios
            .iter()
            .filter(|s| s.verdict.is_silent())
            .count()
    }

    /// Scenarios that recovered to byte-identical tables.
    pub fn identical(&self) -> usize {
        self.scenarios
            .iter()
            .filter(|s| s.verdict == Verdict::Identical)
            .count()
    }

    /// Scenarios that failed with a clean labelled error.
    pub fn detected(&self) -> usize {
        self.scenarios
            .iter()
            .filter(|s| matches!(s.verdict, Verdict::Detected(_)))
            .count()
    }

    /// Human- and grep-friendly campaign summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "chaos campaign schedule={} seed={} scenarios={}\n",
            self.schedule,
            self.seed,
            self.scenarios.len()
        );
        for s in &self.scenarios {
            out.push_str(&s.render_line());
            out.push('\n');
        }
        out.push_str(&format!(
            "chaos summary: identical={} detected={} silent={}\n",
            self.identical(),
            self.detected(),
            self.silent_divergences()
        ));
        out
    }

    /// Flight-recorder dump: one JSON line per scenario.
    pub fn flight_lines(&self) -> String {
        let mut out = String::new();
        for s in &self.scenarios {
            let (verdict, detail) = verdict_parts(s);
            out.push_str(&format!(
                "{{\"scenario\":\"{}\",\"verdict\":\"{verdict}\",\"detail\":{detail},\
                 \"faults\":{},\"quarantines\":{},\"audit_mismatches\":{},\
                 \"digest_mismatches\":{},\"dispatch_timeouts\":{},\"reassignments\":{},\
                 \"silent\":{}}}\n",
                s.name,
                s.faults,
                s.quarantines,
                s.audit_mismatches,
                s.digest_mismatches,
                s.dispatch_timeouts,
                s.reassignments,
                s.verdict.is_silent(),
            ));
        }
        out
    }
}

fn verdict_parts(s: &ScenarioResult) -> (&'static str, String) {
    match &s.verdict {
        Verdict::Identical => ("identical", "null".to_string()),
        Verdict::Detected(d) => ("detected", format!("{:?}", d)),
        Verdict::Silent(d) => ("silent", format!("{:?}", d)),
    }
}

/// What one scenario perturbs.
struct Scenario {
    name: &'static str,
    /// Proxy fault pattern (seed is filled in from the campaign seed).
    chaos: Option<ChaosConfig>,
    /// Byzantine knobs for the second worker.
    byz_lie_every: Option<u64>,
    byz_bad_digest_every: Option<u64>,
    /// Audit sampling for this scenario (per-mille).
    audit_per_mille: u32,
    /// Coordinator crash-resume instead of a plain run.
    crash_resume: bool,
}

impl Scenario {
    fn plain(name: &'static str) -> Self {
        Scenario {
            name,
            chaos: None,
            byz_lie_every: None,
            byz_bad_digest_every: None,
            audit_per_mille: 0,
            crash_resume: false,
        }
    }
}

fn smoke_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            audit_per_mille: 250,
            ..Scenario::plain("baseline-audit")
        },
        Scenario {
            chaos: Some(ChaosConfig {
                corrupt_per_mille: 25,
                ..ChaosConfig::default()
            }),
            ..Scenario::plain("frame-corrupt")
        },
        Scenario {
            chaos: Some(ChaosConfig {
                drop_per_mille: 15,
                ..ChaosConfig::default()
            }),
            ..Scenario::plain("frame-drop")
        },
        Scenario {
            chaos: Some(ChaosConfig {
                dup_per_mille: 60,
                ..ChaosConfig::default()
            }),
            ..Scenario::plain("frame-dup")
        },
        Scenario {
            chaos: Some(ChaosConfig {
                reset_after_frames: Some(16),
                ..ChaosConfig::default()
            }),
            ..Scenario::plain("conn-reset")
        },
        Scenario {
            byz_bad_digest_every: Some(3),
            ..Scenario::plain("byz-bad-digest")
        },
        Scenario {
            byz_lie_every: Some(3),
            // Full audit: a consistent liar is invisible to digests, only
            // redundant dispatch catches it.
            audit_per_mille: 1000,
            ..Scenario::plain("byz-lie-full-audit")
        },
        Scenario {
            crash_resume: true,
            ..Scenario::plain("coord-crash-resume")
        },
    ]
}

fn full_scenarios() -> Vec<Scenario> {
    let mut v = smoke_scenarios();
    v.extend([
        Scenario {
            chaos: Some(ChaosConfig {
                truncate_per_mille: 12,
                ..ChaosConfig::default()
            }),
            ..Scenario::plain("frame-truncate")
        },
        Scenario {
            chaos: Some(ChaosConfig {
                delay_per_mille: 80,
                delay_ms: 40,
                ..ChaosConfig::default()
            }),
            ..Scenario::plain("frame-delay")
        },
        Scenario {
            chaos: Some(ChaosConfig {
                // Longer than the heartbeat timeout: the coordinator must
                // declare the workers dead, then heal after the window.
                partitions: vec![PartitionWindow {
                    start_ms: 300,
                    duration_ms: 2_500,
                }],
                ..ChaosConfig::default()
            }),
            ..Scenario::plain("partition-outlives-heartbeat")
        },
        Scenario {
            chaos: Some(ChaosConfig {
                drop_per_mille: 10,
                dup_per_mille: 30,
                corrupt_per_mille: 10,
                delay_per_mille: 50,
                delay_ms: 15,
                ..ChaosConfig::default()
            }),
            byz_bad_digest_every: Some(5),
            audit_per_mille: 500,
            ..Scenario::plain("mayhem")
        },
    ]);
    v
}

fn scenario_dist_opts(s: &Scenario, seed: u64) -> DistOptions {
    DistOptions {
        connect_wait_ms: 10_000,
        heartbeat_timeout_ms: 2_000,
        read_timeout_ms: 25,
        retry_budget: 256,
        audit_per_mille: s.audit_per_mille,
        audit_seed: seed,
        // Rescues dispatch/result frames the proxy eats; generous versus
        // worst-case job runtime at campaign scale.
        dispatch_timeout_ms: 3_000,
    }
}

fn scenario_worker_opts(id: &str, s: &Scenario, byzantine: bool) -> WorkerOptions {
    WorkerOptions {
        worker_id: id.into(),
        jobs: Some(1),
        heartbeat_interval_ms: 100,
        read_timeout_ms: 25,
        reconnect_base_ms: 25,
        reconnect_max_ms: 200,
        // Enough headroom to reconnect through a partition window.
        max_reconnect_attempts: 40,
        byzantine_lie_every: if byzantine { s.byz_lie_every } else { None },
        byzantine_bad_digest_every: if byzantine {
            s.byz_bad_digest_every
        } else {
            None
        },
        ..WorkerOptions::default()
    }
}

/// Renders merged rows exactly the way every comparison in this module
/// (and the determinism test) does.
pub fn render_rows(rows: &[BenchRow]) -> String {
    let header: Vec<&str> = CHAOS_DESIGNS.iter().map(|d| d.name()).collect();
    let table: Vec<(String, Vec<f64>)> = rows
        .iter()
        .map(|row| {
            (
                row.name.clone(),
                CHAOS_DESIGNS.iter().map(|d| row.norm_ipc(*d)).collect(),
            )
        })
        .collect();
    format_table("chaos golden", &header, &table)
}

fn classify(rendered: &str, golden: &str) -> Verdict {
    if rendered == golden {
        Verdict::Identical
    } else {
        Verdict::Silent("merged tables differ from golden run".to_string())
    }
}

fn run_cluster_scenario(s: &Scenario, seed: u64, scale: f64, golden: &str) -> ScenarioResult {
    let (profiles, pairs, jobs) = suite_dist_jobs(CHAOS_DESIGNS, scale);
    let labels: Vec<String> = jobs.iter().map(|j| j.label.clone()).collect();
    let hash = dist_config_hash();

    let mut result = ScenarioResult {
        name: s.name,
        verdict: Verdict::Detected("scenario did not run".into()),
        faults: 0,
        proxy: None,
        quarantines: 0,
        audit_mismatches: 0,
        digest_mismatches: 0,
        dispatch_timeouts: 0,
        reassignments: 0,
    };

    let coord = match Coordinator::bind("127.0.0.1:0", hash, scenario_dist_opts(s, seed)) {
        Ok(c) => c,
        Err(e) => {
            result.verdict = Verdict::Detected(format!("bind failed: {e}"));
            return result;
        }
    };
    let upstream = coord.local_addr();

    // Workers dial the chaos proxy when the scenario has one; otherwise
    // they talk to the coordinator directly.
    let mut proxy = match &s.chaos {
        Some(cfg) => match ChaosProxy::start(
            upstream,
            ChaosConfig {
                seed,
                ..cfg.clone()
            },
        ) {
            Ok(p) => Some(p),
            Err(e) => {
                result.verdict = Verdict::Detected(format!("proxy failed: {e}"));
                return result;
            }
        },
        None => None,
    };
    let worker_addr = proxy
        .as_ref()
        .map(|p| p.local_addr())
        .unwrap_or(upstream)
        .to_string();

    let (a1, a2) = (worker_addr.clone(), worker_addr);
    let honest = scenario_worker_opts("w-honest", s, false);
    let second = scenario_worker_opts("w-second", s, true);
    let w1 = thread::spawn(move || run_worker(&a1, hash, honest, dist_worker_handler));
    let w2 = thread::spawn(move || run_worker(&a2, hash, second, dist_worker_handler));

    let report = coord.run(jobs, &CancelToken::new());
    // Kill the proxy before joining workers so post-sweep reconnect
    // attempts fail fast instead of burning the full backoff budget.
    if let Some(p) = proxy.as_mut() {
        result.proxy = Some(p.stats());
        result.faults = p.stats().faults();
        p.shutdown();
    }
    let _ = w1.join();
    let _ = w2.join();

    match report {
        Err(e) => result.verdict = Verdict::Detected(format!("cluster error: {e}")),
        Ok(rep) => {
            result.quarantines = rep.quarantines;
            result.audit_mismatches = rep.audit_mismatches;
            result.digest_mismatches = rep.digest_mismatches;
            result.dispatch_timeouts = rep.dispatch_timeouts;
            result.reassignments = rep.reassignments;

            let mut stats: Vec<SimStats> = Vec::with_capacity(rep.results.len());
            let mut detected: Option<String> = None;
            for (i, outcome) in rep.results.iter().enumerate() {
                match outcome {
                    None => {
                        detected.get_or_insert(format!("{} never resolved", labels[i]));
                    }
                    Some(Err(p)) => {
                        detected.get_or_insert(format!("{} failed: {}", labels[i], p.message));
                    }
                    Some(Ok(payload)) => match SimStats::decode_journal(payload) {
                        Some(st) => stats.push(st),
                        None => {
                            detected.get_or_insert(format!("{} returned undecodable", labels[i]));
                        }
                    },
                }
            }
            result.verdict = match detected {
                Some(d) => Verdict::Detected(d),
                None => {
                    let rows = crate::dist::assemble_rows(&profiles, &pairs, stats);
                    classify(&render_rows(&rows), golden)
                }
            };
        }
    }
    result
}

fn run_crash_resume_scenario(
    s: &Scenario,
    seed: u64,
    scale: f64,
    golden: &str,
    dir: &Path,
) -> ScenarioResult {
    let mut result = ScenarioResult {
        name: s.name,
        verdict: Verdict::Detected("scenario did not run".into()),
        faults: 0,
        proxy: None,
        quarantines: 0,
        audit_mismatches: 0,
        digest_mismatches: 0,
        dispatch_timeouts: 0,
        reassignments: 0,
    };
    let ckpt_path = dir.join(format!("chaos-ckpt-{seed}.jsonl"));
    let _ = std::fs::remove_file(&ckpt_path);
    let cfg = DistSweepConfig {
        bind: "127.0.0.1:0".into(),
        self_workers: 2,
        opts: scenario_dist_opts(s, seed),
    };

    // Phase 1: the coordinator "dies" after three resolves — cancel fires,
    // the checkpoint is flushed, rows are withheld.
    match try_run_suite_dist_checkpointed(CHAOS_DESIGNS, scale, &cfg, &ckpt_path, 2, Some(3)) {
        Ok((suite, _)) => {
            if let Some(rows) = suite.rows {
                // Too fast to interrupt is still a completed run; verify it.
                result.verdict = classify(&render_rows(&rows), golden);
                let _ = std::fs::remove_file(&ckpt_path);
                return result;
            }
        }
        Err(e) => {
            result.verdict = Verdict::Detected(format!("crash phase failed: {e}"));
            return result;
        }
    }

    // Phase 2: a fresh coordinator resumes from the checkpoint and must
    // finish byte-identical, re-running only the unresolved jobs.
    match try_run_suite_dist_checkpointed(CHAOS_DESIGNS, scale, &cfg, &ckpt_path, 2, None) {
        Ok((suite, summary)) => {
            result.reassignments = summary.reassignments;
            match suite.rows {
                Some(rows) => {
                    if suite.reused == 0 {
                        result.verdict =
                            Verdict::Detected("resume replayed nothing from the checkpoint".into());
                    } else {
                        result.verdict = classify(&render_rows(&rows), golden);
                    }
                }
                None => {
                    result.verdict = Verdict::Detected("resume did not complete".into());
                }
            }
        }
        Err(e) => result.verdict = Verdict::Detected(format!("resume failed: {e}")),
    }
    let _ = std::fs::remove_file(&ckpt_path);
    result
}

/// Runs the chaos campaign: a golden fault-free sweep, then every
/// scenario in `schedule` (`"smoke"` or `"full"`), comparing merged
/// tables byte-for-byte.  The flight-recorder dump lands in
/// `dir/chaos_flight_<schedule>_<seed>.jsonl`.
///
/// # Errors
///
/// [`DistSweepError`] when the golden run itself fails or the flight
/// recorder cannot be written; scenario failures are never errors — they
/// classify as [`Verdict::Detected`] (or, catastrophically,
/// [`Verdict::Silent`]).
pub fn run_chaos_campaign(
    schedule: &str,
    seed: u64,
    scale: f64,
    dir: &Path,
) -> Result<ChaosReport, DistSweepError> {
    let scenarios = match schedule {
        "full" => full_scenarios(),
        _ => smoke_scenarios(),
    };
    let golden_rows =
        crate::try_run_suite_jobs(CHAOS_DESIGNS, scale, Some(1)).map_err(DistSweepError::Sweep)?;
    let golden = render_rows(&golden_rows);

    std::fs::create_dir_all(dir).map_err(|e| DistSweepError::Recovery(RecoveryError::Io(e)))?;
    let mut results = Vec::with_capacity(scenarios.len());
    for s in &scenarios {
        let r = if s.crash_resume {
            run_crash_resume_scenario(s, seed, scale, &golden, dir)
        } else {
            run_cluster_scenario(s, seed, scale, &golden)
        };
        eprintln!("{}", r.render_line());
        results.push(r);
    }

    let report = ChaosReport {
        schedule: schedule.to_string(),
        seed,
        scenarios: results,
        golden_table: golden,
    };
    let flight = dir.join(format!("chaos_flight_{schedule}_{seed}.jsonl"));
    std::fs::write(&flight, report.flight_lines())
        .map_err(|e| DistSweepError::Recovery(RecoveryError::Io(e)))?;
    Ok(report)
}
