//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each figure/table of the evaluation has a function here that runs the
//! necessary (benchmark × design) simulations and returns the series the
//! paper plots; the `repro` binary prints them, the Criterion benches time
//! representative slices of them, and the integration tests assert the
//! *shape* of the results (who wins, by roughly what factor).

use std::collections::BTreeMap;

use gpu_mem_sim::{DesignPoint, EnergyModel, Simulator};
use gpu_types::{GpuConfig, SimStats, TrafficClass};
use shm_workloads::BenchmarkProfile;

/// Scale factor for event counts: 1.0 = full runs (repro binary),
/// smaller for quick tests/benches.
pub fn scaled_suite(scale: f64) -> Vec<BenchmarkProfile> {
    BenchmarkProfile::suite()
        .into_iter()
        .map(|mut p| {
            p.events_per_kernel = ((p.events_per_kernel as f64 * scale) as u64).max(4096);
            p
        })
        .collect()
}

/// Runs one benchmark under one design; seeds are fixed for determinism.
pub fn run_one(profile: &BenchmarkProfile, design: DesignPoint) -> SimStats {
    let cfg = GpuConfig::default();
    let trace = profile.generate(0xBEEF ^ profile.name.len() as u64);
    Simulator::new(&cfg, design).run(&trace)
}

/// Normalized IPC of `stats` against the unprotected `baseline` run of the
/// same trace (same instruction count, so the ratio of cycles inverts).
pub fn normalized_ipc(stats: &SimStats, baseline: &SimStats) -> f64 {
    if stats.cycles == 0 {
        return 0.0;
    }
    baseline.cycles as f64 / stats.cycles as f64
}

/// Results of one benchmark across a set of designs.
#[derive(Clone, Debug)]
pub struct BenchRow {
    /// Benchmark name.
    pub name: String,
    /// Stats per design (baseline included).
    pub stats: BTreeMap<&'static str, SimStats>,
}

impl BenchRow {
    /// Normalized IPC for `design` in this row.
    pub fn norm_ipc(&self, design: DesignPoint) -> f64 {
        let base = &self.stats["Baseline"];
        normalized_ipc(&self.stats[design.name()], base)
    }

    /// Bandwidth overhead ratio for `design` (Fig. 14 metric).
    pub fn bandwidth_overhead(&self, design: DesignPoint) -> f64 {
        self.stats[design.name()].traffic.overhead_ratio()
    }

    /// Normalized energy per instruction for `design` (Fig. 15 metric).
    pub fn normalized_energy(&self, design: DesignPoint, model: &EnergyModel) -> f64 {
        model.normalized_epi(&self.stats[design.name()], &self.stats["Baseline"])
    }
}

/// Runs `designs` (plus the baseline) over the scaled suite.
pub fn run_suite(designs: &[DesignPoint], scale: f64) -> Vec<BenchRow> {
    scaled_suite(scale)
        .iter()
        .map(|p| run_benchmark(p, designs))
        .collect()
}

/// Runs `designs` (plus the baseline) for one profile.
pub fn run_benchmark(profile: &BenchmarkProfile, designs: &[DesignPoint]) -> BenchRow {
    let mut stats = BTreeMap::new();
    stats.insert(
        DesignPoint::Unprotected.name(),
        run_one(profile, DesignPoint::Unprotected),
    );
    for d in designs {
        if *d == DesignPoint::Unprotected {
            continue;
        }
        stats.insert(d.name(), run_one(profile, *d));
    }
    BenchRow {
        name: profile.name.to_string(),
        stats,
    }
}

/// Geometric mean (the paper averages normalized IPC arithmetically; both
/// are provided).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Pretty-prints a figure as aligned columns.
pub fn print_table(title: &str, header: &[&str], rows: &[(String, Vec<f64>)]) {
    println!("\n== {title} ==");
    print!("{:<16}", "benchmark");
    for h in header {
        print!("{h:>16}");
    }
    println!();
    for (name, vals) in rows {
        print!("{name:<16}");
        for v in vals {
            print!("{v:>16.4}");
        }
        println!();
    }
    let n = header.len();
    print!("{:<16}", "MEAN");
    for i in 0..n {
        let col: Vec<f64> = rows.iter().map(|(_, v)| v[i]).collect();
        print!("{:>16.4}", mean(&col));
    }
    println!();
}

/// Traffic-class byte breakdown of one run, normalized to data bytes.
pub fn traffic_breakdown(stats: &SimStats) -> Vec<(&'static str, f64)> {
    let data = stats.traffic.data_bytes().max(1) as f64;
    TrafficClass::ALL
        .iter()
        .filter(|c| !matches!(c, TrafficClass::Data))
        .map(|&c| (c.label(), stats.traffic.class_total(c) as f64 / data))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn normalized_ipc_definition() {
        let base = SimStats {
            cycles: 100,
            ..SimStats::default()
        };
        let slow = SimStats {
            cycles: 200,
            ..SimStats::default()
        };
        assert!((normalized_ipc(&slow, &base) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scaled_suite_scales() {
        let full = scaled_suite(1.0);
        let small = scaled_suite(0.1);
        assert_eq!(full.len(), small.len());
        assert!(small[0].events_per_kernel < full[0].events_per_kernel);
    }
}
