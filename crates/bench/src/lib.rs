//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each figure/table of the evaluation has a function here that runs the
//! necessary (benchmark × design) simulations and returns the series the
//! paper plots; the `repro` binary prints them, the Criterion benches time
//! representative slices of them, and the integration tests assert the
//! *shape* of the results (who wins, by roughly what factor).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use gpu_mem_sim::{DesignPoint, EnergyModel, Simulator};
use gpu_types::{GpuConfig, SimStats, TrafficClass};
pub use shm_recovery::RecoveryError;
use shm_recovery::{config_hash, map_journaled, JobJournal, SweepOptions};
use shm_workloads::BenchmarkProfile;
pub use sim_exec::{CancelToken, Executor, SweepError};

pub mod chaos;
pub mod dist;
pub mod pool;

/// Scale factor for event counts: 1.0 = full runs (repro binary),
/// smaller for quick tests/benches.
pub fn scaled_suite(scale: f64) -> Vec<BenchmarkProfile> {
    BenchmarkProfile::suite()
        .into_iter()
        .map(|mut p| {
            p.events_per_kernel = ((p.events_per_kernel as f64 * scale) as u64).max(4096);
            p
        })
        .collect()
}

/// Deterministic per-benchmark trace seed: FNV-1a over the full name.
///
/// The seed must depend on the *content* of the name, not just its length —
/// an earlier `0xBEEF ^ name.len()` scheme gave every same-length pair of
/// benchmarks (e.g. `bfs`/`nw`) identical traces.
pub fn trace_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs one benchmark under one design; seeds are fixed for determinism.
pub fn run_one(profile: &BenchmarkProfile, design: DesignPoint) -> SimStats {
    let cfg = GpuConfig::default();
    let trace = profile.generate(trace_seed(profile.name));
    Simulator::new(&cfg, design).run(&trace)
}

/// Normalized IPC of `stats` against the unprotected `baseline` run of the
/// same trace (same instruction count, so the ratio of cycles inverts).
pub fn normalized_ipc(stats: &SimStats, baseline: &SimStats) -> f64 {
    if stats.cycles == 0 {
        return 0.0;
    }
    baseline.cycles as f64 / stats.cycles as f64
}

/// Results of one benchmark across a set of designs.
#[derive(Clone, Debug)]
pub struct BenchRow {
    /// Benchmark name.
    pub name: String,
    /// Stats per design (baseline included).
    pub stats: BTreeMap<&'static str, SimStats>,
}

impl BenchRow {
    /// Normalized IPC for `design` in this row.
    pub fn norm_ipc(&self, design: DesignPoint) -> f64 {
        let base = &self.stats["Baseline"];
        normalized_ipc(&self.stats[design.name()], base)
    }

    /// Bandwidth overhead ratio for `design` (Fig. 14 metric).
    pub fn bandwidth_overhead(&self, design: DesignPoint) -> f64 {
        self.stats[design.name()].traffic.overhead_ratio()
    }

    /// Normalized energy per instruction for `design` (Fig. 15 metric).
    pub fn normalized_energy(&self, design: DesignPoint, model: &EnergyModel) -> f64 {
        model.normalized_epi(&self.stats[design.name()], &self.stats["Baseline"])
    }
}

/// Runs `designs` (plus the baseline) over the scaled suite, parallelising
/// across the worker pool resolved from `SHM_JOBS` / available parallelism.
pub fn run_suite(designs: &[DesignPoint], scale: f64) -> Vec<BenchRow> {
    run_suite_jobs(designs, scale, None)
}

/// [`run_suite`] with an explicit worker count (`--jobs N`); `None` defers
/// to `SHM_JOBS` / available parallelism.
///
/// # Panics
///
/// Panics with every failing `(benchmark, design)` pair if any simulation
/// job panics; see [`try_run_suite_jobs`] for the non-panicking variant.
pub fn run_suite_jobs(designs: &[DesignPoint], scale: f64, jobs: Option<usize>) -> Vec<BenchRow> {
    match try_run_suite_jobs(designs, scale, jobs) {
        Ok(rows) => rows,
        Err(e) => panic!("suite sweep failed: {e}"),
    }
}

/// Fallible sweep over the full `(benchmark × design)` cross product.
///
/// Every pair is one job on the work-stealing pool; results reassemble in
/// submission order so the rows (and all downstream tables) are identical
/// to a serial run regardless of worker count.
///
/// # Errors
///
/// Returns a [`SweepError`] labelling every `(benchmark, design)` job that
/// panicked; successful rows are discarded in that case.
pub fn try_run_suite_jobs(
    designs: &[DesignPoint],
    scale: f64,
    jobs: Option<usize>,
) -> Result<Vec<BenchRow>, SweepError> {
    let profiles = scaled_suite(scale);
    // Baseline first, then each requested design once.
    let (_, pairs) = suite_pairs(designs, &profiles);

    let stats = Executor::from_request(jobs).try_map(
        &pairs,
        |_, &(p, d)| format!("{} under {}", profiles[p].name, d.name()),
        |_, &(p, d)| run_one(&profiles[p], d),
    )?;

    let mut rows: Vec<BenchRow> = profiles
        .iter()
        .map(|p| BenchRow {
            name: p.name.to_string(),
            stats: BTreeMap::new(),
        })
        .collect();
    for (&(p, d), s) in pairs.iter().zip(stats) {
        rows[p].stats.insert(d.name(), s);
    }
    Ok(rows)
}

/// The baseline-first design list and `(profile index, design)` job pairs
/// every suite sweep iterates, in deterministic submission order.
pub(crate) fn suite_pairs(
    designs: &[DesignPoint],
    profiles: &[BenchmarkProfile],
) -> (Vec<DesignPoint>, Vec<(usize, DesignPoint)>) {
    let mut points: Vec<DesignPoint> = vec![DesignPoint::Unprotected];
    points.extend(
        designs
            .iter()
            .copied()
            .filter(|d| *d != DesignPoint::Unprotected),
    );
    let pairs: Vec<(usize, DesignPoint)> = (0..profiles.len())
        .flat_map(|p| points.iter().map(move |&d| (p, d)))
        .collect();
    (points, pairs)
}

/// Outcome of a journaled (checkpointed) suite sweep.
#[derive(Debug)]
pub struct JournaledSuite {
    /// The assembled rows — `None` when the sweep was interrupted before
    /// every job completed (everything finished so far is journaled).
    pub rows: Option<Vec<BenchRow>>,
    /// Jobs whose results were loaded from the journal instead of re-run.
    pub reused: usize,
    /// Jobs executed (and journaled) during this call.
    pub executed: usize,
    /// Labels of every job the journal now holds, sorted.
    pub completed_labels: Vec<String>,
    /// The journal file backing this sweep.
    pub journal_path: PathBuf,
}

/// [`try_run_suite_jobs`] through a durable job journal: each completed
/// `(benchmark, design)` result is appended to
/// `journal_dir/<figure>.jsonl` as it lands, and a later call with the same
/// arguments reloads those results instead of re-simulating them — so an
/// interrupted sweep (SIGINT/SIGTERM routed into sim-exec cancellation, or
/// `crash_after_jobs` in tests) resumes where it stopped and assembles rows
/// byte-identical to an uninterrupted run.
///
/// The journal is bound to a hash of `figure`, the scaled profile list and
/// the design list; reusing the file for a different sweep is rejected.
///
/// # Errors
///
/// I/O or corruption errors on the journal, a rejected config hash, or a
/// [`SweepError`] from panicking jobs.
pub fn try_run_suite_journaled(
    figure: &str,
    designs: &[DesignPoint],
    scale: f64,
    jobs: Option<usize>,
    journal_dir: &Path,
    crash_after_jobs: Option<usize>,
) -> Result<JournaledSuite, RecoveryError> {
    let profiles = scaled_suite(scale);
    let (_, pairs) = suite_pairs(designs, &profiles);

    let mut parts: Vec<String> = vec![figure.to_string()];
    parts.extend(
        profiles
            .iter()
            .map(|p| format!("{}:{}", p.name, p.events_per_kernel)),
    );
    parts.extend(pairs.iter().map(|&(_, d)| d.name().to_string()));
    let part_refs: Vec<&str> = parts.iter().map(String::as_str).collect();

    std::fs::create_dir_all(journal_dir)?;
    let journal_path = journal_dir.join(format!("{figure}.jsonl"));
    let mut journal = JobJournal::open(&journal_path, config_hash(&part_refs))?;

    let token = CancelToken::new();
    let sweep = map_journaled(
        &Executor::from_request(jobs),
        &pairs,
        &mut journal,
        &token,
        SweepOptions { crash_after_jobs },
        |_, &(p, d)| format!("{} under {}", profiles[p].name, d.name()),
        |_, &(p, d)| run_one(&profiles[p], d),
    )?;
    let (reused, executed) = (sweep.reused, sweep.executed);

    let rows = sweep.complete().map(|stats| {
        let mut rows: Vec<BenchRow> = profiles
            .iter()
            .map(|p| BenchRow {
                name: p.name.to_string(),
                stats: BTreeMap::new(),
            })
            .collect();
        for (&(p, d), s) in pairs.iter().zip(stats) {
            rows[p].stats.insert(d.name(), s);
        }
        rows
    });
    Ok(JournaledSuite {
        rows,
        reused,
        executed,
        completed_labels: journal
            .completed_labels()
            .into_iter()
            .map(str::to_string)
            .collect(),
        journal_path,
    })
}

/// Runs `designs` (plus the baseline) for one profile.
pub fn run_benchmark(profile: &BenchmarkProfile, designs: &[DesignPoint]) -> BenchRow {
    let mut stats = BTreeMap::new();
    stats.insert(
        DesignPoint::Unprotected.name(),
        run_one(profile, DesignPoint::Unprotected),
    );
    for d in designs {
        if *d == DesignPoint::Unprotected {
            continue;
        }
        stats.insert(d.name(), run_one(profile, *d));
    }
    BenchRow {
        name: profile.name.to_string(),
        stats,
    }
}

/// Geometric mean (the paper averages normalized IPC arithmetically; both
/// are provided).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Renders a figure as aligned columns (the format `print_table` emits).
///
/// Returning a `String` lets the repro harness render the same figure for
/// serial and parallel sweeps and compare the two byte-for-byte.
pub fn format_table(title: &str, header: &[&str], rows: &[(String, Vec<f64>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let _ = write!(out, "{:<16}", "benchmark");
    for h in header {
        let _ = write!(out, "{h:>16}");
    }
    let _ = writeln!(out);
    for (name, vals) in rows {
        let _ = write!(out, "{name:<16}");
        for v in vals {
            let _ = write!(out, "{v:>16.4}");
        }
        let _ = writeln!(out);
    }
    let n = header.len();
    let _ = write!(out, "{:<16}", "MEAN");
    for i in 0..n {
        let col: Vec<f64> = rows.iter().map(|(_, v)| v[i]).collect();
        let _ = write!(out, "{:>16.4}", mean(&col));
    }
    let _ = writeln!(out);
    out
}

/// Pretty-prints a figure as aligned columns.
pub fn print_table(title: &str, header: &[&str], rows: &[(String, Vec<f64>)]) {
    print!("{}", format_table(title, header, rows));
}

/// Traffic-class byte breakdown of one run, normalized to data bytes.
pub fn traffic_breakdown(stats: &SimStats) -> Vec<(&'static str, f64)> {
    let data = stats.traffic.data_bytes().max(1) as f64;
    TrafficClass::ALL
        .iter()
        .filter(|c| !matches!(c, TrafficClass::Data))
        .map(|&c| (c.label(), stats.traffic.class_total(c) as f64 / data))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn normalized_ipc_definition() {
        let base = SimStats {
            cycles: 100,
            ..SimStats::default()
        };
        let slow = SimStats {
            cycles: 200,
            ..SimStats::default()
        };
        assert!((normalized_ipc(&slow, &base) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_length_names_get_distinct_seeds_and_traces() {
        // Regression: the old `0xBEEF ^ name.len()` seed collapsed every
        // same-length pair of benchmark names onto one trace.
        assert_ne!(trace_seed("bfs"), trace_seed("spm"));
        let mut a = scaled_suite(0.02).remove(0);
        let mut b = a.clone();
        a.name = "aaa";
        b.name = "bbb";
        let ta = a.generate(trace_seed(a.name));
        let tb = b.generate(trace_seed(b.name));
        let events = |t: &gpu_mem_sim::ContextTrace| -> Vec<gpu_types::MemEvent> {
            t.all_events().copied().collect()
        };
        assert_ne!(
            events(&ta),
            events(&tb),
            "same-length names must yield different traces"
        );
    }

    #[test]
    fn scaled_suite_scales() {
        let full = scaled_suite(1.0);
        let small = scaled_suite(0.1);
        assert_eq!(full.len(), small.len());
        assert!(small[0].events_per_kernel < full[0].events_per_kernel);
    }
}
