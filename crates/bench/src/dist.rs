//! Distributed suite sweeps: the bench-side wiring of `sim-dist`.
//!
//! `sim-dist` moves opaque `(label, payload)` strings; this module owns
//! the payload encoding.  A [`SimJob`] names a benchmark profile, its
//! (scaled) event count, its trace seed and a design point — everything a
//! worker on another host needs to reproduce the exact simulation the
//! local pool would have run.  Results travel back as the same JSON
//! encoding the crash-consistency journal uses, so distributed results
//! are byte-identical to local ones and land in the same journals.
//!
//! The coordinator/worker hello exchanges [`dist_config_hash`], a digest
//! of the protocol version, the benchmark suite, the design-point list
//! and the GPU geometry — deliberately *scale-independent* (per-job event
//! counts ride in the payload), so one running worker fleet serves sweeps
//! at any `--scale`.

use std::collections::BTreeMap;
use std::path::Path;

use gpu_mem_sim::{DesignPoint, Simulator};
use gpu_types::{GpuConfig, SimStats};
use shm_recovery::{
    config_hash, CkptOutcome, CoordinatorCheckpoint, JobJournal, JournalCodec, RecoveryError,
};
use shm_workloads::BenchmarkProfile;
use sim_dist::protocol::PROTOCOL_VERSION;
use sim_dist::{
    run_worker, Coordinator, DistError, DistEvent, DistJob, DistOptions, DistReport, JobTiming,
    WorkerOptions, WorkerStats, WorkerSummary, DIST_WORKERS_ENV,
};
use sim_exec::{effective_jobs, CancelToken, JobPanic, LabelledPanic, SweepError};

use crate::{scaled_suite, suite_pairs, trace_seed, BenchRow, JournaledSuite};

/// One simulation job in transportable form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimJob {
    /// Benchmark profile name (must exist in the worker's suite).
    pub bench: String,
    /// Scaled event count the coordinator resolved for this sweep.
    pub events_per_kernel: u64,
    /// Trace seed (normally `trace_seed(bench)`, but `shm sweep` can pin
    /// its own).
    pub seed: u64,
    /// Design point name (must exist in `DesignPoint::ALL`).
    pub design: String,
}

impl SimJob {
    /// Wire encoding.  Benchmark and design names are static identifiers
    /// (no quotes or backslashes), so plain JSON formatting is exact.
    pub fn encode(&self) -> String {
        format!(
            "{{\"bench\":\"{}\",\"events\":{},\"seed\":{},\"design\":\"{}\"}}",
            self.bench, self.events_per_kernel, self.seed, self.design
        )
    }

    /// Parses [`SimJob::encode`] output.
    pub fn decode(payload: &str) -> Option<Self> {
        let field = |key: &str| -> Option<&str> {
            let pat = format!("\"{key}\":");
            let rest = &payload[payload.find(&pat)? + pat.len()..];
            if let Some(stripped) = rest.strip_prefix('"') {
                Some(&stripped[..stripped.find('"')?])
            } else {
                let end = rest
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(rest.len());
                Some(&rest[..end])
            }
        };
        Some(SimJob {
            bench: field("bench")?.to_string(),
            events_per_kernel: field("events")?.parse().ok()?,
            seed: field("seed")?.parse().ok()?,
            design: field("design")?.parse().ok()?,
        })
    }

    /// Runs the simulation this job describes, exactly as the local pool
    /// would (same config, same trace generation, same seed).
    ///
    /// # Panics
    ///
    /// Panics on an unknown benchmark or design name — on a worker that
    /// panic is captured and reported back as the job's failure.
    pub fn run(&self) -> SimStats {
        let mut profile = BenchmarkProfile::by_name(&self.bench)
            .unwrap_or_else(|| panic!("unknown benchmark '{}' in dist job", self.bench));
        profile.events_per_kernel = self.events_per_kernel;
        let design = DesignPoint::from_name(&self.design)
            .unwrap_or_else(|| panic!("unknown design '{}' in dist job", self.design));
        let cfg = GpuConfig::default();
        let trace = profile.generate(self.seed);
        Simulator::new(&cfg, design).run(&trace)
    }
}

/// The job handler a sweep worker runs: decode, simulate, encode.
/// Panics (undecodable payloads, unknown names, simulator bugs) are
/// captured by the worker loop and surface as labelled job failures.
pub fn dist_worker_handler(label: &str, payload: &str) -> String {
    let job = SimJob::decode(payload)
        .unwrap_or_else(|| panic!("undecodable dist job payload for '{label}'"));
    let stats = job.run();
    let mut out = String::new();
    stats.encode_journal(&mut out);
    out
}

/// Config hash for the coordinator/worker hello: protocol version, suite
/// composition, design list and GPU geometry.  Scale-independent — event
/// counts travel per-job — so one worker fleet serves any `--scale`.
pub fn dist_config_hash() -> u64 {
    let cfg = GpuConfig::default();
    let mut parts: Vec<String> = vec![format!("dist-protocol:{PROTOCOL_VERSION}")];
    parts.extend(
        BenchmarkProfile::suite()
            .iter()
            .map(|p| format!("bench:{}", p.name)),
    );
    parts.extend(
        DesignPoint::ALL
            .iter()
            .map(|d| format!("design:{}", d.name())),
    );
    parts.push(format!(
        "geometry:{}sm:{}part:{}banks:{}B-l2:{}B-interleave",
        cfg.num_sms,
        cfg.num_partitions,
        cfg.l2_banks_per_partition,
        cfg.l2_bank_bytes,
        cfg.interleave_bytes
    ));
    let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    config_hash(&refs)
}

/// Runs a worker process serving [`dist_worker_handler`] until the
/// coordinator shuts the sweep down (the `shm worker --connect` loop).
///
/// # Errors
///
/// [`DistError`] when the coordinator is unreachable, rejects the hello,
/// or the connection cannot be re-established within the backoff budget.
pub fn serve_worker(addr: &str, opts: WorkerOptions) -> Result<WorkerSummary, DistError> {
    run_worker(addr, dist_config_hash(), opts, dist_worker_handler)
}

/// How a `--dist` sweep is set up.
#[derive(Clone, Debug)]
pub struct DistSweepConfig {
    /// Address the coordinator binds (port 0 = OS-assigned, loopback
    /// clusters read it back).
    pub bind: String,
    /// In-process loopback workers to spawn for the duration of the sweep
    /// (from `SHM_DIST_WORKERS`); 0 means external workers only.
    pub self_workers: usize,
    /// Cluster tunables.
    pub opts: DistOptions,
}

impl DistSweepConfig {
    /// A config binding `bind`, with `SHM_DIST_WORKERS` self workers and
    /// cluster tunables (heartbeat miss window) from the environment.
    pub fn from_env(bind: &str) -> Self {
        Self {
            bind: bind.to_string(),
            self_workers: self_workers_from_env(),
            opts: DistOptions::from_env(),
        }
    }
}

/// Parses `SHM_DIST_WORKERS`: unset or `0` means no self-spawned workers;
/// garbage warns and means 0 (mirrors the `SHM_JOBS` policy).
pub fn self_workers_from_env() -> usize {
    match std::env::var(DIST_WORKERS_ENV) {
        Err(_) => 0,
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!(
                    "warning: ignoring {DIST_WORKERS_ENV}={raw:?} (expected a \
                     non-negative integer); spawning no loopback workers"
                );
                0
            }
        },
    }
}

/// Per-sweep cluster accounting, surfaced in the flight recorder and on
/// stderr after a `--dist` run.
#[derive(Clone, Debug, Default)]
pub struct DistSummary {
    /// Per-worker stats in connection order (empty in degraded mode).
    pub workers: Vec<WorkerStats>,
    /// Jobs re-queued from dead workers.
    pub reassignments: u64,
    /// True when no worker was reachable and the sweep fell back to the
    /// local executor.
    pub degraded: bool,
    /// Distributed-trace id the coordinator minted (0 when degraded).
    pub trace_id: u64,
    /// Per-job observed timings, submission order (empty when degraded).
    pub timings: Vec<JobTiming>,
}

/// Why a distributed sweep failed.
#[derive(Debug)]
pub enum DistSweepError {
    /// Cluster-level failure (bind error, protocol violation, …).
    Cluster(DistError),
    /// One or more jobs failed on workers (labels attached).
    Sweep(SweepError),
    /// Journal trouble (journaled runs only).
    Recovery(RecoveryError),
    /// Cancelled before every job resolved (non-journaled runs only —
    /// journaled runs report interruption via [`JournaledSuite`]).
    Interrupted,
}

impl core::fmt::Display for DistSweepError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DistSweepError::Cluster(e) => write!(f, "distributed sweep failed: {e}"),
            DistSweepError::Sweep(e) => write!(f, "{e}"),
            DistSweepError::Recovery(e) => write!(f, "{e}"),
            DistSweepError::Interrupted => write!(f, "distributed sweep interrupted"),
        }
    }
}

impl std::error::Error for DistSweepError {}

impl From<SweepError> for DistSweepError {
    fn from(e: SweepError) -> Self {
        DistSweepError::Sweep(e)
    }
}

impl From<RecoveryError> for DistSweepError {
    fn from(e: RecoveryError) -> Self {
        DistSweepError::Recovery(e)
    }
}

/// Runs `jobs` on a cluster: binds the coordinator, spawns any loopback
/// self-workers, runs to completion, joins the self-workers.
///
/// # Errors
///
/// [`DistError::NoWorkers`] when nobody connected (callers degrade to
/// local execution), or any cluster-level failure.
pub fn run_dist_jobs<F>(
    jobs: Vec<DistJob>,
    cfg: &DistSweepConfig,
    token: &CancelToken,
    on_complete: F,
) -> Result<DistReport, DistError>
where
    F: FnMut(usize, &str, &sim_exec::JobResult<String>),
{
    let hash = dist_config_hash();
    let coord = Coordinator::bind(&cfg.bind, hash, cfg.opts.clone())?;
    let addr = coord.local_addr().to_string();

    let mut self_workers = Vec::new();
    // Split the machine's parallelism across the loopback workers so a
    // self-hosted cluster does not oversubscribe the cores.
    if let Some(per_worker) = effective_jobs(None).checked_div(cfg.self_workers) {
        let per_worker = per_worker.max(1);
        for i in 0..cfg.self_workers {
            let addr = addr.clone();
            let opts = WorkerOptions {
                worker_id: format!("local-{i}"),
                jobs: Some(per_worker),
                ..WorkerOptions::from_env()
            };
            self_workers.push(std::thread::spawn(move || {
                run_worker(&addr, hash, opts, dist_worker_handler)
            }));
        }
    }

    let result = coord.run_with(jobs, token, on_complete);
    for h in self_workers {
        let _ = h.join();
    }
    result
}

/// [`run_dist_jobs`] with the full coordinator event stream (dispatches,
/// resolutions, worker losses, quarantines) instead of just completions.
/// The checkpointed sweep and the chaos campaign build on this.
///
/// # Errors
///
/// Same contract as [`run_dist_jobs`].
pub fn run_dist_jobs_events<F>(
    jobs: Vec<DistJob>,
    cfg: &DistSweepConfig,
    token: &CancelToken,
    on_event: F,
) -> Result<DistReport, DistError>
where
    F: FnMut(&DistEvent),
{
    let hash = dist_config_hash();
    let coord = Coordinator::bind(&cfg.bind, hash, cfg.opts.clone())?;
    let addr = coord.local_addr().to_string();

    let mut self_workers = Vec::new();
    if let Some(per_worker) = effective_jobs(None).checked_div(cfg.self_workers) {
        let per_worker = per_worker.max(1);
        for i in 0..cfg.self_workers {
            let addr = addr.clone();
            let opts = WorkerOptions {
                worker_id: format!("local-{i}"),
                jobs: Some(per_worker),
                ..WorkerOptions::from_env()
            };
            self_workers.push(std::thread::spawn(move || {
                run_worker(&addr, hash, opts, dist_worker_handler)
            }));
        }
    }

    let result = coord.run_with_events(jobs, token, on_event);
    for h in self_workers {
        let _ = h.join();
    }
    result
}

pub(crate) fn suite_dist_jobs(
    designs: &[DesignPoint],
    scale: f64,
) -> (
    Vec<BenchmarkProfile>,
    Vec<(usize, DesignPoint)>,
    Vec<DistJob>,
) {
    let profiles = scaled_suite(scale);
    let (_, pairs) = suite_pairs(designs, &profiles);
    let jobs = pairs
        .iter()
        .map(|&(p, d)| DistJob {
            label: format!("{} under {}", profiles[p].name, d.name()),
            payload: SimJob {
                bench: profiles[p].name.to_string(),
                events_per_kernel: profiles[p].events_per_kernel,
                seed: trace_seed(profiles[p].name),
                design: d.name().to_string(),
            }
            .encode(),
        })
        .collect();
    (profiles, pairs, jobs)
}

pub(crate) fn assemble_rows(
    profiles: &[BenchmarkProfile],
    pairs: &[(usize, DesignPoint)],
    stats: Vec<SimStats>,
) -> Vec<BenchRow> {
    let mut rows: Vec<BenchRow> = profiles
        .iter()
        .map(|p| BenchRow {
            name: p.name.to_string(),
            stats: BTreeMap::new(),
        })
        .collect();
    for (&(p, d), s) in pairs.iter().zip(stats) {
        rows[p].stats.insert(d.name(), s);
    }
    rows
}

fn decode_or_fail(label: &str, index: usize, payload: &str) -> Result<SimStats, LabelledPanic> {
    SimStats::decode_journal(payload).ok_or_else(|| LabelledPanic {
        label: label.to_string(),
        panic: JobPanic {
            index,
            label: Some(label.to_string()),
            message: "worker returned an undecodable result payload".into(),
        },
    })
}

/// The distributed analogue of [`crate::try_run_suite_jobs`]: the full
/// `(benchmark × design)` cross product on a worker cluster, results
/// merged in submission order (byte-identical to `--jobs 1`).
///
/// When no worker is reachable the sweep degrades to the local executor
/// with a stderr warning ([`DistSummary::degraded`]).
///
/// # Errors
///
/// [`DistSweepError`] on cluster failures, labelled job failures, or
/// cancellation mid-sweep.
pub fn try_run_suite_dist(
    designs: &[DesignPoint],
    scale: f64,
    cfg: &DistSweepConfig,
) -> Result<(Vec<BenchRow>, DistSummary), DistSweepError> {
    let (profiles, pairs, jobs) = suite_dist_jobs(designs, scale);
    let labels: Vec<String> = jobs.iter().map(|j| j.label.clone()).collect();
    let token = CancelToken::new();

    match run_dist_jobs(jobs, cfg, &token, |_, _, _| {}) {
        Ok(report) => {
            let summary = DistSummary {
                workers: report.workers,
                reassignments: report.reassignments,
                degraded: false,
                trace_id: report.trace_id,
                timings: report.timings,
            };
            let mut stats = Vec::with_capacity(pairs.len());
            let mut failed = Vec::new();
            for (i, outcome) in report.results.into_iter().enumerate() {
                match outcome {
                    None => return Err(DistSweepError::Interrupted),
                    Some(Ok(payload)) => match decode_or_fail(&labels[i], i, &payload) {
                        Ok(s) => stats.push(s),
                        Err(lp) => failed.push(lp),
                    },
                    Some(Err(p)) => failed.push(LabelledPanic {
                        label: labels[i].clone(),
                        panic: p,
                    }),
                }
            }
            if !failed.is_empty() {
                return Err(SweepError { failed }.into());
            }
            Ok((assemble_rows(&profiles, &pairs, stats), summary))
        }
        Err(DistError::NoWorkers) => {
            eprintln!(
                "warning: no distributed worker reachable; running the sweep \
                 on the local executor"
            );
            let rows =
                crate::try_run_suite_jobs(designs, scale, None).map_err(DistSweepError::Sweep)?;
            Ok((
                rows,
                DistSummary {
                    degraded: true,
                    ..DistSummary::default()
                },
            ))
        }
        Err(e) => Err(DistSweepError::Cluster(e)),
    }
}

/// The distributed analogue of [`crate::try_run_suite_journaled`]: jobs
/// already journaled are skipped, missing jobs run on the cluster, and
/// each completion is appended to the journal *with the producing
/// worker's identity*.  The journal hash matches the local path's, so a
/// sweep may be started locally, resumed distributed, and vice versa.
///
/// # Errors
///
/// [`DistSweepError`] on journal, cluster, or job failures.  An
/// interrupted sweep is *not* an error: rows come back `None` with
/// everything completed so far journaled, like the local path.
pub fn try_run_suite_dist_journaled(
    figure: &str,
    designs: &[DesignPoint],
    scale: f64,
    cfg: &DistSweepConfig,
    journal_dir: &Path,
    crash_after_jobs: Option<usize>,
) -> Result<(JournaledSuite, DistSummary), DistSweepError> {
    let (profiles, pairs, all_jobs) = suite_dist_jobs(designs, scale);

    // Same hash recipe as the local journaled path, so --dist composes
    // with --resume in either direction.
    let mut parts: Vec<String> = vec![figure.to_string()];
    parts.extend(
        profiles
            .iter()
            .map(|p| format!("{}:{}", p.name, p.events_per_kernel)),
    );
    parts.extend(pairs.iter().map(|&(_, d)| d.name().to_string()));
    let part_refs: Vec<&str> = parts.iter().map(String::as_str).collect();

    std::fs::create_dir_all(journal_dir).map_err(RecoveryError::Io)?;
    let journal_path = journal_dir.join(format!("{figure}.jsonl"));
    let mut journal =
        JobJournal::open(&journal_path, config_hash(&part_refs)).map_err(DistSweepError::from)?;

    let mut results: Vec<Option<SimStats>> = Vec::with_capacity(pairs.len());
    let mut missing: Vec<usize> = Vec::new();
    let mut reused = 0usize;
    for (i, job) in all_jobs.iter().enumerate() {
        match journal.get::<SimStats>(&job.label) {
            Some(s) => {
                reused += 1;
                results.push(Some(s));
            }
            None => {
                missing.push(i);
                results.push(None);
            }
        }
    }

    let mut summary = DistSummary::default();
    let mut executed = 0usize;
    let mut failed: Vec<LabelledPanic> = Vec::new();
    if !missing.is_empty() {
        let jobs: Vec<DistJob> = missing.iter().map(|&i| all_jobs[i].clone()).collect();
        let labels: Vec<String> = jobs.iter().map(|j| j.label.clone()).collect();
        let token = CancelToken::new();
        let mut appended = 0usize;
        let mut io_error: Option<std::io::Error> = None;
        let mut decoded: Vec<Option<SimStats>> = (0..missing.len()).map(|_| None).collect();

        let run = run_dist_jobs(jobs, cfg, &token, |j, worker, outcome| {
            if let Ok(payload) = outcome {
                match decode_or_fail(&labels[j], missing[j], payload) {
                    Ok(stats) => {
                        if io_error.is_none() {
                            match journal.record_with_worker(&labels[j], Some(worker), &stats) {
                                Ok(()) => {
                                    appended += 1;
                                    if crash_after_jobs == Some(appended) {
                                        token.cancel();
                                    }
                                }
                                Err(e) => {
                                    io_error = Some(e);
                                    token.cancel();
                                }
                            }
                        }
                        decoded[j] = Some(stats);
                    }
                    Err(lp) => failed.push(lp),
                }
            }
        });

        match run {
            Ok(report) => {
                if let Some(e) = io_error {
                    return Err(DistSweepError::Recovery(RecoveryError::Io(e)));
                }
                summary.workers = report.workers;
                summary.reassignments = report.reassignments;
                summary.trace_id = report.trace_id;
                summary.timings = report.timings;
                for (j, outcome) in report.results.iter().enumerate() {
                    match outcome {
                        None => {} // cancelled before dispatch: stays missing
                        Some(Ok(_)) => {
                            if let Some(stats) = decoded[j].take() {
                                executed += 1;
                                results[missing[j]] = Some(stats);
                            }
                        }
                        Some(Err(p)) => failed.push(LabelledPanic {
                            label: labels[j].clone(),
                            panic: p.clone(),
                        }),
                    }
                }
            }
            Err(DistError::NoWorkers) => {
                eprintln!(
                    "warning: no distributed worker reachable; resuming the \
                     journaled sweep on the local executor"
                );
                drop(journal);
                let suite = crate::try_run_suite_journaled(
                    figure,
                    designs,
                    scale,
                    None,
                    journal_dir,
                    crash_after_jobs,
                )?;
                return Ok((
                    suite,
                    DistSummary {
                        degraded: true,
                        ..DistSummary::default()
                    },
                ));
            }
            Err(e) => return Err(DistSweepError::Cluster(e)),
        }
    }
    if !failed.is_empty() {
        return Err(SweepError { failed }.into());
    }

    let complete: Option<Vec<SimStats>> = results.into_iter().collect();
    let rows = complete.map(|stats| assemble_rows(&profiles, &pairs, stats));
    Ok((
        JournaledSuite {
            rows,
            reused,
            executed,
            completed_labels: journal
                .completed_labels()
                .into_iter()
                .map(str::to_string)
                .collect(),
            journal_path,
        },
        summary,
    ))
}

/// What a checkpoint-backed distributed sweep produced.
#[derive(Clone, Debug)]
pub struct CheckpointedSuite {
    /// Merged rows, `None` when the coordinator "crashed" (was cancelled)
    /// before every job resolved — resume by calling again with the same
    /// checkpoint path.
    pub rows: Option<Vec<BenchRow>>,
    /// Jobs replayed from the checkpoint instead of re-run.
    pub reused: usize,
    /// Jobs resolved by the cluster in this invocation.
    pub executed: usize,
}

/// The crash-resumable distributed sweep: every dispatch, resolution and
/// quarantine is appended to a [`CoordinatorCheckpoint`] as it happens,
/// group-committed every `flush_every` records.  A coordinator killed
/// mid-sweep (simulated here by `crash_after_resolves` tripping the
/// cancel token) restarts with the same checkpoint path, replays resolved
/// jobs byte-for-byte, re-dispatches only the rest, and renders merged
/// tables identical to an uninterrupted run.
///
/// # Errors
///
/// [`DistSweepError`] on checkpoint, cluster, or job failures.  An
/// interrupted sweep is *not* an error: [`CheckpointedSuite::rows`] comes
/// back `None` with progress durably checkpointed.
pub fn try_run_suite_dist_checkpointed(
    designs: &[DesignPoint],
    scale: f64,
    cfg: &DistSweepConfig,
    ckpt_path: &Path,
    flush_every: usize,
    crash_after_resolves: Option<usize>,
) -> Result<(CheckpointedSuite, DistSummary), DistSweepError> {
    let (profiles, pairs, all_jobs) = suite_dist_jobs(designs, scale);

    // The checkpoint guard hashes the exact job list (labels + payloads),
    // so indexes in the file can never be replayed against a different
    // sweep shape or scale.
    let mut parts: Vec<String> = vec!["dist-checkpoint".to_string()];
    for job in &all_jobs {
        parts.push(format!("{}={}", job.label, job.payload));
    }
    let part_refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    let mut ckpt = CoordinatorCheckpoint::open(ckpt_path, config_hash(&part_refs), flush_every)
        .map_err(DistSweepError::from)?;

    let mut results: Vec<Option<JobPanicOrStats>> = Vec::with_capacity(all_jobs.len());
    let mut missing: Vec<usize> = Vec::new();
    let mut reused = 0usize;
    let mut failed: Vec<LabelledPanic> = Vec::new();
    for (i, job) in all_jobs.iter().enumerate() {
        match ckpt.resolved().get(&(i as u64)) {
            Some(CkptOutcome::Ok { payload, .. }) => {
                match decode_or_fail(&job.label, i, payload) {
                    Ok(s) => results.push(Some(JobPanicOrStats::Stats(Box::new(s)))),
                    Err(lp) => {
                        failed.push(lp);
                        results.push(None);
                    }
                }
                reused += 1;
            }
            Some(CkptOutcome::Failed { label }) => {
                results.push(Some(JobPanicOrStats::Panic(label.clone())));
                reused += 1;
            }
            None => {
                missing.push(i);
                results.push(None);
            }
        }
    }

    let mut summary = DistSummary::default();
    let mut executed = 0usize;
    let mut interrupted = false;
    if !missing.is_empty() {
        let jobs: Vec<DistJob> = missing.iter().map(|&i| all_jobs[i].clone()).collect();
        let labels: Vec<String> = jobs.iter().map(|j| j.label.clone()).collect();
        let token = CancelToken::new();
        let mut resolves = 0usize;
        let mut io_error: Option<std::io::Error> = None;

        let run = run_dist_jobs_events(jobs, cfg, &token, |ev| {
            if io_error.is_some() {
                return;
            }
            let io = match ev {
                DistEvent::Dispatched { index, worker, .. } => {
                    ckpt.record_assign(missing[*index] as u64, worker)
                }
                DistEvent::Resolved { index, outcome, .. } => {
                    let rec = match outcome {
                        Ok(payload) => CkptOutcome::Ok {
                            payload: payload.clone(),
                            run_ns: 0,
                        },
                        Err(p) => CkptOutcome::Failed {
                            label: p.message.clone(),
                        },
                    };
                    let r = ckpt.record_resolve(missing[*index] as u64, &rec);
                    resolves += 1;
                    if crash_after_resolves == Some(resolves) {
                        // Simulated coordinator death: force the durable
                        // state down and stop taking results.
                        let _ = ckpt.flush();
                        token.cancel();
                    }
                    r
                }
                DistEvent::Quarantined { worker, reason, .. } => {
                    ckpt.record_quarantine(worker, reason)
                }
                DistEvent::WorkerLost { .. } => Ok(()),
            };
            if let Err(e) = io {
                io_error = Some(e);
                token.cancel();
            }
        });

        match run {
            Ok(report) => {
                if let Some(e) = io_error {
                    return Err(DistSweepError::Recovery(RecoveryError::Io(e)));
                }
                summary.workers = report.workers;
                summary.reassignments = report.reassignments;
                summary.trace_id = report.trace_id;
                summary.timings = report.timings;
                interrupted = report.interrupted;
                for (j, outcome) in report.results.into_iter().enumerate() {
                    match outcome {
                        None => {} // cancelled before dispatch: stays missing
                        Some(Ok(payload)) => {
                            match decode_or_fail(&labels[j], missing[j], &payload) {
                                Ok(s) => {
                                    executed += 1;
                                    results[missing[j]] = Some(JobPanicOrStats::Stats(Box::new(s)));
                                }
                                Err(lp) => failed.push(lp),
                            }
                        }
                        Some(Err(p)) => {
                            executed += 1;
                            results[missing[j]] = Some(JobPanicOrStats::Panic(p.message.clone()));
                        }
                    }
                }
            }
            Err(e) => return Err(DistSweepError::Cluster(e)),
        }
    }
    ckpt.flush().map_err(RecoveryError::Io)?;

    // Checkpointed failures (from this run or a replayed one) surface as
    // labelled sweep errors once the sweep is otherwise complete.
    for (i, r) in results.iter().enumerate() {
        if let Some(JobPanicOrStats::Panic(message)) = r {
            failed.push(LabelledPanic {
                label: all_jobs[i].label.clone(),
                panic: JobPanic {
                    index: i,
                    label: Some(all_jobs[i].label.clone()),
                    message: message.clone(),
                },
            });
        }
    }
    if !failed.is_empty() {
        return Err(SweepError { failed }.into());
    }

    let rows = if interrupted || results.iter().any(Option::is_none) {
        None
    } else {
        let stats: Vec<SimStats> = results
            .into_iter()
            .map(|r| match r {
                Some(JobPanicOrStats::Stats(s)) => *s,
                _ => unreachable!("failures already surfaced"),
            })
            .collect();
        Some(assemble_rows(&profiles, &pairs, stats))
    };
    Ok((
        CheckpointedSuite {
            rows,
            reused,
            executed,
        },
        summary,
    ))
}

/// Internal: a checkpointed job is either stats or a recorded failure.
enum JobPanicOrStats {
    Stats(Box<SimStats>),
    Panic(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_job_round_trips() {
        let job = SimJob {
            bench: "fdtd2d".into(),
            events_per_kernel: 4096,
            seed: trace_seed("fdtd2d"),
            design: "SHM".into(),
        };
        assert_eq!(SimJob::decode(&job.encode()), Some(job));
    }

    #[test]
    fn handler_reproduces_run_one_exactly() {
        let mut profile = BenchmarkProfile::by_name("fdtd2d").expect("in suite");
        profile.events_per_kernel = 4096;
        let local = {
            let cfg = GpuConfig::default();
            let trace = profile.generate(trace_seed("fdtd2d"));
            Simulator::new(&cfg, DesignPoint::Shm).run(&trace)
        };
        let job = SimJob {
            bench: "fdtd2d".into(),
            events_per_kernel: 4096,
            seed: trace_seed("fdtd2d"),
            design: "SHM".into(),
        };
        let wire = dist_worker_handler("fdtd2d under SHM", &job.encode());
        assert_eq!(SimStats::decode_journal(&wire), Some(local));
    }

    #[test]
    fn dist_config_hash_is_stable_across_calls() {
        assert_eq!(dist_config_hash(), dist_config_hash());
    }
}
