//! Fig. 12 bench: normalized IPC of the main secure-memory designs on a
//! representative memory-intensive benchmark (fdtd2d) plus a full small-scale
//! suite pass.  Criterion times one full simulation per design; the measured
//! statistic printed at the end of each run is the figure's data point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_mem_sim::{DesignPoint, Simulator};
use gpu_types::GpuConfig;
use shm_workloads::BenchmarkProfile;

fn bench_fig12(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let mut profile = BenchmarkProfile::by_name("fdtd2d").expect("profile exists");
    profile.events_per_kernel = 12_000;
    let trace = profile.generate(42);

    let mut group = c.benchmark_group("fig12_normalized_ipc");
    group.sample_size(10);
    for design in [
        DesignPoint::Unprotected,
        DesignPoint::Naive,
        DesignPoint::CommonCtr,
        DesignPoint::Pssm,
        DesignPoint::Shm,
        DesignPoint::ShmUpperBound,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(design.name()),
            &design,
            |b, &d| {
                b.iter(|| {
                    let stats = Simulator::new(&cfg, d).run(&trace);
                    std::hint::black_box(stats.cycles)
                })
            },
        );
    }
    group.finish();

    // Emit the figure's data series once, so `cargo bench` output contains
    // the reproduced numbers alongside the timings.
    let base = Simulator::new(&cfg, DesignPoint::Unprotected).run(&trace);
    println!("\nfig12 (fdtd2d) normalized IPC:");
    for design in [
        DesignPoint::Naive,
        DesignPoint::CommonCtr,
        DesignPoint::Pssm,
        DesignPoint::Shm,
        DesignPoint::ShmUpperBound,
    ] {
        let s = Simulator::new(&cfg, design).run(&trace);
        println!(
            "  {:<16} {:.4}",
            design.name(),
            base.cycles as f64 / s.cycles as f64
        );
    }
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
