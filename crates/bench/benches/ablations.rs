//! Ablation benches for the design choices DESIGN.md calls out:
//! tracker count, predictor sizes, chunk size (via ShmConfig), and the
//! dual-granularity-MAC on/off comparison on stream vs random traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_mem_sim::{DesignPoint, Simulator};
use gpu_types::{GpuConfig, ShmConfig};
use shm_workloads::micro;

fn bench_ablations(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let stream = micro::pure_stream_read(12 * 16 * 4096);
    let random = micro::pure_random_read(4 << 20, 20_000, 3);

    // Tracker-count ablation.
    let mut group = c.benchmark_group("ablation_tracker_count");
    group.sample_size(10);
    for trackers in [1usize, 4, 8, 16] {
        let shm_cfg = ShmConfig {
            num_trackers: trackers,
            ..ShmConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(trackers), &shm_cfg, |b, sc| {
            b.iter(|| {
                let sim = Simulator::new(&cfg, DesignPoint::Shm).with_shm_config(sc.clone());
                std::hint::black_box(sim.run(&random).stream_mispredictions)
            })
        });
    }
    group.finish();

    // Predictor-size ablation.
    let mut group = c.benchmark_group("ablation_predictor_entries");
    group.sample_size(10);
    for entries in [256usize, 1024, 4096] {
        let shm_cfg = ShmConfig {
            streaming_predictor_entries: entries,
            readonly_predictor_entries: entries / 2,
            ..ShmConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(entries), &shm_cfg, |b, sc| {
            b.iter(|| {
                let sim = Simulator::new(&cfg, DesignPoint::Shm).with_shm_config(sc.clone());
                std::hint::black_box(sim.run(&stream).traffic.metadata_bytes())
            })
        });
    }
    group.finish();

    // Dual-MAC on/off on pure-stream and pure-random traffic.
    let mut group = c.benchmark_group("ablation_dual_mac");
    group.sample_size(10);
    for (label, trace) in [("stream", &stream), ("random", &random)] {
        for design in [DesignPoint::ShmReadOnly, DesignPoint::Shm] {
            group.bench_with_input(BenchmarkId::new(label, design.name()), &design, |b, &d| {
                b.iter(|| {
                    std::hint::black_box(
                        Simulator::new(&cfg, d).run(trace).traffic.metadata_bytes(),
                    )
                })
            });
        }
    }
    group.finish();

    // Integrity-tree arity ablation (16-ary BMT vs 8-ary counter-tree vs
    // 4-ary): deeper trees cost more walk traffic on counter misses.
    let mut group = c.benchmark_group("ablation_tree_arity");
    group.sample_size(10);
    for arity in [4u64, 8, 16] {
        let gpu_cfg = GpuConfig {
            mdc: gpu_types::MdcConfig {
                tree_arity: arity,
                ..gpu_types::MdcConfig::default()
            },
            ..GpuConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(arity), &gpu_cfg, |b, gc| {
            b.iter(|| {
                std::hint::black_box(
                    Simulator::new(gc, DesignPoint::Pssm)
                        .run(&random)
                        .traffic
                        .class_total(gpu_types::TrafficClass::Bmt),
                )
            })
        });
    }
    group.finish();

    // MAC-width ablation (PSSM's 4 B truncated MACs vs the 8 B default):
    // truncation halves MAC bandwidth but falls below the Section III-C
    // birthday bound.
    let mut group = c.benchmark_group("ablation_mac_width");
    group.sample_size(10);
    for mac_bytes in [4u64, 8] {
        let gpu_cfg = GpuConfig {
            mdc: gpu_types::MdcConfig {
                mac_bytes_per_block: mac_bytes,
                ..gpu_types::MdcConfig::default()
            },
            ..GpuConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(mac_bytes), &gpu_cfg, |b, gc| {
            b.iter(|| {
                std::hint::black_box(
                    Simulator::new(gc, DesignPoint::Pssm)
                        .run(&stream)
                        .traffic
                        .class_total(gpu_types::TrafficClass::Mac),
                )
            })
        });
    }
    group.finish();

    // The summary sweeps below are independent simulations — run them on
    // the shared work-stealing pool (SHM_JOBS opts out).
    let pool = sim_exec::Executor::from_env();

    println!("\ntree-arity ablation (PSSM, random reads): BMT bytes");
    let arities = [4u64, 8, 16];
    let arity_stats = pool.map(&arities, |_, &arity| {
        let gpu_cfg = GpuConfig {
            mdc: gpu_types::MdcConfig {
                tree_arity: arity,
                ..gpu_types::MdcConfig::default()
            },
            ..GpuConfig::default()
        };
        Simulator::new(&gpu_cfg, DesignPoint::Pssm).run(&random)
    });
    for (arity, s) in arities.iter().zip(arity_stats) {
        let s = s.expect("arity ablation run");
        println!(
            "  arity {arity:<3} bmt={}  total_meta={}",
            s.traffic.class_total(gpu_types::TrafficClass::Bmt),
            s.traffic.metadata_bytes()
        );
    }

    println!("\nMAC-width ablation (PSSM, streaming reads): MAC bytes + security");
    let widths = [4u64, 8];
    let width_stats = pool.map(&widths, |_, &mac_bytes| {
        let gpu_cfg = GpuConfig {
            mdc: gpu_types::MdcConfig {
                mac_bytes_per_block: mac_bytes,
                ..gpu_types::MdcConfig::default()
            },
            ..GpuConfig::default()
        };
        Simulator::new(&gpu_cfg, DesignPoint::Pssm).run(&stream)
    });
    for (mac_bytes, s) in widths.iter().zip(width_stats) {
        let s = s.expect("MAC-width ablation run");
        let bits = (mac_bytes * 8) as u32;
        println!(
            "  {mac_bytes} B MAC: mac_traffic={}  birthday-resistant on 4 GB: {}",
            s.traffic.class_total(gpu_types::TrafficClass::Mac),
            shm_metadata::layout::mac_resists_birthday_attack(bits, 4 << 30)
        );
    }

    println!("\nablation summary (metadata bytes):");
    let pairs: Vec<(&str, &gpu_mem_sim::ContextTrace, DesignPoint)> =
        [("stream", &stream), ("random", &random)]
            .into_iter()
            .flat_map(|(label, trace)| {
                [DesignPoint::ShmReadOnly, DesignPoint::Shm]
                    .into_iter()
                    .map(move |design| (label, trace, design))
            })
            .collect();
    let pair_stats = pool.map(&pairs, |_, &(_, trace, design)| {
        Simulator::new(&cfg, design).run(trace)
    });
    for (&(label, _, design), s) in pairs.iter().zip(pair_stats) {
        let s = s.expect("ablation summary run");
        println!(
            "  {:<8} {:<14} metadata={}  fixup={}",
            label,
            design.name(),
            s.traffic.metadata_bytes(),
            s.traffic
                .class_total(gpu_types::TrafficClass::MispredictFixup)
        );
    }
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
