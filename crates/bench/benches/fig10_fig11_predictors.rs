//! Figs. 10/11 bench: hardware predictor accuracy against the oracle.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_mem_sim::{DesignPoint, Simulator};
use gpu_types::GpuConfig;
use shm_workloads::BenchmarkProfile;

fn bench_predictors(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let mut profile = BenchmarkProfile::by_name("backprop").expect("profile exists");
    profile.events_per_kernel = 12_000;
    let trace = profile.generate(42);

    c.bench_function("fig10_fig11_detected_shm_run", |b| {
        b.iter(|| {
            let (stats, ro, st) = Simulator::new(&cfg, DesignPoint::Shm).run_detailed(&trace);
            std::hint::black_box((stats.cycles, ro.correct, st.correct))
        })
    });

    println!("\nfig10/fig11 predictor accuracy per benchmark:");
    for p in BenchmarkProfile::suite() {
        let mut p = p;
        p.events_per_kernel = 8_000;
        let t = p.generate(42);
        let (_, ro, st) = Simulator::new(&cfg, DesignPoint::Shm).run_detailed(&t);
        println!(
            "  {:<16} read-only {:.3}   streaming {:.3}",
            p.name,
            ro.accuracy(),
            st.accuracy()
        );
    }
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);
