//! Fig. 16 bench: SHM vs SHM with the L2 as victim cache for metadata, on
//! the high-L2-miss-rate benchmarks the mechanism targets (lbm, sad).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_mem_sim::{DesignPoint, Simulator};
use gpu_types::GpuConfig;
use shm_workloads::BenchmarkProfile;

fn bench_fig16(c: &mut Criterion) {
    let cfg = GpuConfig::default();

    let mut group = c.benchmark_group("fig16_victim_l2");
    group.sample_size(10);
    for name in ["lbm", "sad"] {
        let mut profile = BenchmarkProfile::by_name(name).expect("profile exists");
        profile.events_per_kernel = 12_000;
        let trace = profile.generate(42);
        for design in [DesignPoint::Shm, DesignPoint::ShmVL2] {
            group.bench_with_input(BenchmarkId::new(name, design.name()), &design, |b, &d| {
                b.iter(|| std::hint::black_box(Simulator::new(&cfg, d).run(&trace).cycles))
            });
        }
    }
    group.finish();

    println!("\nfig16 normalized IPC (SHM vs SHM_vL2):");
    for name in ["lbm", "sad"] {
        let mut profile = BenchmarkProfile::by_name(name).expect("profile exists");
        profile.events_per_kernel = 12_000;
        let trace = profile.generate(42);
        let base = Simulator::new(&cfg, DesignPoint::Unprotected).run(&trace);
        let shm = Simulator::new(&cfg, DesignPoint::Shm).run(&trace);
        let vl2 = Simulator::new(&cfg, DesignPoint::ShmVL2).run(&trace);
        println!(
            "  {:<14} SHM {:.4}   SHM_vL2 {:.4}   (victim hits: {})",
            name,
            base.cycles as f64 / shm.cycles as f64,
            base.cycles as f64 / vl2.cycles as f64,
            vl2.victim_hits
        );
    }
}

criterion_group!(benches, bench_fig16);
criterion_main!(benches);
