//! Fig. 14 bench: security-metadata bandwidth overhead per design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_mem_sim::{DesignPoint, Simulator};
use gpu_types::GpuConfig;
use shm_workloads::BenchmarkProfile;

fn bench_fig14(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let mut profile = BenchmarkProfile::by_name("streamcluster").expect("profile exists");
    profile.events_per_kernel = 12_000;
    let trace = profile.generate(42);

    let designs = [
        DesignPoint::Naive,
        DesignPoint::CommonCtr,
        DesignPoint::Pssm,
        DesignPoint::ShmReadOnly,
        DesignPoint::Shm,
    ];

    let mut group = c.benchmark_group("fig14_bandwidth");
    group.sample_size(10);
    for design in designs {
        group.bench_with_input(
            BenchmarkId::from_parameter(design.name()),
            &design,
            |b, &d| {
                b.iter(|| {
                    let stats = Simulator::new(&cfg, d).run(&trace);
                    std::hint::black_box(stats.traffic.metadata_bytes())
                })
            },
        );
    }
    group.finish();

    println!("\nfig14 (streamcluster) bandwidth overhead (metadata/data):");
    for design in designs {
        let s = Simulator::new(&cfg, design).run(&trace);
        println!("  {:<16} {:.4}", design.name(), s.traffic.overhead_ratio());
    }
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
