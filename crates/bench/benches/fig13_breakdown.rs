//! Fig. 13 bench: performance impact of each optimisation, layered one at a
//! time (PSSM → +common counters → +read-only → +dual-MAC → +cctr).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_mem_sim::{DesignPoint, Simulator};
use gpu_types::GpuConfig;
use shm_workloads::BenchmarkProfile;

fn bench_fig13(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let mut profile = BenchmarkProfile::by_name("kmeans").expect("profile exists");
    profile.events_per_kernel = 12_000;
    let trace = profile.generate(42);

    let mut group = c.benchmark_group("fig13_breakdown");
    group.sample_size(10);
    for design in [
        DesignPoint::Pssm,
        DesignPoint::PssmCctr,
        DesignPoint::ShmReadOnly,
        DesignPoint::Shm,
        DesignPoint::ShmCctr,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(design.name()),
            &design,
            |b, &d| b.iter(|| std::hint::black_box(Simulator::new(&cfg, d).run(&trace).cycles)),
        );
    }
    group.finish();

    let base = Simulator::new(&cfg, DesignPoint::Unprotected).run(&trace);
    println!("\nfig13 (kmeans) normalized IPC:");
    for design in [
        DesignPoint::Pssm,
        DesignPoint::PssmCctr,
        DesignPoint::ShmReadOnly,
        DesignPoint::Shm,
        DesignPoint::ShmCctr,
    ] {
        let s = Simulator::new(&cfg, design).run(&trace);
        println!(
            "  {:<16} {:.4}",
            design.name(),
            base.cycles as f64 / s.cycles as f64
        );
    }
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
