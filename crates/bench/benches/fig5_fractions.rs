//! Fig. 5 bench: oracle classification of streaming / read-only access
//! fractions across the benchmark suite.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_types::GpuConfig;
use shm::OracleProfile;
use shm_workloads::BenchmarkProfile;

fn bench_fig5(c: &mut Criterion) {
    let map = GpuConfig::default().partition_map();
    let mut profile = BenchmarkProfile::by_name("fdtd2d").expect("profile exists");
    profile.events_per_kernel = 20_000;
    let trace = profile.generate(42);
    let events: Vec<_> = trace.all_events().cloned().collect();

    c.bench_function("fig5_oracle_profiling", |b| {
        b.iter(|| {
            let oracle = OracleProfile::from_trace(&events, map);
            std::hint::black_box((
                oracle.streaming_fraction(&events, map),
                oracle.read_only_fraction(&events, map),
            ))
        })
    });

    println!("\nfig5 fractions (streaming, read-only):");
    // Oracle profiling of each suite benchmark is independent — fan the
    // suite out on the work-stealing pool.
    let suite = BenchmarkProfile::suite();
    let rows = sim_exec::Executor::from_env().map(&suite, |_, p| {
        let mut p = p.clone();
        p.events_per_kernel = 8_000;
        let t = p.generate(42);
        let evs: Vec<_> = t.all_events().cloned().collect();
        let o = OracleProfile::from_trace(&evs, map);
        (
            p.name,
            o.streaming_fraction(&evs, map),
            o.read_only_fraction(&evs, map),
        )
    });
    for row in rows {
        let (name, st, ro) = row.expect("fig5 oracle run");
        println!("  {name:<16} {st:.3}  {ro:.3}");
    }
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
