//! Fig. 15 bench: normalized energy per instruction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_mem_sim::{DesignPoint, EnergyModel, Simulator};
use gpu_types::GpuConfig;
use shm_workloads::BenchmarkProfile;

fn bench_fig15(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let mut profile = BenchmarkProfile::by_name("lbm").expect("profile exists");
    profile.events_per_kernel = 12_000;
    let trace = profile.generate(42);
    let model = EnergyModel::default();

    let designs = [
        DesignPoint::Naive,
        DesignPoint::CommonCtr,
        DesignPoint::Pssm,
        DesignPoint::Shm,
    ];

    let mut group = c.benchmark_group("fig15_energy");
    group.sample_size(10);
    for design in designs {
        group.bench_with_input(
            BenchmarkId::from_parameter(design.name()),
            &design,
            |b, &d| {
                b.iter(|| {
                    let stats = Simulator::new(&cfg, d).run(&trace);
                    std::hint::black_box(model.total_pj(&stats))
                })
            },
        );
    }
    group.finish();

    let base = Simulator::new(&cfg, DesignPoint::Unprotected).run(&trace);
    println!("\nfig15 (lbm) normalized energy/instruction:");
    for design in designs {
        let s = Simulator::new(&cfg, design).run(&trace);
        println!(
            "  {:<16} {:.4}",
            design.name(),
            model.normalized_epi(&s, &base)
        );
    }
}

criterion_group!(benches, bench_fig15);
criterion_main!(benches);
