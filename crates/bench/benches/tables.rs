//! Table benches: Table VII measured utilisation and Table IX overheads,
//! plus the Table III/IV misprediction fix-up microbenchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_mem_sim::{DesignPoint, Simulator};
use gpu_types::{GpuConfig, ShmConfig};
use shm_workloads::{micro, BenchmarkProfile};

fn bench_tables(c: &mut Criterion) {
    let cfg = GpuConfig::default();

    // Table VII: baseline characterisation run.
    let mut profile = BenchmarkProfile::by_name("atax").expect("profile exists");
    profile.events_per_kernel = 12_000;
    let trace = profile.generate(42);
    c.bench_function("table7_baseline_characterisation", |b| {
        b.iter(|| {
            std::hint::black_box(
                Simulator::new(&cfg, DesignPoint::Unprotected)
                    .run(&trace)
                    .cycles,
            )
        })
    });

    // Tables III/IV: adversarial misprediction traces.
    let random = micro::pure_random_read(1 << 20, 20_000, 7);
    c.bench_function("table3_4_mispredict_fixups", |b| {
        b.iter(|| {
            let stats = Simulator::new(&cfg, DesignPoint::Shm).run(&random);
            std::hint::black_box(stats.stream_mispredictions)
        })
    });

    // Table IX is arithmetic; assert it during the bench for visibility.
    let shm = ShmConfig::default();
    println!(
        "\ntable9: total predictor storage = {} B over {} partitions",
        shm.total_storage_bytes(cfg.num_partitions),
        cfg.num_partitions
    );
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
