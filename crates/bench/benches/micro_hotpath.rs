//! Hot-path microbenches for the profile-guided optimizations: single-block
//! AES-128 across all three implementations (per-byte reference, T-tables,
//! AES-NI) and the simulator issue loop with batching on vs off.
//!
//! The AES-NI group is skipped with a notice when the host CPU lacks the
//! AES extension; the batched/unbatched pair must stay byte-identical in
//! results — only the wall time may differ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_mem_sim::{set_batch_issue, ContextTrace, DesignPoint, Simulator};
use gpu_types::GpuConfig;
use shm_crypto::aes::{aesni_available, reference, Aes128};

fn bench_aes_single_block(c: &mut Criterion) {
    let key = [0x42u8; 16];
    let pt = [0x5au8; 16];
    let aes = Aes128::new(key);
    let rk = reference::expand(key);

    let mut group = c.benchmark_group("aes_single_block");
    group.bench_function(BenchmarkId::from_parameter("reference"), |b| {
        b.iter(|| std::hint::black_box(reference::encrypt_block(&rk, pt)))
    });
    group.bench_function(BenchmarkId::from_parameter("ttable"), |b| {
        b.iter(|| std::hint::black_box(aes.encrypt_block_ttable(pt)))
    });
    if aesni_available() {
        group.bench_function(BenchmarkId::from_parameter("aesni"), |b| {
            b.iter(|| std::hint::black_box(aes.encrypt_block_aesni(pt).expect("aesni available")))
        });
    } else {
        println!("aes_single_block/aesni: skipped (host CPU lacks AES-NI)");
    }
    group.finish();

    // Sanity alongside the timings: all available paths agree.
    let want = reference::encrypt_block(&rk, pt);
    assert_eq!(aes.encrypt_block_ttable(pt), want);
    if let Some(hw) = aes.encrypt_block_aesni(pt) {
        assert_eq!(hw, want);
    }
}

/// A streaming-read kernel confined to one warp: the scheduler's next pick
/// is always the same SM, so the batched loop amortizes every heap
/// push/pop while the unbatched loop pays one per event.
fn single_warp_trace(n: u64) -> ContextTrace {
    use gpu_types::{AccessKind, MemEvent, PhysAddr};
    let events: Vec<MemEvent> = (0..n)
        .map(|i| MemEvent::global(PhysAddr::new(i * 32), AccessKind::Read))
        .collect();
    let mut trace = ContextTrace::new("single-warp-stream");
    trace
        .kernels
        .push(gpu_mem_sim::KernelTrace::new("stream", events));
    trace
}

fn bench_issue_loop(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let sim = Simulator::new(&cfg, DesignPoint::Shm);
    // Two scheduling extremes: 60 interleaved warps (runs degenerate to one
    // event, batching must not cost anything) and a single warp (maximal
    // run length, batching skips nearly every heap operation).
    let traces = [
        ("interleaved", ContextTrace::streaming_read_demo(16_384)),
        ("single_warp", single_warp_trace(16_384)),
    ];

    let mut group = c.benchmark_group("issue_loop");
    group.sample_size(10);
    for (shape, trace) in &traces {
        for (mode, batched) in [("unbatched", false), ("batched", true)] {
            group.bench_function(
                BenchmarkId::from_parameter(format!("{shape}/{mode}")),
                |b| {
                    set_batch_issue(batched);
                    b.iter(|| std::hint::black_box(sim.run(trace).cycles));
                    set_batch_issue(true);
                },
            );
        }
    }
    group.finish();

    // The two paths must agree exactly, not just statistically.
    for (shape, trace) in &traces {
        set_batch_issue(false);
        let unbatched = sim.run(trace);
        set_batch_issue(true);
        let batched = sim.run(trace);
        assert_eq!(unbatched, batched, "batched issue loop diverged on {shape}");
    }
}

criterion_group!(benches, bench_aes_single_block, bench_issue_loop);
criterion_main!(benches);
