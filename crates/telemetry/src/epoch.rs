//! Periodic per-epoch metric snapshots.
//!
//! Every recorded byte and counter tick is attributed to exactly one epoch
//! accumulator, and `finalize` flushes the last partial epoch, so the sum of
//! all snapshots equals the run's end-of-run [`TrafficBytes`] totals exactly —
//! the invariant the telemetry property test checks.

use gpu_types::{TrafficBytes, TrafficClass};
use std::fmt::Write as _;

use crate::event::json_escape;

/// Per-L2-partition activity inside one epoch (one entry per memory
/// partition that was touched; the vector grows on demand, so partitions
/// beyond the highest recorded index are implicitly all-zero).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartitionEpoch {
    /// DRAM bytes read through this partition during the epoch.
    pub read_bytes: u64,
    /// DRAM bytes written through this partition during the epoch.
    pub write_bytes: u64,
    /// L2 hits in this partition's banks during the epoch.
    pub l2_hits: u64,
    /// L2 misses in this partition's banks during the epoch.
    pub l2_misses: u64,
}

/// Metrics accumulated over one epoch window of the simulation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochSnapshot {
    /// Zero-based epoch number.
    pub index: u64,
    /// First cycle covered by this epoch (inclusive).
    pub start_cycle: u64,
    /// Last cycle observed inside this epoch.
    pub end_cycle: u64,
    /// DRAM bytes recorded during the epoch, per traffic class.
    pub traffic: TrafficBytes,
    /// Instructions retired during the epoch (IPC proxy numerator).
    pub instructions: u64,
    /// Warp-level memory accesses issued.
    pub accesses: u64,
    /// L2 hits during the epoch.
    pub l2_hits: u64,
    /// L2 misses during the epoch.
    pub l2_misses: u64,
    /// DRAM requests completed during the epoch.
    pub dram_requests: u64,
    /// Counter-cache lines evicted during the epoch (victim-policy tuning).
    pub ctr_victims: u64,
    /// Sum of per-line hit counts over those evicted counter lines — the
    /// hotness the MDC victim policy gave up by evicting them.
    pub ctr_victim_uses: u64,
    /// BMT authentication walks started during the epoch (counter misses).
    pub bmt_walks: u64,
    /// Sum of levels climbed over those walks (`sum / walks` = mean depth —
    /// how far up the tree misses travel before hitting a cached node).
    pub bmt_depth_sum: u64,
    /// Deepest single walk observed during the epoch.
    pub bmt_depth_max: u64,
    /// Pages migrated CPU→GPU during the epoch (heterogeneous-pool runs).
    pub pool_migrations: u64,
    /// Pages spilled GPU→CPU during the epoch.
    pub pool_spills: u64,
    /// Data accesses served by the CPU-side pool during the epoch.
    pub pool_cpu_accesses: u64,
    /// Bytes the coherent link carried toward the GPU pool this epoch.
    pub link_to_gpu_bytes: u64,
    /// Bytes the coherent link carried toward the CPU pool this epoch.
    pub link_to_cpu_bytes: u64,
    /// Per-partition traffic and L2 hit/miss breakdown (index = partition).
    pub partitions: Vec<PartitionEpoch>,
}

impl EpochSnapshot {
    /// The accumulator for partition `p`, growing the vector as needed.
    pub fn partition_mut(&mut self, p: usize) -> &mut PartitionEpoch {
        if self.partitions.len() <= p {
            self.partitions.resize(p + 1, PartitionEpoch::default());
        }
        &mut self.partitions[p]
    }
    /// Total bytes moved during the epoch, all classes.
    pub fn total_bytes(&self) -> u64 {
        TrafficClass::ALL
            .iter()
            .map(|&c| self.traffic.class_total(c))
            .sum()
    }

    /// L2 hit rate inside the epoch, or 0.0 with no lookups.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// Appends this snapshot as one JSON object line (no trailing newline).
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"type\":\"epoch\",\"index\":{},\"start_cycle\":{},\"end_cycle\":{}",
            self.index, self.start_cycle, self.end_cycle
        );
        for (dir, bytes) in [
            ("read_bytes", &self.traffic.read),
            ("write_bytes", &self.traffic.write),
        ] {
            let _ = write!(out, ",\"{dir}\":{{");
            for (i, class) in TrafficClass::ALL.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", json_escape(class.label()), bytes[i]);
            }
            out.push('}');
        }
        let _ = write!(
            out,
            ",\"instructions\":{},\"accesses\":{},\"l2_hits\":{},\"l2_misses\":{},\"dram_requests\":{},\"ctr_victims\":{},\"ctr_victim_uses\":{},\"bmt_walks\":{},\"bmt_depth_sum\":{},\"bmt_depth_max\":{}",
            self.instructions, self.accesses, self.l2_hits, self.l2_misses, self.dram_requests,
            self.ctr_victims, self.ctr_victim_uses, self.bmt_walks, self.bmt_depth_sum,
            self.bmt_depth_max
        );
        let _ = write!(
            out,
            ",\"pool_migrations\":{},\"pool_spills\":{},\"pool_cpu_accesses\":{},\"link_to_gpu_bytes\":{},\"link_to_cpu_bytes\":{}",
            self.pool_migrations, self.pool_spills, self.pool_cpu_accesses,
            self.link_to_gpu_bytes, self.link_to_cpu_bytes
        );
        out.push_str(",\"partitions\":[");
        for (i, p) in self.partitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"read_bytes\":{},\"write_bytes\":{},\"l2_hits\":{},\"l2_misses\":{}}}",
                p.read_bytes, p.write_bytes, p.l2_hits, p.l2_misses
            );
        }
        out.push_str("]}");
    }
}

/// Rolls epoch accumulators as simulated time advances.
#[derive(Clone, Debug)]
pub struct EpochTracker {
    epoch_cycles: u64,
    current: EpochSnapshot,
    snapshots: Vec<EpochSnapshot>,
    finalized: bool,
}

impl EpochTracker {
    /// Tracker with the given epoch length in cycles (clamped to >= 1).
    pub fn new(epoch_cycles: u64) -> Self {
        Self {
            epoch_cycles: epoch_cycles.max(1),
            current: EpochSnapshot::default(),
            snapshots: Vec::new(),
            finalized: false,
        }
    }

    /// Rolls to a new epoch whenever `cycle` passes the current boundary.
    ///
    /// Completion timestamps are not globally monotone (per-SM heaps), so a
    /// late-arriving earlier cycle never rolls back: activity is attributed
    /// to the epoch open at record time, which keeps totals exact.
    pub fn advance(&mut self, cycle: u64) {
        while cycle >= self.current.start_cycle + self.epoch_cycles {
            let next_start = self.current.start_cycle + self.epoch_cycles;
            let next_index = self.current.index + 1;
            self.current.end_cycle = self.current.end_cycle.max(next_start - 1);
            let done = std::mem::take(&mut self.current);
            self.snapshots.push(done);
            self.current.index = next_index;
            self.current.start_cycle = next_start;
            self.current.end_cycle = next_start;
        }
        self.current.end_cycle = self.current.end_cycle.max(cycle);
    }

    /// Accessor for the epoch currently accumulating.
    pub fn current_mut(&mut self) -> &mut EpochSnapshot {
        &mut self.current
    }

    /// Flushes the trailing partial epoch; further activity would be lost,
    /// so record nothing after calling this.
    pub fn finalize(&mut self, end_cycle: u64) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        self.current.end_cycle = self.current.end_cycle.max(end_cycle);
        let done = std::mem::take(&mut self.current);
        self.snapshots.push(done);
    }

    /// Completed snapshots (includes the final partial epoch after `finalize`).
    pub fn snapshots(&self) -> &[EpochSnapshot] {
        &self.snapshots
    }

    /// Sum of per-class traffic across all snapshots plus the open epoch.
    pub fn total_traffic(&self) -> TrafficBytes {
        let mut total = TrafficBytes::default();
        for s in &self.snapshots {
            total += s.traffic;
        }
        total += self.current.traffic;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_epochs_on_boundary() {
        let mut t = EpochTracker::new(100);
        t.advance(5);
        t.current_mut()
            .traffic
            .record(TrafficClass::Data, 64, false);
        t.advance(150);
        t.current_mut().traffic.record(TrafficClass::Mac, 32, true);
        t.advance(420);
        t.finalize(420);
        let snaps = t.snapshots();
        // Epochs 0..=4 cover cycles 0..500; intermediate empty epochs exist.
        assert_eq!(snaps.len(), 5);
        assert_eq!(snaps[0].traffic.read[TrafficClass::Data as usize], 64);
        assert_eq!(snaps[1].traffic.write[TrafficClass::Mac as usize], 32);
        assert_eq!(snaps[1].start_cycle, 100);
        assert_eq!(snaps[4].end_cycle, 420);
    }

    #[test]
    fn late_arrivals_do_not_roll_back() {
        let mut t = EpochTracker::new(10);
        t.advance(25);
        t.advance(3); // out-of-order completion
        t.current_mut().instructions += 7;
        t.finalize(25);
        let snaps = t.snapshots();
        assert_eq!(snaps.last().unwrap().instructions, 7);
        assert_eq!(snaps.last().unwrap().index, 2);
    }

    #[test]
    fn totals_survive_epoch_rolling() {
        let mut t = EpochTracker::new(7);
        let mut expect = TrafficBytes::default();
        for i in 0..500u64 {
            t.advance(i);
            let class = TrafficClass::ALL[(i % 5) as usize];
            let bytes = (i % 97) + 1;
            let is_write = i % 3 == 0;
            t.current_mut().traffic.record(class, bytes, is_write);
            expect.record(class, bytes, is_write);
        }
        t.finalize(500);
        assert_eq!(t.total_traffic(), expect);
        assert!(t.snapshots().len() > 2);
    }

    #[test]
    fn finalize_is_idempotent() {
        let mut t = EpochTracker::new(10);
        t.advance(4);
        t.finalize(4);
        t.finalize(4);
        assert_eq!(t.snapshots().len(), 1);
    }

    #[test]
    fn json_shape() {
        let mut s = EpochSnapshot {
            index: 1,
            start_cycle: 100,
            end_cycle: 199,
            instructions: 3,
            ..Default::default()
        };
        s.traffic.record(TrafficClass::Bmt, 64, false);
        let mut out = String::new();
        s.write_json(&mut out);
        assert!(out.starts_with("{\"type\":\"epoch\",\"index\":1,"));
        assert!(out.contains("\"bmt\":64"));
        assert!(out.contains("\"instructions\":3"));
        assert!(out.ends_with('}'));
    }
}
