//! Distributed trace spans for sweep jobs.
//!
//! A **trace** covers one sweep; it gets a root span plus one child span per
//! job.  Span ids are minted at submission (root = 1, job `i` = `i + 2`) so
//! a local `--jobs N` run and a `--dist` loopback run of the same sweep
//! produce the same span-tree *shape* even though timings differ.  Spans are
//! written to the JSONL telemetry document as `{"type":"span",...}` lines
//! and reconstructed by `shm trace-report`.

use crate::event::json_escape;
use std::fmt::Write as _;

/// Span id of the root span of every trace.
pub const ROOT_SPAN_ID: u64 = 1;

/// Span id for job `index` within its trace.
pub fn job_span_id(index: usize) -> u64 {
    index as u64 + 2
}

/// One completed span (all times are milliseconds relative to trace start).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Trace this span belongs to (minted once per sweep).
    pub trace_id: u64,
    /// Unique id within the trace.
    pub span_id: u64,
    /// Parent span id; `None` for the root.
    pub parent: Option<u64>,
    /// Human-readable label (job label, or the sweep name for the root).
    pub label: String,
    /// Worker that executed the span (`local` for in-process execution).
    pub worker: String,
    /// Start, relative to trace start (ms).
    pub start_ms: u64,
    /// End, relative to trace start (ms).
    pub end_ms: u64,
    /// Time spent queued before dispatch (ms).
    pub queue_ms: u64,
    /// Pure execution time as measured by the executing worker (ms).
    pub run_ms: u64,
    /// Simulated cycles covered by this span (0 when unknown).
    pub cycles: u64,
}

impl SpanEvent {
    /// Appends this span as one JSONL object line (no trailing newline),
    /// tagged with the document-wide `seq` and wall-clock `ts_ms`.
    pub fn write_json(&self, seq: u64, ts_ms: u64, out: &mut String) {
        let _ = write!(
            out,
            "{{\"type\":\"span\",\"trace\":{},\"span\":{},\"parent\":",
            self.trace_id, self.span_id
        );
        match self.parent {
            Some(p) => {
                let _ = write!(out, "{p}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"label\":\"{}\",\"worker\":\"{}\",\"start_ms\":{},\"end_ms\":{},\"queue_ms\":{},\"run_ms\":{},\"cycles\":{},\"seq\":{seq},\"ts_ms\":{ts_ms}}}",
            json_escape(&self.label),
            json_escape(&self.worker),
            self.start_ms,
            self.end_ms,
            self.queue_ms,
            self.run_ms,
            self.cycles,
        );
    }

    /// Parses one `{"type":"span",...}` JSONL line; `None` when the line is
    /// not a span record or is malformed.
    pub fn parse_json(line: &str) -> Option<SpanEvent> {
        if field_str(line, "type")? != "span" {
            return None;
        }
        Some(SpanEvent {
            trace_id: field_u64(line, "trace")?,
            span_id: field_u64(line, "span")?,
            parent: field_u64(line, "parent"),
            label: field_str(line, "label")?,
            worker: field_str(line, "worker")?,
            start_ms: field_u64(line, "start_ms")?,
            end_ms: field_u64(line, "end_ms")?,
            queue_ms: field_u64(line, "queue_ms")?,
            run_ms: field_u64(line, "run_ms")?,
            cycles: field_u64(line, "cycles")?,
        })
    }

    /// Span duration (end − start) in ms.
    pub fn duration_ms(&self) -> u64 {
        self.end_ms.saturating_sub(self.start_ms)
    }
}

/// Scans `line` for `"key":<u64>`; also used for nullable fields (`null`
/// simply fails to parse and yields `None`).
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let raw = field_raw(line, key)?;
    raw.parse().ok()
}

/// Scans `line` for `"key":"<string>"` and unescapes it.
fn field_str(line: &str, key: &str) -> Option<String> {
    let raw = field_raw(line, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let code: String = chars.by_ref().take(4).collect();
                let v = u32::from_str_radix(&code, 16).ok()?;
                out.push(char::from_u32(v)?);
            }
            Some(other) => out.push(other),
            None => return None,
        }
    }
    Some(out)
}

/// Returns the raw token after `"key":` up to the next unquoted `,` or `}`.
fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut end = rest.len();
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' | '}' if !in_quotes => {
                end = i;
                break;
            }
            _ => escaped = false,
        }
    }
    Some(&rest[..end])
}

/// Input for [`build_job_spans`]: one job's observed timing.
#[derive(Clone, Debug)]
pub struct JobSpanInput {
    /// Submission-order job index (fixes the span id).
    pub index: usize,
    /// Job label (bench/design name).
    pub label: String,
    /// Executing worker id (`local` for in-process jobs).
    pub worker: String,
    /// Dispatch time relative to trace start (ms); queue wait equals this
    /// because every job is submitted at trace start.
    pub dispatch_ms: u64,
    /// Completion time relative to trace start (ms).
    pub end_ms: u64,
    /// Worker-measured execution nanoseconds.
    pub run_ns: u64,
    /// Simulated cycles reported by the job (0 when unknown).
    pub cycles: u64,
}

/// Builds the canonical span tree for one sweep: a root span covering all
/// jobs plus one child span per job.  Used identically by the local executor
/// path and the distributed coordinator path, so both produce the same
/// tree shape.
pub fn build_job_spans(trace_id: u64, sweep_label: &str, jobs: &[JobSpanInput]) -> Vec<SpanEvent> {
    let end = jobs.iter().map(|j| j.end_ms).max().unwrap_or(0);
    let mut spans = Vec::with_capacity(jobs.len() + 1);
    spans.push(SpanEvent {
        trace_id,
        span_id: ROOT_SPAN_ID,
        parent: None,
        label: sweep_label.to_string(),
        worker: String::new(),
        start_ms: 0,
        end_ms: end,
        queue_ms: 0,
        run_ms: end,
        cycles: jobs.iter().map(|j| j.cycles).sum(),
    });
    for job in jobs {
        spans.push(SpanEvent {
            trace_id,
            span_id: job_span_id(job.index),
            parent: Some(ROOT_SPAN_ID),
            label: job.label.clone(),
            worker: job.worker.clone(),
            start_ms: job.dispatch_ms.min(job.end_ms),
            end_ms: job.end_ms,
            queue_ms: job.dispatch_ms.min(job.end_ms),
            run_ms: job.run_ns / 1_000_000,
            cycles: job.cycles,
        });
    }
    spans
}

/// Reconstructed view of one trace's spans.
#[derive(Debug)]
pub struct TraceReport {
    pub trace_id: u64,
    pub root: Option<SpanEvent>,
    /// Child spans sorted by span id (submission order).
    pub jobs: Vec<SpanEvent>,
}

impl TraceReport {
    /// Groups parsed spans by trace id (ascending).
    pub fn from_spans(mut spans: Vec<SpanEvent>) -> Vec<TraceReport> {
        spans.sort_by_key(|s| (s.trace_id, s.span_id));
        let mut reports: Vec<TraceReport> = Vec::new();
        for span in spans {
            if reports.last().map(|r| r.trace_id) != Some(span.trace_id) {
                reports.push(TraceReport {
                    trace_id: span.trace_id,
                    root: None,
                    jobs: Vec::new(),
                });
            }
            let report = reports.last_mut().unwrap();
            if span.parent.is_none() {
                report.root = Some(span);
            } else {
                report.jobs.push(span);
            }
        }
        reports
    }

    /// Wall time of the trace (root duration, or max child end).
    pub fn wall_ms(&self) -> u64 {
        match &self.root {
            Some(r) => r.duration_ms(),
            None => self.jobs.iter().map(|j| j.end_ms).max().unwrap_or(0),
        }
    }

    /// Sum of per-job queue waits and of worker-measured run times.
    pub fn queue_vs_run_ms(&self) -> (u64, u64) {
        let queue = self.jobs.iter().map(|j| j.queue_ms).sum();
        let run = self.jobs.iter().map(|j| j.run_ms).sum();
        (queue, run)
    }

    /// Total simulated cycles across all job spans.
    pub fn total_cycles(&self) -> u64 {
        self.jobs.iter().map(|j| j.cycles).sum()
    }

    /// The critical path: the job span that finishes last (it determines
    /// the trace's wall time in a fully parallel submission).
    pub fn critical_path(&self) -> Option<&SpanEvent> {
        self.jobs.iter().max_by_key(|j| j.end_ms)
    }

    /// Checks the structural invariants of this trace's span tree; returns
    /// every violation found (empty = consistent).
    pub fn check_invariants(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut seen = std::collections::HashSet::new();
        if let Some(root) = &self.root {
            seen.insert(root.span_id);
        } else {
            problems.push(format!("trace {}: no root span", self.trace_id));
        }
        for job in &self.jobs {
            if !seen.insert(job.span_id) {
                problems.push(format!("duplicate span id {}", job.span_id));
            }
            match (job.parent, &self.root) {
                (Some(p), Some(root)) if p != root.span_id => {
                    problems.push(format!("span {} parent {} is not the root", job.span_id, p));
                }
                _ => {}
            }
            if job.end_ms < job.start_ms {
                problems.push(format!("span {} ends before it starts", job.span_id));
            }
            if let Some(root) = &self.root {
                if job.end_ms > root.end_ms {
                    problems.push(format!("span {} outlives the root", job.span_id));
                }
            }
        }
        problems
    }

    /// Renders the human-readable report printed by `shm trace-report`.
    pub fn render(&self, top_n: usize) -> String {
        let mut out = String::new();
        let label = self.root.as_ref().map(|r| r.label.as_str()).unwrap_or("?");
        let _ = writeln!(
            out,
            "trace {:#018x}  sweep={}  jobs={}  wall={} ms",
            self.trace_id,
            label,
            self.jobs.len(),
            self.wall_ms()
        );
        let (queue, run) = self.queue_vs_run_ms();
        let _ = writeln!(
            out,
            "  queue-wait total: {queue} ms   run total: {run} ms   cycles: {}",
            self.total_cycles()
        );
        if let Some(cp) = self.critical_path() {
            let _ = writeln!(
                out,
                "  critical path: root -> {} (worker {}, ends at {} ms)",
                cp.label, cp.worker, cp.end_ms
            );
        }
        let mut by_run: Vec<&SpanEvent> = self.jobs.iter().collect();
        by_run.sort_by(|a, b| b.run_ms.cmp(&a.run_ms).then(a.span_id.cmp(&b.span_id)));
        let _ = writeln!(
            out,
            "  {:<6} {:<28} {:<12} {:>9} {:>9} {:>9} {:>12}",
            "span", "label", "worker", "queue_ms", "run_ms", "end_ms", "cycles"
        );
        for job in by_run.iter().take(top_n) {
            let _ = writeln!(
                out,
                "  {:<6} {:<28} {:<12} {:>9} {:>9} {:>9} {:>12}",
                job.span_id,
                truncate(&job.label, 28),
                truncate(&job.worker, 12),
                job.queue_ms,
                job.run_ms,
                job.end_ms,
                job.cycles
            );
        }
        if self.jobs.len() > top_n {
            let _ = writeln!(out, "  ... {} more spans", self.jobs.len() - top_n);
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SpanEvent {
        SpanEvent {
            trace_id: 0xfeed,
            span_id: 3,
            parent: Some(ROOT_SPAN_ID),
            label: "fdtd\"2d/SHM".into(),
            worker: "local-0".into(),
            start_ms: 4,
            end_ms: 17,
            queue_ms: 4,
            run_ms: 12,
            cycles: 987,
        }
    }

    #[test]
    fn span_json_round_trips() {
        let span = sample();
        let mut line = String::new();
        span.write_json(42, 1_700_000_000_000, &mut line);
        assert!(line.contains("\"type\":\"span\""));
        assert!(line.contains("\"seq\":42"));
        assert!(line.contains("\"ts_ms\":1700000000000"));
        let parsed = SpanEvent::parse_json(&line).expect("parses");
        assert_eq!(parsed, span);
    }

    #[test]
    fn root_span_parses_with_null_parent() {
        let root = SpanEvent {
            parent: None,
            ..sample()
        };
        let mut line = String::new();
        root.write_json(0, 0, &mut line);
        assert!(line.contains("\"parent\":null"));
        let parsed = SpanEvent::parse_json(&line).unwrap();
        assert_eq!(parsed.parent, None);
    }

    #[test]
    fn non_span_lines_are_rejected() {
        assert!(SpanEvent::parse_json("{\"type\":\"event\",\"cycle\":1}").is_none());
        assert!(SpanEvent::parse_json("not json").is_none());
    }

    #[test]
    fn build_job_spans_makes_one_root_plus_children() {
        let jobs = vec![
            JobSpanInput {
                index: 0,
                label: "a".into(),
                worker: "w0".into(),
                dispatch_ms: 1,
                end_ms: 10,
                run_ns: 8_000_000,
                cycles: 100,
            },
            JobSpanInput {
                index: 1,
                label: "b".into(),
                worker: "w1".into(),
                dispatch_ms: 2,
                end_ms: 20,
                run_ns: 17_000_000,
                cycles: 200,
            },
        ];
        let spans = build_job_spans(7, "fig16", &jobs);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].span_id, ROOT_SPAN_ID);
        assert_eq!(spans[0].end_ms, 20);
        assert_eq!(spans[0].cycles, 300);
        assert_eq!(spans[1].span_id, job_span_id(0));
        assert_eq!(spans[2].parent, Some(ROOT_SPAN_ID));

        let reports = TraceReport::from_spans(spans);
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        assert!(report.check_invariants().is_empty());
        assert_eq!(report.wall_ms(), 20);
        assert_eq!(report.queue_vs_run_ms(), (3, 25));
        assert_eq!(report.critical_path().unwrap().label, "b");
        let text = report.render(10);
        assert!(text.contains("critical path: root -> b"));
        assert!(text.contains("fig16"));
    }

    #[test]
    fn invariant_checker_flags_orphans_and_duplicates() {
        let mut spans = build_job_spans(9, "s", &[]);
        spans.push(SpanEvent {
            trace_id: 9,
            span_id: 5,
            parent: Some(99),
            ..sample()
        });
        spans.push(SpanEvent {
            trace_id: 9,
            span_id: 5,
            parent: Some(ROOT_SPAN_ID),
            end_ms: 0,
            start_ms: 3,
            ..sample()
        });
        let reports = TraceReport::from_spans(spans);
        let problems = reports[0].check_invariants();
        assert!(problems.iter().any(|p| p.contains("not the root")));
        assert!(problems.iter().any(|p| p.contains("duplicate")));
        assert!(problems.iter().any(|p| p.contains("ends before")));
    }
}
