//! Telemetry subsystem for the SHM simulator: structured tracing, per-epoch
//! metrics, and log-scaled latency histograms.
//!
//! The entry point is [`Probe`], a cheap cloneable handle threaded through the
//! simulation layers. A disabled probe (the default) is a `None` — every hook
//! is a single branch on the record path, so simulation results and, to within
//! noise, runtime are unchanged when telemetry is off.
//!
//! When enabled, a probe collects:
//! - structured [`Event`]s with cycle timestamps (sampled into the log,
//!   always kept in a bounded flight-recorder ring);
//! - [`Histogram`]s for DRAM request latency, MSHR residency and
//!   secure-engine pipeline depth;
//! - [`EpochSnapshot`]s every `epoch_cycles` of per-`TrafficClass` bandwidth,
//!   an IPC proxy, and cache hit rates.
//!
//! Sinks: [`sink::to_jsonl`] (machine-readable), [`sink::summary`]
//! (human-readable), and [`sink::flight_dump`] (last-K events for panic and
//! error paths, installed process-wide by [`Probe::install_panic_hook`]).

pub mod epoch;
pub mod event;
pub mod hist;
pub mod sink;
pub mod span;

pub use epoch::{EpochSnapshot, EpochTracker, PartitionEpoch};
pub use event::{Event, NUM_KINDS};
pub use hist::Histogram;
pub use span::SpanEvent;

/// Current wall-clock time as milliseconds since the Unix epoch.
pub fn wall_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

use gpu_types::TrafficClass;
use std::collections::VecDeque;
use std::path::Path;
use std::sync::{Arc, Mutex, TryLockError};

/// Knobs controlling collection granularity and memory bounds.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Epoch length in cycles for periodic metric snapshots.
    pub epoch_cycles: u64,
    /// Log every Nth high-frequency event (1 = log all). Low-frequency
    /// kinds (kernel boundaries, detector transitions) are never sampled
    /// out, and per-kind totals stay exact regardless of the stride.
    pub sample_stride: u64,
    /// Number of most-recent events retained in the flight recorder.
    pub ring_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            epoch_cycles: 10_000,
            sample_stride: 64,
            ring_capacity: 256,
        }
    }
}

/// Collected telemetry state for one simulation run.
pub struct Telemetry {
    cfg: TelemetryConfig,
    events: Vec<(u64, Event)>,
    /// `(seq, ts_ms)` tags parallel to `events` (same emission index).
    events_meta: Vec<(u64, u64)>,
    /// Completed trace spans (written to the document at finalize).
    spans: Vec<SpanEvent>,
    /// `(seq, ts_ms)` tags parallel to `spans`, assigned at emission.
    spans_meta: Vec<(u64, u64)>,
    /// Next document-wide monotonic sequence number; shared by event and
    /// span lines so interleaved multi-worker streams merge deterministically.
    next_seq: u64,
    ring: VecDeque<(u64, Event)>,
    kind_totals: [u64; NUM_KINDS],
    sampled_out: u64,
    /// DRAM request latency (issue to completion), cycles.
    pub dram_latency: Histogram,
    /// MSHR entry residency (allocation to fill), cycles.
    pub mshr_residency: Histogram,
    /// Secure-engine pipeline depth per request (DRAM round-trips).
    pub engine_depth: Histogram,
    epochs: EpochTracker,
    dram_requests: u64,
    /// Incremental JSONL sink: when attached, logged events stream out
    /// instead of accumulating in `events`, and epoch snapshots flush as
    /// they complete — memory stays bounded over arbitrarily long runs.
    stream: Option<Box<dyn std::io::Write + Send>>,
    stream_error: Option<String>,
    epochs_streamed: usize,
    stream_done: bool,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("events", &self.events.len())
            .field("epochs", &self.epochs.snapshots().len())
            .field("streaming", &self.stream.is_some())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// Fresh collection state.
    pub fn new(cfg: TelemetryConfig) -> Self {
        let epochs = EpochTracker::new(cfg.epoch_cycles);
        Self {
            cfg,
            events: Vec::new(),
            events_meta: Vec::new(),
            spans: Vec::new(),
            spans_meta: Vec::new(),
            next_seq: 0,
            ring: VecDeque::new(),
            kind_totals: [0; NUM_KINDS],
            sampled_out: 0,
            dram_latency: Histogram::new(),
            mshr_residency: Histogram::new(),
            engine_depth: Histogram::new(),
            epochs,
            dram_requests: 0,
            stream: None,
            stream_error: None,
            epochs_streamed: 0,
            stream_done: false,
        }
    }

    /// Attaches an incremental JSONL sink.  The `meta` line is written
    /// immediately; from here on, logged events are written straight to the
    /// sink (not retained in memory) and epoch snapshots flush as each one
    /// completes.  Histogram and drops lines follow at [`finalize`].
    /// Record types may interleave — JSONL consumers dispatch on `type`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error from writing the `meta` line, in which case no
    /// sink is attached.
    ///
    /// [`finalize`]: Telemetry::finalize
    pub fn attach_stream(
        &mut self,
        mut sink: Box<dyn std::io::Write + Send>,
    ) -> std::io::Result<()> {
        let mut line = String::new();
        sink::meta_json(&self.cfg, &mut line);
        line.push('\n');
        sink.write_all(line.as_bytes())?;
        self.stream = Some(sink);
        Ok(())
    }

    /// First error the stream sink hit, if any (the sink is dropped on
    /// error; collection continues in memory-less mode for events).
    pub fn stream_error(&self) -> Option<&str> {
        self.stream_error.as_deref()
    }

    /// Writes `line` (newline included) to the stream sink, dropping the
    /// sink and recording the error on failure.
    fn stream_write(&mut self, line: &str) {
        if let Some(w) = self.stream.as_mut() {
            if let Err(e) = w.write_all(line.as_bytes()) {
                self.stream_error = Some(e.to_string());
                self.stream = None;
            }
        }
    }

    /// Advances epoch time and flushes any snapshots that just completed to
    /// the stream sink.
    fn advance_epochs(&mut self, cycle: u64) {
        self.epochs.advance(cycle);
        if self.stream.is_some() {
            self.stream_completed_epochs();
        }
    }

    /// Streams every not-yet-written completed epoch snapshot.
    fn stream_completed_epochs(&mut self) {
        while self.epochs_streamed < self.epochs.snapshots().len() {
            let mut line = String::new();
            self.epochs.snapshots()[self.epochs_streamed].write_json(&mut line);
            line.push('\n');
            self.epochs_streamed += 1;
            self.stream_write(&line);
        }
    }

    /// Records a structured event at `cycle`.
    pub fn emit(&mut self, cycle: u64, event: Event) {
        self.advance_epochs(cycle);
        let idx = event.kind_index();
        self.kind_totals[idx] += 1;
        if self.ring.len() == self.cfg.ring_capacity.max(1) {
            self.ring.pop_front();
        }
        self.ring.push_back((cycle, event.clone()));
        // The first occurrence of each kind is always logged so sparse kinds
        // survive sampling; after that every stride-th occurrence is kept.
        let logged = event.is_low_frequency()
            || self.kind_totals[idx] % self.cfg.sample_stride.max(1) == 1
            || self.cfg.sample_stride <= 1;
        if logged {
            let seq = self.next_seq;
            self.next_seq += 1;
            let ts_ms = wall_ms();
            if self.stream.is_some() {
                let mut line = String::new();
                sink::event_json_tagged(&event, cycle, seq, ts_ms, &mut line);
                line.push('\n');
                self.stream_write(&line);
            } else {
                self.events.push((cycle, event));
                self.events_meta.push((seq, ts_ms));
            }
        } else {
            self.sampled_out += 1;
        }
    }

    /// Records one completed trace span.  Spans are buffered (even in
    /// streaming mode they are few and arrive at end of run) and written
    /// into the JSONL document at [`finalize`].
    ///
    /// [`finalize`]: Telemetry::finalize
    pub fn emit_span(&mut self, span: SpanEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.spans.push(span);
        self.spans_meta.push((seq, wall_ms()));
    }

    /// Attributes DRAM traffic through `partition` to the current epoch,
    /// both in the per-class totals and the per-partition breakdown.
    pub fn on_traffic(
        &mut self,
        cycle: u64,
        partition: usize,
        class: TrafficClass,
        bytes: u64,
        is_write: bool,
    ) {
        self.advance_epochs(cycle);
        let cur = self.epochs.current_mut();
        cur.traffic.record(class, bytes, is_write);
        let part = cur.partition_mut(partition);
        if is_write {
            part.write_bytes += bytes;
        } else {
            part.read_bytes += bytes;
        }
    }

    /// Records one completed DRAM request and its latency.
    pub fn on_dram_request(&mut self, cycle: u64, latency: u64) {
        self.advance_epochs(cycle);
        self.dram_requests += 1;
        self.epochs.current_mut().dram_requests += 1;
        self.dram_latency.record(latency);
    }

    /// Records how long an MSHR entry stayed allocated.
    pub fn on_mshr_residency(&mut self, cycles: u64) {
        self.mshr_residency.record(cycles);
    }

    /// Records the secure-engine pipeline depth for one request.
    pub fn on_engine_depth(&mut self, depth: u64) {
        self.engine_depth.record(depth);
    }

    /// Counts retired instructions toward the current epoch's IPC proxy.
    pub fn on_instructions(&mut self, cycle: u64, n: u64) {
        self.advance_epochs(cycle);
        self.epochs.current_mut().instructions += n;
    }

    /// Counts a warp-level memory access in the current epoch.
    pub fn on_access(&mut self, cycle: u64) {
        self.advance_epochs(cycle);
        self.epochs.current_mut().accesses += 1;
    }

    /// Counts an L2 hit in `partition` in the current epoch.
    pub fn on_l2_hit(&mut self, cycle: u64, partition: usize) {
        self.advance_epochs(cycle);
        let cur = self.epochs.current_mut();
        cur.l2_hits += 1;
        cur.partition_mut(partition).l2_hits += 1;
    }

    /// Counts an L2 miss in `partition` in the current epoch.
    pub fn on_l2_miss(&mut self, cycle: u64, partition: usize) {
        self.advance_epochs(cycle);
        let cur = self.epochs.current_mut();
        cur.l2_misses += 1;
        cur.partition_mut(partition).l2_misses += 1;
    }

    /// Records a counter-cache victim eviction: `uses` is how many lookup
    /// hits the evicted line had served (its hotness).
    pub fn on_ctr_victim(&mut self, cycle: u64, uses: u64) {
        self.advance_epochs(cycle);
        let cur = self.epochs.current_mut();
        cur.ctr_victims += 1;
        cur.ctr_victim_uses += uses;
    }

    /// Records one BMT authentication walk that climbed `depth` levels
    /// before terminating (at a cached node or the root).
    pub fn on_bmt_walk(&mut self, cycle: u64, depth: u64) {
        self.advance_epochs(cycle);
        let cur = self.epochs.current_mut();
        cur.bmt_walks += 1;
        cur.bmt_depth_sum += depth;
        cur.bmt_depth_max = cur.bmt_depth_max.max(depth);
    }

    /// Records one data access served by the CPU-side pool: `bytes` crossed
    /// the coherent link (toward the CPU for writes, the GPU for reads).
    pub fn on_pool_remote_access(&mut self, cycle: u64, bytes: u64, is_write: bool) {
        self.advance_epochs(cycle);
        let cur = self.epochs.current_mut();
        cur.pool_cpu_accesses += 1;
        if is_write {
            cur.link_to_cpu_bytes += bytes;
        } else {
            cur.link_to_gpu_bytes += bytes;
        }
    }

    /// Records one secure page migration: `to_gpu_bytes` promoted across the
    /// link, `to_cpu_bytes` spilled the other way to make room (0 = no
    /// eviction was needed).
    pub fn on_pool_migration(&mut self, cycle: u64, to_gpu_bytes: u64, to_cpu_bytes: u64) {
        self.advance_epochs(cycle);
        let cur = self.epochs.current_mut();
        cur.pool_migrations += 1;
        cur.link_to_gpu_bytes += to_gpu_bytes;
        if to_cpu_bytes > 0 {
            cur.pool_spills += 1;
            cur.link_to_cpu_bytes += to_cpu_bytes;
        }
    }

    /// Closes the run: flushes the trailing partial epoch and, when a
    /// stream sink is attached, its remaining snapshots plus the trailing
    /// histogram and drops lines.
    pub fn finalize(&mut self, end_cycle: u64) {
        self.epochs.finalize(end_cycle);
        if self.stream.is_some() && !self.stream_done {
            self.stream_done = true;
            self.stream_completed_epochs();
            let mut tail = String::new();
            for (span, (seq, ts_ms)) in self.spans.iter().zip(&self.spans_meta) {
                span.write_json(*seq, *ts_ms, &mut tail);
                tail.push('\n');
            }
            for (name, hist) in sink::named_histograms(self) {
                sink::hist_json(name, hist, &mut tail);
                tail.push('\n');
            }
            sink::drops_json(self, &mut tail);
            tail.push('\n');
            self.stream_write(&tail);
            if let Some(w) = self.stream.as_mut() {
                if let Err(e) = w.flush() {
                    self.stream_error = Some(e.to_string());
                    self.stream = None;
                }
            }
        }
    }

    /// Sampled event log, in emission order.
    pub fn events(&self) -> &[(u64, Event)] {
        &self.events
    }

    /// `(seq, ts_ms)` tags for the in-memory event log, parallel to
    /// [`Telemetry::events`].
    pub fn events_meta(&self) -> &[(u64, u64)] {
        &self.events_meta
    }

    /// Buffered trace spans, in emission order.
    pub fn spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    /// `(seq, ts_ms)` tags parallel to [`Telemetry::spans`].
    pub fn spans_meta(&self) -> &[(u64, u64)] {
        &self.spans_meta
    }

    /// Next unassigned document sequence number.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Most recent events (bounded ring), oldest first.
    pub fn flight_recorder(&self) -> impl Iterator<Item = &(u64, Event)> {
        self.ring.iter()
    }

    /// Exact per-kind emission totals (unaffected by sampling).
    pub fn kind_totals(&self) -> &[u64; NUM_KINDS] {
        &self.kind_totals
    }

    /// Number of high-frequency events sampled out of the log.
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// Completed epoch snapshots.
    pub fn snapshots(&self) -> &[EpochSnapshot] {
        self.epochs.snapshots()
    }

    /// Per-class traffic summed over every epoch (equals the run totals).
    pub fn total_traffic(&self) -> gpu_types::TrafficBytes {
        self.epochs.total_traffic()
    }

    /// DRAM requests completed over the whole run.
    pub fn dram_requests(&self) -> u64 {
        self.dram_requests
    }

    /// Collection configuration in effect.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }
}

impl Drop for Telemetry {
    /// Flushes whatever the stream sink has buffered.  No records are
    /// written here — a run dropped without [`Telemetry::finalize`] keeps
    /// its partial document on disk rather than losing the buffer tail,
    /// and a finalized run's flush is a no-op.
    fn drop(&mut self) {
        if let Some(w) = self.stream.as_mut() {
            let _ = w.flush();
        }
    }
}

/// Number of buffered hook records drained into [`Telemetry`] per block.
const HOOK_BLOCK: usize = 1024;

/// One recorded probe hook, queued by a buffered probe and replayed into
/// [`Telemetry`] in emission order at block drains.
#[derive(Clone, Debug)]
enum HookRecord {
    Emit {
        cycle: u64,
        event: Event,
    },
    Traffic {
        cycle: u64,
        partition: usize,
        class: TrafficClass,
        bytes: u64,
        is_write: bool,
    },
    DramRequest {
        cycle: u64,
        latency: u64,
    },
    MshrResidency {
        cycles: u64,
    },
    EngineDepth {
        depth: u64,
    },
    Instructions {
        cycle: u64,
        n: u64,
    },
    Access {
        cycle: u64,
    },
    L2Hit {
        cycle: u64,
        partition: usize,
    },
    L2Miss {
        cycle: u64,
        partition: usize,
    },
    CtrVictim {
        cycle: u64,
        uses: u64,
    },
    BmtWalk {
        cycle: u64,
        depth: u64,
    },
    PoolRemoteAccess {
        cycle: u64,
        bytes: u64,
        is_write: bool,
    },
    PoolMigration {
        cycle: u64,
        to_gpu_bytes: u64,
        to_cpu_bytes: u64,
    },
}

/// Cheap cloneable telemetry handle threaded through the simulator.
///
/// `Probe::default()` is disabled: every hook reduces to one `Option` check.
///
/// A probe made with [`Probe::buffered`] additionally carries a preallocated
/// hook buffer shared by all of its clones: hooks append one record and the
/// buffer drains into [`Telemetry`] a block at a time, so the per-hook cost
/// on the simulation hot path is a vector push instead of epoch accounting,
/// ring rotation, and (when streaming) per-event JSON formatting.  Replay
/// happens strictly in emission order, so collected state — including JSONL
/// sequence numbers — is identical to the unbuffered probe's.
#[derive(Clone, Default)]
pub struct Probe {
    inner: Option<Arc<Mutex<Telemetry>>>,
    buf: Option<Arc<Mutex<Vec<HookRecord>>>>,
}

impl std::fmt::Debug for Probe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Probe")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Probe {
    /// A probe that records nothing (zero-cost hooks).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A probe collecting into fresh state with `cfg`.
    pub fn enabled(cfg: TelemetryConfig) -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(Telemetry::new(cfg)))),
            buf: None,
        }
    }

    /// A handle over the same telemetry state whose hooks append to a
    /// preallocated block buffer instead of updating [`Telemetry`] directly.
    /// All clones of the returned probe share one buffer, so records from
    /// every simulator layer drain in global emission order.  Draining
    /// happens when a block fills and before any read through
    /// [`Probe::with`] (summaries, sinks, `finalize`), so readers never see
    /// stale state.  Disabled probes return a plain clone.
    pub fn buffered(&self) -> Self {
        if self.inner.is_none() {
            return self.clone();
        }
        Self {
            inner: self.inner.clone(),
            buf: Some(Arc::new(Mutex::new(Vec::with_capacity(HOOK_BLOCK)))),
        }
    }

    /// Locks a poisoned-tolerant mutex (telemetry must survive panics in
    /// instrumented code).
    fn lock_any<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        match m.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Applies one record to `t`.
    fn replay_one(t: &mut Telemetry, rec: HookRecord) {
        match rec {
            HookRecord::Emit { cycle, event } => t.emit(cycle, event),
            HookRecord::Traffic {
                cycle,
                partition,
                class,
                bytes,
                is_write,
            } => t.on_traffic(cycle, partition, class, bytes, is_write),
            HookRecord::DramRequest { cycle, latency } => t.on_dram_request(cycle, latency),
            HookRecord::MshrResidency { cycles } => t.on_mshr_residency(cycles),
            HookRecord::EngineDepth { depth } => t.on_engine_depth(depth),
            HookRecord::Instructions { cycle, n } => t.on_instructions(cycle, n),
            HookRecord::Access { cycle } => t.on_access(cycle),
            HookRecord::L2Hit { cycle, partition } => t.on_l2_hit(cycle, partition),
            HookRecord::L2Miss { cycle, partition } => t.on_l2_miss(cycle, partition),
            HookRecord::CtrVictim { cycle, uses } => t.on_ctr_victim(cycle, uses),
            HookRecord::BmtWalk { cycle, depth } => t.on_bmt_walk(cycle, depth),
            HookRecord::PoolRemoteAccess {
                cycle,
                bytes,
                is_write,
            } => t.on_pool_remote_access(cycle, bytes, is_write),
            HookRecord::PoolMigration {
                cycle,
                to_gpu_bytes,
                to_cpu_bytes,
            } => t.on_pool_migration(cycle, to_gpu_bytes, to_cpu_bytes),
        }
    }

    /// Replays queued records into `t` in order, keeping the buffer's
    /// capacity for reuse.
    fn replay(t: &mut Telemetry, buf: &mut Vec<HookRecord>) {
        for rec in buf.drain(..) {
            Self::replay_one(t, rec);
        }
    }

    /// Queues `rec` (buffered mode) or applies it immediately.  Callers
    /// have already checked that the probe is enabled.  Lock order is
    /// always buffer → telemetry.
    #[inline]
    fn record(&self, rec: HookRecord) {
        if let Some(buf) = &self.buf {
            let mut b = Self::lock_any(buf);
            b.push(rec);
            if b.len() >= HOOK_BLOCK {
                if let Some(inner) = &self.inner {
                    let mut t = Self::lock_any(inner);
                    Self::replay(&mut t, &mut b);
                }
            }
        } else if let Some(inner) = &self.inner {
            let mut t = Self::lock_any(inner);
            Self::replay_one(&mut t, rec);
        }
    }

    /// A probe that streams its JSONL document to `path` incrementally as
    /// the run produces events and epoch snapshots, instead of buffering
    /// the whole run in memory.  The document is completed (histograms,
    /// drops line) and flushed by [`Probe::finalize`].
    ///
    /// # Errors
    ///
    /// Returns the I/O error from creating `path` or writing the leading
    /// `meta` line.
    pub fn enabled_streaming(cfg: TelemetryConfig, path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        let writer = std::io::BufWriter::new(file);
        let probe = Self::enabled(cfg);
        probe
            .with(|t| t.attach_stream(Box::new(writer)))
            .expect("probe just enabled")?;
        Ok(probe)
    }

    /// First stream-sink I/O error, if streaming was on and hit one.
    pub fn stream_error(&self) -> Option<String> {
        self.with(|t| t.stream_error().map(str::to_string))
            .flatten()
    }

    /// Whether this probe records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Runs `f` on the telemetry state when enabled.  A buffered probe first
    /// drains its pending hook records, so `f` always sees up-to-date state.
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce(&mut Telemetry) -> R) -> Option<R> {
        let inner = self.inner.as_ref()?;
        if let Some(buf) = &self.buf {
            let mut b = Self::lock_any(buf);
            let mut guard = Self::lock_any(inner);
            Self::replay(&mut guard, &mut b);
            return Some(f(&mut guard));
        }
        let mut guard = Self::lock_any(inner);
        Some(f(&mut guard))
    }

    /// See [`Telemetry::emit`].
    #[inline]
    pub fn emit(&self, cycle: u64, event: Event) {
        if self.inner.is_some() {
            self.record(HookRecord::Emit { cycle, event });
        }
    }

    /// See [`Telemetry::on_traffic`].
    #[inline]
    pub fn on_traffic(
        &self,
        cycle: u64,
        partition: usize,
        class: TrafficClass,
        bytes: u64,
        is_write: bool,
    ) {
        if self.inner.is_some() {
            self.record(HookRecord::Traffic {
                cycle,
                partition,
                class,
                bytes,
                is_write,
            });
        }
    }

    /// See [`Telemetry::on_dram_request`].
    #[inline]
    pub fn on_dram_request(&self, cycle: u64, latency: u64) {
        if self.inner.is_some() {
            self.record(HookRecord::DramRequest { cycle, latency });
        }
    }

    /// See [`Telemetry::on_mshr_residency`].
    #[inline]
    pub fn on_mshr_residency(&self, cycles: u64) {
        if self.inner.is_some() {
            self.record(HookRecord::MshrResidency { cycles });
        }
    }

    /// See [`Telemetry::on_engine_depth`].
    #[inline]
    pub fn on_engine_depth(&self, depth: u64) {
        if self.inner.is_some() {
            self.record(HookRecord::EngineDepth { depth });
        }
    }

    /// See [`Telemetry::on_instructions`].
    #[inline]
    pub fn on_instructions(&self, cycle: u64, n: u64) {
        if self.inner.is_some() {
            self.record(HookRecord::Instructions { cycle, n });
        }
    }

    /// See [`Telemetry::on_access`].
    #[inline]
    pub fn on_access(&self, cycle: u64) {
        if self.inner.is_some() {
            self.record(HookRecord::Access { cycle });
        }
    }

    /// See [`Telemetry::on_l2_hit`].
    #[inline]
    pub fn on_l2_hit(&self, cycle: u64, partition: usize) {
        if self.inner.is_some() {
            self.record(HookRecord::L2Hit { cycle, partition });
        }
    }

    /// See [`Telemetry::on_l2_miss`].
    #[inline]
    pub fn on_l2_miss(&self, cycle: u64, partition: usize) {
        if self.inner.is_some() {
            self.record(HookRecord::L2Miss { cycle, partition });
        }
    }

    /// See [`Telemetry::on_ctr_victim`].
    #[inline]
    pub fn on_ctr_victim(&self, cycle: u64, uses: u64) {
        if self.inner.is_some() {
            self.record(HookRecord::CtrVictim { cycle, uses });
        }
    }

    /// See [`Telemetry::on_bmt_walk`].
    #[inline]
    pub fn on_bmt_walk(&self, cycle: u64, depth: u64) {
        if self.inner.is_some() {
            self.record(HookRecord::BmtWalk { cycle, depth });
        }
    }

    /// See [`Telemetry::on_pool_remote_access`].
    #[inline]
    pub fn on_pool_remote_access(&self, cycle: u64, bytes: u64, is_write: bool) {
        if self.inner.is_some() {
            self.record(HookRecord::PoolRemoteAccess {
                cycle,
                bytes,
                is_write,
            });
        }
    }

    /// See [`Telemetry::on_pool_migration`].
    #[inline]
    pub fn on_pool_migration(&self, cycle: u64, to_gpu_bytes: u64, to_cpu_bytes: u64) {
        if self.inner.is_some() {
            self.record(HookRecord::PoolMigration {
                cycle,
                to_gpu_bytes,
                to_cpu_bytes,
            });
        }
    }

    /// See [`Telemetry::emit_span`].
    pub fn emit_span(&self, span: SpanEvent) {
        if self.inner.is_some() {
            self.with(|t| t.emit_span(span));
        }
    }

    /// Records one span per job plus the trace root (see
    /// [`span::build_job_spans`]); no-op when disabled.
    pub fn emit_job_spans(&self, trace_id: u64, sweep: &str, jobs: &[span::JobSpanInput]) {
        if self.inner.is_some() {
            self.with(|t| {
                for s in span::build_job_spans(trace_id, sweep, jobs) {
                    t.emit_span(s);
                }
            });
        }
    }

    /// See [`Telemetry::finalize`].
    pub fn finalize(&self, end_cycle: u64) {
        self.with(|t| t.finalize(end_cycle));
    }

    /// Writes the full JSONL document to `path`, line by line through a
    /// buffered writer (the document is never materialised as one string).
    /// Returns `Ok(false)` when the probe is disabled (nothing written).
    ///
    /// With an attached stream sink the document already went to the sink;
    /// this writes only what is still held in memory (epochs, histograms).
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<bool> {
        match self.with(|t| -> std::io::Result<()> {
            let file = std::fs::File::create(path)?;
            let mut w = std::io::BufWriter::new(file);
            sink::write_jsonl_to(t, &mut w)?;
            std::io::Write::flush(&mut w)
        }) {
            Some(result) => result.map(|()| true),
            None => Ok(false),
        }
    }

    /// Writes completed epoch snapshots as CSV to `path` (same quantities
    /// as the JSONL `epoch` lines). Returns `Ok(false)` when disabled.
    pub fn write_epoch_csv(&self, path: &Path) -> std::io::Result<bool> {
        match self.with(|t| sink::epoch_csv(t)) {
            Some(doc) => {
                std::fs::write(path, doc)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Human-readable run summary, or `None` when disabled.
    pub fn summary(&self) -> Option<String> {
        self.with(|t| sink::summary(t))
    }

    /// Flight-recorder dump (last K events), or `None` when disabled.
    pub fn flight_dump(&self) -> Option<String> {
        self.with(|t| sink::flight_dump(t))
    }

    /// Installs a process-wide panic hook that dumps the flight recorder to
    /// stderr before the previous hook runs. No-op when disabled.  Records
    /// still queued in a buffered probe's block are not part of the dump
    /// (the hook cannot safely take the buffer lock mid-panic).
    pub fn install_panic_hook(&self) {
        let Some(inner) = &self.inner else { return };
        let inner = Arc::clone(inner);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // try_lock: the panic may have unwound out of a probe hook that
            // still holds the lock on this thread; never deadlock here.
            let dump = match inner.try_lock() {
                Ok(t) => Some(sink::flight_dump(&t)),
                Err(TryLockError::Poisoned(p)) => Some(sink::flight_dump(&p.into_inner())),
                Err(TryLockError::WouldBlock) => None,
            };
            if let Some(dump) = dump {
                eprintln!("--- telemetry flight recorder ---");
                eprint!("{dump}");
                eprintln!("--- end flight recorder ---");
            }
            prev(info);
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probe_is_inert() {
        let p = Probe::disabled();
        p.emit(0, Event::MshrStall { bank: 0 });
        p.on_traffic(0, 0, TrafficClass::Data, 128, false);
        p.finalize(10);
        assert!(!p.is_enabled());
        assert!(p.summary().is_none());
        assert!(p.flight_dump().is_none());
        assert_eq!(p.with(|_| ()), None);
    }

    #[test]
    fn sampling_keeps_totals_exact_and_first_of_each_kind() {
        let p = Probe::enabled(TelemetryConfig {
            sample_stride: 10,
            ..Default::default()
        });
        for i in 0..95u64 {
            p.emit(i, Event::L2Miss { bank: 0, addr: i });
        }
        p.emit(
            95,
            Event::KernelEnd {
                kernel: "k".into(),
                cycles: 95,
            },
        );
        p.with(|t| {
            assert_eq!(
                t.kind_totals()[Event::L2Miss { bank: 0, addr: 0 }.kind_index()],
                95
            );
            // 95 misses at stride 10 -> occurrences 1,11,21,...,91 logged.
            let logged = t
                .events()
                .iter()
                .filter(|(_, e)| matches!(e, Event::L2Miss { .. }))
                .count();
            assert_eq!(logged, 10);
            assert_eq!(t.sampled_out(), 85);
            // Low-frequency kinds always logged.
            assert!(t
                .events()
                .iter()
                .any(|(_, e)| matches!(e, Event::KernelEnd { .. })));
        });
    }

    #[test]
    fn ring_is_bounded() {
        let p = Probe::enabled(TelemetryConfig {
            ring_capacity: 8,
            ..Default::default()
        });
        for i in 0..100u64 {
            p.emit(i, Event::CtrCacheMiss { partition: 0 });
        }
        p.with(|t| {
            let ring: Vec<_> = t.flight_recorder().collect();
            assert_eq!(ring.len(), 8);
            assert_eq!(ring[0].0, 92);
            assert_eq!(ring[7].0, 99);
        });
    }

    #[test]
    fn dram_requests_match_histogram_count() {
        let p = Probe::enabled(TelemetryConfig::default());
        for i in 0..50u64 {
            p.on_dram_request(i * 7, 100 + i);
        }
        p.finalize(50 * 7);
        p.with(|t| {
            assert_eq!(t.dram_requests(), 50);
            assert_eq!(t.dram_latency.count(), 50);
            let epoch_sum: u64 = t.snapshots().iter().map(|s| s.dram_requests).sum();
            assert_eq!(epoch_sum, 50);
        });
    }

    #[test]
    fn ctr_victim_hotness_lands_in_epochs() {
        let p = Probe::enabled(TelemetryConfig {
            epoch_cycles: 100,
            ..Default::default()
        });
        p.on_ctr_victim(10, 3);
        p.on_ctr_victim(20, 5);
        p.on_ctr_victim(150, 1);
        p.finalize(150);
        p.with(|t| {
            let snaps = t.snapshots();
            assert_eq!(snaps[0].ctr_victims, 2);
            assert_eq!(snaps[0].ctr_victim_uses, 8);
            assert_eq!(snaps[1].ctr_victims, 1);
            assert_eq!(snaps[1].ctr_victim_uses, 1);
        });
    }

    #[test]
    fn bmt_walk_depths_split_per_epoch() {
        let p = Probe::enabled(TelemetryConfig {
            epoch_cycles: 100,
            ..Default::default()
        });
        p.on_bmt_walk(10, 2);
        p.on_bmt_walk(20, 5);
        p.on_bmt_walk(150, 3);
        p.finalize(150);
        p.with(|t| {
            let snaps = t.snapshots();
            assert_eq!(snaps[0].bmt_walks, 2);
            assert_eq!(snaps[0].bmt_depth_sum, 7);
            assert_eq!(snaps[0].bmt_depth_max, 5);
            assert_eq!(snaps[1].bmt_walks, 1);
            assert_eq!(snaps[1].bmt_depth_sum, 3);
            assert_eq!(snaps[1].bmt_depth_max, 3);
        });
    }

    #[test]
    fn buffered_probe_replays_identically() {
        // The same hook sequence through a buffered and an unbuffered probe
        // must produce identical collected state (events, seq tags, epochs,
        // histograms) — block draining only changes *when* records land.
        let direct = Probe::enabled(TelemetryConfig::default());
        let buffered = Probe::enabled(TelemetryConfig::default()).buffered();
        for p in [&direct, &buffered] {
            for i in 0..3000u64 {
                // Enough volume to cross several HOOK_BLOCK boundaries.
                p.on_access(i * 5);
                p.on_l2_hit(i * 5, (i % 4) as usize);
                p.on_traffic(i * 5, 1, TrafficClass::Data, 32, i % 3 == 0);
                p.on_dram_request(i * 5, 100 + i % 50);
                if i % 7 == 0 {
                    p.emit(i * 5, Event::L2Miss { bank: 0, addr: i });
                }
            }
            p.finalize(15_000);
        }
        let collect = |p: &Probe| {
            p.with(|t| {
                (
                    t.events().to_vec(),
                    t.events_meta()
                        .iter()
                        .map(|&(seq, _)| seq)
                        .collect::<Vec<_>>(),
                    *t.kind_totals(),
                    t.snapshots().to_vec(),
                    t.dram_latency.count(),
                    t.next_seq(),
                )
            })
            .expect("enabled")
        };
        let a = collect(&direct);
        let b = collect(&buffered);
        assert_eq!(a.1, b.1, "seq tags diverged");
        assert_eq!(a.2, b.2, "kind totals diverged");
        assert_eq!(a.4, b.4, "histogram counts diverged");
        assert_eq!(a.5, b.5, "next_seq diverged");
        assert_eq!(a.0.len(), b.0.len(), "logged event counts diverged");
        assert_eq!(a.3.len(), b.3.len(), "epoch counts diverged");
        for (x, y) in a.3.iter().zip(&b.3) {
            assert_eq!(x.accesses, y.accesses);
            assert_eq!(x.l2_hits, y.l2_hits);
            assert_eq!(x.dram_requests, y.dram_requests);
            assert_eq!(x.total_bytes(), y.total_bytes());
        }
    }

    #[test]
    fn buffered_clones_share_one_queue() {
        let base = Probe::enabled(TelemetryConfig::default());
        let a = base.buffered();
        let b = a.clone();
        // Interleave below the block size; order must survive the drain.
        a.emit(1, Event::MshrStall { bank: 1 });
        b.emit(2, Event::MshrStall { bank: 2 });
        a.emit(3, Event::MshrStall { bank: 3 });
        a.with(|t| {
            // The flight-recorder ring sees every emission (no sampling), so
            // it reflects the replayed global order.
            let cycles: Vec<u64> = t.flight_recorder().map(|&(c, _)| c).collect();
            assert_eq!(cycles, vec![1, 2, 3]);
        });
    }

    #[test]
    fn probe_clones_share_state() {
        let p = Probe::enabled(TelemetryConfig::default());
        let q = p.clone();
        p.on_traffic(5, 2, TrafficClass::Mac, 32, true);
        q.on_traffic(9, 2, TrafficClass::Mac, 32, false);
        p.with(|t| assert_eq!(t.total_traffic().class_total(TrafficClass::Mac), 64));
    }

    #[test]
    fn partition_breakdown_tracks_traffic_and_l2() {
        let p = Probe::enabled(TelemetryConfig {
            epoch_cycles: 100,
            ..Default::default()
        });
        p.on_traffic(10, 3, TrafficClass::Data, 128, false);
        p.on_traffic(20, 3, TrafficClass::Mac, 32, true);
        p.on_l2_hit(30, 1);
        p.on_l2_miss(40, 3);
        p.finalize(50);
        p.with(|t| {
            let snap = &t.snapshots()[0];
            // Grown to the highest touched index; untouched ones are zero.
            assert_eq!(snap.partitions.len(), 4);
            assert_eq!(snap.partitions[3].read_bytes, 128);
            assert_eq!(snap.partitions[3].write_bytes, 32);
            assert_eq!(snap.partitions[3].l2_misses, 1);
            assert_eq!(snap.partitions[1].l2_hits, 1);
            assert_eq!(snap.partitions[0], PartitionEpoch::default());
            // Per-partition totals agree with the epoch-wide counters.
            let (r, w): (u64, u64) = snap
                .partitions
                .iter()
                .fold((0, 0), |(r, w), p| (r + p.read_bytes, w + p.write_bytes));
            assert_eq!(r + w, snap.total_bytes());
            let mut json = String::new();
            snap.write_json(&mut json);
            assert!(json.contains("\"partitions\":[{\"read_bytes\":0"));
            assert!(json
                .contains("{\"read_bytes\":128,\"write_bytes\":32,\"l2_hits\":0,\"l2_misses\":1}"));
        });
    }
}
