//! Structured trace events with cycle timestamps.

use std::fmt::Write as _;

/// One structured simulator event.
///
/// High-frequency kinds (cache misses, stalls, walks) may be sampled on the
/// way into the JSONL log — see [`crate::TelemetryConfig::sample_stride`] —
/// but every emission always lands in the flight-recorder ring and bumps the
/// per-kind totals, so aggregate counts stay exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A kernel began executing.
    KernelStart { kernel: String },
    /// A kernel drained; `cycles` is its wall-clock cycle span.
    KernelEnd { kernel: String, cycles: u64 },
    /// An L2 lookup missed and went to the memory system.
    L2Miss { bank: usize, addr: u64 },
    /// An L2 miss could not allocate an MSHR entry and stalled.
    MshrStall { bank: usize },
    /// Observed DRAM partition queue depth (cycles of backlog) at issue.
    DramQueueDepth { partition: usize, depth: u64 },
    /// Counter metadata-cache miss in a secure engine.
    CtrCacheMiss { partition: usize },
    /// A BMT integrity walk terminated after visiting `depth` levels.
    BmtWalk { partition: usize, depth: u32 },
    /// A security-mode detector changed state for a region.
    DetectorTransition {
        partition: usize,
        region: u64,
        detector: &'static str,
    },
    /// Misprediction fixup traffic was charged.
    MispredictFixup { partition: usize, bytes: u64 },
    /// Secure memory rejected an access: `kind` is the `VerifyError` label,
    /// `action` the recovery taken (abort / retry_recovered / quarantine).
    IntegrityViolation {
        addr: u64,
        kind: &'static str,
        action: &'static str,
    },
    /// One distributed sweep worker's end-of-sweep accounting (jobs run,
    /// wire bytes each way, jobs reassigned away after it was lost).
    DistWorker {
        worker: String,
        jobs: u64,
        bytes_rx: u64,
        bytes_tx: u64,
        reassigned: u64,
    },
}

/// Total number of distinct event kinds.
pub const NUM_KINDS: usize = 11;

impl Event {
    /// Stable snake_case kind tag used in JSONL output and summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::KernelStart { .. } => "kernel_start",
            Event::KernelEnd { .. } => "kernel_end",
            Event::L2Miss { .. } => "l2_miss",
            Event::MshrStall { .. } => "mshr_stall",
            Event::DramQueueDepth { .. } => "dram_queue_depth",
            Event::CtrCacheMiss { .. } => "ctr_cache_miss",
            Event::BmtWalk { .. } => "bmt_walk",
            Event::DetectorTransition { .. } => "detector_transition",
            Event::MispredictFixup { .. } => "mispredict_fixup",
            Event::IntegrityViolation { .. } => "integrity_violation",
            Event::DistWorker { .. } => "dist_worker",
        }
    }

    /// Dense index of this kind, for per-kind counters.
    pub fn kind_index(&self) -> usize {
        match self {
            Event::KernelStart { .. } => 0,
            Event::KernelEnd { .. } => 1,
            Event::L2Miss { .. } => 2,
            Event::MshrStall { .. } => 3,
            Event::DramQueueDepth { .. } => 4,
            Event::CtrCacheMiss { .. } => 5,
            Event::BmtWalk { .. } => 6,
            Event::DetectorTransition { .. } => 7,
            Event::MispredictFixup { .. } => 8,
            Event::IntegrityViolation { .. } => 9,
            Event::DistWorker { .. } => 10,
        }
    }

    /// Kind tag for a dense index (inverse of [`Event::kind_index`]).
    pub fn kind_label(index: usize) -> &'static str {
        [
            "kernel_start",
            "kernel_end",
            "l2_miss",
            "mshr_stall",
            "dram_queue_depth",
            "ctr_cache_miss",
            "bmt_walk",
            "detector_transition",
            "mispredict_fixup",
            "integrity_violation",
            "dist_worker",
        ][index]
    }

    /// True for kinds that are always logged regardless of sampling.
    pub fn is_low_frequency(&self) -> bool {
        matches!(
            self,
            Event::KernelStart { .. }
                | Event::KernelEnd { .. }
                | Event::DetectorTransition { .. }
                | Event::IntegrityViolation { .. }
                | Event::DistWorker { .. }
        )
    }

    /// Appends this event as one JSON object line (no trailing newline).
    pub fn write_json(&self, cycle: u64, out: &mut String) {
        let _ = write!(
            out,
            "{{\"type\":\"event\",\"cycle\":{cycle},\"kind\":\"{}\"",
            self.kind()
        );
        match self {
            Event::KernelStart { kernel } => {
                let _ = write!(out, ",\"kernel\":\"{}\"", json_escape(kernel));
            }
            Event::KernelEnd { kernel, cycles } => {
                let _ = write!(
                    out,
                    ",\"kernel\":\"{}\",\"cycles\":{cycles}",
                    json_escape(kernel)
                );
            }
            Event::L2Miss { bank, addr } => {
                let _ = write!(out, ",\"bank\":{bank},\"addr\":{addr}");
            }
            Event::MshrStall { bank } => {
                let _ = write!(out, ",\"bank\":{bank}");
            }
            Event::DramQueueDepth { partition, depth } => {
                let _ = write!(out, ",\"partition\":{partition},\"depth\":{depth}");
            }
            Event::CtrCacheMiss { partition } => {
                let _ = write!(out, ",\"partition\":{partition}");
            }
            Event::BmtWalk { partition, depth } => {
                let _ = write!(out, ",\"partition\":{partition},\"depth\":{depth}");
            }
            Event::DetectorTransition {
                partition,
                region,
                detector,
            } => {
                let _ = write!(
                    out,
                    ",\"partition\":{partition},\"region\":{region},\"detector\":\"{detector}\""
                );
            }
            Event::MispredictFixup { partition, bytes } => {
                let _ = write!(out, ",\"partition\":{partition},\"bytes\":{bytes}");
            }
            Event::IntegrityViolation { addr, kind, action } => {
                let _ = write!(
                    out,
                    ",\"addr\":{addr},\"violation\":\"{kind}\",\"action\":\"{action}\""
                );
            }
            Event::DistWorker {
                worker,
                jobs,
                bytes_rx,
                bytes_tx,
                reassigned,
            } => {
                let _ = write!(
                    out,
                    ",\"worker\":\"{}\",\"jobs\":{jobs},\"bytes_rx\":{bytes_rx},\"bytes_tx\":{bytes_tx},\"reassigned\":{reassigned}",
                    json_escape(worker)
                );
            }
        }
        out.push('}');
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_index_roundtrips() {
        let events = [
            Event::KernelStart { kernel: "k".into() },
            Event::KernelEnd {
                kernel: "k".into(),
                cycles: 1,
            },
            Event::L2Miss { bank: 0, addr: 0 },
            Event::MshrStall { bank: 0 },
            Event::DramQueueDepth {
                partition: 0,
                depth: 0,
            },
            Event::CtrCacheMiss { partition: 0 },
            Event::BmtWalk {
                partition: 0,
                depth: 0,
            },
            Event::DetectorTransition {
                partition: 0,
                region: 0,
                detector: "ro",
            },
            Event::MispredictFixup {
                partition: 0,
                bytes: 0,
            },
            Event::IntegrityViolation {
                addr: 0,
                kind: "block_mac_mismatch",
                action: "abort",
            },
            Event::DistWorker {
                worker: "w".into(),
                jobs: 0,
                bytes_rx: 0,
                bytes_tx: 0,
                reassigned: 0,
            },
        ];
        assert_eq!(events.len(), NUM_KINDS);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.kind_index(), i);
            assert_eq!(Event::kind_label(i), e.kind());
        }
    }

    #[test]
    fn json_lines_are_wellformed() {
        let mut out = String::new();
        Event::KernelEnd {
            kernel: "fdtd\"2d".into(),
            cycles: 42,
        }
        .write_json(7, &mut out);
        assert_eq!(
            out,
            "{\"type\":\"event\",\"cycle\":7,\"kind\":\"kernel_end\",\"kernel\":\"fdtd\\\"2d\",\"cycles\":42}"
        );
    }

    #[test]
    fn escape_handles_controls() {
        assert_eq!(json_escape("a\nb\\c\"d\u{1}"), "a\\nb\\\\c\\\"d\\u0001");
    }
}
