//! Output sinks: JSONL document (in-memory or incremental), epoch CSV,
//! human-readable summary, flight-recorder dump.

use crate::event::Event;
use crate::hist::Histogram;
use crate::{Telemetry, TelemetryConfig};
use gpu_types::TrafficClass;
use std::fmt::Write as _;

/// Appends the leading `meta` JSONL object (no trailing newline).
pub fn meta_json(cfg: &TelemetryConfig, out: &mut String) {
    let _ = write!(
        out,
        "{{\"type\":\"meta\",\"epoch_cycles\":{},\"sample_stride\":{},\"ring_capacity\":{}}}",
        cfg.epoch_cycles, cfg.sample_stride, cfg.ring_capacity
    );
}

/// Appends the trailing `drops` JSONL object (no trailing newline) making
/// any sampling loss explicit, with exact per-kind totals.
pub fn drops_json(t: &Telemetry, out: &mut String) {
    let _ = write!(
        out,
        "{{\"type\":\"drops\",\"sampled_out\":{},\"kind_totals\":{{",
        t.sampled_out()
    );
    for (i, &total) in t.kind_totals().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", Event::kind_label(i), total);
    }
    out.push_str("}}");
}

/// Appends one event as a JSONL object line tagged with the document-wide
/// monotonic `seq` and wall-clock `ts_ms` (no trailing newline).  The tags
/// let interleaved multi-worker streams be ordered and merged
/// deterministically by `shm trace-report`.
pub fn event_json_tagged(event: &Event, cycle: u64, seq: u64, ts_ms: u64, out: &mut String) {
    event.write_json(cycle, out);
    out.pop(); // reopen the object to append the tags
    let _ = write!(out, ",\"seq\":{seq},\"ts_ms\":{ts_ms}}}");
}

/// Serializes the whole collection as a JSONL document:
/// one `meta` line, sampled `event` lines, `epoch` snapshot lines, `span`
/// lines, `hist` lines for each histogram, and a trailing `drops` line
/// making any sampling loss explicit.
pub fn to_jsonl(t: &Telemetry) -> String {
    let mut out = Vec::new();
    write_jsonl_to(t, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("JSONL output is UTF-8")
}

/// Streams the JSONL document to `w` one line at a time, reusing a single
/// line buffer — the whole-document string never exists in memory.
///
/// # Errors
///
/// Propagates the first I/O error from `w`.
pub fn write_jsonl_to<W: std::io::Write>(t: &Telemetry, w: &mut W) -> std::io::Result<()> {
    let mut line = String::new();
    meta_json(t.config(), &mut line);
    line.push('\n');
    w.write_all(line.as_bytes())?;
    for ((cycle, event), (seq, ts_ms)) in t.events().iter().zip(t.events_meta()) {
        line.clear();
        event_json_tagged(event, *cycle, *seq, *ts_ms, &mut line);
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    for snap in t.snapshots() {
        line.clear();
        snap.write_json(&mut line);
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    for (span, (seq, ts_ms)) in t.spans().iter().zip(t.spans_meta()) {
        line.clear();
        span.write_json(*seq, *ts_ms, &mut line);
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    for (name, hist) in named_histograms(t) {
        line.clear();
        hist_json(name, hist, &mut line);
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    line.clear();
    drops_json(t, &mut line);
    line.push('\n');
    w.write_all(line.as_bytes())
}

/// Renders completed epoch snapshots as CSV, mirroring the JSONL `epoch`
/// schema: identity columns, per-class read/write byte columns, the counter
/// columns, then per-partition breakdown columns (`p<i>_read_bytes`, …) for
/// every partition any epoch touched — rows are zero-padded to that width
/// so the table is always rectangular.
pub fn epoch_csv(t: &Telemetry) -> String {
    let mut out = String::new();
    out.push_str("index,start_cycle,end_cycle");
    for dir in ["read", "write"] {
        for class in TrafficClass::ALL {
            let _ = write!(out, ",{dir}_{}", class.label());
        }
    }
    out.push_str(
        ",instructions,accesses,l2_hits,l2_misses,dram_requests,ctr_victims,ctr_victim_uses,bmt_walks,bmt_depth_sum,bmt_depth_max",
    );
    out.push_str(
        ",pool_migrations,pool_spills,pool_cpu_accesses,link_to_gpu_bytes,link_to_cpu_bytes",
    );
    let num_partitions = t
        .snapshots()
        .iter()
        .map(|s| s.partitions.len())
        .max()
        .unwrap_or(0);
    for p in 0..num_partitions {
        let _ = write!(
            out,
            ",p{p}_read_bytes,p{p}_write_bytes,p{p}_l2_hits,p{p}_l2_misses"
        );
    }
    out.push('\n');
    let zero = crate::PartitionEpoch::default();
    for s in t.snapshots() {
        let _ = write!(out, "{},{},{}", s.index, s.start_cycle, s.end_cycle);
        for bytes in [&s.traffic.read, &s.traffic.write] {
            for v in bytes.iter().take(TrafficClass::ALL.len()) {
                let _ = write!(out, ",{v}");
            }
        }
        let _ = write!(
            out,
            ",{},{},{},{},{},{},{},{},{},{}",
            s.instructions,
            s.accesses,
            s.l2_hits,
            s.l2_misses,
            s.dram_requests,
            s.ctr_victims,
            s.ctr_victim_uses,
            s.bmt_walks,
            s.bmt_depth_sum,
            s.bmt_depth_max
        );
        let _ = write!(
            out,
            ",{},{},{},{},{}",
            s.pool_migrations,
            s.pool_spills,
            s.pool_cpu_accesses,
            s.link_to_gpu_bytes,
            s.link_to_cpu_bytes
        );
        for p in 0..num_partitions {
            let part = s.partitions.get(p).unwrap_or(&zero);
            let _ = write!(
                out,
                ",{},{},{},{}",
                part.read_bytes, part.write_bytes, part.l2_hits, part.l2_misses
            );
        }
        out.push('\n');
    }
    out
}

/// The histograms a collection exports, with their JSONL names.
pub fn named_histograms(t: &Telemetry) -> [(&'static str, &Histogram); 3] {
    [
        ("dram_latency", &t.dram_latency),
        ("mshr_residency", &t.mshr_residency),
        ("engine_depth", &t.engine_depth),
    ]
}

/// Appends one histogram as a JSON object line (no trailing newline).
pub fn hist_json(name: &str, h: &Histogram, out: &mut String) {
    let _ = write!(
        out,
        "{{\"type\":\"hist\",\"name\":\"{name}\",\"count\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
        h.count(),
        h.min(),
        h.max(),
        h.mean(),
        h.quantile(0.50),
        h.quantile(0.95),
        h.quantile(0.99)
    );
    for (i, (lo, count)) in h.nonzero_buckets().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{lo},{count}]");
    }
    out.push_str("]}");
}

/// Human-readable end-of-run report.
pub fn summary(t: &Telemetry) -> String {
    let mut out = String::new();
    out.push_str("telemetry summary\n");
    out.push_str("  events (exact totals; log is sampled):\n");
    for (i, &total) in t.kind_totals().iter().enumerate() {
        if total > 0 {
            let _ = writeln!(out, "    {:<20} {}", Event::kind_label(i), total);
        }
    }
    if t.sampled_out() > 0 {
        let _ = writeln!(
            out,
            "    ({} high-frequency events sampled out of the log; totals above are exact)",
            t.sampled_out()
        );
    }
    let _ = writeln!(out, "  epochs: {}", t.snapshots().len());
    let total = t.total_traffic();
    for class in TrafficClass::ALL {
        let bytes = total.class_total(class);
        if bytes > 0 {
            let _ = writeln!(out, "    {:<10} {} B", class.label(), bytes);
        }
    }
    let _ = writeln!(out, "  dram requests: {}", t.dram_requests());
    for (name, h) in named_histograms(t) {
        if h.count() == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<15} n={} mean={:.1} p50={} p95={} p99={} max={}",
            name,
            h.count(),
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99),
            h.max()
        );
    }
    out
}

/// Formats the flight recorder (most recent events, oldest first) as JSONL —
/// the payload dumped on panic or fatal error.
pub fn flight_dump(t: &Telemetry) -> String {
    let mut out = String::new();
    for (cycle, event) in t.flight_recorder() {
        event.write_json(*cycle, &mut out);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Probe, TelemetryConfig};

    fn cfg() -> TelemetryConfig {
        TelemetryConfig {
            epoch_cycles: 100,
            sample_stride: 1,
            ring_capacity: 16,
        }
    }

    fn populate(p: &Probe) {
        p.emit(
            0,
            Event::KernelStart {
                kernel: "k0".into(),
            },
        );
        p.emit(
            5,
            Event::L2Miss {
                bank: 1,
                addr: 4096,
            },
        );
        p.on_traffic(5, 1, TrafficClass::Data, 128, false);
        p.on_dram_request(40, 35);
        p.emit(
            250,
            Event::KernelEnd {
                kernel: "k0".into(),
                cycles: 250,
            },
        );
        p.finalize(250);
    }

    fn populated() -> Probe {
        let p = Probe::enabled(cfg());
        populate(&p);
        p
    }

    /// Replaces the wall-clock `"ts_ms":<n>` tag with a fixed value so
    /// documents produced at different instants compare equal.
    fn normalize_ts(line: &str) -> String {
        let pat = "\"ts_ms\":";
        match line.find(pat) {
            None => line.to_string(),
            Some(at) => {
                let digits_start = at + pat.len();
                let digits_end = line[digits_start..]
                    .find(|c: char| !c.is_ascii_digit())
                    .map(|i| digits_start + i)
                    .unwrap_or(line.len());
                format!("{}{pat}0{}", &line[..at], &line[digits_end..])
            }
        }
    }

    #[test]
    fn jsonl_contains_all_record_types() {
        let doc = populated().with(|t| to_jsonl(t)).unwrap();
        for ty in [
            "\"type\":\"meta\"",
            "\"type\":\"event\"",
            "\"type\":\"epoch\"",
            "\"type\":\"hist\"",
            "\"type\":\"drops\"",
        ] {
            assert!(doc.contains(ty), "missing {ty} in {doc}");
        }
        // Three epochs: cycles 0..100, 100..200, 200..250 (final partial).
        assert_eq!(doc.matches("\"type\":\"epoch\"").count(), 3);
        assert!(doc.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn summary_mentions_populated_sections() {
        let s = populated().summary().unwrap();
        assert!(s.contains("kernel_start"));
        assert!(s.contains("dram requests: 1"));
        assert!(s.contains("dram_latency"));
        assert!(s.contains("data"));
    }

    #[test]
    fn flight_dump_is_jsonl_of_ring() {
        let dump = populated().flight_dump().unwrap();
        assert_eq!(dump.lines().count(), 3);
        assert!(dump.lines().all(|l| l.contains("\"type\":\"event\"")));
    }

    #[test]
    fn write_jsonl_to_matches_to_jsonl() {
        let p = populated();
        let doc = p.with(|t| to_jsonl(t)).unwrap();
        let mut streamed = Vec::new();
        p.with(|t| write_jsonl_to(t, &mut streamed))
            .unwrap()
            .unwrap();
        assert_eq!(doc.into_bytes(), streamed);
    }

    #[test]
    fn streaming_sink_emits_same_lines_as_in_memory_document() {
        let path =
            std::env::temp_dir().join(format!("shm-telemetry-stream-{}.jsonl", std::process::id()));
        let streaming = Probe::enabled_streaming(cfg(), &path).expect("create stream file");
        populate(&streaming);
        assert_eq!(streaming.stream_error(), None);
        drop(streaming);
        let streamed = std::fs::read_to_string(&path).expect("read streamed doc");
        let _ = std::fs::remove_file(&path);

        let in_memory = populated().with(|t| to_jsonl(t)).unwrap();

        // Streaming writes events and epoch snapshots in production order,
        // so line ORDER differs from the grouped in-memory document — but
        // the set of lines must match exactly.  The two probes were
        // populated at different wall-clock instants, so the `ts_ms` tag is
        // normalised before comparing.
        let mut a: Vec<String> = streamed.lines().map(normalize_ts).collect();
        let mut b: Vec<String> = in_memory.lines().map(normalize_ts).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "streamed:\n{streamed}\nin-memory:\n{in_memory}");
        // Meta comes first and drops last in both documents.
        assert!(streamed.starts_with("{\"type\":\"meta\""));
        assert!(streamed
            .trim_end()
            .lines()
            .last()
            .unwrap()
            .starts_with("{\"type\":\"drops\""));
    }

    #[test]
    fn events_carry_monotonic_seq_and_ts_tags() {
        let doc = populated().with(|t| to_jsonl(t)).unwrap();
        let mut last_seq: Option<u64> = None;
        let mut tagged = 0;
        for line in doc.lines() {
            if !line.contains("\"type\":\"event\"") {
                continue;
            }
            let seq_at = line.find("\"seq\":").expect("event line has seq") + 6;
            let seq: u64 = line[seq_at..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .unwrap();
            assert!(line.contains("\"ts_ms\":"), "event line has ts_ms: {line}");
            if let Some(prev) = last_seq {
                assert!(seq > prev, "seq must be monotonic: {prev} then {seq}");
            }
            last_seq = Some(seq);
            tagged += 1;
        }
        assert_eq!(tagged, 3);
    }

    #[test]
    fn spans_land_in_both_document_paths() {
        use crate::span::{JobSpanInput, SpanEvent};
        let job = JobSpanInput {
            index: 0,
            label: "fdtd2d/SHM".into(),
            worker: "local".into(),
            dispatch_ms: 1,
            end_ms: 9,
            run_ns: 7_000_000,
            cycles: 123,
        };

        // In-memory document.
        let p = Probe::enabled(cfg());
        populate(&p);
        p.emit_job_spans(0xabc, "fig16", std::slice::from_ref(&job));
        let doc = p.with(|t| to_jsonl(t)).unwrap();
        let mem_spans: Vec<SpanEvent> = doc.lines().filter_map(SpanEvent::parse_json).collect();
        assert_eq!(mem_spans.len(), 2, "root + one job span in {doc}");

        // Streaming document.
        let path =
            std::env::temp_dir().join(format!("shm-telemetry-span-{}.jsonl", std::process::id()));
        let p = Probe::enabled_streaming(cfg(), &path).unwrap();
        p.emit_job_spans(0xabc, "fig16", std::slice::from_ref(&job));
        populate(&p); // populate() finalizes, flushing the spans
        drop(p);
        let streamed = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let stream_spans: Vec<SpanEvent> =
            streamed.lines().filter_map(SpanEvent::parse_json).collect();
        assert_eq!(mem_spans, stream_spans);
        assert_eq!(stream_spans[0].parent, None);
        assert_eq!(stream_spans[1].cycles, 123);
    }

    #[test]
    fn epoch_csv_mirrors_jsonl_epoch_schema() {
        let csv = populated().with(|t| epoch_csv(t)).unwrap();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("index,start_cycle,end_cycle,read_"));
        assert!(header.contains(
            "instructions,accesses,l2_hits,l2_misses,dram_requests,ctr_victims,ctr_victim_uses,bmt_walks,bmt_depth_sum,bmt_depth_max"
        ));
        // Traffic landed in partition 1, so the breakdown covers p0..p1.
        assert!(header.ends_with(
            "p0_read_bytes,p0_write_bytes,p0_l2_hits,p0_l2_misses,p1_read_bytes,p1_write_bytes,p1_l2_hits,p1_l2_misses"
        ));
        let cols = header.split(',').count();
        // Same epochs as the JSONL document: 0..100, 100..200, 200..250.
        let rows: Vec<&str> = lines.collect();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.split(',').count(), cols, "ragged row: {row}");
        }
        // 128 B of data-class read traffic lands in the first epoch.
        assert!(rows[0].contains(",128"), "first epoch row: {}", rows[0]);
        assert!(rows[0].starts_with("0,0,99"));
        assert!(rows[2].starts_with("2,200,250"));
    }
}
