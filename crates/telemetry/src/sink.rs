//! Output sinks: JSONL document, human-readable summary, flight-recorder dump.

use crate::event::Event;
use crate::hist::Histogram;
use crate::Telemetry;
use gpu_types::TrafficClass;
use std::fmt::Write as _;

/// Serializes the whole collection as a JSONL document:
/// one `meta` line, sampled `event` lines, `epoch` snapshot lines,
/// `hist` lines for each histogram, and a trailing `drops` line making any
/// sampling loss explicit.
pub fn to_jsonl(t: &Telemetry) -> String {
    let mut out = String::new();
    let cfg = t.config();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"epoch_cycles\":{},\"sample_stride\":{},\"ring_capacity\":{}}}",
        cfg.epoch_cycles, cfg.sample_stride, cfg.ring_capacity
    );
    for (cycle, event) in t.events() {
        event.write_json(*cycle, &mut out);
        out.push('\n');
    }
    for snap in t.snapshots() {
        snap.write_json(&mut out);
        out.push('\n');
    }
    for (name, hist) in named_histograms(t) {
        hist_json(name, hist, &mut out);
        out.push('\n');
    }
    let _ = write!(
        out,
        "{{\"type\":\"drops\",\"sampled_out\":{},\"kind_totals\":{{",
        t.sampled_out()
    );
    for (i, &total) in t.kind_totals().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", Event::kind_label(i), total);
    }
    out.push_str("}}\n");
    out
}

/// The histograms a collection exports, with their JSONL names.
pub fn named_histograms(t: &Telemetry) -> [(&'static str, &Histogram); 3] {
    [
        ("dram_latency", &t.dram_latency),
        ("mshr_residency", &t.mshr_residency),
        ("engine_depth", &t.engine_depth),
    ]
}

/// Appends one histogram as a JSON object line (no trailing newline).
pub fn hist_json(name: &str, h: &Histogram, out: &mut String) {
    let _ = write!(
        out,
        "{{\"type\":\"hist\",\"name\":\"{name}\",\"count\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
        h.count(),
        h.min(),
        h.max(),
        h.mean(),
        h.quantile(0.50),
        h.quantile(0.95),
        h.quantile(0.99)
    );
    for (i, (lo, count)) in h.nonzero_buckets().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{lo},{count}]");
    }
    out.push_str("]}");
}

/// Human-readable end-of-run report.
pub fn summary(t: &Telemetry) -> String {
    let mut out = String::new();
    out.push_str("telemetry summary\n");
    out.push_str("  events (exact totals; log is sampled):\n");
    for (i, &total) in t.kind_totals().iter().enumerate() {
        if total > 0 {
            let _ = writeln!(out, "    {:<20} {}", Event::kind_label(i), total);
        }
    }
    if t.sampled_out() > 0 {
        let _ = writeln!(
            out,
            "    ({} high-frequency events sampled out of the log; totals above are exact)",
            t.sampled_out()
        );
    }
    let _ = writeln!(out, "  epochs: {}", t.snapshots().len());
    let total = t.total_traffic();
    for class in TrafficClass::ALL {
        let bytes = total.class_total(class);
        if bytes > 0 {
            let _ = writeln!(out, "    {:<10} {} B", class.label(), bytes);
        }
    }
    let _ = writeln!(out, "  dram requests: {}", t.dram_requests());
    for (name, h) in named_histograms(t) {
        if h.count() == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<15} n={} mean={:.1} p50={} p95={} p99={} max={}",
            name,
            h.count(),
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99),
            h.max()
        );
    }
    out
}

/// Formats the flight recorder (most recent events, oldest first) as JSONL —
/// the payload dumped on panic or fatal error.
pub fn flight_dump(t: &Telemetry) -> String {
    let mut out = String::new();
    for (cycle, event) in t.flight_recorder() {
        event.write_json(*cycle, &mut out);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Probe, TelemetryConfig};

    fn populated() -> Probe {
        let p = Probe::enabled(TelemetryConfig {
            epoch_cycles: 100,
            sample_stride: 1,
            ring_capacity: 16,
        });
        p.emit(
            0,
            Event::KernelStart {
                kernel: "k0".into(),
            },
        );
        p.emit(
            5,
            Event::L2Miss {
                bank: 1,
                addr: 4096,
            },
        );
        p.on_traffic(5, TrafficClass::Data, 128, false);
        p.on_dram_request(40, 35);
        p.emit(
            250,
            Event::KernelEnd {
                kernel: "k0".into(),
                cycles: 250,
            },
        );
        p.finalize(250);
        p
    }

    #[test]
    fn jsonl_contains_all_record_types() {
        let doc = populated().with(|t| to_jsonl(t)).unwrap();
        for ty in [
            "\"type\":\"meta\"",
            "\"type\":\"event\"",
            "\"type\":\"epoch\"",
            "\"type\":\"hist\"",
            "\"type\":\"drops\"",
        ] {
            assert!(doc.contains(ty), "missing {ty} in {doc}");
        }
        // Three epochs: cycles 0..100, 100..200, 200..250 (final partial).
        assert_eq!(doc.matches("\"type\":\"epoch\"").count(), 3);
        assert!(doc.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn summary_mentions_populated_sections() {
        let s = populated().summary().unwrap();
        assert!(s.contains("kernel_start"));
        assert!(s.contains("dram requests: 1"));
        assert!(s.contains("dram_latency"));
        assert!(s.contains("data"));
    }

    #[test]
    fn flight_dump_is_jsonl_of_ring() {
        let dump = populated().flight_dump().unwrap();
        assert_eq!(dump.lines().count(), 3);
        assert!(dump.lines().all(|l| l.contains("\"type\":\"event\"")));
    }
}
