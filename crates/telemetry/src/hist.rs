//! Log-scaled fixed-bucket histogram (HDR-style).
//!
//! Values are bucketed by octave (power of two) with [`SUB`] linear
//! sub-buckets per octave, giving a bounded relative error of `1/SUB`
//! across the full `u64` range while the storage stays a fixed 256-slot
//! array — no allocation on the record path, O(1) insert, O(buckets)
//! quantile and merge.

/// log2 of the number of sub-buckets per octave.
const SUB_BITS: u32 = 2;
/// Linear sub-buckets per octave; relative quantile error is `1/SUB`.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering the whole `u64` domain.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) * SUB as usize) + SUB as usize;

/// Fixed-bucket log-scaled histogram over `u64` samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Index of the bucket holding `value`.
    pub fn bucket_index(value: u64) -> usize {
        if value < SUB {
            return value as usize;
        }
        let msb = 63 - u64::from(value.leading_zeros());
        let sub = (value >> (msb - u64::from(SUB_BITS))) & (SUB - 1);
        ((msb - u64::from(SUB_BITS)) * SUB + SUB + sub) as usize
    }

    /// Smallest value mapping to bucket `index` (inclusive lower bound).
    pub fn bucket_lower_bound(index: usize) -> u64 {
        let index = index as u64;
        if index < SUB {
            return index;
        }
        let octave = (index - SUB) / SUB;
        let sub = (index - SUB) % SUB;
        (1 << (octave + u64::from(SUB_BITS))) + (sub << octave)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_index(value)] += n;
        self.count += n;
        self.sum += value * n;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the lower bound of the bucket
    /// containing the `ceil(q * count)`-th sample, clamped to the observed
    /// min/max so exact extremes survive bucketing.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_lower_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Iterator over `(lower_bound, count)` for every non-empty bucket.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lower_bound(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_monotone_and_consistent() {
        // Every bucket's lower bound must map back to that bucket, and
        // bounds must strictly increase.
        let mut prev = None;
        for i in 0..NUM_BUCKETS {
            let lo = Histogram::bucket_lower_bound(i);
            assert_eq!(
                Histogram::bucket_index(lo),
                i,
                "bucket {i} lower bound {lo}"
            );
            if let Some(p) = prev {
                assert!(lo > p, "bounds not increasing at bucket {i}");
            }
            prev = Some(lo);
        }
    }

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUB {
            assert_eq!(Histogram::bucket_index(v), v as usize);
            assert_eq!(Histogram::bucket_lower_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // A value and its bucket lower bound differ by at most 1/SUB
        // relative error.
        for v in [5u64, 13, 100, 1023, 4097, 1 << 20, (1 << 40) + 12345] {
            let lo = Histogram::bucket_lower_bound(Histogram::bucket_index(v));
            assert!(lo <= v);
            assert!(
                (v - lo) as f64 <= v as f64 / SUB as f64 + 1.0,
                "v={v} lo={lo}"
            );
        }
    }

    #[test]
    fn quantiles_on_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        // Bucketed quantiles undershoot by at most one octave sub-bucket.
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!((384..=500).contains(&p50), "p50={p50}");
        assert!((768..=950).contains(&p95), "p95={p95}");
        assert!((768..=990).contains(&p99), "p99={p99}");
        assert!(p50 <= p95 && p95 <= p99);
        // Extremes are exact.
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn quantile_of_single_value_is_exact() {
        let mut h = Histogram::new();
        h.record_n(777, 42);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 777);
        }
        assert_eq!(h.count(), 42);
        assert_eq!(h.mean(), 777.0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 3);
            whole.record(v * 3);
        }
        for v in 0..300u64 {
            b.record(v * 7 + 1);
            whole.record(v * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
        let av: Vec<_> = a.nonzero_buckets().collect();
        let wv: Vec<_> = whole.nonzero_buckets().collect();
        assert_eq!(av, wv);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }
}
