//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the *subset* of the proptest API its tests use:
//! integer-range strategies, `any::<T>()`, tuple strategies, `vec(...)`
//! collections, a minimal `[class]{m,n}` string-regex strategy, and the
//! `proptest!` / `prop_assert!` / `prop_assume!` macros.
//!
//! Sampling is deterministic: each test derives its RNG seed from the test
//! name, so failures reproduce across runs.  Shrinking is not implemented —
//! a failing case panics with the sampled inputs available via the assert
//! message, which is sufficient for this workspace's small property tests.

/// Number of random cases each `proptest!` test executes.
pub const NUM_CASES: u64 = 256;

pub mod test_runner {
    //! Deterministic RNG used to drive strategy sampling.

    /// SplitMix64 generator seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its implementations.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;

                    fn sample(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty strategy range");
                        let span = (self.end as u64).wrapping_sub(self.start as u64);
                        (self.start as u64 + rng.below(span)) as $t
                    }
                }
            )+
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    /// Strategy returned by [`crate::prelude::any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {
            $(
                impl Arbitrary for $t {
                    fn arbitrary(rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            )+
        };
    }

    int_arbitrary!(u8, u16, u32, u64, usize);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {
            $(
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);

                    #[allow(non_snake_case)]
                    fn sample(&self, rng: &mut TestRng) -> Self::Value {
                        let ($($name,)+) = self;
                        ($($name.sample(rng),)+)
                    }
                }
            )+
        };
    }

    tuple_strategy!(
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );

    /// `&str` regex strategies of the `[class]{min,max}` shape (the only
    /// form this workspace uses).  Character classes support literal chars
    /// and `a-z` ranges.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let (alphabet, min, max) = parse_class_regex(self)
                .unwrap_or_else(|| panic!("unsupported regex strategy {self:?}"));
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_regex(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let (class, counts) = rest.split_once(']')?;
        let mut alphabet = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                for c in chars[i]..=chars[i + 2] {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        let counts = counts.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
            None => {
                let n = counts.parse().ok()?;
                (n, n)
            }
        };
        (!alphabet.is_empty() && lo <= hi).then_some((alphabet, lo, hi))
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a random length in a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of values drawn from `element`, with `len` in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len: size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::strategy::{Any, Arbitrary, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    use std::marker::PhantomData;

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Defines deterministic property tests over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            #[test]
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    // One closure per case so `prop_assume!` can skip it.
                    #[allow(unused_mut, clippy::redundant_closure_call)]
                    let mut case = move || { $body };
                    case();
                }
            }
        )+
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn regex_class_sampler_obeys_shape() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..200 {
            let s = "[a-zA-Z0-9 _-]{1,24}".sample(&mut rng);
            assert!((1..=24).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '_' || c == '-'));
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u64> = {
            let mut rng = TestRng::deterministic("same");
            (0..10).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::deterministic("same");
            (0..10).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn macro_roundtrip(xs in crate::collection::vec(0u64..100, 1..20), flip in any::<bool>()) {
            prop_assume!(!xs.is_empty());
            let sum: u64 = xs.iter().sum();
            prop_assert!(sum <= 100 * xs.len() as u64);
            prop_assert_eq!(u8::from(flip) + u8::from(!flip), 1);
        }
    }
}
