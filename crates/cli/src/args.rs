//! Tiny dependency-free argument parser: `--key value`, `-k value` and
//! boolean `--flag` forms.

use std::collections::HashMap;

/// Parsed command-line options.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

/// Argument-parsing failures.
#[derive(Debug)]
pub enum ArgError {
    /// An option that requires a value was given none.
    MissingValue(String),
    /// A positional token appeared where an option was expected.
    Unexpected(String),
    /// A numeric option failed to parse.
    BadNumber {
        /// Option name.
        key: String,
        /// Raw value.
        value: String,
    },
}

impl core::fmt::Display for ArgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::Unexpected(t) => write!(f, "unexpected argument {t:?}"),
            ArgError::BadNumber { key, value } => {
                write!(f, "option --{key} expects a number, got {value:?}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Options that never take a value.
const FLAGS: &[&str] = &[
    "csv",
    "verbose",
    "telemetry",
    "resume",
    "sweep",
    "profile",
    "once",
];

impl Args {
    /// Parses `argv` (without the command name).
    pub fn parse(argv: &[String]) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut it = argv.iter().peekable();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .or_else(|| tok.strip_prefix('-'))
                .ok_or_else(|| ArgError::Unexpected(tok.clone()))?;
            if FLAGS.contains(&key) {
                args.flags.push(key.to_string());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| ArgError::MissingValue(key.to_string()))?;
            args.values.insert(key.to_string(), value.clone());
        }
        Ok(args)
    }

    /// Looks up a string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Looks up a numeric option.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is present but not a number.
    pub fn get_u64(&self, key: &str) -> Result<Option<u64>, String> {
        match self.values.get(key) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| {
                ArgError::BadNumber {
                    key: key.to_string(),
                    value: v.clone(),
                }
                .to_string()
            }),
        }
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_long_and_short_options() {
        let a = Args::parse(&argv(&["--benchmark", "lbm", "-d", "SHM"])).expect("parse");
        assert_eq!(a.get("benchmark"), Some("lbm"));
        assert_eq!(a.get("d"), Some("SHM"));
    }

    #[test]
    fn parses_flags() {
        let a = Args::parse(&argv(&["--csv", "-b", "atax"])).expect("parse");
        assert!(a.flag("csv"));
        assert!(!a.flag("verbose"));
        assert_eq!(a.get("b"), Some("atax"));
    }

    #[test]
    fn numeric_options() {
        let a = Args::parse(&argv(&["--events", "5000"])).expect("parse");
        assert_eq!(a.get_u64("events").expect("number"), Some(5000));
        assert_eq!(a.get_u64("seed").expect("absent ok"), None);
        let a = Args::parse(&argv(&["--events", "xyz"])).expect("parse");
        assert!(a.get_u64("events").is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(matches!(
            Args::parse(&argv(&["--benchmark"])),
            Err(ArgError::MissingValue(_))
        ));
    }

    #[test]
    fn positional_tokens_are_rejected() {
        assert!(matches!(
            Args::parse(&argv(&["stray"])),
            Err(ArgError::Unexpected(_))
        ));
    }
}
