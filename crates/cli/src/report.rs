//! Human-readable run reports for the CLI.

use gpu_mem_sim::{ContextTrace, DesignPoint, EnergyModel};
use gpu_types::{SimStats, TrafficClass};

/// Prints the full report for one run.
pub fn print_run(
    trace: &ContextTrace,
    design: DesignPoint,
    stats: &SimStats,
    baseline: &SimStats,
    energy: &EnergyModel,
) {
    println!(
        "{} under {} ({} kernels, {} accesses)",
        trace.name,
        design.name(),
        trace.kernels.len(),
        stats.accesses.max(stats.l2_hits + stats.l2_misses)
    );
    println!(
        "  cycles           {:>12}   (baseline {}, normalized IPC {:.4})",
        stats.cycles,
        baseline.cycles,
        baseline.cycles as f64 / stats.cycles as f64
    );
    println!(
        "  instructions     {:>12}   (IPC {:.3})",
        stats.instructions,
        stats.ipc()
    );
    println!(
        "  L2               {:>12} hits / {} misses ({:.1}% miss rate), {} write-backs",
        stats.l2_hits,
        stats.l2_misses,
        stats.l2_miss_rate() * 100.0,
        stats.l2_writebacks
    );
    println!("  DRAM traffic (bytes, read+write):");
    let data = stats.traffic.data_bytes().max(1) as f64;
    for class in TrafficClass::ALL {
        let total = stats.traffic.class_total(class);
        if total == 0 {
            continue;
        }
        println!(
            "    {:<8} {:>12}   ({:>6.2}% of data)",
            class.label(),
            total,
            total as f64 / data * 100.0
        );
    }
    println!(
        "  metadata overhead {:>10.2}%   energy/instr {:.3}x baseline",
        stats.traffic.overhead_ratio() * 100.0,
        energy.normalized_epi(stats, baseline)
    );
    if stats.readonly_fast_path > 0 || stats.chunk_mac_accesses > 0 {
        println!(
            "  SHM fast paths: {} shared-counter reads, {} chunk-MAC accesses, {} stream mispredictions",
            stats.readonly_fast_path, stats.chunk_mac_accesses, stats.stream_mispredictions
        );
    }
    if stats.victim_hits > 0 {
        println!("  L2 victim cache: {} metadata hits", stats.victim_hits);
    }
}
