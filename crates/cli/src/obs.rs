//! Observability subcommands and helpers: the `/metrics` endpoint guard
//! (`--metrics-addr`), `shm trace-report`, `shm top`, and `shm env`.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::time::{Duration, Instant};

use shm_metrics::{fetch_metrics, parse_exposition, MetricsServer, Sample};
use shm_telemetry::span::{SpanEvent, TraceReport};
use shm_telemetry::Probe;

use crate::args::Args;
use crate::CliError;

/// Environment variable: address the `/metrics` endpoint binds when the
/// `--metrics-addr` flag is absent (`HOST:PORT`, port 0 = OS-assigned).
pub const METRICS_ADDR_ENV: &str = "SHM_METRICS_ADDR";

/// Live `/metrics` endpoint for the duration of one command.  Starting it
/// flips the process-global metrics registry on; without it every counter
/// in the hot paths stays a single relaxed load.
pub struct MetricsGuard {
    server: Option<MetricsServer>,
    hold_ms: u64,
}

impl MetricsGuard {
    /// Starts the exposition server when `--metrics-addr` (or
    /// `SHM_METRICS_ADDR`) asks for one.
    pub fn from_args(args: &Args) -> Result<Self, CliError> {
        let addr = args.get("metrics-addr").map(str::to_string).or_else(|| {
            std::env::var(METRICS_ADDR_ENV)
                .ok()
                .filter(|s| !s.trim().is_empty())
        });
        let hold_ms = args.get_u64("metrics-hold-ms")?.unwrap_or(0);
        let Some(addr) = addr else {
            return Ok(Self {
                server: None,
                hold_ms,
            });
        };
        shm_metrics::set_enabled(true);
        let server = MetricsServer::bind(&addr).map_err(|e| {
            CliError::runtime(
                format!("bind metrics endpoint {addr}: {e}"),
                &Probe::disabled(),
            )
        })?;
        eprintln!("metrics: serving http://{}/metrics", server.local_addr());
        Ok(Self {
            server: Some(server),
            hold_ms,
        })
    }

    /// Keeps the endpoint up for `--metrics-hold-ms` (so a scraper can take
    /// a final post-sweep sample), then shuts it down.
    pub fn finish(self) {
        if let Some(server) = self.server {
            if self.hold_ms > 0 {
                std::thread::sleep(Duration::from_millis(self.hold_ms));
            }
            server.shutdown();
        }
    }
}

/// `shm trace-report <file.jsonl> [--top N]`: reconstructs the span tree
/// of each distributed trace in a telemetry JSONL document and prints its
/// timeline — wall time, queue-wait vs run-time, critical path, and the
/// top-N slowest jobs.
pub fn cmd_trace_report(rest: &[String]) -> Result<(), CliError> {
    let path = rest
        .first()
        .filter(|p| !p.starts_with('-'))
        .ok_or_else(|| CliError::usage("need a telemetry JSONL file"))?
        .clone();
    let args = Args::parse(&rest[1..]).map_err(|e| CliError::usage(e.to_string()))?;
    let top = args.get_u64("top")?.unwrap_or(10).max(1) as usize;
    let text = std::fs::read_to_string(&path)
        .map_err(|e| CliError::runtime(format!("read {path}: {e}"), &Probe::disabled()))?;
    let spans: Vec<SpanEvent> = text.lines().filter_map(SpanEvent::parse_json).collect();
    if spans.is_empty() {
        return Err(CliError::runtime(
            format!(
                "{path} contains no span records; produce them with \
                 `shm sweep ... --telemetry --trace-out {path}`"
            ),
            &Probe::disabled(),
        ));
    }
    let mut broken = false;
    for report in TraceReport::from_spans(spans) {
        for problem in report.check_invariants() {
            broken = true;
            eprintln!("warning: trace {:#x}: {problem}", report.trace_id);
        }
        print!("{}", report.render(top));
    }
    if broken {
        return Err(CliError::runtime(
            "span tree violated trace invariants (see warnings above)",
            &Probe::disabled(),
        ));
    }
    Ok(())
}

/// One worker's live gauges, keyed off the coordinator's per-worker series.
#[derive(Default)]
struct WorkerRow {
    in_flight: f64,
    queued: f64,
    completed: f64,
    heartbeat_age_ms: f64,
}

fn scalar(samples: &[Sample], name: &str) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.name == name && s.labels.is_empty())
        .map(|s| s.value)
}

fn worker_rows(samples: &[Sample]) -> BTreeMap<String, WorkerRow> {
    let mut rows: BTreeMap<String, WorkerRow> = BTreeMap::new();
    for s in samples {
        let Some(worker) = s
            .labels
            .iter()
            .find(|(k, _)| k == "worker")
            .map(|(_, v)| v.clone())
        else {
            continue;
        };
        let row = rows.entry(worker).or_default();
        match s.name.as_str() {
            "shm_worker_in_flight" => row.in_flight = s.value,
            "shm_worker_queued" => row.queued = s.value,
            "shm_worker_completed" => row.completed = s.value,
            "shm_worker_heartbeat_age_ms" => row.heartbeat_age_ms = s.value,
            _ => {}
        }
    }
    rows
}

fn render_top(samples: &[Sample], throughput: Option<f64>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let completed = scalar(samples, "shm_jobs_completed_total").unwrap_or(0.0);
    let total = scalar(samples, "shm_dist_jobs_total").unwrap_or(0.0);
    let reassigned = scalar(samples, "shm_dist_reassignments_total").unwrap_or(0.0);
    let retries = scalar(samples, "shm_dist_retries_total").unwrap_or(0.0);
    let tx = scalar(samples, "shm_frame_tx_bytes_total").unwrap_or(0.0);
    let rx = scalar(samples, "shm_frame_rx_bytes_total").unwrap_or(0.0);
    let _ = writeln!(
        out,
        "sweep: {completed:.0}/{total:.0} jobs done  reassigned {reassigned:.0}  retries {retries:.0}"
    );
    let _ = writeln!(out, "wire:  {tx:.0} B out  {rx:.0} B in");
    match throughput {
        Some(jps) => {
            let _ = writeln!(out, "rate:  {jps:.2} jobs/s");
        }
        None => {
            let _ = writeln!(out, "rate:  (sampling)");
        }
    }
    let rows = worker_rows(samples);
    if !rows.is_empty() {
        let _ = writeln!(
            out,
            "{:<16} {:>9} {:>7} {:>10} {:>9}",
            "worker", "in-flight", "queued", "completed", "hb-age ms"
        );
        for (id, r) in &rows {
            let _ = writeln!(
                out,
                "{:<16} {:>9.0} {:>7.0} {:>10.0} {:>9.0}",
                id, r.in_flight, r.queued, r.completed, r.heartbeat_age_ms
            );
        }
    }
    out
}

/// `shm top --connect HOST:PORT`: a plain-text polling monitor over the
/// coordinator's `/metrics` endpoint — job progress, wire traffic, job
/// throughput and per-worker queue depth, redrawn every `--interval-ms`.
pub fn cmd_top(args: &Args) -> Result<(), CliError> {
    let addr = args
        .get("connect")
        .ok_or_else(|| CliError::usage("need --connect HOST:PORT"))?;
    let interval = Duration::from_millis(args.get_u64("interval-ms")?.unwrap_or(1000).max(50));
    let once = args.flag("once");
    let iterations = args.get_u64("iterations")?;
    let mut prev: Option<(f64, Instant)> = None;
    let mut shown = 0u64;
    loop {
        let body = fetch_metrics(addr)
            .map_err(|e| CliError::runtime(format!("fetch {addr}: {e}"), &Probe::disabled()))?;
        let samples = parse_exposition(&body);
        let now = Instant::now();
        let completed = scalar(&samples, "shm_jobs_completed_total").unwrap_or(0.0);
        let throughput = prev.map(|(last, at)| {
            let dt = now.duration_since(at).as_secs_f64();
            if dt > 0.0 {
                (completed - last).max(0.0) / dt
            } else {
                0.0
            }
        });
        prev = Some((completed, now));
        let frame = render_top(&samples, throughput);
        if !once {
            // ANSI clear + home; plain prints compose with `watch`-less
            // terminals and logs.
            print!("\x1b[2J\x1b[H");
        }
        print!("{frame}");
        let _ = std::io::stdout().flush();
        shown += 1;
        if once || iterations.is_some_and(|n| shown >= n) {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// `shm env`: every `SHM_*` environment knob the toolchain reads, with its
/// current value.  The same table lives in README.md — keep them in sync.
/// The `SHM_SERVE_*` rows come straight from `sim_serve::ENV_KNOBS`, so
/// the daemon cannot grow a knob this table misses.
pub fn cmd_env() {
    println!("{:<26} {:<12} meaning", "variable", "value");
    for (name, default, meaning) in env_knob_table() {
        let value = std::env::var(name).unwrap_or_else(|_| format!("(default {default})"));
        println!("{name:<26} {value:<12} {meaning}");
    }
    println!(
        "\naes backend selected by this build/host: {}",
        shm_crypto::selected_backend().name()
    );
    println!(
        "note: `shm run --profile` always forces {}=1 semantics (phase timers \
         are process-global); any --jobs or SHM_JOBS setting is overridden",
        sim_exec::JOBS_ENV
    );
}

/// The full knob table (name, default, meaning), header row included.
fn env_knob_table() -> Vec<(&'static str, &'static str, &'static str)> {
    let mut knobs: Vec<(&'static str, &'static str, &'static str)> = vec![
        (
            sim_exec::JOBS_ENV,
            "auto",
            "worker-pool width for local sweeps (1 = serial)",
        ),
        (
            sim_exec::JOB_TIMEOUT_ENV,
            "0",
            "per-job wall-clock budget in ms for robust sweeps (0 = off)",
        ),
        (
            sim_exec::JOB_RETRIES_ENV,
            "derived",
            "sweep-wide retry budget for robust sweeps",
        ),
        (
            sim_dist::DIST_WORKERS_ENV,
            "0",
            "loopback workers a --dist sweep spawns in-process",
        ),
        (
            sim_dist::HEARTBEAT_INTERVAL_ENV,
            "500",
            "worker liveness beacon period in ms",
        ),
        (
            sim_dist::HEARTBEAT_TIMEOUT_ENV,
            "5000",
            "coordinator heartbeat miss window in ms",
        ),
        (
            sim_dist::RECONNECT_ATTEMPTS_ENV,
            "5",
            "worker reconnect attempts before giving up (same as --reconnect-attempts)",
        ),
        (
            METRICS_ADDR_ENV,
            "unset",
            "HOST:PORT for the /metrics endpoint (same as --metrics-addr)",
        ),
        (
            shm_crypto::AES_BACKEND_ENV,
            "auto",
            "AES backend: auto|aesni|ttable (auto = AES-NI when the CPU has it)",
        ),
    ];
    knobs.extend(sim_serve::ENV_KNOBS.iter().copied());
    knobs.extend(shm_pool::ENV_KNOBS.iter().copied());
    knobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_top_reads_worker_series() {
        let body = "shm_jobs_completed_total 7\nshm_dist_jobs_total 12\n\
                    shm_worker_in_flight{worker=\"w1\"} 2\n\
                    shm_worker_queued{worker=\"w1\"} 3\n\
                    shm_worker_completed{worker=\"w1\"} 7\n\
                    shm_worker_heartbeat_age_ms{worker=\"w1\"} 41\n";
        let samples = parse_exposition(body);
        let frame = render_top(&samples, Some(3.5));
        assert!(frame.contains("7/12 jobs done"), "frame:\n{frame}");
        assert!(frame.contains("3.50 jobs/s"), "frame:\n{frame}");
        assert!(frame.contains("w1"), "frame:\n{frame}");
        assert!(frame.contains("41"), "frame:\n{frame}");
    }

    /// Collects every `<pat>SUFFIX` environment-knob literal from the `.rs`
    /// files under `dirs` (paths relative to this crate's manifest dir).
    fn scan_knob_literals(pat: &str, dirs: &[&str]) -> std::collections::BTreeSet<String> {
        fn scan_literals(src: &str, pat: &[u8], found: &mut std::collections::BTreeSet<String>) {
            let bytes = src.as_bytes();
            for i in 0..bytes.len().saturating_sub(pat.len()) {
                if &bytes[i..i + pat.len()] == pat {
                    let mut end = i + pat.len();
                    while end < bytes.len()
                        && (bytes[end].is_ascii_uppercase() || bytes[end] == b'_')
                    {
                        end += 1;
                    }
                    // A bare prefix (doc prose like "SHM_SERVE_*", or this
                    // test's own pattern) is not a knob name.
                    if end > i + pat.len() {
                        found.insert(src[i..end].to_string());
                    }
                }
            }
        }
        let mut found = std::collections::BTreeSet::new();
        for dir in dirs {
            let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(dir);
            for entry in std::fs::read_dir(&dir).expect("source dir readable") {
                let path = entry.expect("dir entry").path();
                if path.extension().is_some_and(|e| e == "rs") {
                    scan_literals(
                        &std::fs::read_to_string(&path).expect("source readable"),
                        pat.as_bytes(),
                        &mut found,
                    );
                }
            }
        }
        found
    }

    fn assert_knobs_in_table(found: &std::collections::BTreeSet<String>, pat: &str) {
        assert!(
            !found.is_empty(),
            "scanner found no {pat}* knobs at all — is it broken?"
        );
        let table: Vec<&str> = env_knob_table().iter().map(|(n, _, _)| *n).collect();
        for knob in found {
            assert!(
                table.contains(&knob.as_str()),
                "knob {knob} is parsed in the sources but missing from the `shm env` table"
            );
        }
    }

    /// Every `SHM_SERVE_*` literal anywhere in the cli or sim-serve
    /// sources must have a row in the `shm env` table — a daemon knob the
    /// operator cannot discover is a support incident waiting to happen.
    #[test]
    fn every_serve_knob_is_in_the_env_table() {
        let found = scan_knob_literals("SHM_SERVE_", &["src", "../sim-serve/src"]);
        assert_knobs_in_table(&found, "SHM_SERVE_");
    }

    /// Same contract for the heterogeneous-pool knobs: every `SHM_POOL_*` /
    /// `SHM_LINK_*` literal in the cli or shm-pool sources needs an `shm
    /// env` row.
    #[test]
    fn every_pool_knob_is_in_the_env_table() {
        for pat in ["SHM_POOL_", "SHM_LINK_"] {
            let found = scan_knob_literals(pat, &["src", "../pool/src"]);
            assert_knobs_in_table(&found, pat);
        }
    }

    #[test]
    fn metrics_guard_without_request_is_inert() {
        let args = Args::parse(&[]).expect("parse");
        std::env::remove_var(METRICS_ADDR_ENV);
        let Ok(guard) = MetricsGuard::from_args(&args) else {
            panic!("no server requested must not fail");
        };
        assert!(guard.server.is_none());
        guard.finish();
    }
}
