//! `shm` — command-line driver for the secure-GPU-memory simulator.
//!
//! ```text
//! shm list                                      benchmarks and designs
//! shm run -b fdtd2d -d SHM [--events N]         one (benchmark, design) run
//! shm run --trace file.trace -d PSSM            replay a stored trace
//! shm sweep -b kmeans [--events N] [--csv]      all designs on one benchmark
//! shm sweep -b kmeans --journal s.jsonl --resume   checkpointed sweep
//! shm crash --seed 7 --sweep                    power-cut recovery matrix
//! shm chaos --schedule smoke --seed 7           cluster fault gauntlet
//! shm trace gen -b lbm -o lbm.trace [--events N]
//! shm trace info lbm.trace
//! ```
//!
//! Exit codes: 0 success, 1 runtime failure, 2 usage, 3 broken integrity
//! claim, 4 silent divergence in a chaos campaign, 130 interrupted
//! (SIGINT/SIGTERM; journaled sweeps stay resumable).

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use gpu_mem_sim::{read_trace, write_trace, ContextTrace, DesignPoint, EnergyModel, Simulator};
use gpu_types::{GpuConfig, SimStats, TrafficClass};
use shm_recovery::{
    config_hash, crash_sweep, map_journaled, run_crash, CrashConfig, JobJournal, SweepOptions,
};
use shm_runtime::{BufferKind, Context, RecoveryPolicy};
use shm_telemetry::{Event, Probe, TelemetryConfig};
use shm_workloads::BenchmarkProfile;
use sim_exec::{CancelToken, Executor};

mod args;
mod obs;
mod report;
mod serve_cmd;

use args::{ArgError, Args};

/// A CLI failure: message, process exit code, and (when telemetry was on)
/// the probe whose flight recorder is dumped before exiting.
struct CliError {
    message: String,
    code: u8,
    probe: Probe,
}

impl CliError {
    /// Usage / argument error (exit code 2, no flight recorder).
    fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 2,
            probe: Probe::disabled(),
        }
    }

    /// Runtime failure after simulation started (exit code 1); dumps the
    /// probe's flight recorder so the last events before the failure are
    /// visible.
    fn runtime(message: impl Into<String>, probe: &Probe) -> Self {
        Self {
            message: message.into(),
            code: 1,
            probe: probe.clone(),
        }
    }

    /// Integrity failure: an attack campaign ended with an undetected
    /// tamper, a wrong-variant detection, or a false alarm (exit code 3,
    /// distinct from ordinary runtime failures so scripts can tell a
    /// broken security claim from a crashed run).
    fn integrity(message: impl Into<String>, probe: &Probe) -> Self {
        Self {
            message: message.into(),
            code: 3,
            probe: probe.clone(),
        }
    }

    /// Chaos-campaign failure: at least one fault-injection scenario ended
    /// in silent divergence — the cluster said "success" with wrong bytes
    /// (exit code 4, distinct from integrity so scripts can tell a broken
    /// distributed-robustness claim from a missed tamper).
    fn chaos(message: impl Into<String>, probe: &Probe) -> Self {
        Self {
            message: message.into(),
            code: 4,
            probe: probe.clone(),
        }
    }

    /// Cooperative cancellation (SIGINT/SIGTERM or an injected crash point)
    /// stopped the run early. Exit code 130 so scripts can tell an
    /// interrupted-but-resumable sweep from a failed one.
    fn interrupted(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 130,
            probe: Probe::disabled(),
        }
    }

    /// Prints the report and returns the process exit code.
    fn report(self) -> ExitCode {
        eprintln!("error: {}", self.message);
        if let Some(dump) = self.probe.flight_dump().filter(|d| !d.is_empty()) {
            eprintln!("--- flight recorder (last events before failure) ---");
            eprint!("{dump}");
        }
        if self.code == 2 {
            eprintln!("run `shm help` for usage");
        }
        ExitCode::from(self.code)
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::usage(message)
    }
}

fn main() -> ExitCode {
    install_signal_handlers();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => e.report(),
    }
}

/// Routes SIGINT/SIGTERM into sim-exec's cooperative cancellation: workers
/// finish their in-flight jobs (journaling each one) and stop pulling new
/// work, so journals and sinks stay valid.  Uses the C runtime's `signal`
/// directly — the handler only stores to an atomic, which is async-signal
/// safe.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: std::ffi::c_int) {
        sim_exec::request_cancel();
    }
    extern "C" {
        fn signal(signum: std::ffi::c_int, handler: extern "C" fn(std::ffi::c_int)) -> usize;
    }
    const SIGINT: std::ffi::c_int = 2;
    const SIGTERM: std::ffi::c_int = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn dispatch(argv: &[String]) -> Result<(), CliError> {
    let Some(cmd) = argv.first().map(String::as_str) else {
        print_help();
        return Ok(());
    };
    let rest = &argv[1..];
    match cmd {
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        "list" => {
            cmd_list();
            Ok(())
        }
        "run" => cmd_run(Args::parse(rest).map_err(stringify)?),
        "attack" => cmd_attack(Args::parse(rest).map_err(stringify)?),
        "crash" => cmd_crash(Args::parse(rest).map_err(stringify)?),
        "sweep" => cmd_sweep(Args::parse(rest).map_err(stringify)?),
        "worker" => cmd_worker(Args::parse(rest).map_err(stringify)?),
        "serve" => serve_cmd::cmd_serve(Args::parse(rest).map_err(stringify)?),
        "loadgen" => serve_cmd::cmd_loadgen(Args::parse(rest).map_err(stringify)?),
        "chaos" => cmd_chaos(Args::parse(rest).map_err(stringify)?),
        "trace-report" => obs::cmd_trace_report(rest),
        "top" => obs::cmd_top(&Args::parse(rest).map_err(stringify)?),
        "env" => {
            obs::cmd_env();
            Ok(())
        }
        "trace" => match rest.first().map(String::as_str) {
            Some("gen") => Ok(cmd_trace_gen(Args::parse(&rest[1..]).map_err(stringify)?)?),
            Some("info") => Ok(cmd_trace_info(&rest[1..])?),
            other => Err(CliError::usage(format!(
                "unknown trace subcommand {other:?}"
            ))),
        },
        other => Err(CliError::usage(format!("unknown command {other:?}"))),
    }
}

/// Builds the probe requested by `--telemetry` / `--epoch-cycles N`;
/// disabled (zero-cost) when the flag is absent.
fn telemetry_probe(args: &Args) -> Result<Probe, String> {
    if !args.flag("telemetry") {
        if args.get("trace-out").is_some()
            || args.get("epoch-cycles").is_some()
            || args.get("epoch-csv").is_some()
        {
            return Err("--trace-out/--epoch-cycles/--epoch-csv require --telemetry".into());
        }
        return Ok(Probe::disabled());
    }
    let mut cfg = TelemetryConfig::default();
    if let Some(n) = args.get_u64("epoch-cycles")? {
        cfg.epoch_cycles = n.max(1);
    }
    // With --trace-out the JSONL document streams to disk as the run
    // produces it, instead of accumulating every sampled event in memory.
    let probe = if let Some(path) = args.get("trace-out") {
        Probe::enabled_streaming(cfg, Path::new(path)).map_err(|e| format!("create {path}: {e}"))?
    } else {
        Probe::enabled(cfg)
    };
    probe.install_panic_hook();
    Ok(probe)
}

fn stringify(e: ArgError) -> String {
    e.to_string()
}

fn print_help() {
    println!(
        "shm — secure GPU memory simulator (SHM, HPCA 2022 reproduction)\n\n\
         commands:\n\
         \x20 list                                 benchmarks and designs\n\
         \x20 run   -b <bench> -d <design> [--events N] [--seed S] [--jobs N]\n\
         \x20 run   --trace <file> -d <design>     replay a stored trace\n\
         \x20 run   --custom ro=0.9,stream=0.95,write=0.05 -d SHM\n\
         \x20 run   ... --telemetry [--epoch-cycles N] [--trace-out t.jsonl] [--epoch-csv e.csv]\n\
         \x20 run   ... --profile                  phase self-profiler (forces --jobs 1)\n\
         \x20 run   ... --pools gpu-only|static-split|hot-page-migrate   heterogeneous\n\
         \x20        CPU+GPU pools (SHM_POOL_*/SHM_LINK_* shape them; default single-pool)\n\
         \x20 sweep -b <bench> [--events N] [--csv] [--jobs N]\n\
         \x20 sweep -b <bench> --pools <policy|all>   placement-policy sweep: design\n\
         \x20        rows per policy plus migration/spill/link counters\n\
         \x20 sweep ... --journal <file> [--resume]  checkpoint results; SIGINT/SIGTERM\n\
         \x20        stops gracefully (exit 130) and --resume skips completed jobs\n\
         \x20 sweep -b <bench> --dist HOST:PORT    run the sweep on a worker cluster\n\
         \x20        (SHM_DIST_WORKERS=N spawns loopback workers; composes with --journal)\n\
         \x20 sweep ... --metrics-addr HOST:PORT [--metrics-hold-ms N]   live /metrics\n\
         \x20        endpoint (Prometheus text); --dist adds [--heartbeat-timeout-ms N]\n\
         \x20 worker --connect HOST:PORT [--jobs N] [--id NAME] [--heartbeat-ms N]\n\
         \x20        [--reconnect-attempts N] [--metrics-addr HOST:PORT]   serve sweep jobs\n\
         \x20 serve --listen HOST:PORT [--queue-depth N] [--deadline-ms N] [--drain-ms N]\n\
         \x20        [--idle-ms N] [--max-tenants N] [--jobs N] [--journal-dir D]\n\
         \x20        [--tokens FILE] [--metrics-addr HOST:PORT]   multi-tenant sweep\n\
         \x20        daemon; --tokens gates hellos on a tenant:token table; SIGTERM\n\
         \x20        drains gracefully (finish or cancel in-flight, flush journals, exit 0)\n\
         \x20 loadgen --connect HOST:PORT [--tenants N] [--rps R] [--duration S]\n\
         \x20        [--chaos-seed K] [-b BENCH] [--events N] [--deadline-ms N]\n\
         \x20        [--token T] [--table-out FILE]  drive a serve daemon and verify no\n\
         \x20        silent divergence from the serial reference; exit 4 on wrong bytes\n\
         \x20 chaos [--schedule smoke|full] [--seed S] [--scale X] [--dir D]   fault-\n\
         \x20        injection campaign on the cluster; exit 4 on silent divergence\n\
         \x20 trace-report <file.jsonl> [--top N]  span timeline from a telemetry trace\n\
         \x20 top --connect HOST:PORT [--interval-ms N] [--iterations N] [--once]\n\
         \x20        live cluster monitor over a /metrics endpoint\n\
         \x20 env                                  every SHM_* environment knob\n\
         \x20 attack --campaign smoke|full [--seed S] [--policy abort|retry|quarantine]\n\
         \x20        [--telemetry ...]            adversary campaign; exit 3 on any miss\n\
         \x20 crash --at-cycle N [--seed S] [--ops K] [--flush F]   cut power at a\n\
         \x20        micro-op cycle, recover, classify; --sweep covers every cycle\n\
         \x20 trace gen  -b <bench> -o <file> [--events N] [--seed S]\n\
         \x20 trace info <file>\n"
    );
}

fn cmd_list() {
    println!("benchmarks (Table VII):");
    for p in BenchmarkProfile::suite() {
        println!(
            "  {:<16} util {:>3.0}%  read-only {:>3.0}%  streaming {:>3.0}%  writes {:>3.0}%{}",
            p.name,
            p.bandwidth_util * 100.0,
            p.readonly_frac * 100.0,
            p.streaming_frac * 100.0,
            p.write_frac * 100.0,
            if p.uses_texture { "  [texture]" } else { "" }
        );
    }
    println!("\ndesigns (Table VIII):");
    for d in DesignPoint::ALL {
        println!("  {}", d.name());
    }
}

/// Builds a one-off profile from `--custom ro=0.8,stream=0.9,write=0.1,...`.
fn custom_profile(spec: &str) -> Result<BenchmarkProfile, String> {
    let mut p = BenchmarkProfile {
        name: "custom",
        bandwidth_util: 0.5,
        readonly_frac: 0.5,
        streaming_frac: 0.5,
        write_frac: 0.2,
        l2_locality: 0.3,
        uses_texture: false,
        kernels: 1,
        reuses_input: false,
        unmarked_readonly_frac: 0.0,
        ..BenchmarkProfile::suite().remove(0)
    };
    for kv in spec.split(',').filter(|s| !s.is_empty()) {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| format!("bad --custom entry {kv:?}, want key=value"))?;
        let fval = || -> Result<f64, String> {
            v.parse().map_err(|_| format!("bad number {v:?} for {k}"))
        };
        match k {
            "ro" | "readonly" => p.readonly_frac = fval()?,
            "stream" | "streaming" => p.streaming_frac = fval()?,
            "write" | "writes" => p.write_frac = fval()?,
            "util" | "bandwidth" => p.bandwidth_util = fval()?,
            "locality" => p.l2_locality = fval()?,
            "kernels" => p.kernels = v.parse().map_err(|_| format!("bad count {v:?}"))?,
            "texture" => p.uses_texture = v == "1" || v == "true",
            "reuse" => p.reuses_input = v == "1" || v == "true",
            "footprint_mb" => {
                p.footprint_bytes = v.parse::<u64>().map_err(|_| format!("bad size {v:?}"))? << 20
            }
            other => return Err(format!("unknown --custom key {other:?}")),
        }
    }
    if p.readonly_frac + p.write_frac > 1.0 {
        return Err(format!(
            "ro ({}) + write ({}) exceeds 1.0: writes never target read-only data",
            p.readonly_frac, p.write_frac
        ));
    }
    Ok(p)
}

fn load_trace(args: &Args) -> Result<ContextTrace, String> {
    if let Some(path) = args.get("trace") {
        let f = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        return read_trace(BufReader::new(f)).map_err(|e| format!("parse {path}: {e}"));
    }
    if let Some(spec) = args.get("custom") {
        let mut profile = custom_profile(spec)?;
        if let Some(n) = args.get_u64("events")? {
            profile.events_per_kernel = n;
        }
        let seed = args.get_u64("seed")?.unwrap_or(0xBEEF);
        return Ok(profile.generate(seed));
    }
    let bench = args
        .get("b")
        .or_else(|| args.get("benchmark"))
        .ok_or("need --benchmark/-b or --trace")?;
    let mut profile =
        BenchmarkProfile::by_name(bench).ok_or_else(|| format!("unknown benchmark {bench:?}"))?;
    if let Some(n) = args.get_u64("events")? {
        profile.events_per_kernel = n;
    }
    let seed = args.get_u64("seed")?.unwrap_or(0xBEEF);
    Ok(profile.generate(seed))
}

/// `--pools <policy>` → heterogeneous-pool configuration (env knobs
/// applied); `None` when the flag is absent (single-pool default).
fn parse_pools(args: &Args) -> Result<Option<shm_pool::PoolsConfig>, String> {
    let Some(raw) = args.get("pools") else {
        return Ok(None);
    };
    let policy = shm_pool::PlacementPolicy::parse(raw).ok_or_else(|| {
        format!("unknown --pools {raw:?} (want gpu-only|static-split|hot-page-migrate)")
    })?;
    Ok(Some(shm_pool::PoolsConfig::from_env(policy)))
}

/// `--pools <policy|all>` → the policy list a sweep covers.
fn parse_pools_list(args: &Args) -> Result<Option<Vec<shm_pool::PlacementPolicy>>, String> {
    let Some(raw) = args.get("pools") else {
        return Ok(None);
    };
    if raw == "all" {
        return Ok(Some(shm_pool::PlacementPolicy::ALL.to_vec()));
    }
    shm_pool::PlacementPolicy::parse(raw)
        .map(|p| Some(vec![p]))
        .ok_or_else(|| {
            format!("unknown --pools {raw:?} (want gpu-only|static-split|hot-page-migrate|all)")
        })
}

fn parse_design(args: &Args) -> Result<DesignPoint, String> {
    let name = args
        .get("d")
        .or_else(|| args.get("design"))
        .ok_or("need --design/-d")?;
    DesignPoint::from_name(name).ok_or_else(|| format!("unknown design {name:?}"))
}

/// Resolves the worker-pool width for `--jobs N` (`None` defers to
/// `SHM_JOBS` / available parallelism).  `--jobs 0` or a non-numeric value
/// means "auto" with a stderr warning, mirroring the `SHM_JOBS` policy.
fn parse_jobs(args: &Args) -> Result<Option<usize>, String> {
    let Some(raw) = args.get("jobs") else {
        return Ok(None);
    };
    let parsed = sim_exec::parse_jobs_spec(raw);
    if parsed.is_none() {
        eprintln!(
            "warning: ignoring --jobs {raw:?} (expected a positive integer); \
             using auto parallelism"
        );
    }
    Ok(parsed)
}

fn cmd_run(args: Args) -> Result<(), CliError> {
    let profiling = args.flag("profile");
    if profiling {
        // Phase timers are process-global, so profiled runs are serial —
        // concurrent jobs would double-charge wall time to the phases.
        // Always say so: an SHM_JOBS setting is silently overridden too.
        eprintln!("note: --profile forces --jobs 1 (phase timers are process-global)");
        shm_metrics::phase::enable_profiling();
        shm_metrics::phase::reset_phases();
    }
    let profile_started = Instant::now();
    let trace = load_trace(&args)?;
    let design = parse_design(&args)?;
    let probe = telemetry_probe(&args)?;
    let jobs = if profiling {
        Some(1)
    } else {
        parse_jobs(&args)?
    };
    let pools = parse_pools(&args)?;
    let cfg = GpuConfig::default();
    // The baseline and the protected design are independent runs — two jobs
    // on the shared pool.  Only the design run carries the probe.
    let designs = [DesignPoint::Unprotected, design];
    let mut results = Executor::from_request(jobs)
        .try_map(
            &designs,
            |_, d| format!("{} under {}", trace.name, d.name()),
            |i, &d| {
                let mut sim = Simulator::new(&cfg, d);
                // Both runs see the same pool geometry, so the normalized
                // IPC compares designs, not memory systems.
                if let Some(p) = pools {
                    sim = sim.with_pools(p);
                }
                let sim = if i == 1 {
                    sim.with_probe(probe.clone())
                } else {
                    sim
                };
                sim.run(&trace)
            },
        )
        .map_err(|e| CliError::runtime(format!("simulation failed: {e}"), &probe))?;
    let profiled_wall_ns = profile_started.elapsed().as_nanos() as u64;
    let mut take = || {
        results
            .pop()
            .ok_or_else(|| CliError::runtime("executor returned fewer results than jobs", &probe))
    };
    let stats = take()?;
    let base = take()?;
    report::print_run(&trace, design, &stats, &base, &EnergyModel::default());
    if let Some(p) = pools {
        println!(
            "pools ({}): migrations {}  spills {}  cpu accesses {}  capacity events {}  \
             link to-gpu {} B  to-cpu {} B",
            p.policy.label(),
            stats.pool_migrations,
            stats.pool_spills,
            stats.pool_cpu_accesses,
            stats.pool_capacity_events,
            stats.link_bytes_to_gpu,
            stats.link_bytes_to_cpu,
        );
    }
    if probe.is_enabled() {
        if let Some(s) = probe.summary() {
            println!("{s}");
        }
        if let Some(path) = args.get("trace-out") {
            // The document streamed to disk during the run; surface any
            // write error the sink swallowed mid-run.
            if let Some(e) = probe.stream_error() {
                return Err(CliError::runtime(format!("write {path}: {e}"), &probe));
            }
            println!("telemetry trace streamed to {path}");
        }
        if let Some(path) = args.get("epoch-csv") {
            probe
                .write_epoch_csv(Path::new(path))
                .map_err(|e| CliError::runtime(format!("write {path}: {e}"), &probe))?;
            println!("epoch CSV written to {path}");
        }
    }
    if profiling {
        print!("{}", shm_metrics::phase::report());
        let covered = shm_metrics::phase::total_nanos();
        println!(
            "profile: phases cover {:.1}% of {:.1} ms wall",
            100.0 * covered as f64 / profiled_wall_ns.max(1) as f64,
            profiled_wall_ns as f64 / 1e6
        );
    }
    Ok(())
}

/// `--policy abort|retry|quarantine` → runtime recovery policy.
fn parse_policy(args: &Args) -> Result<Option<RecoveryPolicy>, String> {
    match args.get("policy") {
        None => Ok(None),
        Some("abort") => Ok(Some(RecoveryPolicy::Abort)),
        Some("retry") => Ok(Some(RecoveryPolicy::RetryOnce)),
        Some("quarantine") => Ok(Some(RecoveryPolicy::Quarantine)),
        Some(other) => Err(format!(
            "unknown --policy {other:?} (want abort|retry|quarantine)"
        )),
    }
}

fn cmd_attack(args: Args) -> Result<(), CliError> {
    let campaign = args.get("campaign").unwrap_or("smoke").to_string();
    let seed = args.get_u64("seed")?.unwrap_or(7);
    let policy = parse_policy(&args)?;
    let probe = telemetry_probe(&args)?;
    let report = shm_fault::run_campaign(&campaign, seed).ok_or_else(|| {
        CliError::usage(format!("unknown campaign {campaign:?} (want smoke|full)"))
    })?;
    if probe.is_enabled() {
        // Replay the campaign's verdicts into the telemetry stream so the
        // flight recorder and JSONL trace carry one `integrity_violation`
        // event per detection (cycle = incident index in execution order).
        for (cycle, inc) in report.incidents.iter().enumerate() {
            if let Some(observed) = inc.observed {
                probe.emit(
                    cycle as u64,
                    Event::IntegrityViolation {
                        addr: inc.addr,
                        kind: observed.label(),
                        action: if inc.recovered {
                            "retry_recovered"
                        } else {
                            "abort"
                        },
                    },
                );
            }
        }
    }
    print!("{}", report.render());
    if let Some(policy) = policy {
        run_policy_demo(policy, seed, &probe)?;
    }
    if probe.is_enabled() {
        if let Some(s) = probe.summary() {
            println!("{s}");
        }
    }
    if !report.is_clean_pass() {
        let silent: usize = report.matrix.iter().map(|(_, e)| e.silent).sum();
        return Err(CliError::integrity(
            format!(
                "campaign {} (seed {}) broke the security claim: {}/{} detected, {} silent, {} false alarms",
                report.name,
                report.seed,
                report.total_detected(),
                report.total_injected(),
                silent,
                report.false_alarms,
            ),
            &probe,
        ));
    }
    Ok(())
}

/// Runs one tampered kernel under the requested recovery policy and prints
/// what the runtime did about it: a transient fault (absorbable by
/// retry-fetch-once) plus a persistent ciphertext flip on the next block.
fn run_policy_demo(policy: RecoveryPolicy, seed: u64, probe: &Probe) -> Result<(), CliError> {
    let fail = |e: shm_runtime::RuntimeError| CliError::runtime(format!("policy demo: {e}"), probe);
    let mut ctx = Context::new(seed)
        .with_recovery(policy)
        .with_probe(probe.clone());
    let buf = ctx.alloc(1024, BufferKind::Scratch).map_err(fail)?;
    ctx.memcpy_to_device(buf, &[0xA5; 1024]).map_err(fail)?;
    let base = ctx.device_address(buf).map_err(fail)?;
    ctx.secure_memory_mut().inject_transient_fault(base, 3, 1);
    ctx.secure_memory_mut()
        .tamper_ciphertext_bit(base + 128, 0, 1);
    let outcome = ctx.launch("policy-demo", |k| {
        for block in 0..8u64 {
            let _ = k.load_u8(buf, block * 128)?;
        }
        Ok(())
    });
    println!(
        "policy {:?}: kernel {}, {} violation(s) recorded, degraded={}",
        policy,
        match outcome {
            Ok(()) => "completed".to_string(),
            Err(e) => format!("aborted ({e})"),
        },
        ctx.violations().len(),
        ctx.is_degraded(),
    );
    for v in ctx.violations() {
        println!("  {v}");
    }
    Ok(())
}

/// `shm crash`: cut power at a micro-op cycle inside a seeded secure-memory
/// workload, run log-replay recovery, and classify the outcome.  Any silent
/// divergence from the golden run breaks the crash-consistency claim (exit
/// code 3, like a missed tamper in `shm attack`).
fn cmd_crash(args: Args) -> Result<(), CliError> {
    let seed = args.get_u64("seed")?.unwrap_or(7);
    let ops = args.get_u64("ops")?.unwrap_or(12) as usize;
    let flush = args.get_u64("flush")?.unwrap_or(1) as usize;
    if args.flag("sweep") {
        let report = crash_sweep(seed, ops, flush);
        print!("{}", report.render());
        if report.total_silent_divergences() > 0 {
            return Err(CliError::integrity(
                format!(
                    "crash sweep (seed {seed}) served {} silently diverged read(s)",
                    report.total_silent_divergences()
                ),
                &Probe::disabled(),
            ));
        }
        return Ok(());
    }
    let at_cycle = args
        .get_u64("at-cycle")?
        .ok_or_else(|| CliError::usage("need --at-cycle N (or --sweep to cover every cycle)"))?;
    let cfg = CrashConfig {
        ops,
        flush_interval: flush,
        ..CrashConfig::smoke(seed, at_cycle)
    };
    let total_cycles = cfg.total_cycles();
    let (n_ops, flush_interval) = (cfg.ops, cfg.flush_interval);
    let report = run_crash(cfg);
    println!(
        "crash at cycle {at_cycle}/{total_cycles} (seed {seed}, {n_ops} ops, flush every {flush_interval}):"
    );
    println!(
        "  committed ops {}  torn phase {}  torn addr {}",
        report.committed_ops,
        report.torn_phase,
        report
            .torn_addr
            .map_or("none".to_string(), |a| format!("{a:#x}")),
    );
    for (addr, outcome) in &report.regions {
        println!("  region {addr:#06x}  {outcome:?}");
    }
    println!(
        "  outcome: {}  verified {}  silent divergences {}",
        report.outcome.label(),
        report.verified_regions,
        report.silent_divergences
    );
    if report.silent_divergences > 0 {
        return Err(CliError::integrity(
            format!(
                "crash at cycle {at_cycle} (seed {seed}) served {} silently diverged read(s)",
                report.silent_divergences
            ),
            &Probe::disabled(),
        ));
    }
    Ok(())
}

fn cmd_sweep(args: Args) -> Result<(), CliError> {
    // The /metrics endpoint (when requested) covers the whole sweep and is
    // shut down after the table prints, honoring --metrics-hold-ms.
    let metrics = obs::MetricsGuard::from_args(&args)?;
    let result = cmd_sweep_inner(&args);
    metrics.finish();
    result
}

fn cmd_sweep_inner(args: &Args) -> Result<(), CliError> {
    if let Some(policies) = parse_pools_list(args)? {
        if args.get("dist").is_some() || args.get("journal").is_some() {
            return Err(CliError::usage(
                "--pools does not compose with --dist/--journal yet",
            ));
        }
        return cmd_sweep_pools(args, &policies);
    }
    if let Some(bind) = args.get("dist") {
        let bind = bind.to_string();
        let stats = sweep_dist(args, &bind)?;
        print_sweep_table(&stats, args.flag("csv"));
        return Ok(());
    }
    let trace = load_trace(args)?;
    let probe = telemetry_probe(args)?;
    let jobs = parse_jobs(args)?;
    let cfg = GpuConfig::default();
    // All design points are independent — sweep them on the pool, then
    // print in the fixed `ALL` order (results come back in that order).
    let all = DesignPoint::ALL;
    let exec = Executor::from_request(jobs);
    let stats: Vec<SimStats> = if let Some(path) = args.get("journal") {
        sweep_journaled(args, &trace, &cfg, &exec, path)?
    } else {
        if args.flag("resume") || args.get("crash-after-jobs").is_some() {
            return Err(CliError::usage(
                "--resume/--crash-after-jobs require --journal <file>",
            ));
        }
        // Per-job wall timings, recorded by the worker threads so the
        // local path emits the same span tree a --dist sweep does.
        let sweep_started = Instant::now();
        let timings: std::sync::Mutex<Vec<(usize, u64, u64, u64)>> =
            std::sync::Mutex::new(Vec::new());
        let stats = exec
            .try_map(
                &all,
                |_, d| format!("{} under {}", trace.name, d.name()),
                |i, &d| {
                    let begun = Instant::now();
                    let begun_ms = sweep_started.elapsed().as_millis() as u64;
                    let s = Simulator::new(&cfg, d).run(&trace);
                    let run_ns = begun.elapsed().as_nanos() as u64;
                    timings.lock().unwrap_or_else(|e| e.into_inner()).push((
                        i,
                        begun_ms,
                        sweep_started.elapsed().as_millis() as u64,
                        run_ns,
                    ));
                    s
                },
            )
            .map_err(|e| CliError::runtime(format!("sweep failed: {e}"), &probe))?;
        if probe.is_enabled() {
            emit_local_sweep_spans(&probe, &trace.name, &stats, timings.into_inner().unwrap());
        }
        stats
    };
    print_sweep_table(&stats, args.flag("csv"));
    finish_sweep_telemetry(args, &probe)?;
    Ok(())
}

/// `shm sweep --pools <policy|all>`: every design under every requested
/// placement policy.  The `(policy × design)` grid is one submission-order
/// `try_map`, so the rendered tables are identical at any `--jobs` count.
/// This path uses its own formatter; the default single-pool sweep table is
/// untouched.
fn cmd_sweep_pools(args: &Args, policies: &[shm_pool::PlacementPolicy]) -> Result<(), CliError> {
    let trace = load_trace(args)?;
    let probe = telemetry_probe(args)?;
    let jobs = parse_jobs(args)?;
    let cfg = GpuConfig::default();
    let all = DesignPoint::ALL;
    let pairs: Vec<(shm_pool::PlacementPolicy, DesignPoint)> = policies
        .iter()
        .flat_map(|&p| all.iter().map(move |&d| (p, d)))
        .collect();
    let stats = Executor::from_request(jobs)
        .try_map(
            &pairs,
            |_, &(p, d)| format!("{} under {} [{}]", trace.name, d.name(), p.label()),
            |_, &(p, d)| {
                Simulator::new(&cfg, d)
                    .with_pools(shm_pool::PoolsConfig::from_env(p))
                    .run(&trace)
            },
        )
        .map_err(|e| CliError::runtime(format!("pool sweep failed: {e}"), &probe))?;
    print!(
        "{}",
        format_pool_sweep_tables(policies, &stats, args.flag("csv"))
    );
    finish_sweep_telemetry(args, &probe)?;
    Ok(())
}

/// Renders the `--pools` sweep: one design table per policy, each followed
/// by that policy's migration/spill/link counter line.
fn format_pool_sweep_tables(
    policies: &[shm_pool::PlacementPolicy],
    stats: &[SimStats],
    csv: bool,
) -> String {
    use std::fmt::Write as _;
    let per = DesignPoint::ALL.len();
    let mut out = String::new();
    for (i, &policy) in policies.iter().enumerate() {
        let slice = &stats[i * per..(i + 1) * per];
        let _ = writeln!(out, "== pools: {} ==", policy.label());
        out.push_str(&format_sweep_table(slice, csv));
        // Pool counters are policy-shaped but design-independent in intent;
        // report the SHM design's row (the paper's scheme).
        let shm = slice
            .iter()
            .zip(DesignPoint::ALL)
            .find(|(_, d)| *d == DesignPoint::Shm)
            .map(|(s, _)| s)
            .unwrap_or(&slice[0]);
        let _ = writeln!(
            out,
            "pool counters (SHM row): migrations {}  spills {}  cpu accesses {}  \
             capacity events {}  link to-gpu {} B  to-cpu {} B\n",
            shm.pool_migrations,
            shm.pool_spills,
            shm.pool_cpu_accesses,
            shm.pool_capacity_events,
            shm.link_bytes_to_gpu,
            shm.link_bytes_to_cpu,
        );
    }
    out
}

/// Converts the local executor's per-job timings into the canonical span
/// tree (`shm_telemetry::span::build_job_spans`), so `--jobs N` and
/// `--dist` sweeps produce structurally identical traces.
fn emit_local_sweep_spans(
    probe: &Probe,
    bench: &str,
    stats: &[SimStats],
    mut timings: Vec<(usize, u64, u64, u64)>,
) {
    use shm_telemetry::span::JobSpanInput;
    timings.sort_by_key(|t| t.0);
    let inputs: Vec<JobSpanInput> = timings
        .into_iter()
        .map(|(i, dispatch_ms, end_ms, run_ns)| JobSpanInput {
            index: i,
            label: format!("{} under {}", bench, DesignPoint::ALL[i].name()),
            worker: "local".to_string(),
            dispatch_ms,
            end_ms,
            run_ns,
            cycles: stats.get(i).map_or(0, |s| s.cycles),
        })
        .collect();
    let trace_id = shm_telemetry::wall_ms().wrapping_mul(1_000_000) | 1;
    probe.emit_job_spans(trace_id, &format!("sweep {bench}"), &inputs);
}

/// Shared `--telemetry` epilogue for sweep paths that never run a
/// simulator in-process with the probe attached: close the document and
/// surface any `--trace-out` / `--epoch-csv` outputs.
fn finish_sweep_telemetry(args: &Args, probe: &Probe) -> Result<(), CliError> {
    if !probe.is_enabled() {
        return Ok(());
    }
    probe.finalize(0);
    if let Some(s) = probe.summary() {
        println!("{s}");
    }
    if let Some(path) = args.get("trace-out") {
        if let Some(e) = probe.stream_error() {
            return Err(CliError::runtime(format!("write {path}: {e}"), probe));
        }
        println!("telemetry trace streamed to {path}");
    }
    if let Some(path) = args.get("epoch-csv") {
        probe
            .write_epoch_csv(Path::new(path))
            .map_err(|e| CliError::runtime(format!("write {path}: {e}"), probe))?;
        println!("epoch CSV written to {path}");
    }
    Ok(())
}

/// Prints the design table for one sweep; both the local and the
/// distributed path end here so their stdout is byte-identical.
fn print_sweep_table(stats: &[SimStats], csv: bool) {
    print!("{}", format_sweep_table(stats, csv));
}

/// Renders the design table for one sweep.  Every consumer — local sweep,
/// `--dist` sweep, and `shm loadgen --table-out` — goes through this one
/// formatter so their tables are byte-identical by construction.
fn format_sweep_table(stats: &[SimStats], csv: bool) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let all = DesignPoint::ALL;
    let energy = EnergyModel::default();
    // ALL[0] is the unprotected baseline every row normalizes against.
    let base = stats[0].clone();
    if csv {
        let _ = writeln!(
            out,
            "design,norm_ipc,cycles,metadata_bytes,overhead,energy_per_instr"
        );
    } else {
        let _ = writeln!(
            out,
            "{:<16} {:>9} {:>11} {:>13} {:>9} {:>8}",
            "design", "norm IPC", "cycles", "metadata B", "overhead", "epi"
        );
    }
    for (d, s) in all.iter().zip(stats) {
        let norm = base.cycles as f64 / s.cycles as f64;
        if csv {
            let _ = writeln!(
                out,
                "{},{:.4},{},{},{:.4},{:.4}",
                d.name(),
                norm,
                s.cycles,
                s.traffic.metadata_bytes(),
                s.traffic.overhead_ratio(),
                energy.normalized_epi(s, &base)
            );
        } else {
            let _ = writeln!(
                out,
                "{:<16} {:>9.4} {:>11} {:>13} {:>8.2}% {:>8.3}",
                d.name(),
                norm,
                s.cycles,
                s.traffic.metadata_bytes(),
                s.traffic.overhead_ratio() * 100.0,
                energy.normalized_epi(s, &base)
            );
        }
    }
    out
}

/// `shm sweep --dist HOST:PORT`: runs the design sweep on a sim-dist worker
/// cluster.  Requires a *named* benchmark — workers regenerate the trace
/// from its (name, events, seed) triple, so stored traces and `--custom`
/// profiles cannot be shipped over the wire.  Composes with
/// `--journal`/`--resume` using the exact hash recipe of the local path, so
/// a journal written locally resumes distributed and vice versa (entries
/// gain a `worker` attribution when they come from the cluster).
fn sweep_dist(args: &Args, bind: &str) -> Result<Vec<SimStats>, CliError> {
    use shm_bench::dist::{run_dist_jobs, DistSweepConfig, SimJob};
    use shm_recovery::JournalCodec;
    use sim_dist::{DistError, DistJob};

    if args.get("trace").is_some() || args.get("custom").is_some() {
        return Err(CliError::usage(
            "--dist needs a named benchmark (-b): workers regenerate the trace from its name",
        ));
    }
    let bench = args
        .get("b")
        .or_else(|| args.get("benchmark"))
        .ok_or_else(|| CliError::usage("need --benchmark/-b with --dist"))?
        .to_string();
    let mut profile = BenchmarkProfile::by_name(&bench)
        .ok_or_else(|| CliError::usage(format!("unknown benchmark {bench:?}")))?;
    if let Some(n) = args.get_u64("events")? {
        profile.events_per_kernel = n;
    }
    let seed = args.get_u64("seed")?.unwrap_or(0xBEEF);
    let probe = telemetry_probe(args)?;
    let mut cfg = DistSweepConfig::from_env(bind);
    if let Some(ms) = args.get_u64("heartbeat-timeout-ms")? {
        cfg.opts.heartbeat_timeout_ms = ms.max(1);
    }
    let all = DesignPoint::ALL;

    let all_jobs: Vec<DistJob> = all
        .iter()
        .map(|d| DistJob {
            label: format!("{bench} under {}", d.name()),
            payload: SimJob {
                bench: bench.clone(),
                events_per_kernel: profile.events_per_kernel,
                seed,
                design: d.name().to_string(),
            }
            .encode(),
        })
        .collect();

    let mut journal = match args.get("journal") {
        Some(path) => {
            if !args.flag("resume") && Path::new(path).exists() {
                return Err(CliError::usage(format!(
                    "journal {path} already exists; pass --resume to continue it or remove it first"
                )));
            }
            // Same hash parts as `sweep_journaled`: trace content (name +
            // event count) plus the design list.
            let trace = profile.generate(seed);
            let mut parts: Vec<String> = vec![
                trace.name.to_string(),
                trace.all_events().count().to_string(),
            ];
            parts.extend(all.iter().map(|d| d.name().to_string()));
            let part_refs: Vec<&str> = parts.iter().map(String::as_str).collect();
            let journal = JobJournal::open(Path::new(path), config_hash(&part_refs))
                .map_err(|e| CliError::runtime(format!("journal {path}: {e}"), &probe))?;
            Some((journal, path.to_string()))
        }
        None => {
            if args.flag("resume") || args.get("crash-after-jobs").is_some() {
                return Err(CliError::usage(
                    "--resume/--crash-after-jobs require --journal <file>",
                ));
            }
            None
        }
    };

    let mut results: Vec<Option<SimStats>> = Vec::with_capacity(all.len());
    let mut missing: Vec<usize> = Vec::new();
    for (i, job) in all_jobs.iter().enumerate() {
        match journal
            .as_ref()
            .and_then(|(j, _)| j.get::<SimStats>(&job.label))
        {
            Some(s) => results.push(Some(s)),
            None => {
                missing.push(i);
                results.push(None);
            }
        }
    }
    let reused = all.len() - missing.len();
    if reused > 0 {
        if let Some((_, path)) = &journal {
            eprintln!(
                "resumed from {path}: {reused} job(s) reused, {} to run",
                missing.len()
            );
        }
    }

    if !missing.is_empty() {
        let jobs: Vec<DistJob> = missing.iter().map(|&i| all_jobs[i].clone()).collect();
        let labels: Vec<String> = jobs.iter().map(|j| j.label.clone()).collect();
        let token = CancelToken::new();
        let crash_after = args.get_u64("crash-after-jobs")?.map(|n| n as usize);
        let mut appended = 0usize;
        let mut io_error: Option<std::io::Error> = None;
        let mut decoded: Vec<Option<SimStats>> = vec![None; missing.len()];
        let report = run_dist_jobs(jobs, &cfg, &token, |j, worker, outcome| {
            let Ok(payload) = outcome else { return };
            let Some(stats) = SimStats::decode_journal(payload) else {
                return;
            };
            if let Some((jr, _)) = journal.as_mut() {
                if io_error.is_none() {
                    match jr.record_with_worker(&labels[j], Some(worker), &stats) {
                        Ok(()) => {
                            appended += 1;
                            if crash_after == Some(appended) {
                                token.cancel();
                            }
                        }
                        Err(e) => {
                            io_error = Some(e);
                            token.cancel();
                        }
                    }
                }
            }
            decoded[j] = Some(stats);
        });
        match report {
            Ok(rep) => {
                if let Some(e) = io_error {
                    return Err(CliError::runtime(format!("journal write: {e}"), &probe));
                }
                // Per-worker accounting: one flight-recorder event each
                // (satisfies `--telemetry`) and a stderr line so plain runs
                // see the cluster shape without touching stdout.
                for w in &rep.workers {
                    probe.emit(
                        0,
                        Event::DistWorker {
                            worker: w.id.clone(),
                            jobs: w.jobs_done,
                            bytes_rx: w.bytes_received,
                            bytes_tx: w.bytes_sent,
                            reassigned: w.reassigned,
                        },
                    );
                    eprintln!(
                        "worker {}: {} job(s), {} B dispatched, {} B of results{}",
                        w.id,
                        w.jobs_done,
                        w.bytes_sent,
                        w.bytes_received,
                        if w.reassigned > 0 {
                            format!(", {} reassigned", w.reassigned)
                        } else {
                            String::new()
                        }
                    );
                }
                if rep.reassignments > 0 {
                    eprintln!("{} job(s) reassigned after worker loss", rep.reassignments);
                }
                if probe.is_enabled() && !rep.timings.is_empty() {
                    // Same span-tree recipe as the local path: root span +
                    // one child per job, ids fixed by submission index.
                    use shm_telemetry::span::JobSpanInput;
                    let inputs: Vec<JobSpanInput> = rep
                        .timings
                        .iter()
                        .map(|t| JobSpanInput {
                            index: t.index,
                            label: labels[t.index].clone(),
                            worker: t.worker.clone(),
                            dispatch_ms: t.dispatch_ms,
                            end_ms: t.end_ms,
                            run_ns: t.run_ns,
                            cycles: decoded[t.index].as_ref().map_or(0, |s| s.cycles),
                        })
                        .collect();
                    probe.emit_job_spans(rep.trace_id, &format!("sweep {bench}"), &inputs);
                }
                let mut failed: Vec<String> = Vec::new();
                for (j, outcome) in rep.results.iter().enumerate() {
                    match outcome {
                        None => {}
                        Some(Ok(_)) => {
                            results[missing[j]] = decoded[j].take();
                            if results[missing[j]].is_none() {
                                failed.push(format!("{}: undecodable result payload", labels[j]));
                            }
                        }
                        Some(Err(p)) => failed.push(format!("{}: {}", labels[j], p.message)),
                    }
                }
                if !failed.is_empty() {
                    return Err(CliError::runtime(
                        format!("distributed sweep failed: {}", failed.join("; ")),
                        &probe,
                    ));
                }
            }
            Err(DistError::NoWorkers) => {
                // Degraded mode: nothing connected within the window, so the
                // sweep runs on the local executor instead of failing.
                eprintln!(
                    "warning: no distributed worker reachable at {bind}; \
                     running the sweep on the local executor"
                );
                let trace = profile.generate(seed);
                let gpu = GpuConfig::default();
                let designs: Vec<DesignPoint> = missing.iter().map(|&i| all[i]).collect();
                let stats = Executor::from_request(parse_jobs(args)?)
                    .try_map(
                        &designs,
                        |_, d| format!("{bench} under {}", d.name()),
                        |_, &d| Simulator::new(&gpu, d).run(&trace),
                    )
                    .map_err(|e| CliError::runtime(format!("sweep failed: {e}"), &probe))?;
                for (&i, s) in missing.iter().zip(stats) {
                    if let Some((jr, path)) = journal.as_mut() {
                        jr.record(&all_jobs[i].label, &s).map_err(|e| {
                            CliError::runtime(format!("journal {path}: {e}"), &probe)
                        })?;
                    }
                    results[i] = Some(s);
                }
            }
            Err(e) => {
                return Err(CliError::runtime(
                    format!("distributed sweep failed: {e}"),
                    &probe,
                ))
            }
        }
    }

    if results.iter().any(Option::is_none) {
        if let Some((jr, path)) = &journal {
            eprintln!(
                "interrupted: {} of {} job(s) completed and journaled in {path}",
                jr.len(),
                all.len()
            );
            for label in jr.completed_labels() {
                eprintln!("  done {label}");
            }
            eprintln!("re-run with --resume to pick up where this left off");
        }
        return Err(CliError::interrupted("distributed sweep interrupted"));
    }
    if probe.is_enabled() {
        // No simulator ran in this process, so close the telemetry document
        // here — otherwise a `--trace-out` stream never gets its trailer.
        probe.finalize(0);
        if let Some(s) = probe.summary() {
            println!("{s}");
        }
        if let Some(path) = args.get("trace-out") {
            if let Some(e) = probe.stream_error() {
                return Err(CliError::runtime(format!("write {path}: {e}"), &probe));
            }
            println!("telemetry trace streamed to {path}");
        }
        if let Some(path) = args.get("epoch-csv") {
            probe
                .write_epoch_csv(Path::new(path))
                .map_err(|e| CliError::runtime(format!("write {path}: {e}"), &probe))?;
            println!("epoch CSV written to {path}");
        }
    }
    Ok(results.into_iter().flatten().collect())
}

/// `shm worker --connect HOST:PORT`: serve sweep jobs to a coordinator.
/// Each dispatched job regenerates its trace locally and runs on this
/// host's executor pool; the process keeps reconnecting (with backoff)
/// until the coordinator shuts the cluster down.
/// `shm chaos`: run the distributed sweep through the deterministic fault
/// gauntlet (chaos proxy, byzantine workers, coordinator crash-resume) and
/// verify every scenario ends in byte-identical merged tables or a clean
/// labelled failure.  Any silent divergence exits with code 4.
fn cmd_chaos(args: Args) -> Result<(), CliError> {
    let schedule = args.get("schedule").unwrap_or("smoke").to_string();
    if schedule != "smoke" && schedule != "full" {
        return Err(CliError::usage(format!(
            "unknown schedule {schedule:?} (want smoke|full)"
        )));
    }
    let seed = args.get_u64("seed")?.unwrap_or(7);
    let scale = match args.get("scale") {
        Some(raw) => raw
            .parse::<f64>()
            .ok()
            .filter(|s| *s > 0.0)
            .ok_or_else(|| CliError::usage(format!("bad --scale {raw:?}")))?,
        None => 0.02,
    };
    let dir = args
        .get("dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join(format!("shm-chaos-{}", std::process::id())));
    let probe = telemetry_probe(&args)?;
    let metrics = obs::MetricsGuard::from_args(&args)?;

    eprintln!("chaos campaign: schedule={schedule} seed={seed} scale={scale}");
    let report = shm_bench::chaos::run_chaos_campaign(&schedule, seed, scale, &dir)
        .map_err(|e| CliError::runtime(format!("chaos campaign: {e}"), &probe))?;
    metrics.finish();
    print!("{}", report.render());
    eprintln!(
        "flight recorder: {}",
        dir.join(format!("chaos_flight_{schedule}_{seed}.jsonl"))
            .display()
    );
    let silent = report.silent_divergences();
    if silent > 0 {
        return Err(CliError::chaos(
            format!(
                "chaos campaign {schedule} (seed {seed}) found {silent} silent divergence(s) \
                 across {} scenario(s)",
                report.scenarios.len()
            ),
            &probe,
        ));
    }
    Ok(())
}

fn cmd_worker(args: Args) -> Result<(), CliError> {
    let addr = args
        .get("connect")
        .ok_or_else(|| CliError::usage("need --connect HOST:PORT"))?
        .to_string();
    let metrics = obs::MetricsGuard::from_args(&args)?;
    // Heartbeat interval: flag beats SHM_HEARTBEAT_MS beats the default.
    let mut opts = sim_dist::WorkerOptions::from_env();
    opts.jobs = parse_jobs(&args)?;
    if let Some(ms) = args.get_u64("heartbeat-ms")? {
        opts.heartbeat_interval_ms = ms.max(10);
    }
    if let Some(id) = args.get("id") {
        opts.worker_id = id.to_string();
    }
    // Reconnect persistence: flag beats SHM_RECONNECT_ATTEMPTS beats the
    // default.
    if let Some(n) = args.get_u64("reconnect-attempts")? {
        opts.max_reconnect_attempts = n.min(u64::from(u32::MAX)) as u32;
    }
    eprintln!("worker {} connecting to {addr}", opts.worker_id);
    let served = shm_bench::dist::serve_worker(&addr, opts);
    metrics.finish();
    match served {
        Ok(s) => {
            eprintln!(
                "worker done: {} job(s), {} B received, {} B sent, {} reconnect(s)",
                s.jobs_done, s.bytes_received, s.bytes_sent, s.reconnects
            );
            Ok(())
        }
        Err(e) => Err(CliError::runtime(
            format!("worker: {e}"),
            &Probe::disabled(),
        )),
    }
}

/// Runs the design sweep through a durable job journal: every completed
/// (benchmark, design) result is appended to `path` as it lands, so an
/// interrupted sweep (SIGINT/SIGTERM, or `--crash-after-jobs N` for tests)
/// can be re-run with `--resume` and skip straight past the finished jobs —
/// the final table is byte-identical to an uninterrupted run.
fn sweep_journaled(
    args: &Args,
    trace: &ContextTrace,
    cfg: &GpuConfig,
    exec: &Executor,
    path: &str,
) -> Result<Vec<SimStats>, CliError> {
    let all = DesignPoint::ALL;
    let resume = args.flag("resume");
    if !resume && Path::new(path).exists() {
        return Err(CliError::usage(format!(
            "journal {path} already exists; pass --resume to continue it or remove it first"
        )));
    }
    // The hash binds the journal to this exact sweep: same trace content
    // (name + event count) and same design list, or the journal is rejected.
    let mut parts: Vec<String> = vec![
        trace.name.to_string(),
        trace.all_events().count().to_string(),
    ];
    parts.extend(all.iter().map(|d| d.name().to_string()));
    let part_refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    let mut journal = JobJournal::open(Path::new(path), config_hash(&part_refs))
        .map_err(|e| CliError::runtime(format!("journal {path}: {e}"), &Probe::disabled()))?;
    let token = CancelToken::new();
    let opts = SweepOptions {
        crash_after_jobs: args.get_u64("crash-after-jobs")?.map(|n| n as usize),
    };
    let sweep = map_journaled(
        exec,
        &all,
        &mut journal,
        &token,
        opts,
        |_, d| format!("{} under {}", trace.name, d.name()),
        |_, &d| Simulator::new(cfg, d).run(trace),
    )
    .map_err(|e| CliError::runtime(format!("sweep failed: {e}"), &Probe::disabled()))?;
    let (reused, executed) = (sweep.reused, sweep.executed);
    match sweep.complete() {
        Some(stats) => {
            if reused > 0 {
                eprintln!("resumed from {path}: {reused} job(s) reused, {executed} executed");
            }
            Ok(stats)
        }
        None => {
            eprintln!(
                "interrupted: {} of {} job(s) completed and journaled in {path}",
                journal.len(),
                all.len()
            );
            for label in journal.completed_labels() {
                eprintln!("  done {label}");
            }
            eprintln!("re-run with --resume to pick up where this left off");
            Err(CliError::interrupted("sweep interrupted"))
        }
    }
}

fn cmd_trace_gen(args: Args) -> Result<(), String> {
    let trace = load_trace(&args)?;
    let out = args
        .get("o")
        .or_else(|| args.get("out"))
        .ok_or("need --out/-o <file>")?;
    let f = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    let mut w = BufWriter::new(f);
    write_trace(&trace, &mut w).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "wrote {} ({} kernels, {} events)",
        out,
        trace.kernels.len(),
        trace.all_events().count()
    );
    Ok(())
}

fn cmd_trace_info(rest: &[String]) -> Result<(), String> {
    let path = rest.first().ok_or("need a trace file")?;
    let f = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let trace = read_trace(BufReader::new(f)).map_err(|e| format!("parse {path}: {e}"))?;
    println!("trace {} ({})", trace.name, path);
    println!("  read-only init ranges: {}", trace.readonly_init.len());
    for (start, len) in &trace.readonly_init {
        println!("    {:#x} + {} bytes", start.raw(), len);
    }
    for k in &trace.kernels {
        let writes = k.events.iter().filter(|e| e.kind.is_write()).count();
        println!(
            "  kernel {:<20} {:>8} events ({} writes), {} host actions",
            k.name,
            k.events.len(),
            writes,
            k.pre_actions.len()
        );
    }
    let map = GpuConfig::default().partition_map();
    let events: Vec<_> = trace.all_events().cloned().collect();
    let oracle = shm::OracleProfile::from_trace(&events, map);
    println!(
        "  oracle: {:.1}% streaming, {:.1}% read-only",
        oracle.streaming_fraction(&events, map) * 100.0,
        oracle.read_only_fraction(&events, map) * 100.0
    );
    let _ = TrafficClass::ALL;
    Ok(())
}
