//! `shm serve` and `shm loadgen`: the multi-tenant simulation service and
//! its load-generating verification client.
//!
//! `serve` turns this host into a long-running daemon: tenants submit
//! design sweeps over the sim-dist v4 frame protocol and the daemon
//! multiplexes them onto one local execution pool with fair scheduling,
//! bounded queues, deadlines and graceful SIGTERM drain (exit 0).
//!
//! `loadgen` drives such a daemon the way the chaos campaign drives the
//! cluster: several tenants submitting concurrently (optionally through
//! the deterministic fault proxy), every completed sweep compared
//! byte-for-byte against the serial in-process reference.  Any mismatch
//! is a **silent divergence** and exits with code 4.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gpu_types::SimStats;
use shm_bench::dist::{dist_config_hash, dist_worker_handler, SimJob};
use shm_recovery::JournalCodec;
use shm_telemetry::Probe;
use shm_workloads::BenchmarkProfile;
use sim_exec::CancelToken;
use sim_serve::{Daemon, ServeClient, ServeEvent, ServeOptions, SweepOutcome};

use crate::args::Args;
use crate::{obs, parse_jobs, CliError};
use gpu_mem_sim::DesignPoint;

/// `shm serve --listen HOST:PORT`: run the daemon until SIGINT/SIGTERM,
/// then drain gracefully and exit 0.
pub fn cmd_serve(args: Args) -> Result<(), CliError> {
    let listen = args
        .get("listen")
        .ok_or_else(|| CliError::usage("need --listen HOST:PORT"))?;
    let metrics = obs::MetricsGuard::from_args(&args)?;
    let mut opts = ServeOptions::from_env(dist_config_hash());
    // Flags beat SHM_SERVE_* knobs beat defaults.
    if let Some(n) = args.get_u64("queue-depth")? {
        opts.queue_depth = n.max(1) as usize;
    }
    if let Some(ms) = args.get_u64("deadline-ms")? {
        opts.deadline_ms = ms;
    }
    if let Some(ms) = args.get_u64("drain-ms")? {
        opts.drain_ms = ms.max(1);
    }
    if let Some(ms) = args.get_u64("idle-ms")? {
        opts.idle_ms = ms.max(1);
    }
    if let Some(n) = args.get_u64("max-tenants")? {
        opts.max_tenants = n.max(1) as usize;
    }
    opts.pool = parse_jobs(&args)?;
    if let Some(path) = args.get("tokens") {
        let table = sim_serve::load_token_table(path)
            .map_err(|e| CliError::runtime(format!("--tokens: {e}"), &Probe::disabled()))?;
        opts.tokens = Some(table);
    }
    if let Some(dir) = args.get("journal-dir") {
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::runtime(format!("create {dir}: {e}"), &Probe::disabled()))?;
        opts.journal_dir = Some(dir.into());
    }
    let daemon = Daemon::bind(listen, opts, dist_worker_handler)
        .map_err(|e| CliError::runtime(format!("bind {listen}: {e}"), &Probe::disabled()))?;
    eprintln!("serve: listening on {}", daemon.local_addr());

    // The signal handlers trip the process-global cancel flag, which this
    // token observes — SIGTERM lands here as the drain trigger.
    let token = CancelToken::new();
    let report = daemon
        .run(&token)
        .map_err(|e| CliError::runtime(format!("serve: {e}"), &Probe::disabled()))?;
    metrics.finish();
    eprintln!(
        "serve: drained (clean={}): {} accepted, {} rejected, {} completed ({} partial), \
         {} deadline cancel(s), {} quarantine(s); jobs {} ok / {} failed / {} skipped",
        report.drained_clean,
        report.accepted,
        report.rejected,
        report.completed,
        report.partial,
        report.deadline_cancels,
        report.quarantines,
        report.jobs_ok,
        report.jobs_failed,
        report.jobs_skipped,
    );
    Ok(())
}

/// What one loadgen tenant observed.
#[derive(Clone, Debug, Default)]
struct TenantOutcome {
    completed: u64,
    partials: u64,
    rejected: u64,
    timeouts: u64,
    conn_losses: u64,
    divergent: u64,
    saw_drain: bool,
    /// Payloads of the first full (non-partial, all-OK) sweep, for the
    /// `--table-out` diff against `shm sweep`.
    first_full: Option<Vec<String>>,
}

/// `shm loadgen --connect HOST:PORT`: drive a serve daemon with N tenants
/// for S seconds and verify no silent divergence from the serial
/// reference.  `--chaos-seed K` interposes the deterministic fault proxy.
pub fn cmd_loadgen(args: Args) -> Result<(), CliError> {
    let connect = args
        .get("connect")
        .ok_or_else(|| CliError::usage("need --connect HOST:PORT"))?
        .to_string();
    let tenants = args.get_u64("tenants")?.unwrap_or(3).clamp(1, 64) as usize;
    let rps: f64 = match args.get("rps") {
        Some(raw) => raw
            .parse()
            .ok()
            .filter(|r: &f64| *r > 0.0)
            .ok_or_else(|| CliError::usage(format!("bad --rps {raw:?}")))?,
        None => 2.0,
    };
    let duration_s = args.get_u64("duration")?.unwrap_or(3).max(1);
    let deadline_ms = args.get_u64("deadline-ms")?.unwrap_or(0);
    let bench = args
        .get("b")
        .or_else(|| args.get("benchmark"))
        .unwrap_or("fdtd2d")
        .to_string();
    let events = args.get_u64("events")?.unwrap_or(4096);
    let seed = args.get_u64("seed")?.unwrap_or(0xBEEF);

    let profile = BenchmarkProfile::by_name(&bench)
        .ok_or_else(|| CliError::usage(format!("unknown benchmark {bench:?}")))?;
    let _ = profile; // existence check only; workers regenerate from the name
    let jobs: Arc<Vec<(String, String)>> = Arc::new(
        DesignPoint::ALL
            .iter()
            .map(|d| {
                (
                    format!("{bench} under {}", d.name()),
                    SimJob {
                        bench: bench.clone(),
                        events_per_kernel: events,
                        seed,
                        design: d.name().to_string(),
                    }
                    .encode(),
                )
            })
            .collect(),
    );
    // The golden answers, computed serially in-process: any daemon result
    // that claims success with different bytes is a silent divergence.
    let reference: Arc<Vec<String>> = Arc::new(
        jobs.iter()
            .map(|(label, payload)| dist_worker_handler(label, payload))
            .collect(),
    );

    // Optional fault proxy between every tenant and the daemon.  Corruption
    // stays off: a corrupt frame rightly quarantines the tenant at the
    // daemon, which would turn an honest client into a permanent outcast.
    let mut proxy = match args.get_u64("chaos-seed")? {
        Some(chaos_seed) => {
            let upstream: std::net::SocketAddr = connect.parse().map_err(|e| {
                CliError::usage(format!("--chaos-seed needs a numeric HOST:PORT: {e}"))
            })?;
            let cfg = sim_dist::ChaosConfig {
                seed: chaos_seed,
                drop_per_mille: 30,
                dup_per_mille: 30,
                delay_per_mille: 50,
                delay_ms: 5,
                ..sim_dist::ChaosConfig::default()
            };
            let proxy = sim_dist::ChaosProxy::start(upstream, cfg)
                .map_err(|e| CliError::runtime(format!("chaos proxy: {e}"), &Probe::disabled()))?;
            eprintln!(
                "loadgen: chaos proxy {} -> {} (seed {})",
                proxy.local_addr(),
                connect,
                chaos_seed
            );
            Some(proxy)
        }
        None => None,
    };
    let target = proxy
        .as_ref()
        .map_or_else(|| connect.clone(), |p| p.local_addr().to_string());

    let hash = dist_config_hash();
    // Token-gated daemons: every loadgen tenant presents the same token,
    // from --token or the client-side env knob.
    let auth_token = args
        .get("token")
        .map(str::to_string)
        .or_else(|| std::env::var(sim_serve::TOKEN_ENV).ok())
        .unwrap_or_default();
    let handles: Vec<_> = (0..tenants)
        .map(|i| {
            let target = target.clone();
            let jobs = Arc::clone(&jobs);
            let reference = Arc::clone(&reference);
            let auth_token = auth_token.clone();
            std::thread::spawn(move || {
                run_tenant(
                    &format!("tenant-{i}"),
                    &target,
                    hash,
                    &auth_token,
                    &jobs,
                    &reference,
                    deadline_ms,
                    rps,
                    duration_s,
                )
            })
        })
        .collect();
    let outcomes: Vec<TenantOutcome> = handles
        .into_iter()
        .map(|h| h.join().unwrap_or_default())
        .collect();
    if let Some(p) = proxy.as_mut() {
        p.shutdown();
    }

    let mut total = TenantOutcome::default();
    for (i, o) in outcomes.iter().enumerate() {
        println!(
            "loadgen: tenant-{i}: {} completed ({} partial), {} rejected, {} timeouts, \
             {} conn-losses, {} divergent",
            o.completed, o.partials, o.rejected, o.timeouts, o.conn_losses, o.divergent
        );
        total.completed += o.completed;
        total.partials += o.partials;
        total.rejected += o.rejected;
        total.timeouts += o.timeouts;
        total.conn_losses += o.conn_losses;
        total.divergent += o.divergent;
    }
    let min = outcomes.iter().map(|o| o.completed).min().unwrap_or(0);
    let max = outcomes.iter().map(|o| o.completed).max().unwrap_or(0);
    println!(
        "loadgen: total {} completed ({} partial), {} rejected, spread {} (min {min} max {max}), \
         silent:{}",
        total.completed,
        total.partials,
        total.rejected,
        max - min,
        total.divergent > 0
    );

    if let Some(path) = args.get("table-out") {
        let payloads = outcomes
            .iter()
            .find_map(|o| o.first_full.as_ref())
            .ok_or_else(|| {
                CliError::runtime(
                    "no tenant completed a full sweep; cannot write --table-out",
                    &Probe::disabled(),
                )
            })?;
        let stats: Option<Vec<SimStats>> = payloads
            .iter()
            .map(|p| SimStats::decode_journal(p))
            .collect();
        let stats = stats.ok_or_else(|| {
            CliError::runtime(
                "undecodable result payload in completed sweep",
                &Probe::disabled(),
            )
        })?;
        let table = crate::format_sweep_table(&stats, false);
        std::fs::write(path, table)
            .map_err(|e| CliError::runtime(format!("write {path}: {e}"), &Probe::disabled()))?;
        println!("loadgen: table written to {path}");
    }

    if total.divergent > 0 {
        return Err(CliError::chaos(
            format!(
                "loadgen found {} silent divergence(s) across {} tenant(s)",
                total.divergent, tenants
            ),
            &Probe::disabled(),
        ));
    }
    if total.completed == 0 {
        return Err(CliError::runtime(
            "no tenant completed a single sweep",
            &Probe::disabled(),
        ));
    }
    Ok(())
}

/// One tenant's submit/await loop.  Chaos may eat frames, so every await
/// is bounded: a timed-out or rejected sweep is simply resubmitted
/// (wasted work is fine; wrong bytes are not).
#[allow(clippy::too_many_arguments)]
fn run_tenant(
    tenant: &str,
    addr: &str,
    hash: u64,
    auth_token: &str,
    jobs: &[(String, String)],
    reference: &[String],
    deadline_ms: u64,
    rps: f64,
    duration_s: u64,
) -> TenantOutcome {
    let mut out = TenantOutcome::default();
    let pace = Duration::from_secs_f64(1.0 / rps);
    let end = Instant::now() + Duration::from_secs(duration_s);
    let mut client: Option<ServeClient> = None;
    while Instant::now() < end && !out.saw_drain {
        // (Re)connect; chaos can kill the handshake, so retry until the
        // window closes.  A refused hello (quarantine, drain) ends the run.
        if client.is_none() {
            match ServeClient::connect(addr, tenant, hash, auth_token) {
                Ok(c) => client = Some(c),
                Err(sim_dist::DistError::Rejected { .. }) => break,
                Err(_) => {
                    out.conn_losses += 1;
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
            }
        }
        let c = client.as_mut().expect("connected above");
        let req = match c.submit(deadline_ms, jobs) {
            Ok(r) => r,
            Err(_) => {
                client = None;
                out.conn_losses += 1;
                continue;
            }
        };
        match await_outcome(c, req, &mut out) {
            AwaitResult::Done(o) => score_outcome(&o, reference, &mut out),
            AwaitResult::Retry => {}
            AwaitResult::ConnectionLost => {
                client = None;
                out.conn_losses += 1;
            }
        }
        std::thread::sleep(pace);
    }
    if let Some(mut c) = client {
        c.goodbye();
    }
    out
}

enum AwaitResult {
    Done(SweepOutcome),
    Retry,
    ConnectionLost,
}

fn await_outcome(c: &mut ServeClient, req: u64, out: &mut TenantOutcome) -> AwaitResult {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match c.next_event(Duration::from_millis(250)) {
            Ok(Some(ServeEvent::Done(o))) if o.req_id == req => return AwaitResult::Done(o),
            // Stale or duplicated response (chaos dup): ignore.
            Ok(Some(ServeEvent::Done(_) | ServeEvent::Progress { .. })) => {}
            Ok(Some(ServeEvent::Rejected {
                req_id,
                retry_after_ms,
                ..
            })) if req_id == req => {
                out.rejected += 1;
                if retry_after_ms > 0 {
                    std::thread::sleep(Duration::from_millis(retry_after_ms.min(500)));
                }
                return AwaitResult::Retry;
            }
            Ok(Some(ServeEvent::Rejected { .. })) => {}
            Ok(Some(ServeEvent::Draining { .. })) => {
                out.saw_drain = true;
                return AwaitResult::Retry;
            }
            Ok(None) => {
                if Instant::now() >= deadline {
                    out.timeouts += 1;
                    return AwaitResult::Retry;
                }
            }
            Err(_) => return AwaitResult::ConnectionLost,
        }
    }
}

/// Scores one terminal result against the serial reference.  Every OK
/// entry must match its golden payload byte-for-byte — partial results
/// only relax which entries exist, never their bytes.
fn score_outcome(o: &SweepOutcome, reference: &[String], out: &mut TenantOutcome) {
    if !o.digest_ok || o.results.len() != reference.len() {
        out.divergent += 1;
        return;
    }
    let mut ok_entries = 0usize;
    for (i, (status, payload)) in o.results.iter().enumerate() {
        if *status == sim_dist::protocol::JOB_OK {
            if payload != &reference[i] {
                out.divergent += 1;
                return;
            }
            ok_entries += 1;
        }
    }
    if o.partial {
        out.partials += 1;
        out.completed += 1;
    } else if ok_entries == reference.len() {
        out.completed += 1;
        if out.first_full.is_none() {
            out.first_full = Some(o.results.iter().map(|(_, p)| p.clone()).collect());
        }
    } else {
        // Claimed complete but not every entry is OK: a failed job on a
        // non-partial sweep means the handler itself failed.
        out.divergent += 1;
    }
}
