//! Pool/link configuration and the `SHM_POOL_*` / `SHM_LINK_*` environment
//! knobs.

use shm_dram::DramConfig;

/// `SHM_POOL_POLICY` — placement policy when pools are enabled.
pub const POLICY_ENV: &str = "SHM_POOL_POLICY";
/// `SHM_POOL_GPU_MB` — GPU-pool capacity in MiB.
pub const GPU_MB_ENV: &str = "SHM_POOL_GPU_MB";
/// `SHM_POOL_CPU_MB` — CPU-pool capacity in MiB.
pub const CPU_MB_ENV: &str = "SHM_POOL_CPU_MB";
/// `SHM_POOL_PAGE_KB` — migration page size in KiB.
pub const PAGE_KB_ENV: &str = "SHM_POOL_PAGE_KB";
/// `SHM_POOL_HOT_TOUCHES` — touches before a CPU-resident page migrates.
pub const HOT_TOUCHES_ENV: &str = "SHM_POOL_HOT_TOUCHES";
/// `SHM_LINK_LATENCY` — one-way link latency in core cycles.
pub const LINK_LATENCY_ENV: &str = "SHM_LINK_LATENCY";
/// `SHM_LINK_BYTES_PER_CYCLE` — per-direction link bandwidth.
pub const LINK_BPC_ENV: &str = "SHM_LINK_BYTES_PER_CYCLE";

/// Every pool/link knob, in `shm env` table form: `(name, default, what)`.
pub const ENV_KNOBS: &[(&str, &str, &str)] = &[
    (
        POLICY_ENV,
        "gpu-only",
        "pools: placement policy (gpu-only | static-split | hot-page-migrate)",
    ),
    (GPU_MB_ENV, "8", "pools: GPU-pool capacity in MiB"),
    (CPU_MB_ENV, "64", "pools: CPU-pool capacity in MiB"),
    (PAGE_KB_ENV, "16", "pools: migration page size in KiB"),
    (
        HOT_TOUCHES_ENV,
        "64",
        "pools: CPU-page touches before hot-page-migrate promotes it",
    ),
    (
        LINK_LATENCY_ENV,
        "500",
        "link: one-way CPU<->GPU link latency in core cycles",
    ),
    (
        LINK_BPC_ENV,
        "16.0",
        "link: per-direction link bandwidth in bytes per core cycle",
    ),
];

/// Where a first-touch page lands and when (if ever) it moves.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlacementPolicy {
    /// Everything targets the GPU pool; pages beyond capacity stay host-backed
    /// and every access to them pays the full link round trip (UVM-style
    /// demand paging, reported as capacity pressure).
    GpuOnly,
    /// First-touch fills the GPU pool, the overflow lives permanently in the
    /// CPU pool. No migration.
    StaticSplit,
    /// Like static-split, but CPU-resident pages that get hot are migrated
    /// into the GPU pool via the secure channel, evicting the coldest GPU
    /// page when full.
    HotPageMigrate,
}

impl PlacementPolicy {
    /// All policies, in sweep/display order.
    pub const ALL: [PlacementPolicy; 3] = [
        PlacementPolicy::GpuOnly,
        PlacementPolicy::StaticSplit,
        PlacementPolicy::HotPageMigrate,
    ];

    /// Stable CLI/report label.
    pub const fn label(self) -> &'static str {
        match self {
            PlacementPolicy::GpuOnly => "gpu-only",
            PlacementPolicy::StaticSplit => "static-split",
            PlacementPolicy::HotPageMigrate => "hot-page-migrate",
        }
    }

    /// Parses a CLI/env label.
    pub fn parse(s: &str) -> Option<Self> {
        PlacementPolicy::ALL
            .iter()
            .copied()
            .find(|p| p.label() == s)
    }
}

/// Full heterogeneous-pool configuration. Absence of this struct on a
/// simulator means single-pool mode (today's byte-identical default).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PoolsConfig {
    /// Placement policy.
    pub policy: PlacementPolicy,
    /// GPU-pool capacity in bytes.
    pub gpu_capacity: u64,
    /// CPU-pool capacity in bytes.
    pub cpu_capacity: u64,
    /// Migration/placement granule in bytes (power of two, >= 128).
    pub page_bytes: u64,
    /// Touches before hot-page-migrate promotes a CPU-resident page.
    pub hot_touches: u64,
    /// One-way link latency in core cycles.
    pub link_latency: u64,
    /// Per-direction link bandwidth in bytes per core cycle.
    pub link_bytes_per_cycle: f64,
    /// Seed for the migration channel's key derivation.
    pub seed: u64,
}

impl PoolsConfig {
    /// Defaults sized so the hetero workload profiles overflow the GPU pool.
    pub fn new(policy: PlacementPolicy) -> Self {
        Self {
            policy,
            gpu_capacity: 8 << 20,
            cpu_capacity: 64 << 20,
            page_bytes: 16 << 10,
            hot_touches: 64,
            link_latency: 500,
            link_bytes_per_cycle: 16.0,
            seed: 0x4845_5445_524f, // "HETERO"
        }
    }

    /// `new(policy)` with every `SHM_POOL_*` / `SHM_LINK_*` env override
    /// applied. Unparseable values fall back to the default.
    pub fn from_env(policy: PlacementPolicy) -> Self {
        let mut cfg = Self::new(policy);
        if let Some(mb) = env_u64(GPU_MB_ENV) {
            cfg.gpu_capacity = mb << 20;
        }
        if let Some(mb) = env_u64(CPU_MB_ENV) {
            cfg.cpu_capacity = mb << 20;
        }
        if let Some(kb) = env_u64(PAGE_KB_ENV) {
            let bytes = kb << 10;
            if bytes >= 128 && bytes.is_power_of_two() {
                cfg.page_bytes = bytes;
            }
        }
        if let Some(t) = env_u64(HOT_TOUCHES_ENV) {
            cfg.hot_touches = t.max(1);
        }
        if let Some(l) = env_u64(LINK_LATENCY_ENV) {
            cfg.link_latency = l;
        }
        if let Some(b) = std::env::var(LINK_BPC_ENV)
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
        {
            if b > 0.0 {
                cfg.link_bytes_per_cycle = b;
            }
        }
        cfg
    }

    /// Policy from `SHM_POOL_POLICY`, when set to a valid label.
    pub fn policy_from_env() -> Option<PlacementPolicy> {
        PlacementPolicy::parse(&std::env::var(POLICY_ENV).ok()?)
    }

    /// Timing model for the CPU-side pool: one LPDDR-like channel — lower
    /// bandwidth, slower row timing, longer controller path than the GPU
    /// partitions (`DramConfig::default`).
    pub fn cpu_dram_config(&self) -> DramConfig {
        DramConfig {
            bytes_per_cycle: 8.0,
            t_row_hit: 60,
            t_row_miss: 180,
            t_base: 100,
            ..DramConfig::default()
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_labels_roundtrip() {
        for p in PlacementPolicy::ALL {
            assert_eq!(PlacementPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(PlacementPolicy::parse("bogus"), None);
    }

    #[test]
    fn defaults_force_spill_for_hetero_profiles() {
        let cfg = PoolsConfig::new(PlacementPolicy::HotPageMigrate);
        // The hetero workload profiles are sized at 24-32 MiB, so the default
        // 8 MiB GPU pool must overflow into the CPU pool.
        assert!(cfg.gpu_capacity < 24 << 20);
        assert!(cfg.cpu_capacity >= 32 << 20);
        assert!(cfg.page_bytes.is_power_of_two());
        assert_eq!(cfg.page_bytes % 128, 0);
    }

    #[test]
    fn env_overrides_apply_and_bad_values_fall_back() {
        // Env vars are process-global; run the whole scenario in one test to
        // avoid cross-test races.
        std::env::set_var(GPU_MB_ENV, "4");
        std::env::set_var(PAGE_KB_ENV, "3"); // not a power of two: ignored
        std::env::set_var(LINK_BPC_ENV, "32.0");
        let cfg = PoolsConfig::from_env(PlacementPolicy::StaticSplit);
        std::env::remove_var(GPU_MB_ENV);
        std::env::remove_var(PAGE_KB_ENV);
        std::env::remove_var(LINK_BPC_ENV);
        assert_eq!(cfg.gpu_capacity, 4 << 20);
        assert_eq!(cfg.page_bytes, 16 << 10);
        assert!((cfg.link_bytes_per_cycle - 32.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_pool_is_slower_than_gpu_partitions() {
        let cfg = PoolsConfig::new(PlacementPolicy::GpuOnly);
        let cpu = cfg.cpu_dram_config();
        let gpu = DramConfig::default();
        assert!(cpu.bytes_per_cycle < gpu.bytes_per_cycle);
        assert!(cpu.t_row_hit > gpu.t_row_hit);
        assert!(cpu.t_base > gpu.t_base);
    }

    #[test]
    fn every_knob_constant_appears_in_the_table() {
        for name in [
            POLICY_ENV,
            GPU_MB_ENV,
            CPU_MB_ENV,
            PAGE_KB_ENV,
            HOT_TOUCHES_ENV,
            LINK_LATENCY_ENV,
            LINK_BPC_ENV,
        ] {
            assert!(
                ENV_KNOBS.iter().any(|(n, _, _)| *n == name),
                "{name} missing from ENV_KNOBS"
            );
        }
    }
}
