//! Pool-aware access model: page directory, placement policies, spill and
//! migration decisions.
//!
//! [`PoolSim`] rides alongside the GPU simulator: every DRAM-bound data
//! access is offered to [`PoolSim::on_dram_access`], which decides whether
//! the touched page is GPU-resident (no extra cost), CPU-resident (the
//! access pays the LPDDR access plus the link round trip) or — under
//! hot-page-migrate — hot enough to pull across the link through the secure
//! migration channel. Everything is deterministic: placement is first-touch
//! in access order, eviction picks the coldest page with the lowest address.

use crate::config::{PlacementPolicy, PoolsConfig};
use crate::link::{CoherentLink, LinkDir};
use crate::migrate::MigrationChannel;
use shm_dram::DramPartition;
use std::collections::BTreeMap;

#[derive(Clone, Copy, Debug)]
struct PageState {
    in_gpu: bool,
    touches: u64,
}

/// Running totals the simulator folds into `SimStats` after a run.
#[derive(Clone, Copy, Default, Debug)]
pub struct PoolCounters {
    /// Pages migrated CPU→GPU through the secure channel.
    pub migrations: u64,
    /// Pages spilled GPU→CPU (evictions making room for a hot page).
    pub spills: u64,
    /// Data accesses served by the CPU-side pool.
    pub cpu_accesses: u64,
    /// Accesses that hit GPU-pool capacity pressure (gpu-only policy only).
    pub capacity_events: u64,
}

/// What one access did, for stats/telemetry accounting at the call site.
#[derive(Clone, Copy, Default, Debug)]
pub struct PoolOutcome {
    /// Absolute completion cycle of the remote path, when the access left
    /// the GPU pool; `None` means GPU-local (caller's timing stands).
    pub remote_done: Option<u64>,
    /// The access was served by the CPU pool.
    pub remote: bool,
    /// This access triggered a CPU→GPU page migration.
    pub migrated: bool,
    /// The migration evicted (spilled) a GPU page to make room.
    pub spilled: bool,
    /// gpu-only oversubscription: the page has no GPU backing.
    pub capacity_event: bool,
}

/// Heterogeneous-pool state for one simulation run.
pub struct PoolSim {
    cfg: PoolsConfig,
    link: CoherentLink,
    cpu_dram: DramPartition,
    channel: MigrationChannel,
    pages: BTreeMap<u64, PageState>,
    gpu_bytes: u64,
    counters: PoolCounters,
}

impl PoolSim {
    /// Builds the pool model for `cfg`.
    pub fn new(cfg: PoolsConfig) -> Self {
        assert!(
            cfg.page_bytes.is_power_of_two() && cfg.page_bytes >= 128,
            "page size must be a power-of-two multiple of the 128B block"
        );
        Self {
            link: CoherentLink::new(cfg.link_latency, cfg.link_bytes_per_cycle),
            cpu_dram: DramPartition::new(cfg.cpu_dram_config()),
            channel: MigrationChannel::new(cfg.seed, cfg.page_bytes),
            pages: BTreeMap::new(),
            gpu_bytes: 0,
            counters: PoolCounters::default(),
            cfg,
        }
    }

    /// Configuration this model was built with.
    pub fn config(&self) -> &PoolsConfig {
        &self.cfg
    }

    /// Totals so far.
    pub fn counters(&self) -> PoolCounters {
        self.counters
    }

    /// Link byte totals `(to_gpu, to_cpu)`.
    pub fn link_bytes(&self) -> (u64, u64) {
        (self.link.bytes_to_gpu(), self.link.bytes_to_cpu())
    }

    /// Distinct pages currently GPU-resident.
    pub fn gpu_resident_bytes(&self) -> u64 {
        self.gpu_bytes
    }

    /// Offers one DRAM-bound data access to the pool model. `now` is the
    /// cycle the access reaches DRAM; the returned outcome carries the
    /// remote completion when the CPU pool was involved.
    pub fn on_dram_access(
        &mut self,
        now: u64,
        addr: u64,
        bytes: u64,
        is_write: bool,
    ) -> PoolOutcome {
        let page = addr & !(self.cfg.page_bytes - 1);
        let state = self.first_touch(page);
        let mut out = PoolOutcome::default();
        let touches = {
            let s = self.pages.get_mut(&page).expect("page just placed");
            s.touches += 1;
            s.touches
        };
        if state.in_gpu {
            return out; // GPU-local: the caller's single-pool timing stands.
        }

        out.remote = true;
        self.counters.cpu_accesses += 1;
        if self.cfg.policy == PlacementPolicy::GpuOnly {
            // No GPU backing and no migration: every touch is demand-paged
            // over the link — that is the capacity-pressure signal.
            out.capacity_event = true;
            self.counters.capacity_events += 1;
        }

        if self.cfg.policy == PlacementPolicy::HotPageMigrate && touches >= self.cfg.hot_touches {
            out = self.migrate_in(now, page, out);
            return out;
        }

        // Plain remote access: command latency out, LPDDR access, data back
        // across the bandwidth-limited link (writes occupy the CPU-bound
        // direction, reads the GPU-bound one).
        let dram_done = self
            .cpu_dram
            .access(now + self.link.latency(), addr, bytes, is_write);
        let dir = if is_write {
            LinkDir::ToCpu
        } else {
            LinkDir::ToGpu
        };
        out.remote_done = Some(self.link.transfer(dram_done, bytes, dir));
        out
    }

    /// First-touch placement of `page`; returns its (possibly new) state.
    fn first_touch(&mut self, page: u64) -> PageState {
        if let Some(s) = self.pages.get(&page) {
            return *s;
        }
        let fits = self.gpu_bytes + self.cfg.page_bytes <= self.cfg.gpu_capacity;
        let in_gpu = match self.cfg.policy {
            // gpu-only places what fits; the rest is host-backed overflow.
            PlacementPolicy::GpuOnly => fits,
            PlacementPolicy::StaticSplit | PlacementPolicy::HotPageMigrate => fits,
        };
        if in_gpu {
            self.gpu_bytes += self.cfg.page_bytes;
        }
        let s = PageState { in_gpu, touches: 0 };
        self.pages.insert(page, s);
        s
    }

    /// Pulls `page` into the GPU pool through the secure channel, spilling
    /// the coldest GPU page first when the pool is full.
    fn migrate_in(&mut self, now: u64, page: u64, mut out: PoolOutcome) -> PoolOutcome {
        let mut done = now;
        if self.gpu_bytes + self.cfg.page_bytes > self.cfg.gpu_capacity {
            if let Some(victim) = self.coldest_gpu_page() {
                self.channel
                    .transfer_page(victim, None)
                    .expect("untampered spill transfer verifies");
                let t = self.link.transfer(now, self.cfg.page_bytes, LinkDir::ToCpu);
                done = done.max(t);
                let v = self.pages.get_mut(&victim).expect("victim exists");
                v.in_gpu = false;
                v.touches = 0;
                self.gpu_bytes -= self.cfg.page_bytes;
                self.counters.spills += 1;
                out.spilled = true;
            }
        }
        self.channel
            .transfer_page(page, None)
            .expect("untampered migration transfer verifies");
        let t = self.link.transfer(now, self.cfg.page_bytes, LinkDir::ToGpu);
        done = done.max(t);
        let s = self.pages.get_mut(&page).expect("page exists");
        s.in_gpu = true;
        self.gpu_bytes += self.cfg.page_bytes;
        self.counters.migrations += 1;
        out.migrated = true;
        out.remote_done = Some(done);
        out
    }

    /// Deterministic eviction victim: fewest touches, lowest address.
    fn coldest_gpu_page(&self) -> Option<u64> {
        self.pages
            .iter()
            .filter(|(_, s)| s.in_gpu)
            .min_by_key(|(addr, s)| (s.touches, **addr))
            .map(|(addr, _)| *addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(policy: PlacementPolicy) -> PoolsConfig {
        let mut cfg = PoolsConfig::new(policy);
        cfg.gpu_capacity = 4 << 10; // 4 KiB = 2 pages
        cfg.cpu_capacity = 64 << 10;
        cfg.page_bytes = 2 << 10;
        cfg.hot_touches = 3;
        cfg
    }

    #[test]
    fn accesses_within_capacity_stay_local_under_every_policy() {
        for policy in PlacementPolicy::ALL {
            let mut pool = PoolSim::new(small_cfg(policy));
            for i in 0..8 {
                let out = pool.on_dram_access(i * 10, (i % 2) * 2048, 32, false);
                assert!(!out.remote, "{policy:?} access {i} went remote");
            }
            assert_eq!(pool.counters().cpu_accesses, 0);
            assert_eq!(pool.link_bytes(), (0, 0));
        }
    }

    #[test]
    fn gpu_only_reports_capacity_pressure_past_capacity() {
        let mut pool = PoolSim::new(small_cfg(PlacementPolicy::GpuOnly));
        // Touch 4 distinct pages: 2 fit, 2 overflow.
        for i in 0..4u64 {
            pool.on_dram_access(i, i * 2048, 32, false);
        }
        let c = pool.counters();
        assert_eq!(c.capacity_events, 2);
        assert_eq!(c.cpu_accesses, 2);
        assert_eq!(c.migrations, 0, "gpu-only never migrates");
    }

    #[test]
    fn static_split_spills_overflow_but_never_migrates() {
        let mut pool = PoolSim::new(small_cfg(PlacementPolicy::StaticSplit));
        for round in 0..10u64 {
            for p in 0..4u64 {
                pool.on_dram_access(round * 100 + p, p * 2048, 32, false);
            }
        }
        let c = pool.counters();
        assert_eq!(c.migrations, 0);
        assert_eq!(c.capacity_events, 0, "pressure is a gpu-only signal");
        assert_eq!(c.cpu_accesses, 20, "two overflow pages, ten rounds each");
        let (to_gpu, _) = pool.link_bytes();
        assert!(to_gpu > 0, "remote reads pull bytes across the link");
    }

    #[test]
    fn hot_page_migrate_promotes_hot_pages_and_evicts_cold_ones() {
        let mut pool = PoolSim::new(small_cfg(PlacementPolicy::HotPageMigrate));
        // Pages 0,1 fill the GPU pool; page 2 overflows to CPU.
        for p in 0..3u64 {
            pool.on_dram_access(p, p * 2048, 32, false);
        }
        // Hammer page 2 until it crosses hot_touches = 3.
        let mut now = 100;
        for _ in 0..4 {
            now += 50;
            pool.on_dram_access(now, 2 * 2048, 32, false);
        }
        let c = pool.counters();
        assert_eq!(c.migrations, 1, "page 2 got promoted");
        assert_eq!(c.spills, 1, "a cold page made room");
        let (to_gpu, to_cpu) = pool.link_bytes();
        assert!(to_gpu >= 2048, "promotion moved a page toward the GPU");
        assert!(to_cpu >= 2048, "spill moved a page toward the CPU");
        // The promoted page is now GPU-local.
        let out = pool.on_dram_access(now + 500, 2 * 2048, 32, false);
        assert!(!out.remote);
    }

    #[test]
    fn remote_accesses_pay_link_latency() {
        let mut pool = PoolSim::new(small_cfg(PlacementPolicy::StaticSplit));
        for p in 0..3u64 {
            pool.on_dram_access(p, p * 2048, 32, false);
        }
        let out = pool.on_dram_access(1000, 2 * 2048, 32, false);
        assert!(out.remote);
        let done = out.remote_done.expect("remote completion");
        // Two link traversals plus the LPDDR access floor.
        assert!(done >= 1000 + 2 * pool.config().link_latency);
    }

    #[test]
    fn identical_access_streams_produce_identical_outcomes() {
        let run = || {
            let mut pool = PoolSim::new(small_cfg(PlacementPolicy::HotPageMigrate));
            let mut log = Vec::new();
            for i in 0..200u64 {
                let addr = (i % 5) * 2048 + (i % 3) * 128;
                let out = pool.on_dram_access(i * 7, addr, 32, i % 4 == 0);
                log.push((out.remote, out.migrated, out.remote_done));
            }
            let c = pool.counters();
            (
                log,
                c.migrations,
                c.spills,
                c.cpu_accesses,
                pool.link_bytes(),
            )
        };
        assert_eq!(run(), run());
    }
}
