//! Coherent CPU↔GPU interconnect model.
//!
//! NVLink-C2C / RDMA-style: a fixed one-way command latency plus a
//! bandwidth-limited data path *per direction*. Each direction keeps its own
//! transfer frontier in 1/[`FP`]-cycle fixed point (the same idiom as the
//! DRAM bus model), so back-to-back transfers queue behind each other and
//! fractional bytes-per-cycle rates accumulate without drift.

/// Fixed-point scale for the per-direction bus frontiers.
const FP: u64 = 256;

/// Transfer direction on the link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkDir {
    /// CPU pool → GPU pool (reads, page promotions).
    ToGpu = 0,
    /// GPU pool → CPU pool (writes, page spills).
    ToCpu = 1,
}

/// The coherent link: latency + per-direction bandwidth caps and queues.
#[derive(Clone, Debug)]
pub struct CoherentLink {
    latency: u64,
    bytes_per_cycle: f64,
    /// Earliest fixed-point cycle each direction's data path is free.
    free_fp: [u64; 2],
    bytes: [u64; 2],
}

impl CoherentLink {
    /// New link with `latency` cycles one-way and `bytes_per_cycle`
    /// bandwidth per direction.
    pub fn new(latency: u64, bytes_per_cycle: f64) -> Self {
        assert!(bytes_per_cycle > 0.0, "link bandwidth must be positive");
        Self {
            latency,
            bytes_per_cycle,
            free_fp: [0; 2],
            bytes: [0; 2],
        }
    }

    /// One-way command latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Queues `bytes` on `dir` starting no earlier than `now`; returns the
    /// cycle the last byte lands on the far side (transfer + latency).
    pub fn transfer(&mut self, now: u64, bytes: u64, dir: LinkDir) -> u64 {
        let d = dir as usize;
        let start_fp = self.free_fp[d].max(now.saturating_mul(FP));
        let xfer_fp = ((bytes as f64 / self.bytes_per_cycle) * FP as f64).ceil() as u64;
        self.free_fp[d] = start_fp + xfer_fp;
        self.bytes[d] += bytes;
        self.free_fp[d].div_ceil(FP) + self.latency
    }

    /// Total bytes moved toward the GPU pool.
    pub fn bytes_to_gpu(&self) -> u64 {
        self.bytes[LinkDir::ToGpu as usize]
    }

    /// Total bytes moved toward the CPU pool.
    pub fn bytes_to_cpu(&self) -> u64 {
        self.bytes[LinkDir::ToCpu as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_transfers() {
        let mut link = CoherentLink::new(500, 16.0);
        let done = link.transfer(0, 32, LinkDir::ToGpu);
        // 32B at 16B/cycle = 2 cycles of bus time + 500 latency.
        assert_eq!(done, 502);
    }

    #[test]
    fn back_to_back_transfers_queue_per_direction() {
        let mut link = CoherentLink::new(100, 16.0);
        let a = link.transfer(0, 1600, LinkDir::ToGpu); // 100 cycles bus
        let b = link.transfer(0, 1600, LinkDir::ToGpu); // queues behind a
        assert_eq!(a, 200);
        assert_eq!(b, 300);
        // The opposite direction is an independent path.
        let c = link.transfer(0, 1600, LinkDir::ToCpu);
        assert_eq!(c, 200);
    }

    #[test]
    fn byte_counters_track_directions() {
        let mut link = CoherentLink::new(10, 8.0);
        link.transfer(0, 64, LinkDir::ToGpu);
        link.transfer(0, 32, LinkDir::ToCpu);
        link.transfer(5, 64, LinkDir::ToGpu);
        assert_eq!(link.bytes_to_gpu(), 128);
        assert_eq!(link.bytes_to_cpu(), 32);
    }

    #[test]
    fn fractional_bandwidth_accumulates_without_drift() {
        let mut link = CoherentLink::new(0, 3.0);
        let mut last = 0;
        for _ in 0..300 {
            last = link.transfer(0, 1, LinkDir::ToGpu);
        }
        // 300 bytes at 3 B/cycle ~= 100 cycles; per-transfer fixed-point
        // ceiling may cost at most one extra cycle over the whole burst.
        assert!((100..=101).contains(&last), "drifted to {last}");
    }
}
