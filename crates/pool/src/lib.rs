//! Heterogeneous memory pools for the SHM simulator.
//!
//! The paper adapts security metadata to heterogeneity *within* GPU memory;
//! this crate opens the axis it could not evaluate: a second, CPU-side DRAM
//! pool (LPDDR-like latency/bandwidth) behind a coherent NVLink-C2C/RDMA-style
//! interconnect, with *placement policies* deciding which pages live where and
//! a *secure migration engine* that moves pages between pools only through
//! MAC-verified, counter-rekeyed transfers built on `shm-metadata` +
//! `shm-crypto`.  A page tampered in flight on the link surfaces as an
//! [`shm_metadata::IntegrityViolation`] — never silent corruption.
//!
//! The model is strictly additive: a simulator without a [`PoolSim`] attached
//! takes exactly the single-pool code path and produces byte-identical output.
//!
//! See `docs/HETERO.md` for the pool model, link model, migration protocol
//! and every `SHM_POOL_*` / `SHM_LINK_*` knob.

pub mod config;
pub mod link;
pub mod migrate;
pub mod sim;

pub use config::{PlacementPolicy, PoolsConfig, ENV_KNOBS};
pub use link::{CoherentLink, LinkDir};
pub use migrate::{LinkTamper, MigrationChannel};
pub use sim::{PoolCounters, PoolOutcome, PoolSim};
