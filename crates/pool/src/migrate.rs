//! Secure inter-pool migration engine.
//!
//! A page never crosses the link in the clear or unauthenticated. The
//! transfer pipeline per 128-byte block is:
//!
//! 1. **Stage out** — the block is written into the source pool's bounded
//!    secure staging region (an `shm_metadata::SecureMemory`, the same MEE
//!    model protecting resident data), then read back *MAC-verified*; a
//!    block already corrupted at rest is caught before it touches the wire.
//! 2. **Wire protect** — the plaintext is encrypted with AES-CTR under a
//!    dedicated link key (fresh counter per block — counter-rekeyed, no
//!    keystream reuse) and tagged with a stateful MAC binding ciphertext,
//!    transfer counter and destination address.
//! 3. **Verify in** — the receiver recomputes the tag over whatever arrived
//!    and compares in constant time. A mismatch aborts the page with an
//!    [`IntegrityViolation`]; nothing is committed. On success the block is
//!    decrypted and written into the destination staging region, which
//!    re-encrypts it under the destination pool's own keys with a fresh
//!    counter.
//!
//! [`LinkTamper`] is the fault-campaign hook: it flips wire bits between
//! steps 2 and 3, exactly what a man-in-the-middle on the interconnect does.

use shm_crypto::{stateful_mac, Aes128, KeyTuple, MacKey};
use shm_metadata::{IntegrityViolation, SecureMemory, VerifyError};

/// Secure-memory block size (bytes) — the wire transfer granule.
const BLOCK: u64 = 128;

/// Key-derivation salts so the two pools and the link never share keys.
const SRC_SALT: u64 = 0x5352_435f_504f_4f4c; // "SRC_POOL"
const DST_SALT: u64 = 0x4453_545f_504f_4f4c; // "DST_POOL"
const LINK_SALT: u64 = 0x4c49_4e4b_5f4b_4559; // "LINK_KEY"

/// Fault-campaign hook: corrupt one wire byte of one block of a page while
/// it is in flight on the link.
#[derive(Clone, Copy, Debug)]
pub struct LinkTamper {
    /// Which 128-byte block of the page to hit (modulo the page's blocks).
    pub block: u64,
    /// Which byte of the block to flip (modulo 128).
    pub byte: usize,
    /// XOR mask applied to that byte; `0` makes the tamper a no-op.
    pub mask: u8,
}

/// Bounded secure staging channel between the two pools.
///
/// Both staging regions span one page and are reused for every migration
/// (a pinned bounce buffer, as real secure DMA engines use); counters only
/// ever move forward, so reuse never repeats a (key, counter) pair.
pub struct MigrationChannel {
    src: SecureMemory,
    dst: SecureMemory,
    link_key: MacKey,
    link_aes: Aes128,
    counter: u64,
    page_bytes: u64,
    fill_seed: u64,
    transferred_pages: u64,
}

impl MigrationChannel {
    /// New channel staging `page_bytes`-sized pages, keyed from `seed`.
    pub fn new(seed: u64, page_bytes: u64) -> Self {
        assert!(
            page_bytes >= BLOCK && page_bytes.is_multiple_of(BLOCK),
            "page size must be a multiple of the 128B block"
        );
        let link_keys = KeyTuple::derive(seed ^ LINK_SALT);
        Self {
            src: SecureMemory::new(page_bytes, &KeyTuple::derive(seed ^ SRC_SALT)),
            dst: SecureMemory::new(page_bytes, &KeyTuple::derive(seed ^ DST_SALT)),
            link_key: MacKey::new(link_keys.k_mac),
            link_aes: Aes128::new(link_keys.k_enc),
            counter: 0,
            page_bytes,
            fill_seed: seed,
            transferred_pages: 0,
        }
    }

    /// Pages successfully transferred so far.
    pub fn transferred_pages(&self) -> u64 {
        self.transferred_pages
    }

    /// Moves the page at `page_addr` through the secure channel, optionally
    /// tampering it in flight. Returns the bytes committed at the
    /// destination.
    ///
    /// # Errors
    ///
    /// [`IntegrityViolation`] naming the first block whose wire MAC failed;
    /// the page is aborted and nothing past that block is committed.
    pub fn transfer_page(
        &mut self,
        page_addr: u64,
        tamper: Option<LinkTamper>,
    ) -> Result<u64, IntegrityViolation> {
        let blocks = self.page_bytes / BLOCK;
        for b in 0..blocks {
            let off = b * BLOCK;
            let wire_addr = page_addr + off;

            // 1. Stage out through the source pool's MEE (counter-rekey on
            //    entry, MAC-verified on the way out).
            let plain = fill_block(self.fill_seed, wire_addr);
            self.src.write_block(off, &plain);
            let plain = self
                .src
                .read_block(off)
                .map_err(|error| IntegrityViolation {
                    addr: wire_addr,
                    error,
                })?;

            // 2. Wire protect: AES-CTR under the link key with a fresh
            //    counter, stateful MAC over (ciphertext, counter, dest).
            let mut wire = plain;
            apply_ctr_keystream(&self.link_aes, self.counter, &mut wire);
            let tag = stateful_mac(&self.link_key, &wire, self.counter, wire_addr);

            // The adversary owns the wire between the pools.
            if let Some(t) = tamper {
                if b == t.block % blocks {
                    wire[t.byte % BLOCK as usize] ^= t.mask;
                }
            }

            // 3. Verify in, constant time; abort the page on mismatch.
            let check = stateful_mac(&self.link_key, &wire, self.counter, wire_addr);
            if !ct_eq_u64(tag, check) {
                return Err(IntegrityViolation {
                    addr: wire_addr,
                    error: VerifyError::BlockMacMismatch,
                });
            }
            apply_ctr_keystream(&self.link_aes, self.counter, &mut wire);
            self.counter += 1;
            self.dst.write_block(off, &wire);
        }
        self.transferred_pages += 1;
        Ok(self.page_bytes)
    }
}

/// AES-CTR keystream for one wire block: XOR-in-place, so applying it twice
/// round-trips (encrypt on the way out, decrypt on the way in).
fn apply_ctr_keystream(aes: &Aes128, counter: u64, block: &mut [u8; 128]) {
    for (i, chunk) in block.chunks_exact_mut(16).enumerate() {
        let mut ctr_block = [0u8; 16];
        ctr_block[..8].copy_from_slice(&counter.to_le_bytes());
        ctr_block[8..].copy_from_slice(&(i as u64).to_le_bytes());
        let ks = aes.encrypt_block(ctr_block);
        for (b, k) in chunk.iter_mut().zip(ks) {
            *b ^= k;
        }
    }
}

/// Constant-time 64-bit tag comparison — no early exit on the first
/// differing bit.
fn ct_eq_u64(a: u64, b: u64) -> bool {
    let d = a ^ b;
    // Collapses any non-zero difference into bit 63 without branching.
    ((d | d.wrapping_neg()) >> 63) == 0
}

/// Deterministic page content: what the synthetic workloads "stored" at
/// `addr`. Keeps the channel reproducible across jobs and runs.
fn fill_block(seed: u64, addr: u64) -> [u8; 128] {
    let mut out = [0u8; 128];
    let mut x = seed ^ addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for chunk in out.chunks_exact_mut(8) {
        // splitmix64 step
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        chunk.copy_from_slice(&(z ^ (z >> 31)).to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_transfer_commits_every_block() {
        let mut ch = MigrationChannel::new(7, 2048);
        let moved = ch.transfer_page(0x10_0000, None).expect("clean transfer");
        assert_eq!(moved, 2048);
        assert_eq!(ch.transferred_pages(), 1);
    }

    #[test]
    fn channel_is_deterministic() {
        let mut a = MigrationChannel::new(42, 1024);
        let mut b = MigrationChannel::new(42, 1024);
        for page in [0u64, 0x4000, 0x8000] {
            assert_eq!(
                a.transfer_page(page, None).ok(),
                b.transfer_page(page, None).ok()
            );
        }
        assert_eq!(a.counter, b.counter);
    }

    #[test]
    fn in_flight_tamper_is_detected_never_silent() {
        for (block, byte, mask) in [(0u64, 0usize, 1u8), (3, 17, 0x80), (7, 127, 0xFF)] {
            let mut ch = MigrationChannel::new(9, 2048);
            let err = ch
                .transfer_page(0x2000, Some(LinkTamper { block, byte, mask }))
                .expect_err("tampered page must be rejected");
            assert_eq!(err.error, VerifyError::BlockMacMismatch);
            assert_eq!(ch.transferred_pages(), 0);
        }
    }

    #[test]
    fn zero_mask_tamper_is_a_no_op() {
        let mut ch = MigrationChannel::new(9, 1024);
        let ok = ch.transfer_page(
            0x2000,
            Some(LinkTamper {
                block: 0,
                byte: 0,
                mask: 0,
            }),
        );
        assert!(ok.is_ok(), "XOR with 0 changes nothing on the wire");
    }

    #[test]
    fn counters_rekey_across_transfers() {
        let mut ch = MigrationChannel::new(3, 1024);
        ch.transfer_page(0, None).expect("first");
        let after_first = ch.counter;
        ch.transfer_page(0, None).expect("second");
        // Same page again: every block still consumed a fresh counter.
        assert_eq!(ch.counter, after_first * 2);
    }

    #[test]
    fn ct_eq_matches_plain_equality() {
        for (a, b) in [(0u64, 0u64), (1, 0), (u64::MAX, u64::MAX), (5, 7)] {
            assert_eq!(ct_eq_u64(a, b), a == b);
        }
    }
}
