//! Bonsai Merkle Tree geometry and a functional hash tree.
//!
//! A BMT covers only the encryption-counter lines (not the data blocks) —
//! stateful MACs make data replay detectable once counters are fresh, so the
//! tree over counters suffices (Rogers et al., MICRO'07).  Each 128 B tree
//! node holds sixteen 8 B hashes, giving a 16-ary tree whose root lives in
//! an on-chip register.

use shm_crypto::MacKey;

/// Tree arity: 128 B node / 8 B hash.
pub const BMT_ARITY: u64 = 16;

/// Geometry of a BMT over `leaves` counter lines.
///
/// Level 0 is the counter lines themselves; levels `1..=levels()` are hash
/// nodes, with the top level containing a single node whose hash is the
/// on-chip root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BmtGeometry {
    leaves: u64,
    arity: u64,
    level_counts: Vec<u64>,
}

impl BmtGeometry {
    /// Builds the geometry for `leaves` counter lines at the default
    /// 16-ary organisation (128 B node / 8 B hash).
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is zero.
    pub fn new(leaves: u64) -> Self {
        Self::with_arity(leaves, BMT_ARITY)
    }

    /// Builds the geometry with an explicit tree `arity` (e.g. 8 for an
    /// SGX-style counter tree, or ablation studies).
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is zero or `arity` < 2.
    pub fn with_arity(leaves: u64, arity: u64) -> Self {
        assert!(leaves > 0, "integrity tree needs at least one leaf");
        assert!(arity >= 2, "tree arity must be at least 2");
        let mut level_counts = Vec::new();
        let mut n = leaves;
        while n > 1 {
            n = n.div_ceil(arity);
            level_counts.push(n);
        }
        if level_counts.is_empty() {
            // A single counter line still gets one covering node.
            level_counts.push(1);
        }
        Self {
            leaves,
            arity,
            level_counts,
        }
    }

    /// The tree's arity.
    pub fn arity(&self) -> u64 {
        self.arity
    }

    /// Number of counter-line leaves.
    pub fn leaves(&self) -> u64 {
        self.leaves
    }

    /// Number of hash levels above the leaves (root level = `levels()`).
    pub fn levels(&self) -> usize {
        self.level_counts.len()
    }

    /// Number of nodes at hash `level` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `level` is zero or above the root level.
    pub fn nodes_at_level(&self, level: u8) -> u64 {
        assert!(
            level >= 1 && (level as usize) <= self.levels(),
            "level out of range"
        );
        self.level_counts[level as usize - 1]
    }

    /// Index of the `level`-th ancestor node of leaf `leaf`.
    pub fn ancestor(&self, leaf: u64, level: u8) -> u64 {
        debug_assert!(leaf < self.leaves);
        leaf / self.arity.pow(level as u32)
    }
}

/// A functional Bonsai Merkle Tree holding real 64-bit hashes.
///
/// Leaf `i`'s hash authenticates counter line `i`'s content; inner nodes
/// hash their children; the root is compared against the value held
/// on-chip.  Used by [`crate::store::SecureMemory`] to demonstrate replay
/// detection.
#[derive(Clone, Debug)]
pub struct BmtTree {
    geom: BmtGeometry,
    key: MacKey,
    /// levels[0] = leaf hashes, levels.last() = root level (len 1 eventually).
    levels: Vec<Vec<u64>>,
}

impl BmtTree {
    /// Creates a tree over `leaves` counter lines, keyed with `key`, with
    /// all-zero leaf content hashed in.
    pub fn new(leaves: u64, key: MacKey) -> Self {
        Self::with_leaf_value(leaves, key, 0)
    }

    /// Creates a tree whose leaves all start at `initial_leaf`, the content
    /// hash of an untouched counter line (so first-touch reads verify).
    pub fn with_leaf_value(leaves: u64, key: MacKey, initial_leaf: u64) -> Self {
        let geom = BmtGeometry::new(leaves);
        let mut levels: Vec<Vec<u64>> = Vec::with_capacity(geom.levels() + 1);
        levels.push(vec![initial_leaf; leaves as usize]);
        for l in 1..=geom.levels() {
            levels.push(vec![0u64; geom.nodes_at_level(l as u8) as usize]);
        }
        let mut tree = Self { geom, key, levels };
        // Establish consistent hashes bottom-up.
        for leaf in 0..leaves {
            tree.update_path(leaf);
        }
        tree
    }

    /// Geometry of the tree.
    pub fn geometry(&self) -> &BmtGeometry {
        &self.geom
    }

    /// Current root hash (the on-chip register value).
    pub fn root(&self) -> u64 {
        self.levels
            .last()
            .and_then(|l| l.first())
            .copied()
            .expect("tree has a root")
    }

    /// Records a new content hash for counter line `leaf` and updates the
    /// path to the root (the write path of a counter update).
    pub fn update_leaf(&mut self, leaf: u64, content_hash: u64) {
        self.levels[0][leaf as usize] = content_hash;
        self.update_path(leaf);
    }

    /// Recomputes the hashes on `leaf`'s path to the root.
    fn update_path(&mut self, leaf: u64) {
        let mut idx = leaf;
        for level in 1..self.levels.len() {
            let parent = idx / BMT_ARITY;
            let start = parent * BMT_ARITY;
            let child_level = &self.levels[level - 1];
            let end = ((start + BMT_ARITY) as usize).min(child_level.len());
            let mut buf = Vec::with_capacity((end - start as usize) * 8);
            for h in &child_level[start as usize..end] {
                buf.extend_from_slice(&h.to_le_bytes());
            }
            self.levels[level][parent as usize] = self.key.mac(&buf);
            idx = parent;
        }
    }

    /// Verifies that `content_hash` for counter line `leaf` is consistent
    /// with the tree up to the root (the read path of a counter fetch).
    pub fn verify_leaf(&self, leaf: u64, content_hash: u64) -> bool {
        if self.levels[0][leaf as usize] != content_hash {
            return false;
        }
        // Recompute the path from stored children and compare.
        let mut idx = leaf;
        for level in 1..self.levels.len() {
            let parent = idx / BMT_ARITY;
            let start = parent * BMT_ARITY;
            let child_level = &self.levels[level - 1];
            let end = ((start + BMT_ARITY) as usize).min(child_level.len());
            let mut buf = Vec::with_capacity((end - start as usize) * 8);
            for h in &child_level[start as usize..end] {
                buf.extend_from_slice(&h.to_le_bytes());
            }
            if self.levels[level][parent as usize] != self.key.mac(&buf) {
                return false;
            }
            idx = parent;
        }
        true
    }

    /// Corrupts a stored leaf hash without updating the path — simulating an
    /// attacker replaying a stale counter line in DRAM.
    pub fn tamper_leaf(&mut self, leaf: u64, stale_hash: u64) {
        self.levels[0][leaf as usize] = stale_hash;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> MacKey {
        MacKey::new([7u8; 16])
    }

    #[test]
    fn geometry_levels() {
        let g = BmtGeometry::new(4096);
        // 4096 -> 256 -> 16 -> 1: three levels.
        assert_eq!(g.levels(), 3);
        assert_eq!(g.nodes_at_level(1), 256);
        assert_eq!(g.nodes_at_level(2), 16);
        assert_eq!(g.nodes_at_level(3), 1);
    }

    #[test]
    fn geometry_single_leaf() {
        let g = BmtGeometry::new(1);
        assert_eq!(g.levels(), 1);
        assert_eq!(g.nodes_at_level(1), 1);
    }

    #[test]
    fn geometry_non_power_of_arity() {
        let g = BmtGeometry::new(17);
        assert_eq!(g.levels(), 2);
        assert_eq!(g.nodes_at_level(1), 2);
        assert_eq!(g.nodes_at_level(2), 1);
    }

    #[test]
    fn ancestor_indices() {
        let g = BmtGeometry::new(4096);
        assert_eq!(g.ancestor(0, 1), 0);
        assert_eq!(g.ancestor(15, 1), 0);
        assert_eq!(g.ancestor(16, 1), 1);
        assert_eq!(g.ancestor(4095, 3), 0);
    }

    #[test]
    fn update_then_verify() {
        let mut t = BmtTree::new(100, key());
        t.update_leaf(42, 0xdead_beef);
        assert!(t.verify_leaf(42, 0xdead_beef));
        assert!(!t.verify_leaf(42, 0xdead_beee), "wrong content accepted");
    }

    #[test]
    fn updates_change_root() {
        let mut t = BmtTree::new(100, key());
        let r0 = t.root();
        t.update_leaf(0, 1);
        let r1 = t.root();
        assert_ne!(r0, r1);
        t.update_leaf(99, 2);
        assert_ne!(r1, t.root());
    }

    #[test]
    fn replay_is_detected() {
        let mut t = BmtTree::new(64, key());
        t.update_leaf(5, 111); // legitimate old value
        let stale = 111;
        t.update_leaf(5, 222); // counter advanced
                               // Attacker rolls the leaf back to the stale hash without touching
                               // the inner nodes (they are recomputed from DRAM on verification,
                               // but the upper path no longer matches).
        t.tamper_leaf(5, stale);
        assert!(!t.verify_leaf(5, stale), "replayed counter passed");
    }

    #[test]
    fn sibling_updates_do_not_break_verification() {
        let mut t = BmtTree::new(64, key());
        t.update_leaf(3, 10);
        t.update_leaf(4, 20);
        assert!(t.verify_leaf(3, 10));
        assert!(t.verify_leaf(4, 20));
    }
}
