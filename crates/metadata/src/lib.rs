//! Security-metadata geometry and functional stores for SHM.
//!
//! This crate answers two questions for the rest of the workspace:
//!
//! 1. **Where does metadata live?** — [`layout::MetadataLayout`] maps a
//!    protected data address to the addresses of its encryption-counter
//!    sector, its per-block MAC sector, its per-chunk MAC sector and the
//!    Bonsai-Merkle-Tree path covering its counter line.  The same layout is
//!    instantiated once per partition over *local* addresses (PSSM/SHM
//!    construction) or once over the whole *physical* range (the Naive
//!    baseline), which is exactly the difference that creates or removes
//!    cross-partition metadata redundancy.
//!
//! 2. **What are the metadata values?** — [`store::SecureMemory`] is a
//!    functional model holding real counters, MACs, BMT hashes and
//!    ciphertext, built on the [`shm_crypto`] primitives.  The test suite
//!    uses it to demonstrate the actual security guarantees: tampering and
//!    replay are detected, and read-only regions protected by the shared
//!    counter remain replay-proof across kernels.
//!
//! Split counters, minor-counter overflow handling and the on-chip shared
//! counter register live in [`counters`] and [`shared`].

pub mod bmt;
pub mod counters;
pub mod ctr_tree;
pub mod layout;
pub mod shared;
pub mod store;

pub use bmt::BmtGeometry;
pub use counters::{CounterSector, Increment};
pub use ctr_tree::CtrTree;
pub use layout::{MetadataKind, MetadataLayout};
pub use shared::SharedCounter;
pub use store::{IntegrityViolation, SecureMemory, VerifyError};
