//! An SGX-style counter tree — the alternative integrity-tree design of
//! Fig. 2, provided to substantiate the paper's claim that "our proposed
//! schemes are independent upon the integrity tree implementation".
//!
//! Where a Bonsai Merkle Tree stores *hashes* of child nodes, a counter
//! tree stores per-child *version counters* plus a MAC binding each node's
//! counters to its parent counter.  A write bumps the version counters
//! along the path (read-modify-write at every level); a read verifies each
//! node's MAC against its parent's counter.  Replaying any subtree stales
//! its version against the parent and the MAC check fails.

use shm_crypto::MacKey;

use crate::bmt::BmtGeometry;

/// Arity of the counter tree (eight 56-bit counters + MAC per 128 B node,
/// the SGX organisation).
pub const CTR_TREE_ARITY: u64 = 8;

/// One node: version counters for each child plus this node's MAC.
#[derive(Clone, Debug, Default)]
struct Node {
    versions: Vec<u64>,
    mac: u64,
}

/// A functional SGX-style counter tree over `leaves` counter lines.
///
/// Level 0 associates one version counter with every protected counter
/// line; inner levels hold version counters for their children; the root
/// version lives on chip.  [`CtrTree::bump_leaf`] is the write path,
/// [`CtrTree::verify_leaf`] the read path.
#[derive(Clone, Debug)]
pub struct CtrTree {
    geom: BmtGeometry,
    key: MacKey,
    /// `levels[l]` holds the nodes of level `l+1` (level 0 versions are the
    /// first entry's `versions` flattened across nodes).
    levels: Vec<Vec<Node>>,
    /// The on-chip root version counter.
    root_version: u64,
}

impl CtrTree {
    /// Builds a consistent all-zero tree over `leaves` counter lines.
    pub fn new(leaves: u64, key: MacKey) -> Self {
        let geom = BmtGeometry::with_arity(leaves, CTR_TREE_ARITY);
        let mut levels: Vec<Vec<Node>> = Vec::with_capacity(geom.levels());
        let mut children = leaves;
        for l in 1..=geom.levels() {
            let nodes = geom.nodes_at_level(l as u8);
            levels.push(
                (0..nodes)
                    .map(|n| {
                        let first_child = n * CTR_TREE_ARITY;
                        let fan = CTR_TREE_ARITY.min(children.saturating_sub(first_child));
                        Node {
                            versions: vec![0; fan.max(1) as usize],
                            mac: 0,
                        }
                    })
                    .collect(),
            );
            children = nodes;
        }
        let mut tree = Self {
            geom,
            key,
            levels,
            root_version: 0,
        };
        // Establish consistent MACs bottom-up.
        for l in 0..tree.levels.len() {
            for n in 0..tree.levels[l].len() {
                tree.levels[l][n].mac = tree.node_mac(l, n as u64);
            }
        }
        tree
    }

    /// Geometry of the tree.
    pub fn geometry(&self) -> &BmtGeometry {
        &self.geom
    }

    /// The on-chip root version.
    pub fn root_version(&self) -> u64 {
        self.root_version
    }

    /// MAC of node `n` at internal level `l` (0-based into `levels`),
    /// binding its child versions to its own version held by the parent.
    fn node_mac(&self, l: usize, n: u64) -> u64 {
        let own_version = self.version_of(l, n);
        let node = &self.levels[l][n as usize];
        let mut buf = Vec::with_capacity(node.versions.len() * 8 + 16);
        for v in &node.versions {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&own_version.to_le_bytes());
        buf.extend_from_slice(&(((l as u64) << 40) | n).to_le_bytes());
        self.key.mac(&buf)
    }

    /// The version counter *of* node `(l, n)`, stored in its parent (or the
    /// on-chip root for the top level).
    fn version_of(&self, l: usize, n: u64) -> u64 {
        if l + 1 == self.levels.len() {
            self.root_version
        } else {
            let parent = &self.levels[l + 1][(n / CTR_TREE_ARITY) as usize];
            parent.versions[(n % CTR_TREE_ARITY) as usize]
        }
    }

    /// Write path: bump the version of `leaf` and every node on its path,
    /// re-MACing as it goes.  Returns the new leaf version.
    pub fn bump_leaf(&mut self, leaf: u64) -> u64 {
        assert!(leaf < self.geom.leaves(), "leaf out of range");
        // Bump the leaf's version (stored in its level-1 node).
        let mut idx = leaf;
        let mut new_leaf_version = 0;
        for l in 0..self.levels.len() {
            let parent = idx / CTR_TREE_ARITY;
            let slot = (idx % CTR_TREE_ARITY) as usize;
            self.levels[l][parent as usize].versions[slot] += 1;
            if l == 0 {
                new_leaf_version = self.levels[l][parent as usize].versions[slot];
            }
            idx = parent;
        }
        self.root_version += 1;
        // Re-MAC the touched path bottom-up (parents' versions changed).
        let mut idx = leaf;
        for l in 0..self.levels.len() {
            let parent = idx / CTR_TREE_ARITY;
            self.levels[l][parent as usize].mac = self.node_mac(l, parent);
            idx = parent;
        }
        new_leaf_version
    }

    /// Read path: verify the MAC chain from `leaf`'s node to the root.
    /// Returns the leaf's current version on success.
    pub fn verify_leaf(&self, leaf: u64) -> Option<u64> {
        assert!(leaf < self.geom.leaves(), "leaf out of range");
        let mut idx = leaf;
        for l in 0..self.levels.len() {
            let parent = idx / CTR_TREE_ARITY;
            if self.levels[l][parent as usize].mac != self.node_mac(l, parent) {
                return None;
            }
            idx = parent;
        }
        let node = &self.levels[0][(leaf / CTR_TREE_ARITY) as usize];
        Some(node.versions[(leaf % CTR_TREE_ARITY) as usize])
    }

    /// Attacker action: roll one node's stored state back to a stale copy
    /// (off-chip DRAM contents only — the root version is on chip).
    pub fn rollback_node(
        &mut self,
        leaf: u64,
        level: usize,
        stale_versions: Vec<u64>,
        stale_mac: u64,
    ) {
        let mut idx = leaf;
        for _ in 0..level {
            idx /= CTR_TREE_ARITY;
        }
        let node = &mut self.levels[level][(idx / CTR_TREE_ARITY) as usize];
        node.versions = stale_versions;
        node.mac = stale_mac;
    }

    /// Snapshot of the node covering `leaf` at `level` (what a bus snooper
    /// captures).
    pub fn snapshot_node(&self, leaf: u64, level: usize) -> (Vec<u64>, u64) {
        let mut idx = leaf;
        for _ in 0..level {
            idx /= CTR_TREE_ARITY;
        }
        let node = &self.levels[level][(idx / CTR_TREE_ARITY) as usize];
        (node.versions.clone(), node.mac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> MacKey {
        MacKey::new([0x33; 16])
    }

    #[test]
    fn fresh_tree_verifies_everywhere() {
        let t = CtrTree::new(100, key());
        for leaf in [0u64, 1, 50, 99] {
            assert_eq!(t.verify_leaf(leaf), Some(0));
        }
    }

    #[test]
    fn bump_increments_version_and_root() {
        let mut t = CtrTree::new(64, key());
        assert_eq!(t.bump_leaf(5), 1);
        assert_eq!(t.bump_leaf(5), 2);
        assert_eq!(t.verify_leaf(5), Some(2));
        assert_eq!(t.root_version(), 2);
        assert_eq!(t.verify_leaf(6), Some(0), "sibling untouched");
    }

    #[test]
    fn replaying_a_leaf_node_is_detected() {
        let mut t = CtrTree::new(64, key());
        t.bump_leaf(7);
        let stale = t.snapshot_node(7, 0);
        t.bump_leaf(7); // state moves on
        t.rollback_node(7, 0, stale.0, stale.1);
        assert_eq!(t.verify_leaf(7), None, "stale leaf node accepted");
    }

    #[test]
    fn replaying_an_inner_node_is_detected() {
        let mut t = CtrTree::new(512, key());
        t.bump_leaf(100);
        let stale = t.snapshot_node(100, 1);
        t.bump_leaf(100);
        t.rollback_node(100, 1, stale.0, stale.1);
        assert_eq!(t.verify_leaf(100), None, "stale inner node accepted");
    }

    #[test]
    fn whole_path_rollback_fails_at_the_root() {
        // Replay every off-chip level consistently: only the on-chip root
        // version can catch it.
        let mut t = CtrTree::new(64, key());
        t.bump_leaf(3);
        let snaps: Vec<_> = (0..t.levels.len()).map(|l| t.snapshot_node(3, l)).collect();
        t.bump_leaf(3);
        for (l, (v, m)) in snaps.into_iter().enumerate() {
            t.rollback_node(3, l, v, m);
        }
        assert_eq!(t.verify_leaf(3), None, "full off-chip rollback accepted");
    }

    #[test]
    fn geometry_uses_arity_8() {
        let t = CtrTree::new(4096, key());
        // 4096 -> 512 -> 64 -> 8 -> 1: four levels at arity 8.
        assert_eq!(t.geometry().levels(), 4);
    }
}
