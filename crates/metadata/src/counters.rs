//! Split-counter representation for counter-mode encryption.
//!
//! State-of-the-art secure memory keeps a large *major* counter shared by a
//! group of blocks and a small per-block *minor* counter.  Each write
//! increments the block's minor counter; on minor overflow the major counter
//! increments and every block in the group must be re-encrypted (Section
//! II-B).  The simulator stores one self-contained counter group per 32 B
//! counter sector: an 8 B major plus sixteen 1 B minors.

use gpu_types::BLOCK_BYTES;

use crate::layout::BLOCKS_PER_COUNTER_SECTOR;

/// Outcome of incrementing a block's counter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Increment {
    /// Minor counter incremented normally.
    Minor,
    /// Minor overflowed: major incremented, minors reset, and every block in
    /// the group must be re-encrypted with the new major counter.
    Overflow {
        /// Blocks in the group needing re-encryption.
        group_blocks: u64,
    },
}

/// One counter group: a major counter plus per-block minor counters,
/// matching the contents of a 32 B counter sector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSector {
    major: u64,
    minors: [u8; BLOCKS_PER_COUNTER_SECTOR as usize],
}

impl Default for CounterSector {
    fn default() -> Self {
        Self::new()
    }
}

impl CounterSector {
    /// A fresh group with all counters zero.
    pub const fn new() -> Self {
        Self {
            major: 0,
            minors: [0; BLOCKS_PER_COUNTER_SECTOR as usize],
        }
    }

    /// A group whose major counter was propagated from the shared counter
    /// when a read-only region transitioned to not-read-only (Fig. 8).
    ///
    /// `written_block` is the block (0..16) whose store triggered the
    /// transition; its minor becomes padding+1 while the others stay at the
    /// padding value (0).
    pub fn propagated_from_shared(shared: u64, written_block: usize) -> Self {
        let mut s = Self {
            major: shared,
            minors: [0; BLOCKS_PER_COUNTER_SECTOR as usize],
        };
        s.minors[written_block] = 1;
        s
    }

    /// Major counter value.
    pub fn major(&self) -> u64 {
        self.major
    }

    /// Minor counter of `block` (0..16).
    pub fn minor(&self, block: usize) -> u8 {
        self.minors[block]
    }

    /// `(major, minor)` pair used in the encryption seed for `block`.
    pub fn seed_pair(&self, block: usize) -> (u64, u16) {
        (self.major, self.minors[block] as u16)
    }

    /// Increments the counter for `block`, handling minor overflow.
    pub fn increment(&mut self, block: usize) -> Increment {
        if self.minors[block] == u8::MAX {
            self.major += 1;
            self.minors = [0; BLOCKS_PER_COUNTER_SECTOR as usize];
            self.minors[block] = 1;
            Increment::Overflow {
                group_blocks: BLOCKS_PER_COUNTER_SECTOR,
            }
        } else {
            self.minors[block] += 1;
            Increment::Minor
        }
    }

    /// Bytes of data covered by one counter sector.
    pub const fn coverage_bytes() -> u64 {
        BLOCKS_PER_COUNTER_SECTOR * BLOCK_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fresh_sector_is_zero() {
        let s = CounterSector::new();
        assert_eq!(s.major(), 0);
        assert_eq!(s.seed_pair(5), (0, 0));
    }

    #[test]
    fn increment_bumps_minor() {
        let mut s = CounterSector::new();
        assert_eq!(s.increment(3), Increment::Minor);
        assert_eq!(s.seed_pair(3), (0, 1));
        assert_eq!(s.seed_pair(2), (0, 0), "other minors untouched");
    }

    #[test]
    fn overflow_resets_group() {
        let mut s = CounterSector::new();
        for _ in 0..255 {
            assert_eq!(s.increment(0), Increment::Minor);
        }
        assert_eq!(s.increment(0), Increment::Overflow { group_blocks: 16 });
        assert_eq!(s.major(), 1);
        assert_eq!(s.seed_pair(0), (1, 1));
        assert_eq!(s.seed_pair(1), (1, 0));
    }

    #[test]
    fn seed_pairs_never_repeat_for_a_block() {
        // The fundamental counter-mode requirement: (major, minor) pairs for
        // one block never repeat across increments.
        let mut s = CounterSector::new();
        let mut seen = HashSet::new();
        seen.insert(s.seed_pair(0));
        for _ in 0..1000 {
            s.increment(0);
            assert!(
                seen.insert(s.seed_pair(0)),
                "seed reuse at {:?}",
                s.seed_pair(0)
            );
        }
    }

    #[test]
    fn propagation_from_shared_counter() {
        let s = CounterSector::propagated_from_shared(3, 2);
        assert_eq!(s.major(), 3);
        assert_eq!(s.seed_pair(2), (3, 1), "written block minor = padding+1");
        assert_eq!(s.seed_pair(0), (3, 0), "others stay at padding");
    }

    #[test]
    fn coverage() {
        assert_eq!(CounterSector::coverage_bytes(), 2048);
    }
}
