//! The on-chip shared counter register for read-only regions.
//!
//! Read-only data needs no per-block temporal uniqueness within a single
//! kernel, so one on-chip counter serves every read-only region (Section
//! III-B).  The register only matters across kernel boundaries: when the
//! host re-uses a read-only region via `InputReadOnlyReset`, the shared
//! counter is raised to at least the maximum per-block major counter found
//! in the reset range, so a pad value can never be reused by a cross-kernel
//! replay attack (Fig. 9).

/// The on-chip shared counter register.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct SharedCounter {
    value: u64,
}

impl SharedCounter {
    /// A new register starting at zero.
    pub const fn new() -> Self {
        Self { value: 0 }
    }

    /// Current value — used as the major counter for every read-only block
    /// (the minor counter is zero-padded).
    pub const fn value(self) -> u64 {
        self.value
    }

    /// `(major, minor)` seed pair for read-only data.
    pub const fn seed_pair(self) -> (u64, u16) {
        (self.value, 0)
    }

    /// Applies an `InputReadOnlyReset`: raises the register to
    /// `max(current, max_scanned_major) + 1` where `max_scanned_major` is
    /// the maximum per-block major counter scanned from the reset range.
    ///
    /// The paper resets to the scanned maximum; we additionally add one,
    /// because the pad `(major = scanned_max, minor = 0)` has already been
    /// consumed either by the previous read-only generation or by untouched
    /// blocks after shared-counter propagation, and counter-mode pads must
    /// never be reused with different data.  Returns the new value.
    pub fn reset_for_reuse(&mut self, max_scanned_major: u64) -> u64 {
        self.value = self.value.max(max_scanned_major) + 1;
        self.value
    }

    /// Advances the register at context/kernel setup when the host rewrites
    /// read-only regions (each bulk overwrite gets a fresh pad generation).
    pub fn advance(&mut self) -> u64 {
        self.value += 1;
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SharedCounter::new().value(), 0);
        assert_eq!(SharedCounter::new().seed_pair(), (0, 0));
    }

    #[test]
    fn reset_takes_max_plus_one() {
        let mut c = SharedCounter::new();
        c.advance(); // 1
        assert_eq!(
            c.reset_for_reuse(90),
            91,
            "Fig. 9 example, +1 for pad freshness"
        );
        assert_eq!(c.reset_for_reuse(5), 92, "never lowered; always advances");
    }

    #[test]
    fn advance_increments() {
        let mut c = SharedCounter::new();
        assert_eq!(c.advance(), 1);
        assert_eq!(c.advance(), 2);
    }
}
