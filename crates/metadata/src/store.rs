//! A functional secure-memory model over one protected address space.
//!
//! [`SecureMemory`] holds real ciphertext, split counters, per-block and
//! per-chunk MACs and a Bonsai Merkle Tree, and implements the full
//! read/write/verify flows of Fig. 1.  It exists to *prove* the security
//! semantics the performance simulator assumes: the test suite tampers with
//! "DRAM" contents and replays stale values and checks the engine rejects
//! them, including the shared-counter flows for read-only regions.
//!
//! Addresses are block-aligned offsets into the protected span; all state is
//! sparse (hash maps), so a 4 GB span costs only what is touched.

use gpu_types::{FxHashMap, BLOCK_BYTES, CHUNK_BYTES};
use shm_crypto::{chunk_mac, otp, stateful_mac, Aes128, KeyTuple, MacKey};

use crate::bmt::BmtTree;
use crate::counters::{CounterSector, Increment};
use crate::layout::{MetadataLayout, BLOCKS_PER_COUNTER_SECTOR};
use crate::shared::SharedCounter;

/// Why a verified read failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VerifyError {
    /// The per-block MAC did not match the fetched ciphertext + counter.
    BlockMacMismatch,
    /// The per-chunk MAC did not match the chunk's block MACs.
    ChunkMacMismatch,
    /// The Bonsai Merkle Tree rejected the counter line (replay).
    FreshnessViolation,
}

impl core::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            VerifyError::BlockMacMismatch => "per-block MAC mismatch",
            VerifyError::ChunkMacMismatch => "per-chunk MAC mismatch",
            VerifyError::FreshnessViolation => "integrity-tree freshness violation",
        };
        f.write_str(s)
    }
}

impl std::error::Error for VerifyError {}

impl VerifyError {
    /// Stable lower-case label used in telemetry and detection matrices.
    pub fn label(&self) -> &'static str {
        match self {
            VerifyError::BlockMacMismatch => "block_mac_mismatch",
            VerifyError::ChunkMacMismatch => "chunk_mac_mismatch",
            VerifyError::FreshnessViolation => "freshness_violation",
        }
    }
}

/// A verification failure bound to the address that raised it — the
/// structured record propagated from the engine through the runtime to the
/// CLI and telemetry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IntegrityViolation {
    /// Block-aligned device address of the offending access.
    pub addr: u64,
    /// Which check rejected the access.
    pub error: VerifyError,
}

impl core::fmt::Display for IntegrityViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "integrity violation at {:#x}: {}", self.addr, self.error)
    }
}

impl std::error::Error for IntegrityViolation {}

/// A functional secure-memory engine over a protected span.
#[derive(Clone, Debug)]
pub struct SecureMemory {
    layout: MetadataLayout,
    aes: Aes128,
    mac_key: MacKey,
    /// Ciphertext per block-aligned address ("DRAM" contents).
    ciphertext: FxHashMap<u64, [u8; 128]>,
    /// Counter sectors per counter-sector address.
    counters: FxHashMap<u64, CounterSector>,
    /// Per-block MACs per block-aligned data address.
    block_macs: FxHashMap<u64, u64>,
    /// Per-chunk MACs per chunk index.
    chunk_macs: FxHashMap<u64, u64>,
    /// The integrity tree over counter lines.
    bmt: BmtTree,
    /// The on-chip shared counter for read-only regions.
    shared: SharedCounter,
    /// Whether each block currently uses the shared counter (read-only).
    uses_shared: FxHashMap<u64, bool>,
    /// Pending one-shot transient faults per block: `(byte, bit)` flipped in
    /// the *fetched copy* of the next read only — the stored ciphertext is
    /// untouched, so a refetch succeeds (models a bus/DRAM soft error).
    transient_faults: FxHashMap<u64, (usize, u8)>,
}

impl SecureMemory {
    /// Creates an engine over `data_span` bytes keyed by `keys`.
    pub fn new(data_span: u64, keys: &KeyTuple) -> Self {
        let layout = MetadataLayout::new(data_span);
        // Leaves start at the hash of an untouched counter line, so a read
        // of never-written memory verifies (all counters at their default).
        let mac_key = MacKey::new(keys.k_mac);
        let default_sector = CounterSector::default();
        let mut buf = Vec::with_capacity(4 * 24);
        for _ in 0..4 {
            buf.extend_from_slice(&default_sector.major().to_le_bytes());
            for b in 0..crate::layout::BLOCKS_PER_COUNTER_SECTOR as usize {
                buf.push(default_sector.minor(b));
            }
        }
        let default_leaf = mac_key.mac(&buf);
        let bmt = BmtTree::with_leaf_value(
            layout.bmt().leaves(),
            MacKey::new(keys.k_tree),
            default_leaf,
        );
        Self {
            layout,
            aes: Aes128::new(keys.k_enc),
            mac_key: MacKey::new(keys.k_mac),
            ciphertext: FxHashMap::default(),
            counters: FxHashMap::default(),
            block_macs: FxHashMap::default(),
            chunk_macs: FxHashMap::default(),
            bmt,
            shared: SharedCounter::new(),
            uses_shared: FxHashMap::default(),
            transient_faults: FxHashMap::default(),
        }
    }

    /// The metadata layout in use.
    pub fn layout(&self) -> &MetadataLayout {
        &self.layout
    }

    /// Current shared-counter value.
    pub fn shared_counter(&self) -> u64 {
        self.shared.value()
    }

    fn block_in_sector(addr: u64) -> usize {
        ((addr / BLOCK_BYTES) % BLOCKS_PER_COUNTER_SECTOR) as usize
    }

    fn counter_hash(&self, sector_addr: u64) -> u64 {
        // Hash the sector content for the BMT leaf; the whole counter line
        // shares a leaf, so combine the four sectors of the line.
        let line = sector_addr & !(BLOCK_BYTES - 1);
        let mut buf = Vec::with_capacity(4 * 24);
        for s in 0..4 {
            let sec = self
                .counters
                .get(&(line + s * 32))
                .cloned()
                .unwrap_or_default();
            buf.extend_from_slice(&sec.major().to_le_bytes());
            for b in 0..BLOCKS_PER_COUNTER_SECTOR as usize {
                buf.push(sec.minor(b));
            }
        }
        self.mac_key.mac(&buf)
    }

    fn bmt_leaf_of(&self, data_addr: u64) -> u64 {
        self.layout.counter_line_index(data_addr)
    }

    /// Writes plaintext to a (non-read-only) block: increments its counter,
    /// encrypts, stores the MAC and updates the BMT — steps ①–⑤ of Fig. 1.
    ///
    /// Returns the number of blocks that had to be re-encrypted due to a
    /// minor-counter overflow (0 in the common case).
    pub fn write_block(&mut self, addr: u64, plaintext: &[u8; 128]) -> u64 {
        let addr = addr & !(BLOCK_BYTES - 1);
        let sector_addr = self.layout.counter_sector(addr);
        let block = Self::block_in_sector(addr);

        let was_shared = self.uses_shared.get(&addr).copied().unwrap_or(false);
        let (major, minor, reencrypted) = if was_shared {
            // Read-only -> not-read-only transition (Fig. 8): propagate the
            // shared counter as the major counter for the whole group; the
            // written block's minor becomes padding+1, the rest stay at the
            // padding value, matching the pads their ciphertext already uses.
            let sec = CounterSector::propagated_from_shared(self.shared.value(), block);
            let pair = sec.seed_pair(block);
            self.counters.insert(sector_addr, sec);
            let group_base = addr - (block as u64) * BLOCK_BYTES;
            for b in 0..BLOCKS_PER_COUNTER_SECTOR {
                self.uses_shared.insert(group_base + b * BLOCK_BYTES, false);
            }
            (pair.0, pair.1, 0)
        } else {
            let counter = self.counters.entry(sector_addr).or_default();
            let reenc = match counter.increment(block) {
                Increment::Minor => 0,
                Increment::Overflow { group_blocks } => group_blocks,
            };
            let pair = counter.seed_pair(block);
            (pair.0, pair.1, reenc)
        };

        let mut ct = *plaintext;
        otp::xor_pad(&self.aes, addr, major, minor, &mut ct);
        let mac = stateful_mac(&self.mac_key, &ct, pack_ctr(major, minor), addr);

        self.ciphertext.insert(addr, ct);
        self.block_macs.insert(addr, mac);
        self.uses_shared.insert(addr, false);
        self.invalidate_chunk_mac(addr);

        let leaf = self.bmt_leaf_of(addr);
        let hash = self.counter_hash(sector_addr);
        self.bmt.update_leaf(leaf, hash);
        reencrypted
    }

    /// Host-side bulk write of read-only input data (CUDA memcpy during
    /// context initialisation): encrypts with the shared counter and marks
    /// the block as shared-counter-protected.  No BMT coverage is needed.
    pub fn write_readonly_block(&mut self, addr: u64, plaintext: &[u8; 128]) {
        let addr = addr & !(BLOCK_BYTES - 1);
        let (major, minor) = self.shared.seed_pair();
        let mut ct = *plaintext;
        otp::xor_pad(&self.aes, addr, major, minor, &mut ct);
        let mac = stateful_mac(&self.mac_key, &ct, pack_ctr(major, minor), addr);
        self.ciphertext.insert(addr, ct);
        self.block_macs.insert(addr, mac);
        self.uses_shared.insert(addr, true);
        self.invalidate_chunk_mac(addr);
    }

    /// Reads and verifies a block with per-block MAC granularity.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] if the MAC does not match (tampering) or the
    /// BMT rejects the counter (replay of a non-read-only block).
    pub fn read_block(&mut self, addr: u64) -> Result<[u8; 128], VerifyError> {
        let addr = addr & !(BLOCK_BYTES - 1);
        let mut ct = self.ciphertext.get(&addr).copied().unwrap_or([0u8; 128]);
        if let Some((byte, bit)) = self.transient_faults.remove(&addr) {
            // Corrupt only this fetch; the stored copy stays intact.
            ct[byte % 128] ^= 1 << (bit % 8);
        }
        let shared = self.uses_shared.get(&addr).copied().unwrap_or(false);

        let (major, minor) = if shared {
            self.shared.seed_pair()
        } else {
            let sector_addr = self.layout.counter_sector(addr);
            let sector = self.counters.get(&sector_addr).cloned().unwrap_or_default();
            // Freshness: the fetched counter line must verify against the BMT.
            let leaf = self.bmt_leaf_of(addr);
            if !self.bmt.verify_leaf(leaf, self.counter_hash(sector_addr)) {
                return Err(VerifyError::FreshnessViolation);
            }
            sector.seed_pair(Self::block_in_sector(addr))
        };

        let expected = stateful_mac(&self.mac_key, &ct, pack_ctr(major, minor), addr);
        let stored = self.block_macs.get(&addr).copied().unwrap_or_else(|| {
            // Untouched memory: MAC of the all-zero ciphertext.
            stateful_mac(&self.mac_key, &[0u8; 128], pack_ctr(major, minor), addr)
        });
        if expected != stored {
            return Err(VerifyError::BlockMacMismatch);
        }

        let mut pt = ct;
        otp::xor_pad(&self.aes, addr, major, minor, &mut pt);
        Ok(pt)
    }

    /// Produces (and caches) the chunk-level MAC of the 4 KB chunk holding
    /// `addr` from the current per-block MACs.
    pub fn produce_chunk_mac(&mut self, addr: u64) -> u64 {
        let chunk = addr / CHUNK_BYTES;
        let base = chunk * CHUNK_BYTES;
        let macs: Vec<u64> = (0..(CHUNK_BYTES / BLOCK_BYTES))
            .map(|i| {
                let a = base + i * BLOCK_BYTES;
                self.block_macs.get(&a).copied().unwrap_or_else(|| {
                    let shared = self.uses_shared.get(&a).copied().unwrap_or(false);
                    let (major, minor) = if shared {
                        self.shared.seed_pair()
                    } else {
                        let s = self.layout.counter_sector(a);
                        self.counters
                            .get(&s)
                            .cloned()
                            .unwrap_or_default()
                            .seed_pair(Self::block_in_sector(a))
                    };
                    stateful_mac(&self.mac_key, &[0u8; 128], pack_ctr(major, minor), a)
                })
            })
            .collect();
        let m = chunk_mac(&self.mac_key, &macs);
        self.chunk_macs.insert(chunk, m);
        m
    }

    /// Verifies a whole streaming chunk against its chunk-level MAC.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::ChunkMacMismatch`] if the recomputed chunk MAC
    /// differs from the stored one.
    pub fn verify_chunk(&mut self, addr: u64) -> Result<(), VerifyError> {
        let chunk = addr / CHUNK_BYTES;
        let stored = match self.chunk_macs.get(&chunk).copied() {
            Some(m) => m,
            None => return Ok(()), // never produced; nothing to check against
        };
        let recomputed = {
            let base = chunk * CHUNK_BYTES;
            let macs: Vec<u64> = (0..(CHUNK_BYTES / BLOCK_BYTES))
                .map(|i| {
                    let a = base + i * BLOCK_BYTES;
                    let ct = self.ciphertext.get(&a).copied().unwrap_or([0u8; 128]);
                    let shared = self.uses_shared.get(&a).copied().unwrap_or(false);
                    let (major, minor) = if shared {
                        self.shared.seed_pair()
                    } else {
                        let s = self.layout.counter_sector(a);
                        self.counters
                            .get(&s)
                            .cloned()
                            .unwrap_or_default()
                            .seed_pair(Self::block_in_sector(a))
                    };
                    stateful_mac(&self.mac_key, &ct, pack_ctr(major, minor), a)
                })
                .collect();
            chunk_mac(&self.mac_key, &macs)
        };
        if recomputed != stored {
            Err(VerifyError::ChunkMacMismatch)
        } else {
            Ok(())
        }
    }

    /// Applies `InputReadOnlyReset(addr_range)`: scans the range's major
    /// counters, raises the shared counter to the maximum found, and marks
    /// the blocks as shared-counter-protected again (Fig. 9).
    ///
    /// Returns the new shared-counter value.
    pub fn input_readonly_reset(&mut self, start: u64, len: u64) -> u64 {
        let mut max_major = 0u64;
        let mut a = start & !(BLOCK_BYTES - 1);
        while a < start + len {
            let s = self.layout.counter_sector(a);
            if let Some(sec) = self.counters.get(&s) {
                max_major = max_major.max(sec.major());
            }
            self.uses_shared.insert(a, true);
            a += BLOCK_BYTES;
        }
        self.shared.reset_for_reuse(max_major)
    }

    /// Attacker action: overwrite the stored ciphertext of a block.
    pub fn tamper_ciphertext(&mut self, addr: u64, new_ct: [u8; 128]) {
        self.ciphertext.insert(addr & !(BLOCK_BYTES - 1), new_ct);
    }

    /// Attacker action: replay a stale `(ciphertext, mac)` pair captured
    /// earlier from the bus.
    pub fn replay_block(&mut self, addr: u64, stale_ct: [u8; 128], stale_mac: u64) {
        let addr = addr & !(BLOCK_BYTES - 1);
        self.ciphertext.insert(addr, stale_ct);
        self.block_macs.insert(addr, stale_mac);
    }

    /// Attacker action: roll a counter sector back to a stale value without
    /// fixing the BMT (off-chip state only).
    pub fn replay_counter(&mut self, addr: u64, stale: CounterSector) {
        let s = self.layout.counter_sector(addr);
        self.counters.insert(s, stale);
    }

    /// Snapshot of the raw stored `(ciphertext, mac)` of a block, as an
    /// attacker on the memory bus would capture it.
    pub fn snapshot_block(&self, addr: u64) -> ([u8; 128], u64) {
        let addr = addr & !(BLOCK_BYTES - 1);
        let ct = self.ciphertext.get(&addr).copied().unwrap_or([0u8; 128]);
        let mac = self.block_macs.get(&addr).copied().unwrap_or(0);
        (ct, mac)
    }

    /// Snapshot of a counter sector.
    pub fn snapshot_counter(&self, addr: u64) -> CounterSector {
        self.counters
            .get(&self.layout.counter_sector(addr))
            .cloned()
            .unwrap_or_default()
    }

    /// Attacker action: flip one bit of the stored ciphertext in place
    /// (Rowhammer-style disturbance of a DRAM cell).
    pub fn tamper_ciphertext_bit(&mut self, addr: u64, byte: usize, bit: u8) {
        let addr = addr & !(BLOCK_BYTES - 1);
        let ct = self.ciphertext.entry(addr).or_insert([0u8; 128]);
        ct[byte % 128] ^= 1 << (bit % 8);
    }

    /// Attacker action: corrupt the stored per-block MAC by XOR-ing `mask`
    /// into it (a fault in the MAC region of DRAM).
    pub fn tamper_block_mac(&mut self, addr: u64, mask: u64) {
        let addr = addr & !(BLOCK_BYTES - 1);
        let shared = self.uses_shared.get(&addr).copied().unwrap_or(false);
        let (major, minor) = if shared {
            self.shared.seed_pair()
        } else {
            let s = self.layout.counter_sector(addr);
            self.counters
                .get(&s)
                .cloned()
                .unwrap_or_default()
                .seed_pair(Self::block_in_sector(addr))
        };
        let stored = self.block_macs.get(&addr).copied().unwrap_or_else(|| {
            stateful_mac(&self.mac_key, &[0u8; 128], pack_ctr(major, minor), addr)
        });
        self.block_macs.insert(addr, stored ^ mask);
    }

    /// Attacker action: corrupt a stored chunk-level MAC by XOR-ing `mask`
    /// into it.  No-op if the chunk MAC was never produced.
    pub fn tamper_chunk_mac(&mut self, addr: u64, mask: u64) {
        let chunk = addr / CHUNK_BYTES;
        if let Some(m) = self.chunk_macs.get_mut(&chunk) {
            *m ^= mask;
        }
    }

    /// Attacker action: roll a counter sector's minors back by re-inserting a
    /// default (all-zero) sector without touching the BMT.
    pub fn tamper_counter_reset(&mut self, addr: u64) {
        let s = self.layout.counter_sector(addr);
        self.counters.insert(s, CounterSector::default());
    }

    /// Attacker action: overwrite the BMT leaf covering `addr`'s counter line
    /// with `stale_hash` — splicing a stale tree node into DRAM.
    pub fn tamper_bmt_leaf(&mut self, addr: u64, stale_hash: u64) {
        let leaf = self.bmt_leaf_of(addr);
        self.bmt.tamper_leaf(leaf, stale_hash);
    }

    /// Current BMT leaf hash covering `addr` (what an attacker snoops before
    /// replaying it later via [`Self::tamper_bmt_leaf`]).
    pub fn snapshot_bmt_leaf(&self, addr: u64) -> u64 {
        let sector_addr = self.layout.counter_sector(addr);
        self.counter_hash(sector_addr)
    }

    /// Attacker action: splice block `src`'s stored `(ciphertext, mac)` over
    /// block `dst` — relocating valid DRAM content to the wrong address.
    pub fn splice_blocks(&mut self, src: u64, dst: u64) {
        let (ct, mac) = self.snapshot_block(src);
        let dst = dst & !(BLOCK_BYTES - 1);
        self.ciphertext.insert(dst, ct);
        self.block_macs.insert(dst, mac);
    }

    /// Attacker action: splice only block `src`'s MAC over block `dst`'s MAC
    /// (cross-address MAC relocation; ciphertexts stay put).
    pub fn splice_block_macs(&mut self, src: u64, dst: u64) {
        let (_, mac) = self.snapshot_block(src);
        self.block_macs.insert(dst & !(BLOCK_BYTES - 1), mac);
    }

    /// Arms a one-shot transient fault on `addr`: the *next* fetch of the
    /// block sees bit `bit` of byte `byte` flipped, but the stored copy is
    /// untouched, so a refetch verifies.  Models a correctable soft error
    /// and exercises the retry-fetch-once recovery policy.
    pub fn inject_transient_fault(&mut self, addr: u64, byte: usize, bit: u8) {
        self.transient_faults
            .insert(addr & !(BLOCK_BYTES - 1), (byte, bit));
    }

    /// Whether a transient fault is still armed on `addr` (it clears itself
    /// on the first fetch).
    pub fn transient_fault_armed(&self, addr: u64) -> bool {
        self.transient_faults
            .contains_key(&(addr & !(BLOCK_BYTES - 1)))
    }

    fn invalidate_chunk_mac(&mut self, addr: u64) {
        self.chunk_macs.remove(&(addr / CHUNK_BYTES));
    }

    // --- Persistence domain: recovery actions replaying a write-ahead log.
    //
    // Unlike the attacker hooks above, these restore *consistent* state: a
    // counter restore always rewrites the full BMT path, so a recovered
    // region verifies again instead of merely holding old bytes.

    /// Recovery action: restore a block's stored ciphertext from a journal
    /// record (undo/redo of a torn data write).
    pub fn restore_ciphertext(&mut self, addr: u64, ct: [u8; 128]) {
        self.ciphertext.insert(addr & !(BLOCK_BYTES - 1), ct);
    }

    /// Recovery action: restore a block's stored per-block MAC from a
    /// journal record.
    pub fn restore_block_mac(&mut self, addr: u64, mac: u64) {
        self.block_macs.insert(addr & !(BLOCK_BYTES - 1), mac);
    }

    /// Recovery action: restore the counter sector covering `addr` and
    /// rebuild the whole BMT path over its counter line, leaving the tree
    /// consistent with the restored sector (contrast
    /// [`Self::replay_counter`], which deliberately leaves the tree stale).
    pub fn restore_counter(&mut self, addr: u64, sector: CounterSector) {
        let sector_addr = self.layout.counter_sector(addr);
        self.counters.insert(sector_addr, sector);
        let leaf = self.bmt_leaf_of(addr);
        let hash = self.counter_hash(sector_addr);
        self.bmt.update_leaf(leaf, hash);
    }

    /// Recovery action: recompute the BMT leaf covering `addr` from the
    /// counters currently stored and rewrite its path bottom-up — heals a
    /// tree whose leaf or inner nodes were torn mid-update.
    pub fn rebuild_bmt_leaf(&mut self, addr: u64) {
        let sector_addr = self.layout.counter_sector(addr);
        let leaf = self.bmt_leaf_of(addr);
        let hash = self.counter_hash(sector_addr);
        self.bmt.update_leaf(leaf, hash);
    }
}

/// Packs a (major, minor) pair into the single counter word fed to the MAC.
fn pack_ctr(major: u64, minor: u16) -> u64 {
    (major << 16) | minor as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> SecureMemory {
        SecureMemory::new(1 << 20, &KeyTuple::derive(42))
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = mem();
        let data = [0x5Au8; 128];
        m.write_block(0x1000, &data);
        assert_eq!(m.read_block(0x1000).expect("verified read"), data);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let mut m = mem();
        let data = [0x5Au8; 128];
        m.write_block(0x1000, &data);
        let (ct, _) = m.snapshot_block(0x1000);
        assert_ne!(ct, data, "data stored unencrypted");
    }

    #[test]
    fn same_plaintext_different_addresses_different_ciphertext() {
        let mut m = mem();
        let data = [0x77u8; 128];
        m.write_block(0x0, &data);
        m.write_block(0x80, &data);
        assert_ne!(m.snapshot_block(0x0).0, m.snapshot_block(0x80).0);
    }

    #[test]
    fn rewriting_same_block_changes_ciphertext() {
        // Temporal uniqueness: the counter advances per write, so identical
        // plaintext never produces identical ciphertext twice.
        let mut m = mem();
        let data = [0x33u8; 128];
        m.write_block(0x2000, &data);
        let ct1 = m.snapshot_block(0x2000).0;
        m.write_block(0x2000, &data);
        let ct2 = m.snapshot_block(0x2000).0;
        assert_ne!(ct1, ct2);
    }

    #[test]
    fn tampering_is_detected() {
        let mut m = mem();
        m.write_block(0x1000, &[1u8; 128]);
        let mut ct = m.snapshot_block(0x1000).0;
        ct[7] ^= 0x80;
        m.tamper_ciphertext(0x1000, ct);
        assert_eq!(m.read_block(0x1000), Err(VerifyError::BlockMacMismatch));
    }

    #[test]
    fn replaying_data_and_mac_is_detected() {
        // Replay the old (ct, mac) pair after the block was overwritten: the
        // stateful MAC binds the counter, which has since advanced.
        let mut m = mem();
        m.write_block(0x1000, &[1u8; 128]);
        let (old_ct, old_mac) = m.snapshot_block(0x1000);
        m.write_block(0x1000, &[2u8; 128]);
        m.replay_block(0x1000, old_ct, old_mac);
        assert_eq!(m.read_block(0x1000), Err(VerifyError::BlockMacMismatch));
    }

    #[test]
    fn replaying_counters_and_data_together_is_detected_by_bmt() {
        // Full replay: roll back data+mac AND the counter sector. Only the
        // BMT catches this.
        let mut m = mem();
        m.write_block(0x1000, &[1u8; 128]);
        let (old_ct, old_mac) = m.snapshot_block(0x1000);
        let old_ctr = m.snapshot_counter(0x1000);
        m.write_block(0x1000, &[2u8; 128]);
        m.replay_block(0x1000, old_ct, old_mac);
        m.replay_counter(0x1000, old_ctr);
        assert_eq!(m.read_block(0x1000), Err(VerifyError::FreshnessViolation));
    }

    #[test]
    fn readonly_blocks_verify_without_bmt() {
        let mut m = mem();
        m.write_readonly_block(0x4000, &[9u8; 128]);
        assert_eq!(m.read_block(0x4000).expect("read-only read"), [9u8; 128]);
    }

    #[test]
    fn readonly_tampering_still_detected() {
        let mut m = mem();
        m.write_readonly_block(0x4000, &[9u8; 128]);
        let mut ct = m.snapshot_block(0x4000).0;
        ct[0] ^= 1;
        m.tamper_ciphertext(0x4000, ct);
        assert_eq!(m.read_block(0x4000), Err(VerifyError::BlockMacMismatch));
    }

    #[test]
    fn cross_kernel_replay_defeated_by_shared_counter_reset() {
        // Kernel 1 input written with shared counter value v0, then the
        // region becomes read/write (counter propagation), then the host
        // resets it for kernel 2. The reset raises the shared counter, so
        // kernel-1 ciphertext no longer verifies if replayed.
        let mut m = mem();
        m.write_readonly_block(0x8000, &[1u8; 128]);
        let (old_ct, old_mac) = m.snapshot_block(0x8000);

        // Kernel writes the region: transitions to per-block counters.
        m.write_block(0x8000, &[2u8; 128]);
        for _ in 0..3 {
            m.write_block(0x8000, &[3u8; 128]);
        }

        // Host reuses the region as read-only input for the next kernel.
        let new_shared = m.input_readonly_reset(0x8000, 128);
        assert!(
            new_shared >= 1,
            "shared counter must advance past scanned max"
        );
        m.write_readonly_block(0x8000, &[4u8; 128]);

        // Attacker replays kernel-1's read-only ciphertext.
        m.replay_block(0x8000, old_ct, old_mac);
        assert_eq!(m.read_block(0x8000), Err(VerifyError::BlockMacMismatch));
    }

    #[test]
    fn chunk_mac_verifies_streaming_chunk() {
        let mut m = mem();
        for i in 0..32 {
            m.write_block(i * 128, &[i as u8; 128]);
        }
        m.produce_chunk_mac(0);
        assert_eq!(m.verify_chunk(0), Ok(()));
    }

    #[test]
    fn chunk_mac_detects_single_block_tamper() {
        let mut m = mem();
        for i in 0..32 {
            m.write_block(i * 128, &[i as u8; 128]);
        }
        m.produce_chunk_mac(0);
        let mut ct = m.snapshot_block(5 * 128).0;
        ct[0] ^= 0xFF;
        m.tamper_ciphertext(5 * 128, ct);
        assert_eq!(m.verify_chunk(0), Err(VerifyError::ChunkMacMismatch));
    }

    #[test]
    fn bit_flip_hook_is_detected() {
        let mut m = mem();
        m.write_block(0x1000, &[1u8; 128]);
        m.tamper_ciphertext_bit(0x1000, 17, 3);
        assert_eq!(m.read_block(0x1000), Err(VerifyError::BlockMacMismatch));
    }

    #[test]
    fn mac_corruption_is_detected() {
        let mut m = mem();
        m.write_block(0x1000, &[1u8; 128]);
        m.tamper_block_mac(0x1000, 1);
        assert_eq!(m.read_block(0x1000), Err(VerifyError::BlockMacMismatch));
    }

    #[test]
    fn spliced_block_is_detected() {
        // A valid (ct, mac) pair moved to a different address must fail: the
        // stateful MAC binds the address.
        let mut m = mem();
        m.write_block(0x1000, &[1u8; 128]);
        m.write_block(0x2000, &[2u8; 128]);
        m.splice_blocks(0x1000, 0x2000);
        assert_eq!(m.read_block(0x2000), Err(VerifyError::BlockMacMismatch));
    }

    #[test]
    fn counter_reset_without_bmt_fix_is_detected() {
        let mut m = mem();
        m.write_block(0x1000, &[1u8; 128]);
        m.tamper_counter_reset(0x1000);
        assert_eq!(m.read_block(0x1000), Err(VerifyError::FreshnessViolation));
    }

    #[test]
    fn stale_bmt_leaf_is_detected() {
        let mut m = mem();
        m.write_block(0x1000, &[1u8; 128]);
        let stale = m.snapshot_bmt_leaf(0x1000);
        m.write_block(0x1000, &[2u8; 128]);
        m.tamper_bmt_leaf(0x1000, stale);
        assert_eq!(m.read_block(0x1000), Err(VerifyError::FreshnessViolation));
    }

    #[test]
    fn transient_fault_fails_once_then_recovers() {
        let mut m = mem();
        m.write_block(0x1000, &[5u8; 128]);
        m.inject_transient_fault(0x1000, 9, 1);
        assert!(m.transient_fault_armed(0x1000));
        assert_eq!(m.read_block(0x1000), Err(VerifyError::BlockMacMismatch));
        assert!(!m.transient_fault_armed(0x1000), "fault is one-shot");
        assert_eq!(m.read_block(0x1000).expect("refetch verifies"), [5u8; 128]);
    }

    #[test]
    fn rebuild_bmt_leaf_heals_torn_tree_write() {
        // A crash between the counter write and the BMT path write leaves
        // the tree stale (exactly what tamper_bmt_leaf models); recovery
        // recomputes the leaf from the stored counters and the read verifies.
        let mut m = mem();
        m.write_block(0x1000, &[1u8; 128]);
        let stale = m.snapshot_bmt_leaf(0x1000);
        m.write_block(0x1000, &[2u8; 128]);
        m.tamper_bmt_leaf(0x1000, stale);
        assert_eq!(m.read_block(0x1000), Err(VerifyError::FreshnessViolation));
        m.rebuild_bmt_leaf(0x1000);
        assert_eq!(m.read_block(0x1000).expect("healed read"), [2u8; 128]);
    }

    #[test]
    fn restore_counter_rewrites_full_bmt_path() {
        // Undo of a torn write: rolling ciphertext, MAC and counter back to
        // the pre-write journal images must leave a *verifying* block —
        // restore_counter rebuilds the tree path, unlike replay_counter.
        let mut m = mem();
        m.write_block(0x1000, &[1u8; 128]);
        let (old_ct, old_mac) = m.snapshot_block(0x1000);
        let old_ctr = m.snapshot_counter(0x1000);
        m.write_block(0x1000, &[2u8; 128]);
        m.restore_ciphertext(0x1000, old_ct);
        m.restore_block_mac(0x1000, old_mac);
        m.restore_counter(0x1000, old_ctr);
        assert_eq!(m.read_block(0x1000).expect("restored read"), [1u8; 128]);
    }

    #[test]
    fn violation_display_names_address_and_check() {
        let v = IntegrityViolation {
            addr: 0x1000,
            error: VerifyError::FreshnessViolation,
        };
        let s = v.to_string();
        assert!(s.contains("0x1000"), "{s}");
        assert!(s.contains("freshness"), "{s}");
    }

    #[test]
    fn minor_overflow_reencrypts_group() {
        let mut m = mem();
        let mut total_reencrypted = 0;
        for _ in 0..=256 {
            total_reencrypted += m.write_block(0x0, &[7u8; 128]);
        }
        assert!(total_reencrypted >= 16, "no overflow observed");
        // Block still reads back correctly afterwards.
        assert_eq!(m.read_block(0x0).expect("read"), [7u8; 128]);
    }
}
