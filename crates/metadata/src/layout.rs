//! Metadata address layout over one protected address space.

use gpu_types::{BLOCK_BYTES, CHUNK_BYTES, MAC_BYTES_PER_BLOCK, SECTOR_BYTES};

use crate::bmt::BmtGeometry;

/// Data blocks covered by one 32 B counter sector.
///
/// A sector is self-contained (PSSM's sectored counter reorganization): an
/// 8 B major counter, sixteen 1 B minor counters and padding, covering 2 KB
/// of data.
pub const BLOCKS_PER_COUNTER_SECTOR: u64 = 16;

/// Data blocks covered by one full 128 B counter line (8 KB of data).
pub const BLOCKS_PER_COUNTER_LINE: u64 = BLOCKS_PER_COUNTER_SECTOR * (BLOCK_BYTES / SECTOR_BYTES);

/// The kinds of security metadata the layout can address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MetadataKind {
    /// Encryption-counter sectors/lines.
    Counter,
    /// Per-block MACs (8 B per 128 B data block).
    BlockMac,
    /// Per-chunk MACs (8 B per 4 KB chunk).
    ChunkMac,
    /// Bonsai-Merkle-Tree node at a given level (1-based above counters).
    Bmt(u8),
}

/// Address layout of all security metadata for one protected span.
///
/// The metadata region starts at `data_span` (i.e. directly above the
/// protected data) and packs, in order: counter lines, per-block MACs,
/// per-chunk MACs, then each BMT level.  All returned addresses are in the
/// same address space as the protected data (partition-local for PSSM/SHM,
/// physical for Naive), so metadata accesses experience the same DRAM
/// row-buffer and interleaving behaviour as data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetadataLayout {
    data_span: u64,
    ctr_base: u64,
    ctr_bytes: u64,
    mac_base: u64,
    mac_bytes: u64,
    chunk_mac_base: u64,
    chunk_mac_bytes: u64,
    bmt_bases: Vec<u64>,
    bmt: BmtGeometry,
    mac_bytes_per_block: u64,
    chunk_bytes: u64,
}

impl MetadataLayout {
    /// Computes the layout for `data_span` protected bytes with the
    /// default 16-ary Bonsai Merkle Tree.
    ///
    /// # Panics
    ///
    /// Panics if `data_span` is zero.
    pub fn new(data_span: u64) -> Self {
        Self::with_tree_arity(data_span, crate::bmt::BMT_ARITY)
    }

    /// Computes the layout with an explicit integrity-tree arity (8 for an
    /// SGX-style counter tree; the SHM mechanisms are tree-agnostic).
    ///
    /// # Panics
    ///
    /// Panics if `data_span` is zero or `tree_arity` < 2.
    pub fn with_tree_arity(data_span: u64, tree_arity: u64) -> Self {
        Self::with_options(data_span, tree_arity, MAC_BYTES_PER_BLOCK)
    }

    /// Computes the layout with explicit tree arity and MAC width.
    ///
    /// `mac_bytes_per_block` supports the truncated-MAC study (PSSM uses
    /// 4 B MACs; Section III-C argues at least 50 bits are needed for
    /// birthday-bound collision resistance — see
    /// [`shm_crypto-style` analysis in `crate::layout::mac_collision_updates`]).
    ///
    /// # Panics
    ///
    /// Panics if `data_span` is zero, `tree_arity` < 2, or the MAC width is
    /// not a power of two between 1 and 32 bytes.
    pub fn with_options(data_span: u64, tree_arity: u64, mac_bytes_per_block: u64) -> Self {
        Self::with_full_options(data_span, tree_arity, mac_bytes_per_block, CHUNK_BYTES)
    }

    /// Computes the layout with every knob explicit, including the
    /// chunk-MAC coverage (`chunk_bytes`, 4 KB in the paper).
    ///
    /// # Panics
    ///
    /// As [`MetadataLayout::with_options`]; additionally if `chunk_bytes`
    /// is not a power of two of at least one block.
    pub fn with_full_options(
        data_span: u64,
        tree_arity: u64,
        mac_bytes_per_block: u64,
        chunk_bytes: u64,
    ) -> Self {
        assert!(data_span > 0, "protected span must be non-empty");
        assert!(
            mac_bytes_per_block.is_power_of_two() && (1..=32).contains(&mac_bytes_per_block),
            "MAC width must be a power of two in 1..=32 bytes"
        );
        assert!(
            chunk_bytes.is_power_of_two() && chunk_bytes >= BLOCK_BYTES,
            "chunk size must be a power of two >= one block"
        );
        let blocks = data_span.div_ceil(BLOCK_BYTES);
        let chunks = data_span.div_ceil(chunk_bytes);

        let ctr_lines = blocks.div_ceil(BLOCKS_PER_COUNTER_LINE);
        let ctr_bytes = ctr_lines * BLOCK_BYTES;
        let mac_bytes = align_up(blocks * mac_bytes_per_block, BLOCK_BYTES);
        let chunk_mac_bytes = align_up(chunks * mac_bytes_per_block, BLOCK_BYTES);

        let ctr_base = align_up(data_span, BLOCK_BYTES);
        let mac_base = ctr_base + ctr_bytes;
        let chunk_mac_base = mac_base + mac_bytes;

        let bmt = BmtGeometry::with_arity(ctr_lines, tree_arity);
        let mut bmt_bases = Vec::with_capacity(bmt.levels());
        let mut cursor = chunk_mac_base + chunk_mac_bytes;
        for level in 1..=bmt.levels() {
            bmt_bases.push(cursor);
            cursor += bmt.nodes_at_level(level as u8) * BLOCK_BYTES;
        }

        Self {
            data_span,
            ctr_base,
            ctr_bytes,
            mac_base,
            mac_bytes,
            chunk_mac_base,
            chunk_mac_bytes,
            bmt_bases,
            bmt,
            mac_bytes_per_block,
            chunk_bytes,
        }
    }

    /// Protected data span in bytes.
    pub fn data_span(&self) -> u64 {
        self.data_span
    }

    /// BMT geometry over this layout's counter lines.
    pub fn bmt(&self) -> &BmtGeometry {
        &self.bmt
    }

    /// Total metadata footprint in bytes (counters + MACs + chunk MACs + BMT).
    pub fn metadata_bytes(&self) -> u64 {
        let bmt_bytes: u64 = (1..=self.bmt.levels() as u8)
            .map(|l| self.bmt.nodes_at_level(l) * BLOCK_BYTES)
            .sum();
        self.ctr_bytes + self.mac_bytes + self.chunk_mac_bytes + bmt_bytes
    }

    /// Index of the 128 B data block containing `addr`.
    fn block_index(&self, addr: u64) -> u64 {
        debug_assert!(addr < self.data_span, "address outside protected span");
        addr / BLOCK_BYTES
    }

    /// Address of the 32 B counter sector covering `addr`.
    pub fn counter_sector(&self, addr: u64) -> u64 {
        let group = self.block_index(addr) / BLOCKS_PER_COUNTER_SECTOR;
        self.ctr_base + group * SECTOR_BYTES
    }

    /// Address of the full 128 B counter line covering `addr` (what the
    /// Naive, non-sectored design fetches).
    pub fn counter_line(&self, addr: u64) -> u64 {
        let line = self.block_index(addr) / BLOCKS_PER_COUNTER_LINE;
        self.ctr_base + line * BLOCK_BYTES
    }

    /// Index of the counter line covering `addr` (the BMT leaf index).
    pub fn counter_line_index(&self, addr: u64) -> u64 {
        self.block_index(addr) / BLOCKS_PER_COUNTER_LINE
    }

    /// Address of the 32 B sector of per-block MACs covering `addr`.
    ///
    /// With the default 8 B MACs one sector holds four, covering 512 B of
    /// data; truncated 4 B MACs double the coverage to 1 KB.
    pub fn block_mac_sector(&self, addr: u64) -> u64 {
        let mac_off = self.block_index(addr) * self.mac_bytes_per_block;
        self.mac_base + (mac_off & !(SECTOR_BYTES - 1))
    }

    /// Address of the 32 B sector of per-chunk MACs covering `addr`.
    ///
    /// One sector holds the MACs of four 4 KB chunks.
    pub fn chunk_mac_sector(&self, addr: u64) -> u64 {
        let chunk = addr / self.chunk_bytes;
        let off = chunk * self.mac_bytes_per_block;
        self.chunk_mac_base + (off & !(SECTOR_BYTES - 1))
    }

    /// Address of the BMT node at `level` (1-based) on the path covering the
    /// counter line of `addr`.
    pub fn bmt_node(&self, addr: u64, level: u8) -> u64 {
        let node = self.bmt.ancestor(self.counter_line_index(addr), level);
        self.bmt_bases[level as usize - 1] + node * BLOCK_BYTES
    }

    /// Full BMT path (level 1 up to the root level) for `addr`.
    pub fn bmt_path(&self, addr: u64) -> Vec<u64> {
        (1..=self.bmt.levels() as u8)
            .map(|l| self.bmt_node(addr, l))
            .collect()
    }

    /// Classifies a metadata address produced by this layout.
    ///
    /// Returns `None` for addresses inside the protected data span or beyond
    /// the metadata region.
    pub fn classify(&self, addr: u64) -> Option<MetadataKind> {
        if addr < self.ctr_base {
            return None;
        }
        if addr < self.mac_base {
            return Some(MetadataKind::Counter);
        }
        if addr < self.chunk_mac_base {
            return Some(MetadataKind::BlockMac);
        }
        if let Some((i, _)) = self
            .bmt_bases
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &b)| addr >= b)
        {
            let end = self.bmt_bases[i] + self.bmt.nodes_at_level(i as u8 + 1) * BLOCK_BYTES;
            if addr < end {
                return Some(MetadataKind::Bmt(i as u8 + 1));
            }
            return None;
        }
        Some(MetadataKind::ChunkMac)
    }
}

fn align_up(v: u64, to: u64) -> u64 {
    v.div_ceil(to) * to
}

/// Expected number of memory updates before a MAC collision becomes likely
/// for an `mac_bits`-bit MAC — the birthday bound `2^(n/2)` of Section
/// III-C, which drives the paper's argument that per-block MACs must keep
/// at least 50 bits (a 4 GB memory holds `2^25` blocks, so `n <= 50` lets
/// an attacker who writes every block expect a collision).
pub fn mac_collision_updates(mac_bits: u32) -> f64 {
    2f64.powi(mac_bits as i32 / 2)
}

/// Whether an `mac_bits`-bit MAC resists the Section III-C birthday attack
/// on a memory of `protected_bytes` (collision space must exceed the number
/// of 128 B blocks an attacker can rewrite).
pub fn mac_resists_birthday_attack(mac_bits: u32, protected_bytes: u64) -> bool {
    let blocks = (protected_bytes / BLOCK_BYTES) as f64;
    mac_collision_updates(mac_bits) > blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const SPAN: u64 = 64 << 20; // 64 MB partition span for tests.

    #[test]
    fn regions_do_not_overlap() {
        let l = MetadataLayout::new(SPAN);
        assert!(l.ctr_base >= SPAN);
        assert!(l.mac_base >= l.ctr_base + l.ctr_bytes);
        assert!(l.chunk_mac_base >= l.mac_base + l.mac_bytes);
        assert!(l.bmt_bases[0] >= l.chunk_mac_base + l.chunk_mac_bytes);
    }

    #[test]
    fn counter_sector_is_shared_by_16_blocks() {
        let l = MetadataLayout::new(SPAN);
        let s0 = l.counter_sector(0);
        assert_eq!(l.counter_sector(15 * 128), s0);
        assert_ne!(l.counter_sector(16 * 128), s0);
    }

    #[test]
    fn mac_sector_is_shared_by_4_blocks() {
        let l = MetadataLayout::new(SPAN);
        let s0 = l.block_mac_sector(0);
        assert_eq!(l.block_mac_sector(3 * 128), s0);
        assert_ne!(l.block_mac_sector(4 * 128), s0);
    }

    #[test]
    fn chunk_mac_sector_is_shared_by_4_chunks() {
        let l = MetadataLayout::new(SPAN);
        let s0 = l.chunk_mac_sector(0);
        assert_eq!(l.chunk_mac_sector(3 * 4096 + 100), s0);
        assert_ne!(l.chunk_mac_sector(4 * 4096), s0);
    }

    #[test]
    fn metadata_overhead_is_reasonable() {
        let l = MetadataLayout::new(SPAN);
        let ratio = l.metadata_bytes() as f64 / SPAN as f64;
        // Counters 128B/8KB ~= 1.6%, block MACs 8B/128B = 6.25%,
        // chunk MACs 8B/4KB ~= 0.2%, BMT ~ 0.1% => ~8%.
        assert!(ratio > 0.06 && ratio < 0.10, "ratio={ratio}");
    }

    #[test]
    fn classify_kinds() {
        let l = MetadataLayout::new(SPAN);
        assert_eq!(l.classify(0), None);
        assert_eq!(l.classify(l.counter_sector(0)), Some(MetadataKind::Counter));
        assert_eq!(
            l.classify(l.block_mac_sector(0)),
            Some(MetadataKind::BlockMac)
        );
        assert_eq!(
            l.classify(l.chunk_mac_sector(0)),
            Some(MetadataKind::ChunkMac)
        );
        assert_eq!(l.classify(l.bmt_node(0, 1)), Some(MetadataKind::Bmt(1)));
    }

    #[test]
    fn truncated_macs_double_sector_coverage() {
        let l8 = MetadataLayout::with_options(SPAN, 16, 8);
        let l4 = MetadataLayout::with_options(SPAN, 16, 4);
        // 8 B MACs: a 32 B sector covers 4 blocks; 4 B MACs: 8 blocks.
        assert_ne!(l8.block_mac_sector(4 * 128), l8.block_mac_sector(0));
        assert_eq!(l4.block_mac_sector(4 * 128), l4.block_mac_sector(0));
        assert_ne!(l4.block_mac_sector(8 * 128), l4.block_mac_sector(0));
        assert!(l4.metadata_bytes() < l8.metadata_bytes());
    }

    #[test]
    fn tree_arity_changes_level_count() {
        let wide = MetadataLayout::with_tree_arity(SPAN, 16);
        let narrow = MetadataLayout::with_tree_arity(SPAN, 4);
        assert!(narrow.bmt().levels() > wide.bmt().levels());
        // Deeper trees cost more metadata space.
        assert!(narrow.metadata_bytes() > wide.metadata_bytes());
    }

    #[test]
    fn birthday_bound_matches_section_iii_c() {
        // The paper: 4 GB memory = 2^25 blocks, so a MAC needs > 50 bits.
        let four_gb = 4u64 << 30;
        assert!(!mac_resists_birthday_attack(32, four_gb), "4 B MAC passed");
        assert!(
            !mac_resists_birthday_attack(50, four_gb),
            "50-bit MAC passed"
        );
        assert!(mac_resists_birthday_attack(64, four_gb), "8 B MAC failed");
        assert!((mac_collision_updates(50) - 2f64.powi(25)).abs() < 1.0);
    }

    #[test]
    fn bmt_path_reaches_root() {
        let l = MetadataLayout::new(SPAN);
        let path = l.bmt_path(0);
        assert_eq!(path.len(), l.bmt().levels());
        // Top level has exactly one node, shared by distant addresses.
        let far = l.bmt_path(SPAN - 128);
        assert_eq!(path.last(), far.last(), "roots differ");
    }

    proptest! {
        #[test]
        fn prop_metadata_outside_data(addr in 0u64..SPAN) {
            let l = MetadataLayout::new(SPAN);
            prop_assert!(l.counter_sector(addr) >= SPAN);
            prop_assert!(l.block_mac_sector(addr) >= SPAN);
            prop_assert!(l.chunk_mac_sector(addr) >= SPAN);
        }

        #[test]
        fn prop_classify_roundtrip(addr in 0u64..SPAN) {
            let l = MetadataLayout::new(SPAN);
            prop_assert_eq!(l.classify(l.counter_sector(addr)), Some(MetadataKind::Counter));
            prop_assert_eq!(l.classify(l.block_mac_sector(addr)), Some(MetadataKind::BlockMac));
            prop_assert_eq!(l.classify(l.chunk_mac_sector(addr)), Some(MetadataKind::ChunkMac));
            for (i, node) in l.bmt_path(addr).iter().enumerate() {
                prop_assert_eq!(l.classify(*node), Some(MetadataKind::Bmt(i as u8 + 1)));
            }
        }

        #[test]
        fn prop_bmt_parents_shared_within_group(line_a in 0u64..1000, line_b in 0u64..1000) {
            let l = MetadataLayout::new(SPAN);
            let addr_a = line_a * BLOCKS_PER_COUNTER_LINE * 128;
            let addr_b = line_b * BLOCKS_PER_COUNTER_LINE * 128;
            prop_assume!(addr_a < SPAN && addr_b < SPAN);
            let same_group = line_a / 16 == line_b / 16;
            prop_assert_eq!(l.bmt_node(addr_a, 1) == l.bmt_node(addr_b, 1), same_group);
        }
    }
}
