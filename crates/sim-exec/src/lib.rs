//! A dependency-free work-stealing job executor for simulation sweeps.
//!
//! Every figure of the SHM evaluation is a (benchmark × design) cross
//! product of completely independent single-threaded simulations, so the
//! sweep parallelizes perfectly.  This crate provides the one abstraction
//! the whole workspace shares for that: [`Executor::map`], which runs a
//! slice of jobs on a bounded pool of scoped threads and reassembles the
//! results **in submission order**, so parallel output is byte-identical
//! to serial output.
//!
//! Design constraints (and how they are met):
//!
//! * **No registry access** — `std` only: `std::thread::scope` workers,
//!   `Mutex<VecDeque>` per-worker job queues with stealing, and mutexed
//!   per-job result slots.
//! * **Deterministic results** — jobs carry their submission index; each
//!   worker writes its result into the job's dedicated slot, so the order
//!   in which jobs *finish* never affects the order results are returned.
//! * **Panic isolation** — each job body runs under
//!   [`std::panic::catch_unwind`]; a panicking job yields a [`JobPanic`]
//!   carrying its index and payload instead of poisoning the whole sweep.
//! * **Opt-out** — the pool width comes from (in priority order) an
//!   explicit `--jobs N` style request, the `SHM_JOBS` environment
//!   variable, then [`std::thread::available_parallelism`].  `SHM_JOBS=1`
//!   forces fully serial execution on the calling thread.
//!
//! The [`arena`] module complements the executor: keyed scratch pools let
//! repeated jobs reuse their per-job working state (bank matrices, event
//! buffers) instead of rebuilding it from the allocator every time.

pub mod arena;

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Environment variable overriding the worker-pool width (`1` = serial).
pub const JOBS_ENV: &str = "SHM_JOBS";

/// Environment variable setting the per-job wall-clock budget in
/// milliseconds for [`Executor::run_robust`] (`0` disables the watchdog).
pub const JOB_TIMEOUT_ENV: &str = "SHM_JOB_TIMEOUT_MS";

/// Environment variable setting the sweep-wide retry budget for
/// [`Executor::run_robust`].
pub const JOB_RETRIES_ENV: &str = "SHM_JOB_RETRIES";

/// Process-global cancellation flag, set by the CLI's SIGINT/SIGTERM
/// handler.  An atomic store is all a signal handler may safely do, so the
/// flag lives here and every [`CancelToken`] observes it.
static GLOBAL_CANCEL: AtomicBool = AtomicBool::new(false);

/// Requests cooperative cancellation of every in-progress sweep in the
/// process.  Async-signal-safe: a single atomic store.
pub fn request_cancel() {
    GLOBAL_CANCEL.store(true, Ordering::SeqCst);
}

/// True once [`request_cancel`] has been called.
pub fn cancel_requested() -> bool {
    GLOBAL_CANCEL.load(Ordering::SeqCst)
}

/// Clears the process-global cancellation flag (start of a fresh sweep).
pub fn reset_cancel() {
    GLOBAL_CANCEL.store(false, Ordering::SeqCst);
}

/// Cooperative cancellation handle for [`Executor::map_cancellable`].
///
/// A token trips either locally (via [`CancelToken::cancel`] — e.g. a
/// deterministic `--crash-after-jobs` test knob) or process-wide (via
/// [`request_cancel`] from a signal handler).  Workers observing a tripped
/// token stop *pulling* new jobs; jobs already running drain to completion,
/// so every recorded result is complete and journals stay valid.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    local: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token (still observes the process-global flag).
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips this token only (other sweeps in the process are unaffected).
    pub fn cancel(&self) {
        self.local.store(true, Ordering::SeqCst);
    }

    /// True when this token or the process-global flag has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.local.load(Ordering::SeqCst) || cancel_requested()
    }
}

/// A job that panicked: submission index plus the panic payload rendered
/// as text, so the caller can report the failing (benchmark, design) pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobPanic {
    /// Submission index of the failed job.
    pub index: usize,
    /// Human-readable job description (e.g. `"kmeans under SHM"`), when
    /// the submitting layer supplied one.
    pub label: Option<String>,
    /// Panic payload (`&str`/`String` payloads verbatim, otherwise a
    /// placeholder).
    pub message: String,
}

impl core::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match &self.label {
            Some(label) => write!(
                f,
                "job {} ({}) panicked: {}",
                self.index, label, self.message
            ),
            None => write!(f, "job {} panicked: {}", self.index, self.message),
        }
    }
}

impl std::error::Error for JobPanic {}

/// Per-job outcome: the job's return value, or its captured panic.
pub type JobResult<T> = Result<T, JobPanic>;

/// Renders a panic payload as text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Interprets a jobs specification (`SHM_JOBS`, `--jobs N`): `Some(n)`
/// for a positive integer, `None` for anything else — zero and garbage
/// both mean "auto" (the caller decides whether that deserves a warning).
pub fn parse_jobs_spec(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Warns (once per process, to keep sweep loops quiet) that a jobs
/// specification was unusable and auto parallelism is in effect.
static BAD_JOBS_WARNING: std::sync::Once = std::sync::Once::new();

fn warn_bad_jobs(source: &str, raw: &str) {
    BAD_JOBS_WARNING.call_once(|| {
        eprintln!(
            "warning: ignoring {source}={raw:?} (expected a positive integer); \
             using auto parallelism"
        );
    });
}

/// Resolves the worker-pool width.
///
/// Priority: `requested` (a CLI `--jobs N`), then the [`JOBS_ENV`]
/// environment variable, then the machine's available parallelism.
/// Zero (from either source) means "auto"; an unparsable [`JOBS_ENV`]
/// also means "auto", with a stderr warning rather than a panic or a
/// silently serial run.
pub fn effective_jobs(requested: Option<usize>) -> usize {
    let from_env = || match std::env::var(JOBS_ENV) {
        Err(_) => None,
        Ok(raw) => {
            let parsed = parse_jobs_spec(&raw);
            if parsed.is_none() {
                warn_bad_jobs(JOBS_ENV, &raw);
            }
            parsed
        }
    };
    requested
        .filter(|&n| n > 0)
        .or_else(from_env)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// A bounded work-stealing thread pool for independent jobs.
///
/// The executor is stateless between calls: every [`Executor::map`] spawns
/// a fresh scope of workers and joins them before returning, so there is
/// no background machinery to shut down and no `'static` bound on jobs.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    jobs: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Executor {
    /// An executor with exactly `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// Pool width from `SHM_JOBS` or the machine's available parallelism.
    pub fn from_env() -> Self {
        Self::new(effective_jobs(None))
    }

    /// Pool width from an explicit request, falling back to [`from_env`]
    /// resolution (`Executor::from_request(None) == Executor::from_env()`).
    ///
    /// [`from_env`]: Executor::from_env
    pub fn from_request(requested: Option<usize>) -> Self {
        Self::new(effective_jobs(requested))
    }

    /// Number of workers this executor uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `work(index, &items[index])` for every item and returns the
    /// per-job outcomes in submission order.
    ///
    /// Jobs are dealt round-robin into per-worker queues; an idle worker
    /// steals from the tail of its neighbours' queues.  With one worker
    /// (or one item) everything runs on the calling thread — the panic
    /// capture and result shape are identical, so `--jobs 1` output is the
    /// reference the parallel path must reproduce byte-for-byte.
    pub fn map<I, T, F>(&self, items: &[I], work: F) -> Vec<JobResult<T>>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let workers = self.jobs.min(items.len()).max(1);
        let slots: Vec<Mutex<Option<JobResult<T>>>> =
            (0..items.len()).map(|_| Mutex::new(None)).collect();

        let run_one = |i: usize| {
            let outcome =
                catch_unwind(AssertUnwindSafe(|| work(i, &items[i]))).map_err(|payload| JobPanic {
                    index: i,
                    label: None,
                    message: panic_message(payload),
                });
            // Each index is scheduled exactly once, so the slot is empty.
            *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
        };

        if workers == 1 {
            for i in 0..items.len() {
                run_one(i);
            }
        } else {
            // Deal jobs round-robin so queues start balanced even when job
            // costs correlate with index (heavier benchmarks first).
            let queues: Vec<Mutex<VecDeque<usize>>> =
                (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
            for (i, q) in (0..items.len()).zip((0..workers).cycle()) {
                queues[q].lock().expect("fresh queue").push_back(i);
            }
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let queues = &queues;
                    let run_one = &run_one;
                    scope.spawn(move || loop {
                        // Own queue first (front), then steal from the tail
                        // of the other queues.  Jobs never enqueue new jobs,
                        // so "every queue empty" is a stable exit condition.
                        let next = queues[w]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .pop_front()
                            .or_else(|| {
                                (1..workers).find_map(|d| {
                                    queues[(w + d) % workers]
                                        .lock()
                                        .unwrap_or_else(|e| e.into_inner())
                                        .pop_back()
                                })
                            });
                        match next {
                            Some(i) => run_one(i),
                            None => break,
                        }
                    });
                }
            });
        }

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every job scheduled once")
            })
            .collect()
    }

    /// Like [`map`](Executor::map), but drains instead of finishing when
    /// `token` trips: workers stop *pulling* new jobs once
    /// [`CancelToken::is_cancelled`] turns true, while jobs already running
    /// complete normally.  Jobs never started come back as `None`, in
    /// submission order — the caller can tell exactly which results exist.
    ///
    /// This is the graceful-shutdown primitive: Ctrl-C trips the global
    /// flag, in-flight simulations drain, their results land in the job
    /// journal, and the process exits with a valid journal for `--resume`.
    pub fn map_cancellable<I, T, F>(
        &self,
        items: &[I],
        token: &CancelToken,
        work: F,
    ) -> Vec<Option<JobResult<T>>>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let workers = self.jobs.min(items.len()).max(1);
        let slots: Vec<Mutex<Option<JobResult<T>>>> =
            (0..items.len()).map(|_| Mutex::new(None)).collect();

        let run_one = |i: usize| {
            let outcome =
                catch_unwind(AssertUnwindSafe(|| work(i, &items[i]))).map_err(|payload| JobPanic {
                    index: i,
                    label: None,
                    message: panic_message(payload),
                });
            *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
        };

        if workers == 1 {
            for i in 0..items.len() {
                if token.is_cancelled() {
                    break;
                }
                run_one(i);
            }
        } else {
            let queues: Vec<Mutex<VecDeque<usize>>> =
                (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
            for (i, q) in (0..items.len()).zip((0..workers).cycle()) {
                queues[q].lock().expect("fresh queue").push_back(i);
            }
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let queues = &queues;
                    let run_one = &run_one;
                    scope.spawn(move || loop {
                        if token.is_cancelled() {
                            break;
                        }
                        let next = queues[w]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .pop_front()
                            .or_else(|| {
                                (1..workers).find_map(|d| {
                                    queues[(w + d) % workers]
                                        .lock()
                                        .unwrap_or_else(|e| e.into_inner())
                                        .pop_back()
                                })
                            });
                        match next {
                            Some(i) => run_one(i),
                            None => break,
                        }
                    });
                }
            });
        }

        slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap_or_else(|e| e.into_inner()))
            .collect()
    }

    /// Like [`map`](Executor::map), but turns any captured panic into an
    /// error labelled via `label` (e.g. the failing `(benchmark, design)`
    /// pair) while still returning every successful result.
    ///
    /// # Errors
    ///
    /// Returns a [`SweepError`] listing every panicked job when at least
    /// one job panicked.
    pub fn try_map<I, T, F, L>(&self, items: &[I], label: L, work: F) -> Result<Vec<T>, SweepError>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
        L: Fn(usize, &I) -> String,
    {
        let mut ok = Vec::with_capacity(items.len());
        let mut failed = Vec::new();
        for (i, outcome) in self.map(items, work).into_iter().enumerate() {
            match outcome {
                Ok(v) => ok.push(v),
                Err(mut p) => {
                    let l = label(i, &items[i]);
                    p.label = Some(l.clone());
                    failed.push(LabelledPanic { label: l, panic: p });
                }
            }
        }
        if failed.is_empty() {
            Ok(ok)
        } else {
            Err(SweepError { failed })
        }
    }

    /// Runs every job under a wall-clock watchdog and a bounded retry
    /// budget, always completing the sweep: a hung job is abandoned as a
    /// [`JobOutcome::TimedOut`] while the remaining jobs keep running, so
    /// the caller gets deterministic partial results instead of a wedged
    /// process.
    ///
    /// Mechanics:
    ///
    /// * Jobs run on detached worker threads (hence the `'static` bounds —
    ///   a wedged job cannot be killed, only abandoned, and a scoped thread
    ///   would block the join).  When the watchdog expires a job it sets
    ///   the job's [`JobCtx`] cancel flag — cooperative jobs poll
    ///   [`JobCtx::cancelled`] and bail out; uncooperative ones leak a
    ///   thread that dies with the process — and spawns a replacement
    ///   worker so pending jobs still drain.
    /// * A job whose attempt panics is re-queued exactly once while the
    ///   sweep-wide `retry_budget` lasts (transient-failure recovery);
    ///   its second panic is final.  Timed-out jobs are never retried — a
    ///   wedge is assumed to reproduce.
    /// * Outcomes come back in submission order; a late completion of an
    ///   abandoned attempt is discarded (first verdict wins), so the
    ///   report shape is deterministic given which jobs wedge.
    pub fn run_robust<I, T, F, L>(
        &self,
        items: Vec<I>,
        cfg: RobustConfig,
        label: L,
        work: F,
    ) -> RobustReport<T>
    where
        I: Send + Sync + 'static,
        T: Send + 'static,
        F: Fn(&JobCtx, &I) -> T + Send + Sync + 'static,
        L: Fn(usize, &I) -> String,
    {
        let n = items.len();
        if n == 0 {
            return RobustReport {
                outcomes: Vec::new(),
                retries_used: 0,
            };
        }
        let items = Arc::new(items);
        let work = Arc::new(work);
        let pending: Arc<Mutex<VecDeque<(usize, u32)>>> =
            Arc::new(Mutex::new((0..n).map(|i| (i, 0u32)).collect()));
        let cancels: Arc<Vec<AtomicBool>> =
            Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
        let (tx, rx) = mpsc::channel::<RobustMsg<T>>();

        let spawn_worker = |tx: mpsc::Sender<RobustMsg<T>>| {
            let items = Arc::clone(&items);
            let work = Arc::clone(&work);
            let pending = Arc::clone(&pending);
            let cancels = Arc::clone(&cancels);
            std::thread::spawn(move || loop {
                let job = pending
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop_front();
                let Some((i, attempt)) = job else { break };
                let _ = tx.send(RobustMsg::Started { index: i });
                let ctx = JobCtx {
                    index: i,
                    cancels: Arc::clone(&cancels),
                };
                let result =
                    catch_unwind(AssertUnwindSafe(|| work(&ctx, &items[i]))).map_err(panic_message);
                if tx
                    .send(RobustMsg::Finished {
                        index: i,
                        attempt,
                        result,
                    })
                    .is_err()
                {
                    break; // sweep already reported; nobody is listening
                }
            });
        };
        for _ in 0..self.jobs.min(n) {
            spawn_worker(tx.clone());
        }

        let watchdog = (cfg.timeout_ms > 0).then(|| Duration::from_millis(cfg.timeout_ms));
        let mut outcomes: Vec<Option<JobOutcome<T>>> = (0..n).map(|_| None).collect();
        let mut running: HashMap<usize, Instant> = HashMap::new();
        let mut resolved = 0usize;
        let mut budget = cfg.retry_budget;
        let mut retries_used = 0u32;

        while resolved < n {
            // Wake at the earliest running deadline; with no watchdog (or
            // nothing running yet) poll at a coarse interval — `tx` is held
            // here, so the channel can never disconnect under us.
            let wait = match (watchdog, running.values().min()) {
                (Some(_), Some(&deadline)) => deadline.saturating_duration_since(Instant::now()),
                _ => Duration::from_millis(25),
            };
            match rx.recv_timeout(wait) {
                Ok(RobustMsg::Started { index }) => {
                    if outcomes[index].is_none() {
                        if let Some(t) = watchdog {
                            running.insert(index, Instant::now() + t);
                        }
                    }
                }
                Ok(RobustMsg::Finished {
                    index,
                    attempt,
                    result,
                }) => {
                    running.remove(&index);
                    if outcomes[index].is_some() {
                        continue; // abandoned attempt finished late
                    }
                    match result {
                        Ok(v) => {
                            outcomes[index] = Some(JobOutcome::Ok(v));
                            resolved += 1;
                        }
                        Err(_) if attempt == 0 && budget > 0 => {
                            budget -= 1;
                            retries_used += 1;
                            pending
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push_back((index, 1));
                            spawn_worker(tx.clone());
                        }
                        Err(message) => {
                            outcomes[index] = Some(JobOutcome::Panicked(JobPanic {
                                index,
                                label: Some(label(index, &items[index])),
                                message,
                            }));
                            resolved += 1;
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    let now = Instant::now();
                    let expired: Vec<usize> = running
                        .iter()
                        .filter(|&(_, &deadline)| deadline <= now)
                        .map(|(&i, _)| i)
                        .collect();
                    for i in expired {
                        running.remove(&i);
                        cancels[i].store(true, Ordering::Relaxed);
                        outcomes[i] = Some(JobOutcome::TimedOut(JobTimeout {
                            index: i,
                            label: label(i, &items[i]),
                            timeout_ms: cfg.timeout_ms,
                        }));
                        resolved += 1;
                        // The worker on job i may be wedged for good;
                        // replace it so the rest of the queue still drains.
                        spawn_worker(tx.clone());
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }

        RobustReport {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every job resolved"))
                .collect(),
            retries_used,
        }
    }
}

/// Completion-channel messages for [`Executor::run_robust`].
enum RobustMsg<T> {
    Started {
        index: usize,
    },
    Finished {
        index: usize,
        attempt: u32,
        result: Result<T, String>,
    },
}

/// Watchdog and retry policy for [`Executor::run_robust`].  The default is
/// "no watchdog, no retries".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RobustConfig {
    /// Wall-clock budget per job attempt in milliseconds; 0 disables the
    /// watchdog entirely.
    pub timeout_ms: u64,
    /// Total re-runs the whole sweep may spend on panicked jobs.  Each job
    /// is retried at most once, and only while budget remains.
    pub retry_budget: u32,
}

impl RobustConfig {
    /// Policy from [`JOB_TIMEOUT_ENV`] and [`JOB_RETRIES_ENV`], defaulting
    /// to "no watchdog, no retries" when unset or unparsable.
    pub fn from_env() -> Self {
        Self {
            timeout_ms: std::env::var(JOB_TIMEOUT_ENV)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0),
            retry_budget: std::env::var(JOB_RETRIES_ENV)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0),
        }
    }
}

/// Handle passed to [`Executor::run_robust`] jobs for cooperative
/// cancellation.
#[derive(Clone, Debug)]
pub struct JobCtx {
    index: usize,
    cancels: Arc<Vec<AtomicBool>>,
}

impl JobCtx {
    /// Submission index of the job this context belongs to.
    pub fn index(&self) -> usize {
        self.index
    }

    /// True once the watchdog has abandoned this attempt.  Long-running
    /// jobs should poll this and return early; the value they return is
    /// discarded.
    pub fn cancelled(&self) -> bool {
        self.cancels[self.index].load(Ordering::Relaxed)
    }
}

/// A job that exceeded its wall-clock budget and was abandoned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobTimeout {
    /// Submission index of the abandoned job.
    pub index: usize,
    /// Human-readable job description (e.g. `"kmeans under SHM"`).
    pub label: String,
    /// The budget that was exceeded, in milliseconds.
    pub timeout_ms: u64,
}

impl core::fmt::Display for JobTimeout {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "job {} ({}) timed out after {} ms",
            self.index, self.label, self.timeout_ms
        )
    }
}

impl std::error::Error for JobTimeout {}

/// Per-job verdict from [`Executor::run_robust`].
#[derive(Clone, Debug)]
pub enum JobOutcome<T> {
    /// The job completed, possibly after a retry.
    Ok(T),
    /// The job panicked on its final attempt.
    Panicked(JobPanic),
    /// The job exceeded its wall-clock budget and was abandoned.
    TimedOut(JobTimeout),
}

impl<T> JobOutcome<T> {
    /// The completed value, if any.
    pub fn ok(&self) -> Option<&T> {
        match self {
            JobOutcome::Ok(v) => Some(v),
            _ => None,
        }
    }

    /// A rendered failure line for panicked / timed-out jobs.
    pub fn failure(&self) -> Option<String> {
        match self {
            JobOutcome::Ok(_) => None,
            JobOutcome::Panicked(p) => Some(p.to_string()),
            JobOutcome::TimedOut(t) => Some(t.to_string()),
        }
    }
}

/// Everything [`Executor::run_robust`] learned about a sweep: one outcome
/// per job in submission order, plus the retries consumed.
#[derive(Clone, Debug)]
pub struct RobustReport<T> {
    /// One outcome per submitted job, in submission order.
    pub outcomes: Vec<JobOutcome<T>>,
    /// Retries consumed from the budget.
    pub retries_used: u32,
}

impl<T> RobustReport<T> {
    /// Number of jobs that completed.
    pub fn ok_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.ok().is_some()).count()
    }

    /// Number of jobs that panicked or timed out.
    pub fn failed_count(&self) -> usize {
        self.outcomes.len() - self.ok_count()
    }

    /// True when every job completed.
    pub fn is_clean(&self) -> bool {
        self.failed_count() == 0
    }

    /// Rendered failure lines, in submission order.
    pub fn failure_lines(&self) -> Vec<String> {
        self.outcomes.iter().filter_map(|o| o.failure()).collect()
    }
}

/// A captured panic together with the caller's human-readable job label.
#[derive(Clone, Debug)]
pub struct LabelledPanic {
    /// Caller-supplied job description, e.g. `"fdtd2d under SHM"`.
    pub label: String,
    /// The captured panic.
    pub panic: JobPanic,
}

/// One or more jobs of a sweep panicked; the rest completed normally.
#[derive(Clone, Debug)]
pub struct SweepError {
    /// Every failed job, in submission order.
    pub failed: Vec<LabelledPanic>,
}

impl core::fmt::Display for SweepError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} job(s) panicked:", self.failed.len())?;
        for lp in &self.failed {
            write!(f, " [{}: {}]", lp.label, lp.panic.message)?;
        }
        Ok(())
    }
}

impl std::error::Error for SweepError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 7] {
            let out = Executor::new(jobs).map(&items, |i, &x| {
                // Make later jobs finish earlier to stress reassembly.
                if i % 3 == 0 {
                    std::thread::yield_now();
                }
                x * 2
            });
            let vals: Vec<u64> = out.into_iter().map(|r| r.expect("no panic")).collect();
            assert_eq!(vals, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let items: Vec<u64> = (0..64).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(13);
        let serial = Executor::new(1).map(&items, f);
        let parallel = Executor::new(8).map(&items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn panics_are_captured_per_job() {
        let items: Vec<u32> = (0..10).collect();
        let out = Executor::new(4).map(&items, |_, &x| {
            if x == 3 {
                panic!("boom at {x}");
            }
            x + 1
        });
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                let p = r.as_ref().expect_err("job 3 must fail");
                assert_eq!(p.index, 3);
                assert!(p.message.contains("boom at 3"), "got {:?}", p.message);
            } else {
                assert_eq!(*r.as_ref().expect("other jobs unaffected"), i as u32 + 1);
            }
        }
    }

    #[test]
    fn try_map_labels_failures() {
        let items = ["alpha", "beta", "gamma"];
        let err = Executor::new(2)
            .try_map(
                &items,
                |_, name| format!("job/{name}"),
                |_, &name| {
                    if name == "beta" {
                        panic!("bad {name}");
                    }
                    name.len()
                },
            )
            .expect_err("beta fails");
        assert_eq!(err.failed.len(), 1);
        assert_eq!(err.failed[0].label, "job/beta");
        assert!(err.to_string().contains("job/beta"));
    }

    #[test]
    fn all_jobs_run_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..333).collect();
        let out = Executor::new(5).map(&items, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(out.len(), 333);
        assert_eq!(counter.load(Ordering::Relaxed), 333);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<JobResult<u8>> = Executor::new(4).map(&[] as &[u8], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn job_panic_display_includes_label_when_known() {
        let bare = JobPanic {
            index: 4,
            label: None,
            message: "boom".into(),
        };
        assert_eq!(bare.to_string(), "job 4 panicked: boom");
        let labelled = JobPanic {
            index: 4,
            label: Some("kmeans under SHM".into()),
            message: "boom".into(),
        };
        assert_eq!(
            labelled.to_string(),
            "job 4 (kmeans under SHM) panicked: boom"
        );
    }

    #[test]
    fn try_map_attaches_label_to_the_panic_itself() {
        let items = ["alpha", "beta"];
        let err = Executor::new(2)
            .try_map(
                &items,
                |_, name| format!("job/{name}"),
                |_, &name| {
                    if name == "beta" {
                        panic!("bad");
                    }
                    1
                },
            )
            .expect_err("beta fails");
        assert!(
            err.failed[0].panic.to_string().contains("(job/beta)"),
            "{}",
            err.failed[0].panic
        );
    }

    #[test]
    fn run_robust_times_out_wedged_jobs_and_returns_partial_results() {
        let report = Executor::new(2).run_robust(
            vec![1u32, 2, 3, 4],
            RobustConfig {
                timeout_ms: 150,
                retry_budget: 0,
            },
            |i, _| format!("job-{i}"),
            |ctx, &x| {
                if x == 3 {
                    // Wedge cooperatively: hold until the watchdog abandons
                    // this attempt, so the test leaks no long-lived thread.
                    while !ctx.cancelled() {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    return 0;
                }
                x * 10
            },
        );
        assert_eq!(report.outcomes.len(), 4);
        assert!(matches!(report.outcomes[0], JobOutcome::Ok(10)));
        assert!(matches!(report.outcomes[1], JobOutcome::Ok(20)));
        match &report.outcomes[2] {
            JobOutcome::TimedOut(t) => {
                assert_eq!(t.label, "job-2");
                assert_eq!(t.timeout_ms, 150);
                assert!(t.to_string().contains("job-2"), "{t}");
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(matches!(report.outcomes[3], JobOutcome::Ok(40)));
        assert_eq!(report.ok_count(), 3);
        assert_eq!(report.failed_count(), 1);
        assert!(!report.is_clean());
        assert_eq!(report.failure_lines().len(), 1);
    }

    #[test]
    fn run_robust_retries_transient_panics_within_budget() {
        let tries = Arc::new(AtomicUsize::new(0));
        let t2 = Arc::clone(&tries);
        let report = Executor::new(2).run_robust(
            vec![0u32, 1],
            RobustConfig {
                timeout_ms: 0,
                retry_budget: 2,
            },
            |i, _| format!("job-{i}"),
            move |ctx, _| {
                if ctx.index() == 1 && t2.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("transient");
                }
                7u32
            },
        );
        assert!(report.is_clean(), "{:?}", report.failure_lines());
        assert_eq!(report.retries_used, 1);
        assert_eq!(tries.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn run_robust_reports_final_panics_with_labels() {
        let report = Executor::new(2).run_robust(
            vec![0u32, 1],
            RobustConfig::default(),
            |i, _| format!("job-{i}"),
            |ctx, _| {
                if ctx.index() == 1 {
                    panic!("always");
                }
                3u32
            },
        );
        assert_eq!(report.ok_count(), 1);
        match &report.outcomes[1] {
            JobOutcome::Panicked(p) => {
                assert_eq!(p.label.as_deref(), Some("job-1"));
                assert!(p.to_string().contains("(job-1)"), "{p}");
            }
            other => panic!("expected panic, got {other:?}"),
        }
    }

    /// Serializes tests that read or write the process-global cancel flag —
    /// `cargo test` runs tests on concurrent threads in one process.
    static CANCEL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn map_cancellable_without_cancel_matches_map() {
        let _guard = CANCEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let items: Vec<u64> = (0..40).collect();
        let token = CancelToken::new();
        let out = Executor::new(4).map_cancellable(&items, &token, |_, &x| x + 1);
        let vals: Vec<u64> = out
            .into_iter()
            .map(|o| o.expect("all ran").expect("no panic"))
            .collect();
        assert_eq!(vals, items.iter().map(|x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn map_cancellable_serial_stops_pulling_after_cancel() {
        let _guard = CANCEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let items: Vec<u64> = (0..10).collect();
        let token = CancelToken::new();
        let out = Executor::new(1).map_cancellable(&items, &token, |i, &x| {
            if i == 3 {
                token.cancel();
            }
            x * 2
        });
        // The cancelling job itself drains; nothing after it starts.
        for (i, o) in out.iter().enumerate() {
            if i <= 3 {
                assert_eq!(
                    *o.as_ref().expect("ran").as_ref().expect("ok"),
                    items[i] * 2
                );
            } else {
                assert!(o.is_none(), "job {i} ran after cancel");
            }
        }
    }

    #[test]
    fn map_cancellable_parallel_drains_in_flight_jobs() {
        let _guard = CANCEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let items: Vec<u64> = (0..64).collect();
        let token = CancelToken::new();
        let started = AtomicUsize::new(0);
        let out = Executor::new(4).map_cancellable(&items, &token, |i, &x| {
            started.fetch_add(1, Ordering::SeqCst);
            if i == 0 {
                token.cancel();
            }
            std::thread::yield_now();
            x
        });
        let ran = out.iter().filter(|o| o.is_some()).count();
        // Every slot that ran holds a complete result (drained, not torn),
        // and cancellation kept at least some of the 64 jobs from starting.
        assert_eq!(ran, started.load(Ordering::SeqCst));
        assert!(ran >= 1);
        assert!(ran < items.len(), "cancel had no effect");
        for (o, &x) in out.iter().zip(&items) {
            if let Some(r) = o {
                assert_eq!(*r.as_ref().expect("ok"), x);
            }
        }
    }

    #[test]
    fn cancel_token_observes_global_flag() {
        let _guard = CANCEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        request_cancel();
        assert!(token.is_cancelled(), "global flag must trip local tokens");
        reset_cancel();
        assert!(!token.is_cancelled());
    }

    #[test]
    fn effective_jobs_priority() {
        // Explicit request wins over everything.
        assert_eq!(effective_jobs(Some(3)), 3);
        // Zero request falls through to env/auto, which is at least 1.
        assert!(effective_jobs(Some(0)) >= 1);
        assert!(effective_jobs(None) >= 1);
    }

    #[test]
    fn parse_jobs_spec_accepts_only_positive_integers() {
        assert_eq!(parse_jobs_spec("4"), Some(4));
        assert_eq!(parse_jobs_spec(" 8 "), Some(8));
        assert_eq!(parse_jobs_spec("0"), None);
        assert_eq!(parse_jobs_spec("garbage"), None);
        assert_eq!(parse_jobs_spec("-1"), None);
        assert_eq!(parse_jobs_spec("1.5"), None);
        assert_eq!(parse_jobs_spec(""), None);
    }

    /// Serializes tests that mutate the `SHM_JOBS` environment variable.
    static JOBS_ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn bad_jobs_env_values_fall_back_to_auto() {
        let _guard = JOBS_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
        for bad in ["0", "banana", "-3", "1.5", " "] {
            std::env::set_var(JOBS_ENV, bad);
            assert_eq!(
                effective_jobs(None),
                auto,
                "SHM_JOBS={bad:?} must mean auto, not panic or serial"
            );
        }
        std::env::set_var(JOBS_ENV, "3");
        assert_eq!(effective_jobs(None), 3);
        assert_eq!(effective_jobs(Some(2)), 2, "explicit request beats env");
        std::env::remove_var(JOBS_ENV);
    }
}
