//! A dependency-free work-stealing job executor for simulation sweeps.
//!
//! Every figure of the SHM evaluation is a (benchmark × design) cross
//! product of completely independent single-threaded simulations, so the
//! sweep parallelizes perfectly.  This crate provides the one abstraction
//! the whole workspace shares for that: [`Executor::map`], which runs a
//! slice of jobs on a bounded pool of scoped threads and reassembles the
//! results **in submission order**, so parallel output is byte-identical
//! to serial output.
//!
//! Design constraints (and how they are met):
//!
//! * **No registry access** — `std` only: `std::thread::scope` workers,
//!   `Mutex<VecDeque>` per-worker job queues with stealing, and mutexed
//!   per-job result slots.
//! * **Deterministic results** — jobs carry their submission index; each
//!   worker writes its result into the job's dedicated slot, so the order
//!   in which jobs *finish* never affects the order results are returned.
//! * **Panic isolation** — each job body runs under
//!   [`std::panic::catch_unwind`]; a panicking job yields a [`JobPanic`]
//!   carrying its index and payload instead of poisoning the whole sweep.
//! * **Opt-out** — the pool width comes from (in priority order) an
//!   explicit `--jobs N` style request, the `SHM_JOBS` environment
//!   variable, then [`std::thread::available_parallelism`].  `SHM_JOBS=1`
//!   forces fully serial execution on the calling thread.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Environment variable overriding the worker-pool width (`1` = serial).
pub const JOBS_ENV: &str = "SHM_JOBS";

/// A job that panicked: submission index plus the panic payload rendered
/// as text, so the caller can report the failing (benchmark, design) pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobPanic {
    /// Submission index of the failed job.
    pub index: usize,
    /// Panic payload (`&str`/`String` payloads verbatim, otherwise a
    /// placeholder).
    pub message: String,
}

impl core::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Per-job outcome: the job's return value, or its captured panic.
pub type JobResult<T> = Result<T, JobPanic>;

/// Renders a panic payload as text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Resolves the worker-pool width.
///
/// Priority: `requested` (a CLI `--jobs N`), then the [`JOBS_ENV`]
/// environment variable, then the machine's available parallelism.
/// Zero (from either source) means "auto".
pub fn effective_jobs(requested: Option<usize>) -> usize {
    let from_env = || {
        std::env::var(JOBS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    };
    requested
        .filter(|&n| n > 0)
        .or_else(from_env)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// A bounded work-stealing thread pool for independent jobs.
///
/// The executor is stateless between calls: every [`Executor::map`] spawns
/// a fresh scope of workers and joins them before returning, so there is
/// no background machinery to shut down and no `'static` bound on jobs.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    jobs: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Executor {
    /// An executor with exactly `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// Pool width from `SHM_JOBS` or the machine's available parallelism.
    pub fn from_env() -> Self {
        Self::new(effective_jobs(None))
    }

    /// Pool width from an explicit request, falling back to [`from_env`]
    /// resolution (`Executor::from_request(None) == Executor::from_env()`).
    ///
    /// [`from_env`]: Executor::from_env
    pub fn from_request(requested: Option<usize>) -> Self {
        Self::new(effective_jobs(requested))
    }

    /// Number of workers this executor uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `work(index, &items[index])` for every item and returns the
    /// per-job outcomes in submission order.
    ///
    /// Jobs are dealt round-robin into per-worker queues; an idle worker
    /// steals from the tail of its neighbours' queues.  With one worker
    /// (or one item) everything runs on the calling thread — the panic
    /// capture and result shape are identical, so `--jobs 1` output is the
    /// reference the parallel path must reproduce byte-for-byte.
    pub fn map<I, T, F>(&self, items: &[I], work: F) -> Vec<JobResult<T>>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let workers = self.jobs.min(items.len()).max(1);
        let slots: Vec<Mutex<Option<JobResult<T>>>> =
            (0..items.len()).map(|_| Mutex::new(None)).collect();

        let run_one = |i: usize| {
            let outcome =
                catch_unwind(AssertUnwindSafe(|| work(i, &items[i]))).map_err(|payload| JobPanic {
                    index: i,
                    message: panic_message(payload),
                });
            // Each index is scheduled exactly once, so the slot is empty.
            *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
        };

        if workers == 1 {
            for i in 0..items.len() {
                run_one(i);
            }
        } else {
            // Deal jobs round-robin so queues start balanced even when job
            // costs correlate with index (heavier benchmarks first).
            let queues: Vec<Mutex<VecDeque<usize>>> =
                (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
            for (i, q) in (0..items.len()).zip((0..workers).cycle()) {
                queues[q].lock().expect("fresh queue").push_back(i);
            }
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let queues = &queues;
                    let run_one = &run_one;
                    scope.spawn(move || loop {
                        // Own queue first (front), then steal from the tail
                        // of the other queues.  Jobs never enqueue new jobs,
                        // so "every queue empty" is a stable exit condition.
                        let next = queues[w]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .pop_front()
                            .or_else(|| {
                                (1..workers).find_map(|d| {
                                    queues[(w + d) % workers]
                                        .lock()
                                        .unwrap_or_else(|e| e.into_inner())
                                        .pop_back()
                                })
                            });
                        match next {
                            Some(i) => run_one(i),
                            None => break,
                        }
                    });
                }
            });
        }

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every job scheduled once")
            })
            .collect()
    }

    /// Like [`map`](Executor::map), but turns any captured panic into an
    /// error labelled via `label` (e.g. the failing `(benchmark, design)`
    /// pair) while still returning every successful result.
    ///
    /// # Errors
    ///
    /// Returns a [`SweepError`] listing every panicked job when at least
    /// one job panicked.
    pub fn try_map<I, T, F, L>(&self, items: &[I], label: L, work: F) -> Result<Vec<T>, SweepError>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
        L: Fn(usize, &I) -> String,
    {
        let mut ok = Vec::with_capacity(items.len());
        let mut failed = Vec::new();
        for (i, outcome) in self.map(items, work).into_iter().enumerate() {
            match outcome {
                Ok(v) => ok.push(v),
                Err(p) => failed.push(LabelledPanic {
                    label: label(i, &items[i]),
                    panic: p,
                }),
            }
        }
        if failed.is_empty() {
            Ok(ok)
        } else {
            Err(SweepError { failed })
        }
    }
}

/// A captured panic together with the caller's human-readable job label.
#[derive(Clone, Debug)]
pub struct LabelledPanic {
    /// Caller-supplied job description, e.g. `"fdtd2d under SHM"`.
    pub label: String,
    /// The captured panic.
    pub panic: JobPanic,
}

/// One or more jobs of a sweep panicked; the rest completed normally.
#[derive(Clone, Debug)]
pub struct SweepError {
    /// Every failed job, in submission order.
    pub failed: Vec<LabelledPanic>,
}

impl core::fmt::Display for SweepError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} job(s) panicked:", self.failed.len())?;
        for lp in &self.failed {
            write!(f, " [{}: {}]", lp.label, lp.panic.message)?;
        }
        Ok(())
    }
}

impl std::error::Error for SweepError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 7] {
            let out = Executor::new(jobs).map(&items, |i, &x| {
                // Make later jobs finish earlier to stress reassembly.
                if i % 3 == 0 {
                    std::thread::yield_now();
                }
                x * 2
            });
            let vals: Vec<u64> = out.into_iter().map(|r| r.expect("no panic")).collect();
            assert_eq!(vals, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let items: Vec<u64> = (0..64).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(13);
        let serial = Executor::new(1).map(&items, f);
        let parallel = Executor::new(8).map(&items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn panics_are_captured_per_job() {
        let items: Vec<u32> = (0..10).collect();
        let out = Executor::new(4).map(&items, |_, &x| {
            if x == 3 {
                panic!("boom at {x}");
            }
            x + 1
        });
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                let p = r.as_ref().expect_err("job 3 must fail");
                assert_eq!(p.index, 3);
                assert!(p.message.contains("boom at 3"), "got {:?}", p.message);
            } else {
                assert_eq!(*r.as_ref().expect("other jobs unaffected"), i as u32 + 1);
            }
        }
    }

    #[test]
    fn try_map_labels_failures() {
        let items = ["alpha", "beta", "gamma"];
        let err = Executor::new(2)
            .try_map(
                &items,
                |_, name| format!("job/{name}"),
                |_, &name| {
                    if name == "beta" {
                        panic!("bad {name}");
                    }
                    name.len()
                },
            )
            .expect_err("beta fails");
        assert_eq!(err.failed.len(), 1);
        assert_eq!(err.failed[0].label, "job/beta");
        assert!(err.to_string().contains("job/beta"));
    }

    #[test]
    fn all_jobs_run_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..333).collect();
        let out = Executor::new(5).map(&items, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(out.len(), 333);
        assert_eq!(counter.load(Ordering::Relaxed), 333);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<JobResult<u8>> = Executor::new(4).map(&[] as &[u8], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn effective_jobs_priority() {
        // Explicit request wins over everything.
        assert_eq!(effective_jobs(Some(3)), 3);
        // Zero request falls through to env/auto, which is at least 1.
        assert!(effective_jobs(Some(0)) >= 1);
        assert!(effective_jobs(None) >= 1);
    }
}
