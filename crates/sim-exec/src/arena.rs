//! Reusable keyed scratch arenas for per-job simulation state.
//!
//! A sweep runs thousands of independent simulations, and each one used to
//! build its working state (L2 bank matrices, hash maps, eviction buffers)
//! from scratch — pure allocator traffic that the profiler attributes to
//! the access-issue phase.  [`ScratchPool`] keeps retired state around for
//! the next job instead: [`ScratchPool::take`] hands out a previously
//! retired value for the same key (or builds a fresh one), and the
//! [`Scratch`] guard returns it to the pool on drop.
//!
//! Values are pooled **per key** so that jobs with different shapes (e.g.
//! different cache geometries in a design-space sweep) never receive an
//! arena built for another shape.  The pool itself never resets values —
//! recycled state is returned exactly as the previous job left it, and the
//! caller decides what "clean" means (see [`Scratch::is_recycled`]).  This
//! keeps the pool domain-agnostic and keeps reset logic next to the type
//! that knows its own invariants.
//!
//! The pool is bounded per key: once a key holds [`ScratchPool::max_idle`]
//! idle values, further returns are dropped on the floor, so a burst of
//! workers cannot pin an unbounded amount of retired state.

use std::collections::HashMap;
use std::hash::Hash;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// Default cap on idle values retained per key — comfortably above any
/// realistic worker-pool width.
const DEFAULT_MAX_IDLE: usize = 64;

/// A bounded, keyed pool of reusable scratch values.
#[derive(Debug)]
pub struct ScratchPool<K: Eq + Hash, T> {
    idle: Mutex<HashMap<K, Vec<T>>>,
    max_idle: usize,
}

impl<K: Eq + Hash, T> Default for ScratchPool<K, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash, T> ScratchPool<K, T> {
    /// An empty pool retaining up to [`DEFAULT_MAX_IDLE`] values per key.
    pub fn new() -> Self {
        Self::with_max_idle(DEFAULT_MAX_IDLE)
    }

    /// An empty pool retaining up to `max_idle` values per key (0 disables
    /// pooling entirely: every take builds fresh, every drop discards).
    pub fn with_max_idle(max_idle: usize) -> Self {
        Self {
            idle: Mutex::new(HashMap::new()),
            max_idle,
        }
    }

    /// Cap on idle values retained per key.
    pub fn max_idle(&self) -> usize {
        self.max_idle
    }

    /// Checks out a value for `key`: a recycled one when available,
    /// otherwise `make()`.  The guard returns the value on drop.
    ///
    /// Recycled values arrive exactly as the previous holder left them —
    /// check [`Scratch::is_recycled`] and reset before use.
    pub fn take(&self, key: K, make: impl FnOnce() -> T) -> Scratch<'_, K, T>
    where
        K: Clone,
    {
        let recycled = self
            .idle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_mut(&key)
            .and_then(Vec::pop);
        let is_recycled = recycled.is_some();
        Scratch {
            pool: self,
            key: Some(key),
            value: Some(recycled.unwrap_or_else(make)),
            is_recycled,
        }
    }

    /// Total idle values currently retained, across all keys.
    pub fn idle_count(&self) -> usize {
        self.idle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Discards every idle value (frees the retained allocations).
    pub fn clear(&self) {
        self.idle.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    fn put(&self, key: K, value: T) {
        if self.max_idle == 0 {
            return;
        }
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        let slot = idle.entry(key).or_default();
        if slot.len() < self.max_idle {
            slot.push(value);
        }
    }
}

/// A checked-out scratch value; dereferences to `T` and returns the value
/// to its pool on drop.
#[derive(Debug)]
pub struct Scratch<'p, K: Eq + Hash, T> {
    pool: &'p ScratchPool<K, T>,
    key: Option<K>,
    value: Option<T>,
    is_recycled: bool,
}

impl<K: Eq + Hash, T> Scratch<'_, K, T> {
    /// True when this value was recycled from a previous holder (and thus
    /// carries that holder's state until the caller resets it).
    pub fn is_recycled(&self) -> bool {
        self.is_recycled
    }

    /// Takes the value out of the guard; it will NOT return to the pool.
    pub fn into_inner(mut self) -> T {
        self.key = None;
        self.value.take().expect("value present until drop")
    }
}

impl<K: Eq + Hash, T> Deref for Scratch<'_, K, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.value.as_ref().expect("value present until drop")
    }
}

impl<K: Eq + Hash, T> DerefMut for Scratch<'_, K, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("value present until drop")
    }
}

impl<K: Eq + Hash, T> Drop for Scratch<'_, K, T> {
    fn drop(&mut self) {
        if let (Some(key), Some(value)) = (self.key.take(), self.value.take()) {
            self.pool.put(key, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_then_recycled() {
        let pool: ScratchPool<u32, Vec<u8>> = ScratchPool::new();
        {
            let mut s = pool.take(1, || Vec::with_capacity(16));
            assert!(!s.is_recycled());
            s.push(42);
        }
        assert_eq!(pool.idle_count(), 1);
        let s = pool.take(1, Vec::new);
        assert!(s.is_recycled());
        // State survives verbatim — resetting is the caller's job.
        assert_eq!(&*s, &[42]);
    }

    #[test]
    fn keys_are_isolated() {
        let pool: ScratchPool<&str, u64> = ScratchPool::new();
        drop(pool.take("a", || 7));
        let b = pool.take("b", || 99);
        assert!(!b.is_recycled(), "key b must not see key a's value");
        assert_eq!(*b, 99);
    }

    #[test]
    fn idle_values_are_bounded_per_key() {
        let pool: ScratchPool<u8, u8> = ScratchPool::with_max_idle(2);
        let (a, b, c) = (pool.take(0, || 1), pool.take(0, || 2), pool.take(0, || 3));
        drop(a);
        drop(b);
        drop(c);
        assert_eq!(pool.idle_count(), 2, "third return must be discarded");
    }

    #[test]
    fn zero_cap_disables_pooling() {
        let pool: ScratchPool<u8, u8> = ScratchPool::with_max_idle(0);
        drop(pool.take(0, || 5));
        assert_eq!(pool.idle_count(), 0);
        assert!(!pool.take(0, || 6).is_recycled());
    }

    #[test]
    fn into_inner_detaches_from_pool() {
        let pool: ScratchPool<u8, String> = ScratchPool::new();
        let owned = pool.take(0, || "x".to_string()).into_inner();
        assert_eq!(owned, "x");
        assert_eq!(pool.idle_count(), 0);
    }

    #[test]
    fn clear_frees_idle_values() {
        let pool: ScratchPool<u8, u8> = ScratchPool::new();
        drop(pool.take(0, || 1));
        drop(pool.take(1, || 2));
        assert_eq!(pool.idle_count(), 2);
        pool.clear();
        assert_eq!(pool.idle_count(), 0);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool: ScratchPool<u8, Vec<u64>> = ScratchPool::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        let mut s = pool.take(0, || Vec::with_capacity(8));
                        s.clear();
                        s.push(1);
                    }
                });
            }
        });
        assert!(pool.idle_count() >= 1);
        assert!(pool.idle_count() <= 4, "at most one arena per thread");
    }
}
