//! The secure-memory system: per-partition MEEs driven by a scheme config.

use gpu_types::{GpuConfig, PartitionId, SimStats, TrafficClass};

use crate::common_ctr::CommonCounterTable;
use crate::fabric::DramFabric;
use crate::mdc::{MeeCore, NoVictim, VictimStore};
use crate::request::MemRequest;
use crate::scheme::{Addressing, CounterMode, SchemeConfig};

/// The whole-GPU secure-memory system for the baseline designs of Table
/// VIII (Unprotected / Naive / Common_ctr / PSSM / PSSM_cctr).
///
/// One [`MeeCore`] per memory partition; requests are processed in the
/// partition their data maps to, and every metadata transfer is charged to
/// the [`DramFabric`].
#[derive(Debug)]
pub struct SecureMemorySystem {
    scheme: SchemeConfig,
    mees: Vec<MeeCore>,
    common: Vec<CommonCounterTable>,
    /// Hoisted metric handle: incrementing an owned `Arc<Counter>` skips the
    /// per-call-site registry lookup on the per-access path.
    mac_verifies: std::sync::Arc<shm_metrics::Counter>,
}

impl SecureMemorySystem {
    /// Builds the system for `scheme` over `cfg`'s geometry.
    pub fn new(scheme: SchemeConfig, cfg: &GpuConfig) -> Self {
        let span = match scheme.addressing {
            Addressing::Local => cfg.protected_bytes_per_partition(),
            Addressing::Physical => cfg.protected_bytes,
        };
        Self {
            scheme,
            mees: (0..cfg.num_partitions)
                .map(|p| MeeCore::new(PartitionId(p), span, scheme.addressing, &cfg.mdc))
                .collect(),
            common: (0..cfg.num_partitions)
                .map(|_| CommonCounterTable::new())
                .collect(),
            mac_verifies: shm_metrics::register_counter(
                "shm_mac_verifies_total",
                "Block MACs computed or verified",
            ),
        }
    }

    /// The scheme this system implements.
    pub fn scheme(&self) -> &SchemeConfig {
        &self.scheme
    }

    /// Attaches a telemetry probe to every partition MEE.
    pub fn set_probe(&mut self, probe: &shm_telemetry::Probe) {
        for mee in &mut self.mees {
            mee.set_probe(probe.clone());
        }
    }

    /// Access to one partition's MEE core (for inspection in tests).
    pub fn mee(&self, p: PartitionId) -> &MeeCore {
        &self.mees[p.index()]
    }

    /// Processes one L2 miss / write-back without a victim store.
    pub fn process(
        &mut self,
        now: u64,
        req: &MemRequest,
        fabric: &mut DramFabric,
        stats: &mut SimStats,
    ) -> u64 {
        let mut no_victim = NoVictim;
        self.process_with_victim(now, req, fabric, &mut no_victim, stats)
    }

    /// Processes one L2 miss / write-back, spilling MDC victims into
    /// `victim` (used by the SHM_vL2 design).
    ///
    /// Returns the cycle at which the request completes: for reads, when
    /// decrypted data can be forwarded to the L2 (data sent onward without
    /// waiting for integrity verification, as in the paper); for writes,
    /// when the write-back has been handed to DRAM.
    pub fn process_with_victim(
        &mut self,
        now: u64,
        req: &MemRequest,
        fabric: &mut DramFabric,
        victim: &mut dyn VictimStore,
        stats: &mut SimStats,
    ) -> u64 {
        let p = req.local.partition;
        let is_write = req.is_write();

        // The data transfer itself always happens.
        let data_done = fabric.access_local(
            now,
            p,
            req.local.offset,
            req.bytes,
            is_write,
            TrafficClass::Data,
        );
        if !self.scheme.protected {
            return data_done;
        }
        // Everything below is security-metadata work (counters, MACs, BMT);
        // nested Fabric/Aes guards carve their own share out of this phase.
        let _meta_phase = shm_metrics::phase::guard(shm_metrics::phase::Phase::MetadataWalk);

        let sectored = self.scheme.sectored_metadata;
        let mee = &mut self.mees[p.index()];
        let common = &mut self.common[p.index()];

        // The counter offset used by the common-counter table must match the
        // metadata address space: partition-local for PSSM-style schemes,
        // physical for Naive-style schemes.
        let ctr_key = match self.scheme.addressing {
            Addressing::Local => req.local.offset,
            Addressing::Physical => req.phys.raw(),
        };

        if is_write {
            // Counter increment (plus BMT path update), unless the common-
            // counter sweep keeps the page compressed.
            let needs_counter = match self.scheme.counters {
                CounterMode::Split => true,
                CounterMode::Common => common.record_write(ctr_key),
            };
            if needs_counter {
                mee.update_counter(now, req.local, req.phys, sectored, fabric, victim, stats);
            }
            // MAC is recomputed and stored for every write-back.
            self.mac_verifies.inc();
            mee.update_block_mac(now, req.local, req.phys, sectored, fabric, victim, stats);
            data_done
        } else {
            // Read: the OTP needs the counter; decryption gates data return.
            let skip_counter = match self.scheme.counters {
                CounterMode::Split => false,
                CounterMode::Common => common.read_is_compressed(ctr_key),
            };
            let ctr_ready = if skip_counter {
                stats.readonly_fast_path += 0; // common-ctr fast path is separate
                now
            } else {
                mee.fetch_counter(now, req.local, req.phys, sectored, fabric, victim, stats)
            };
            // MAC fetch + verification are off the critical path.
            self.mac_verifies.inc();
            mee.fetch_block_mac(now, req.local, req.phys, sectored, fabric, victim, stats);
            data_done.max(ctr_ready) + mee.aes_latency()
        }
    }

    /// Flushes every MEE's metadata caches (end of context).
    pub fn flush(&mut self, now: u64, fabric: &mut DramFabric, stats: &mut SimStats) {
        let mut no_victim = NoVictim;
        for mee in &mut self.mees {
            mee.flush(now, fabric, &mut no_victim, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SchemeKind;
    use gpu_types::{AccessKind, MemorySpace, PhysAddr};

    fn req(cfg: &GpuConfig, phys: u64, kind: AccessKind) -> MemRequest {
        MemRequest::new(
            PhysAddr::new(phys),
            cfg.partition_map(),
            kind,
            MemorySpace::Global,
            32,
        )
    }

    fn run_stream(kind: SchemeKind, writes: bool, n: u64) -> (SimStats, DramFabric) {
        let cfg = GpuConfig::default();
        let mut sys = SecureMemorySystem::new(SchemeConfig::of(kind), &cfg);
        let mut fabric = DramFabric::new(&cfg);
        let mut stats = SimStats::default();
        for i in 0..n {
            let k = if writes {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            sys.process(0, &req(&cfg, i * 32, k), &mut fabric, &mut stats);
        }
        sys.flush(1_000_000, &mut fabric, &mut stats);
        stats.traffic = fabric.traffic();
        (stats, fabric)
    }

    #[test]
    fn unprotected_moves_only_data() {
        let (stats, _) = run_stream(SchemeKind::Unprotected, false, 1000);
        assert_eq!(stats.traffic.data_bytes(), 32_000);
        assert_eq!(stats.traffic.metadata_bytes(), 0);
    }

    #[test]
    fn naive_has_much_higher_overhead_than_pssm() {
        let (naive, _) = run_stream(SchemeKind::Naive, false, 4000);
        let (pssm, _) = run_stream(SchemeKind::Pssm, false, 4000);
        let naive_oh = naive.traffic.overhead_ratio();
        let pssm_oh = pssm.traffic.overhead_ratio();
        assert!(
            naive_oh > 2.0 * pssm_oh,
            "naive {naive_oh:.3} vs pssm {pssm_oh:.3}"
        );
    }

    #[test]
    fn naive_generates_cross_partition_traffic() {
        let (_, fabric) = run_stream(SchemeKind::Naive, false, 4000);
        assert!(fabric.cross_partition_accesses() > 0);
        let (_, fabric) = run_stream(SchemeKind::Pssm, false, 4000);
        assert_eq!(fabric.cross_partition_accesses(), 0);
    }

    #[test]
    fn common_counters_cut_counter_traffic_for_reads() {
        let (cctr, _) = run_stream(SchemeKind::CommonCtr, false, 4000);
        let (naive, _) = run_stream(SchemeKind::Naive, false, 4000);
        let c = cctr.traffic.class_total(TrafficClass::Counter)
            + cctr.traffic.class_total(TrafficClass::Bmt);
        let n = naive.traffic.class_total(TrafficClass::Counter)
            + naive.traffic.class_total(TrafficClass::Bmt);
        assert!(c < n / 4, "common {c} vs naive {n}");
    }

    #[test]
    fn streaming_writes_stay_compressed_under_common_counters() {
        let (pssm_w, _) = run_stream(SchemeKind::Pssm, true, 4096);
        let (cctr_w, _) = run_stream(SchemeKind::PssmCctr, true, 4096);
        let c = cctr_w.traffic.class_total(TrafficClass::Counter);
        let p = pssm_w.traffic.class_total(TrafficClass::Counter);
        assert!(c < p, "common counter writes {c} vs split {p}");
    }

    #[test]
    fn reads_pay_aes_latency() {
        let cfg = GpuConfig::default();
        let mut sys = SecureMemorySystem::new(SchemeConfig::of(SchemeKind::Pssm), &cfg);
        let mut unprot = SecureMemorySystem::new(SchemeConfig::of(SchemeKind::Unprotected), &cfg);
        let mut f1 = DramFabric::new(&cfg);
        let mut f2 = DramFabric::new(&cfg);
        let mut stats = SimStats::default();
        let r = req(&cfg, 0, AccessKind::Read);
        let secure = sys.process(0, &r, &mut f1, &mut stats);
        let plain = unprot.process(0, &r, &mut f2, &mut stats);
        assert!(
            secure > plain,
            "secure read not slower: {secure} vs {plain}"
        );
    }

    #[test]
    fn mac_traffic_dominates_pssm_reads() {
        // PSSM's remaining overhead is MAC-dominated (the paper's motivation
        // for dual-granularity MACs).
        let (pssm, _) = run_stream(SchemeKind::Pssm, false, 8000);
        let mac = pssm.traffic.class_total(TrafficClass::Mac);
        let ctr = pssm.traffic.class_total(TrafficClass::Counter);
        let bmt = pssm.traffic.class_total(TrafficClass::Bmt);
        assert!(mac > ctr + bmt, "mac={mac} ctr={ctr} bmt={bmt}");
    }
}
