//! Memory-encryption-engine (MEE) performance model and baseline schemes.
//!
//! This crate models the *timing and traffic* of secure GPU memory: each
//! memory partition owns an MEE with three metadata caches (counter, MAC,
//! BMT — Table VI) sitting between the L2 and the GDDR channel.  Every L2
//! miss or write-back is pushed through [`engine::SecureMemorySystem`],
//! which fetches/updates the security metadata through the caches, charges
//! the DRAM fabric for every transfer, and returns the cycle at which the
//! request completes.
//!
//! Four baseline designs from Table VIII are provided here:
//!
//! * **Unprotected** — the no-security baseline all IPC numbers normalize to.
//! * **Naive** — metadata constructed from *physical* addresses, non-sectored
//!   metadata fetches; metadata for a partition's data frequently lives in
//!   another partition, producing redundant cross-partition traffic.
//! * **Common_ctr** — Naive plus common-value counter compression [Na et
//!   al., HPCA'21]: reads of blocks whose counters match the on-chip common
//!   value skip the counter fetch and BMT walk.
//! * **PSSM / PSSM_cctr** — partition-local metadata with sectored fetches
//!   [Yuan et al., ICS'21], optionally with common counters on top.
//!
//! The SHM designs of the paper build on these pieces in the `shm` crate.

pub mod common_ctr;
pub mod engine;
pub mod fabric;
pub mod mdc;
pub mod request;
pub mod scheme;

pub use common_ctr::CommonCounterTable;
pub use engine::SecureMemorySystem;
pub use fabric::DramFabric;
pub use mdc::{MdcKind, MeeCore, VictimStore};
pub use request::MemRequest;
pub use scheme::{Addressing, CounterMode, SchemeConfig, SchemeKind};
