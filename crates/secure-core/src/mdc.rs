//! Metadata caches (MDCs) and the per-partition MEE core flows.
//!
//! Each memory partition embeds three 2 KB metadata caches (counter, MAC,
//! BMT — Table VI).  [`MeeCore`] implements the flows every scheme shares:
//!
//! * counter fetch with the Bonsai-Merkle-Tree walk on a miss,
//! * counter update with the BMT path dirtying on a write,
//! * per-block MAC fetch/update,
//! * per-chunk MAC fetch/update (used by the SHM dual-granularity design),
//!
//! all charging the [`DramFabric`] for every transfer, and optionally
//! spilling evicted metadata lines into a victim store (the L2, Section
//! IV-D).

use gpu_types::{
    LocalAddr, MdcConfig, PartitionId, PhysAddr, SimStats, TrafficClass, BLOCK_BYTES, SECTOR_BYTES,
};
use shm_cache::{Eviction, Lookup, SectoredCache};
use shm_metadata::MetadataLayout;
use shm_telemetry::{Event, Probe};

use crate::fabric::DramFabric;
use crate::scheme::Addressing;

/// Which metadata cache an address lives in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MdcKind {
    /// Encryption-counter cache.
    Counter,
    /// MAC cache (both per-block and per-chunk MACs).
    Mac,
    /// Bonsai-Merkle-Tree cache.
    Bmt,
}

/// A sink for metadata lines evicted from the MDCs.
///
/// Section IV-D uses the L2 as a victim cache for metadata when the L2 is
/// underutilized or thrashing.  The simulator's L2 implements this trait;
/// [`NoVictim`] disables the mechanism.
pub trait VictimStore {
    /// Probes the victim store for `sectors` of the metadata line at `addr`.
    /// Returns `true` on a hit (the line is consumed back into the MDC).
    fn probe_victim(&mut self, addr: u64, sectors: u8) -> bool;

    /// Offers an evicted metadata line to the victim store.  Returns `true`
    /// if accepted (dirty data will be written back later by the L2), or
    /// `false` if the store declines (the MEE must write back now).
    fn insert_victim(&mut self, addr: u64, valid_sectors: u8, dirty_sectors: u8) -> bool;
}

/// A [`VictimStore`] that always declines (victim caching disabled).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoVictim;

impl VictimStore for NoVictim {
    fn probe_victim(&mut self, _addr: u64, _sectors: u8) -> bool {
        false
    }

    fn insert_victim(&mut self, _addr: u64, _valid: u8, _dirty: u8) -> bool {
        false
    }
}

/// The per-partition MEE state shared by every protected scheme.
#[derive(Clone, Debug)]
pub struct MeeCore {
    /// Partition this MEE belongs to.
    pub partition: PartitionId,
    /// Metadata layout for this MEE's address space (partition-local span
    /// for PSSM/SHM; whole physical range for Naive).
    pub layout: MetadataLayout,
    addressing: Addressing,
    ctr_cache: SectoredCache,
    mac_cache: SectoredCache,
    bmt_cache: SectoredCache,
    cfg: MdcConfig,
    probe: Probe,
    /// Hoisted metric handles: owned `Arc<Counter>`s skip the per-call-site
    /// registry lookup on the counter-miss path.
    bmt_walks: std::sync::Arc<shm_metrics::Counter>,
    bmt_levels: std::sync::Arc<shm_metrics::Counter>,
}

impl MeeCore {
    /// Creates the MEE for `partition` with metadata over `span` bytes of
    /// `addressing`-mode addresses.
    pub fn new(partition: PartitionId, span: u64, addressing: Addressing, cfg: &MdcConfig) -> Self {
        let sectors = (cfg.line_bytes / SECTOR_BYTES) as u32;
        let mk = |c: &MdcConfig| SectoredCache::new(c.cache_bytes, c.line_bytes, c.assoc, sectors);
        Self {
            partition,
            layout: MetadataLayout::with_full_options(
                span,
                cfg.tree_arity,
                cfg.mac_bytes_per_block,
                cfg.chunk_bytes,
            ),
            addressing,
            ctr_cache: mk(cfg),
            mac_cache: mk(cfg),
            bmt_cache: mk(cfg),
            cfg: cfg.clone(),
            probe: Probe::disabled(),
            bmt_walks: shm_metrics::register_counter(
                "shm_bmt_walks_total",
                "BMT freshness walks after counter misses",
            ),
            bmt_levels: shm_metrics::register_counter(
                "shm_bmt_levels_total",
                "BMT levels visited across all walks",
            ),
        }
    }

    /// Attaches a telemetry probe; the MEE reports counter-cache misses,
    /// BMT walk depths and per-request pipeline depth through it.
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// AES-engine latency in cycles.
    pub fn aes_latency(&self) -> u64 {
        self.cfg.aes_latency as u64
    }

    /// Hash/MAC-engine latency in cycles.
    pub fn hash_latency(&self) -> u64 {
        self.cfg.hash_latency as u64
    }

    /// Hit/miss counters of one MDC.
    pub fn cache_stats(&self, kind: MdcKind) -> (u64, u64) {
        let c = match kind {
            MdcKind::Counter => &self.ctr_cache,
            MdcKind::Mac => &self.mac_cache,
            MdcKind::Bmt => &self.bmt_cache,
        };
        (c.hits(), c.misses())
    }

    /// The metadata address of the data at `local`/`phys` for this MEE's
    /// addressing mode, routed through `f`.
    fn data_offset(&self, local: LocalAddr, phys: PhysAddr) -> u64 {
        match self.addressing {
            Addressing::Local => local.offset,
            Addressing::Physical => phys.raw(),
        }
    }

    /// Fetch granularity for metadata: a 32 B sector when sectored, a full
    /// 128 B line otherwise (the Naive design).
    fn fetch_span(&self, addr: u64, sectored: bool) -> (u64, u64, u8) {
        if sectored {
            (addr, SECTOR_BYTES, self.ctr_cache.sector_mask_of(addr))
        } else {
            (
                addr & !(BLOCK_BYTES - 1),
                BLOCK_BYTES,
                self.ctr_cache.full_mask(),
            )
        }
    }

    /// Routes a metadata DRAM access through the fabric in the right
    /// address space.
    fn dram_access(
        &self,
        f: &mut DramFabric,
        now: u64,
        addr: u64,
        bytes: u64,
        is_write: bool,
        class: TrafficClass,
    ) -> u64 {
        // Encryption-counter reads gate OTP generation and therefore data
        // return; the memory controller prioritizes them over bulk traffic.
        let priority = matches!(class, TrafficClass::Counter) && !is_write;
        match self.addressing {
            Addressing::Local => {
                if priority {
                    f.read_priority(now, self.partition, self.partition, addr, bytes, class)
                } else {
                    f.access_local(now, self.partition, addr, bytes, is_write, class)
                }
            }
            Addressing::Physical => {
                if priority {
                    let local = f.map().to_local(PhysAddr::new(addr));
                    f.read_priority(
                        now,
                        self.partition,
                        local.partition,
                        local.offset,
                        bytes,
                        class,
                    )
                } else {
                    f.access_phys(
                        now,
                        self.partition,
                        PhysAddr::new(addr),
                        bytes,
                        is_write,
                        class,
                    )
                }
            }
        }
    }

    /// Handles an eviction from an MDC: offer it to the victim store, else
    /// write dirty sectors back to DRAM.
    fn handle_eviction(
        &self,
        ev: Eviction,
        class: TrafficClass,
        now: u64,
        f: &mut DramFabric,
        victim: &mut dyn VictimStore,
        stats: &mut SimStats,
    ) {
        // Only MAC lines are worth keeping in the L2: a 128 B MAC line holds
        // sixteen block-/chunk-MACs and has far more reuse than a data line
        // (Section IV-D, "especially the MAC cache").  Counter/BMT victims
        // would mostly pollute the L2.
        // Counter-cache victims carry their hotness (lookup hits served
        // while resident) to telemetry so the victim policy can be tuned
        // from traces instead of aggregate miss rates.
        if matches!(class, TrafficClass::Counter) {
            self.probe.on_ctr_victim(now, ev.uses);
        }
        if matches!(class, TrafficClass::Mac)
            && victim.insert_victim(ev.addr, ev.valid_sectors, ev.dirty_sectors)
        {
            return;
        }
        if ev.is_dirty() {
            let bytes = ev.dirty_sectors.count_ones() as u64 * SECTOR_BYTES;
            self.dram_access(f, now, ev.addr, bytes, true, class);
            let _ = stats;
        }
    }

    /// Generic MDC read: returns the cycle the metadata is available.
    #[allow(clippy::too_many_arguments)]
    fn mdc_read(
        &mut self,
        kind: MdcKind,
        addr: u64,
        sectored: bool,
        class: TrafficClass,
        now: u64,
        f: &mut DramFabric,
        victim: &mut dyn VictimStore,
        stats: &mut SimStats,
    ) -> u64 {
        let (base, bytes, mask) = self.fetch_span(addr, sectored);
        let lookup = self.cache_mut(kind).lookup(base, mask);

        if lookup == Lookup::Hit {
            match kind {
                MdcKind::Counter => stats.ctr_hits += 1,
                MdcKind::Mac => stats.mac_hits += 1,
                MdcKind::Bmt => stats.bmt_hits += 1,
            }
            return now;
        }

        // Miss: try the victim store (L2) before DRAM.
        let missing = match lookup {
            Lookup::SectorMiss { missing } => missing,
            _ => mask,
        };
        let (done, from_victim) = if victim.probe_victim(base, missing) {
            stats.victim_hits += 1;
            (now + 10, true) // L2 probe latency, no DRAM traffic
        } else {
            match kind {
                MdcKind::Counter => stats.ctr_misses += 1,
                MdcKind::Mac => stats.mac_misses += 1,
                MdcKind::Bmt => stats.bmt_misses += 1,
            }
            let miss_bytes = (missing.count_ones() as u64 * SECTOR_BYTES).min(bytes);
            (
                self.dram_access(f, now, base, miss_bytes, false, class),
                false,
            )
        };
        if let Some(ev) = self.cache_mut(kind).fill(base, mask) {
            self.handle_eviction(ev, class, now, f, victim, stats);
        }
        let _ = from_victim;
        done
    }

    fn cache_mut(&mut self, kind: MdcKind) -> &mut SectoredCache {
        match kind {
            MdcKind::Counter => &mut self.ctr_cache,
            MdcKind::Mac => &mut self.mac_cache,
            MdcKind::Bmt => &mut self.bmt_cache,
        }
    }

    /// Generic MDC update (write-allocate): fetch on miss, then dirty.
    #[allow(clippy::too_many_arguments)]
    fn mdc_write(
        &mut self,
        kind: MdcKind,
        addr: u64,
        sectored: bool,
        class: TrafficClass,
        now: u64,
        f: &mut DramFabric,
        victim: &mut dyn VictimStore,
        stats: &mut SimStats,
    ) -> u64 {
        let ready = self.mdc_read(kind, addr, sectored, class, now, f, victim, stats);
        let (base, _, mask) = self.fetch_span(addr, sectored);
        self.cache_mut(kind).mark_dirty(base, mask);
        ready
    }

    /// Fetches the encryption counter for a data sector, walking the BMT on
    /// a counter-cache miss.  Returns the cycle the counter is available
    /// (which gates OTP generation).
    #[allow(clippy::too_many_arguments)]
    pub fn fetch_counter(
        &mut self,
        now: u64,
        local: LocalAddr,
        phys: PhysAddr,
        sectored: bool,
        f: &mut DramFabric,
        victim: &mut dyn VictimStore,
        stats: &mut SimStats,
    ) -> u64 {
        let data = self.data_offset(local, phys);
        let ctr_addr = if sectored {
            self.layout.counter_sector(data)
        } else {
            self.layout.counter_line(data)
        };
        let misses_before = stats.ctr_misses;
        let ctr_ready = self.mdc_read(
            MdcKind::Counter,
            ctr_addr,
            sectored,
            TrafficClass::Counter,
            now,
            f,
            victim,
            stats,
        );
        if stats.ctr_misses == misses_before {
            // Hit: already verified when first brought on chip; the engine
            // pipeline touched a single metadata level.
            self.probe.on_engine_depth(1);
            return ctr_ready;
        }
        self.probe.emit(
            now,
            Event::CtrCacheMiss {
                partition: self.partition.index(),
            },
        );
        // Counter miss: verify freshness by walking the BMT upward until a
        // cached (already-verified) node or the on-chip root.  The walk
        // charges DRAM bandwidth, but — like MAC verification — it is off
        // the critical path: the fetched counter feeds OTP generation
        // immediately and an exception fires later on a mismatch.
        let mut walked = 0u32;
        for node in self.layout.bmt_path(data) {
            let before = stats.bmt_misses;
            self.mdc_read(
                MdcKind::Bmt,
                node,
                sectored,
                TrafficClass::Bmt,
                now,
                f,
                victim,
                stats,
            );
            walked += 1;
            if stats.bmt_misses == before {
                break; // cached ⇒ verified ⇒ stop the walk
            }
        }
        self.bmt_walks.inc();
        self.bmt_levels.add(u64::from(walked));
        if self.probe.is_enabled() {
            self.probe.emit(
                now,
                Event::BmtWalk {
                    partition: self.partition.index(),
                    depth: walked,
                },
            );
            // Counter level plus every BMT level visited.
            self.probe.on_engine_depth(1 + u64::from(walked));
            self.probe.on_bmt_walk(now, u64::from(walked));
        }
        ctr_ready
    }

    /// Updates the encryption counter for a written sector: write-allocates
    /// the counter line and dirties the BMT path to the root.
    #[allow(clippy::too_many_arguments)]
    pub fn update_counter(
        &mut self,
        now: u64,
        local: LocalAddr,
        phys: PhysAddr,
        sectored: bool,
        f: &mut DramFabric,
        victim: &mut dyn VictimStore,
        stats: &mut SimStats,
    ) -> u64 {
        let data = self.data_offset(local, phys);
        let ctr_addr = if sectored {
            self.layout.counter_sector(data)
        } else {
            self.layout.counter_line(data)
        };
        let ready = self.mdc_write(
            MdcKind::Counter,
            ctr_addr,
            sectored,
            TrafficClass::Counter,
            now,
            f,
            victim,
            stats,
        );
        // The write path updates every tree level; nodes are dirtied in the
        // BMT cache and written back on eviction.
        for node in self.layout.bmt_path(data) {
            self.mdc_write(
                MdcKind::Bmt,
                node,
                sectored,
                TrafficClass::Bmt,
                now,
                f,
                victim,
                stats,
            );
        }
        ready
    }

    /// Fetches the per-block MAC sector covering a data sector.
    #[allow(clippy::too_many_arguments)]
    pub fn fetch_block_mac(
        &mut self,
        now: u64,
        local: LocalAddr,
        phys: PhysAddr,
        sectored: bool,
        f: &mut DramFabric,
        victim: &mut dyn VictimStore,
        stats: &mut SimStats,
    ) -> u64 {
        let data = self.data_offset(local, phys);
        let addr = self.layout.block_mac_sector(data);
        self.mdc_read(
            MdcKind::Mac,
            addr,
            sectored,
            TrafficClass::Mac,
            now,
            f,
            victim,
            stats,
        )
    }

    /// Updates the per-block MAC for a written data sector.
    #[allow(clippy::too_many_arguments)]
    pub fn update_block_mac(
        &mut self,
        now: u64,
        local: LocalAddr,
        phys: PhysAddr,
        sectored: bool,
        f: &mut DramFabric,
        victim: &mut dyn VictimStore,
        stats: &mut SimStats,
    ) -> u64 {
        let data = self.data_offset(local, phys);
        let addr = self.layout.block_mac_sector(data);
        self.mdc_write(
            MdcKind::Mac,
            addr,
            sectored,
            TrafficClass::Mac,
            now,
            f,
            victim,
            stats,
        )
    }

    /// Marks a freshly produced block-MAC sector "not dirty" (streaming
    /// chunks keep their block MACs clean so they never cost write-backs —
    /// Section IV-C).
    pub fn clean_block_mac(&mut self, local: LocalAddr, phys: PhysAddr) {
        let data = self.data_offset(local, phys);
        let addr = self.layout.block_mac_sector(data);
        let mask = self.mac_cache.sector_mask_of(addr);
        self.mac_cache.clear_dirty(addr, mask);
    }

    /// Fetches the per-chunk MAC sector covering a data address.
    pub fn fetch_chunk_mac(
        &mut self,
        now: u64,
        local: LocalAddr,
        phys: PhysAddr,
        f: &mut DramFabric,
        victim: &mut dyn VictimStore,
        stats: &mut SimStats,
    ) -> u64 {
        let data = self.data_offset(local, phys);
        let addr = self.layout.chunk_mac_sector(data);
        stats.chunk_mac_accesses += 1;
        self.mdc_read(
            MdcKind::Mac,
            addr,
            true,
            TrafficClass::Mac,
            now,
            f,
            victim,
            stats,
        )
    }

    /// Updates the per-chunk MAC covering a data address.
    pub fn update_chunk_mac(
        &mut self,
        now: u64,
        local: LocalAddr,
        phys: PhysAddr,
        f: &mut DramFabric,
        victim: &mut dyn VictimStore,
        stats: &mut SimStats,
    ) -> u64 {
        let data = self.data_offset(local, phys);
        let addr = self.layout.chunk_mac_sector(data);
        stats.chunk_mac_accesses += 1;
        self.mdc_write(
            MdcKind::Mac,
            addr,
            true,
            TrafficClass::Mac,
            now,
            f,
            victim,
            stats,
        )
    }

    /// Installs a block-MAC sector that was *produced on chip* (computed by
    /// the MAC engine from data already in flight): fills the MAC cache
    /// without DRAM traffic and leaves the sector clean.
    ///
    /// This is the streaming-chunk write flow of Section IV-C: block-level
    /// MACs of a streaming chunk live in the MAC cache marked 'not dirty',
    /// so they never generate write-back traffic — only the chunk-level MAC
    /// is persisted.
    pub fn produce_block_mac_clean(
        &mut self,
        now: u64,
        local: LocalAddr,
        phys: PhysAddr,
        f: &mut DramFabric,
        victim: &mut dyn VictimStore,
        stats: &mut SimStats,
    ) {
        let data = self.data_offset(local, phys);
        let addr = self.layout.block_mac_sector(data);
        let mask = self.mac_cache.sector_mask_of(addr);
        if let Some(ev) = self.mac_cache.fill(addr, mask) {
            self.handle_eviction(ev, TrafficClass::Mac, now, f, victim, stats);
        }
        self.mac_cache.clear_dirty(addr, mask);
    }

    /// Propagates the shared counter into the per-block counters of a whole
    /// region after a read-only → not-read-only transition (Fig. 8).
    ///
    /// The new counter values are generated on chip and installed directly
    /// in the counter cache (dirty, written back on eviction); the BMT path
    /// over the region is updated to cover the newly added counters.
    #[allow(clippy::too_many_arguments)]
    pub fn propagate_region_counters(
        &mut self,
        now: u64,
        region_local_base: u64,
        region_bytes: u64,
        local_partition: PartitionId,
        f: &mut DramFabric,
        victim: &mut dyn VictimStore,
        stats: &mut SimStats,
    ) {
        let mut off = region_local_base;
        let end = region_local_base + region_bytes;
        while off < end {
            let la = LocalAddr::new(local_partition, off);
            let pa = PhysAddr::new(off); // only used in Local addressing mode
            let data = self.data_offset(la, pa);
            let ctr_addr = self.layout.counter_sector(data);
            let mask = self.ctr_cache.sector_mask_of(ctr_addr);
            if let Some(ev) = self.ctr_cache.fill(ctr_addr, mask) {
                self.handle_eviction(ev, TrafficClass::Counter, now, f, victim, stats);
            }
            self.ctr_cache.mark_dirty(ctr_addr, mask);
            off += shm_metadata::layout::BLOCKS_PER_COUNTER_SECTOR * BLOCK_BYTES;
        }
        // One BMT path update covers the counter lines of the region.
        let la = LocalAddr::new(local_partition, region_local_base);
        let pa = PhysAddr::new(region_local_base);
        let data = self.data_offset(la, pa);
        for node in self.layout.bmt_path(data) {
            self.mdc_write(
                MdcKind::Bmt,
                node,
                true,
                TrafficClass::Bmt,
                now,
                f,
                victim,
                stats,
            );
        }
    }

    /// Flushes all MDCs, writing dirty metadata back (end of context).
    pub fn flush(
        &mut self,
        now: u64,
        f: &mut DramFabric,
        victim: &mut dyn VictimStore,
        stats: &mut SimStats,
    ) {
        for (kind, class) in [
            (MdcKind::Counter, TrafficClass::Counter),
            (MdcKind::Mac, TrafficClass::Mac),
            (MdcKind::Bmt, TrafficClass::Bmt),
        ] {
            let evs = self.cache_mut(kind).flush();
            for ev in evs {
                self.handle_eviction(ev, class, now, f, victim, stats);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_types::{GpuConfig, MdcConfig};

    fn setup() -> (MeeCore, DramFabric, SimStats) {
        let cfg = GpuConfig::default();
        let mee = MeeCore::new(
            PartitionId(0),
            64 << 20,
            Addressing::Local,
            &MdcConfig::default(),
        );
        (mee, DramFabric::new(&cfg), SimStats::default())
    }

    fn la(off: u64) -> LocalAddr {
        LocalAddr::new(PartitionId(0), off)
    }

    #[test]
    fn counter_miss_then_hit() {
        let (mut mee, mut f, mut stats) = setup();
        let mut v = NoVictim;
        let t1 = mee.fetch_counter(0, la(0), PhysAddr::new(0), true, &mut f, &mut v, &mut stats);
        assert!(t1 > 0, "miss should cost DRAM latency");
        assert_eq!(stats.ctr_misses, 1);
        let t2 = mee.fetch_counter(
            t1,
            la(32),
            PhysAddr::new(32),
            true,
            &mut f,
            &mut v,
            &mut stats,
        );
        assert_eq!(t2, t1, "same counter sector should hit");
        assert_eq!(stats.ctr_hits, 1);
    }

    #[test]
    fn counter_miss_triggers_bmt_walk() {
        let (mut mee, mut f, mut stats) = setup();
        let mut v = NoVictim;
        mee.fetch_counter(0, la(0), PhysAddr::new(0), true, &mut f, &mut v, &mut stats);
        assert!(stats.bmt_misses > 0, "cold counter miss must walk the tree");
        let walked_levels = stats.bmt_misses;
        assert!(walked_levels as usize <= mee.layout.bmt().levels());
    }

    #[test]
    fn bmt_walk_stops_at_cached_node() {
        let (mut mee, mut f, mut stats) = setup();
        let mut v = NoVictim;
        mee.fetch_counter(0, la(0), PhysAddr::new(0), true, &mut f, &mut v, &mut stats);
        let first_walk = stats.bmt_misses;
        // A distant counter in the same level-1 group: shares upper path.
        mee.fetch_counter(
            0,
            la(8192),
            PhysAddr::new(8192),
            true,
            &mut f,
            &mut v,
            &mut stats,
        );
        let second_walk = stats.bmt_misses - first_walk;
        assert!(
            second_walk <= 1,
            "walk did not early-terminate: {second_walk}"
        );
    }

    #[test]
    fn counter_coverage_spans_2kb() {
        let (mut mee, mut f, mut stats) = setup();
        let mut v = NoVictim;
        mee.fetch_counter(0, la(0), PhysAddr::new(0), true, &mut f, &mut v, &mut stats);
        for off in (32..2048).step_by(32) {
            mee.fetch_counter(
                0,
                la(off),
                PhysAddr::new(off),
                true,
                &mut f,
                &mut v,
                &mut stats,
            );
        }
        assert_eq!(stats.ctr_misses, 1, "all 2 KB share one counter sector");
    }

    #[test]
    fn mac_sector_covers_512b() {
        let (mut mee, mut f, mut stats) = setup();
        let mut v = NoVictim;
        for off in (0..1024).step_by(32) {
            mee.fetch_block_mac(
                0,
                la(off),
                PhysAddr::new(off),
                true,
                &mut f,
                &mut v,
                &mut stats,
            );
        }
        assert_eq!(stats.mac_misses, 2, "1 KB of data = two MAC sectors");
        assert_eq!(stats.mac_hits, 30);
    }

    #[test]
    fn writes_dirty_metadata_and_writeback_on_flush() {
        let (mut mee, mut f, mut stats) = setup();
        let mut v = NoVictim;
        mee.update_counter(0, la(0), PhysAddr::new(0), true, &mut f, &mut v, &mut stats);
        mee.update_block_mac(0, la(0), PhysAddr::new(0), true, &mut f, &mut v, &mut stats);
        let written_before = f.traffic().write[gpu_types::TrafficClass::Counter as usize];
        mee.flush(1000, &mut f, &mut v, &mut stats);
        let t = f.traffic();
        assert!(t.write[gpu_types::TrafficClass::Counter as usize] > written_before);
        assert!(t.write[gpu_types::TrafficClass::Mac as usize] > 0);
        assert!(t.write[gpu_types::TrafficClass::Bmt as usize] > 0);
    }

    #[test]
    fn clean_block_mac_suppresses_writeback() {
        let (mut mee, mut f, mut stats) = setup();
        let mut v = NoVictim;
        mee.update_block_mac(0, la(0), PhysAddr::new(0), true, &mut f, &mut v, &mut stats);
        mee.clean_block_mac(la(0), PhysAddr::new(0));
        mee.flush(1000, &mut f, &mut v, &mut stats);
        assert_eq!(
            f.traffic().write[gpu_types::TrafficClass::Mac as usize],
            0,
            "cleaned MAC still written back"
        );
    }

    #[test]
    fn non_sectored_fetch_moves_full_line() {
        let cfg = GpuConfig::default();
        let mut mee = MeeCore::new(
            PartitionId(0),
            4 << 30,
            Addressing::Physical,
            &MdcConfig::default(),
        );
        let mut f = DramFabric::new(&cfg);
        let mut stats = SimStats::default();
        let mut v = NoVictim;
        mee.fetch_block_mac(
            0,
            la(0),
            PhysAddr::new(0),
            false,
            &mut f,
            &mut v,
            &mut stats,
        );
        assert_eq!(
            f.traffic().read[gpu_types::TrafficClass::Mac as usize],
            128,
            "naive fetch should move a whole line"
        );
    }

    #[test]
    fn counter_victims_report_hotness_to_telemetry() {
        let (mut mee, mut f, mut stats) = setup();
        let probe = shm_telemetry::Probe::enabled(shm_telemetry::TelemetryConfig::default());
        mee.set_probe(probe.clone());
        let mut v = NoVictim;
        // Re-touch one hot counter sector, then stream enough distinct
        // counter lines to evict it (2 KB cache = 16 lines of 128 B).
        for _ in 0..8 {
            mee.fetch_counter(0, la(0), PhysAddr::new(0), true, &mut f, &mut v, &mut stats);
        }
        for i in 1..64u64 {
            let off = i * 8192; // one counter line of data span per step
            mee.fetch_counter(
                0,
                la(off),
                PhysAddr::new(off),
                true,
                &mut f,
                &mut v,
                &mut stats,
            );
        }
        probe.finalize(0);
        probe.with(|t| {
            let victims: u64 = t.snapshots().iter().map(|s| s.ctr_victims).sum();
            let uses: u64 = t.snapshots().iter().map(|s| s.ctr_victim_uses).sum();
            assert!(victims > 0, "streaming misses must evict counter lines");
            assert!(uses > 0, "the hot line's hits must surface as hotness");
        });
    }

    #[test]
    fn bmt_walk_depths_land_in_epoch_snapshots() {
        let (mut mee, mut f, mut stats) = setup();
        let probe = shm_telemetry::Probe::enabled(shm_telemetry::TelemetryConfig::default());
        mee.set_probe(probe.clone());
        let mut v = NoVictim;
        // Cold counter miss walks the whole tree; a distant counter sharing
        // the upper path early-terminates, so a shallower walk is recorded.
        mee.fetch_counter(0, la(0), PhysAddr::new(0), true, &mut f, &mut v, &mut stats);
        mee.fetch_counter(
            0,
            la(8192),
            PhysAddr::new(8192),
            true,
            &mut f,
            &mut v,
            &mut stats,
        );
        probe.finalize(0);
        probe.with(|t| {
            let walks: u64 = t.snapshots().iter().map(|s| s.bmt_walks).sum();
            let depth_sum: u64 = t.snapshots().iter().map(|s| s.bmt_depth_sum).sum();
            let depth_max = t.snapshots().iter().map(|s| s.bmt_depth_max).max().unwrap();
            assert_eq!(walks, 2, "each counter miss records one walk");
            assert!(depth_sum > depth_max, "two walks contribute to the sum");
            assert!(depth_max as usize <= mee.layout.bmt().levels());
        });
    }

    #[test]
    fn chunk_mac_fetch_records_stat() {
        let (mut mee, mut f, mut stats) = setup();
        let mut v = NoVictim;
        mee.fetch_chunk_mac(0, la(0), PhysAddr::new(0), &mut f, &mut v, &mut stats);
        assert_eq!(stats.chunk_mac_accesses, 1);
    }
}
