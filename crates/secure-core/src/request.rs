//! The memory request the MEE processes.

use gpu_types::{AccessKind, LocalAddr, MemorySpace, PhysAddr};

/// One request leaving the L2 toward memory: a miss fill (read) or a dirty
/// write-back (write) of a 32 B sector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRequest {
    /// Physical address of the sector.
    pub phys: PhysAddr,
    /// Partition-local address of the sector (after interleaving).
    pub local: LocalAddr,
    /// Read (miss fill) or write (write-back).
    pub kind: AccessKind,
    /// Memory space the data belongs to.
    pub space: MemorySpace,
    /// Transfer size in bytes (usually one 32 B sector).
    pub bytes: u64,
}

impl MemRequest {
    /// Builds a request from its physical address using `map` to derive the
    /// local address.
    pub fn new(
        phys: PhysAddr,
        map: gpu_types::PartitionMap,
        kind: AccessKind,
        space: MemorySpace,
        bytes: u64,
    ) -> Self {
        Self {
            phys,
            local: map.to_local(phys),
            kind,
            space,
            bytes,
        }
    }

    /// Whether this is a write-back.
    pub fn is_write(&self) -> bool {
        self.kind.is_write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_types::PartitionMap;

    #[test]
    fn derives_local_address() {
        let map = PartitionMap::new(12, 256);
        let r = MemRequest::new(
            PhysAddr::new(256),
            map,
            AccessKind::Read,
            MemorySpace::Global,
            32,
        );
        assert_eq!(r.local.partition.0, 1);
        assert_eq!(r.local.offset, 0);
        assert!(!r.is_write());
    }
}
