//! Scheme descriptors for the evaluated secure-memory designs (Table VIII).

/// How metadata addresses are constructed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Addressing {
    /// From physical addresses over the whole protected range (Naive /
    /// Common_ctr).  Metadata for one partition's data may live in another
    /// partition, creating redundant cross-partition traffic.
    Physical,
    /// From partition-local addresses (PSSM and everything built on it).
    Local,
}

/// How encryption counters are managed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CounterMode {
    /// Split per-block counters, always fetched/updated through the counter
    /// cache.
    Split,
    /// Common-value compressed counters: reads of blocks whose counter
    /// equals the on-chip common value skip both the counter fetch and the
    /// BMT walk.
    Common,
}

/// Identifiers for the pre-built designs of Table VIII handled by this
/// crate.  (The SHM variants live in the `shm` crate.)
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchemeKind {
    /// GPU without secure memory (normalization baseline).
    Unprotected,
    /// Physical-address metadata, non-sectored fetches.
    Naive,
    /// Naive + common counters.
    CommonCtr,
    /// Partition-local sectored metadata.
    Pssm,
    /// PSSM + common counters.
    PssmCctr,
}

/// Full configuration of a baseline secure-memory design.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SchemeConfig {
    /// Design identifier (for reports).
    pub kind: SchemeKind,
    /// Whether any protection is applied at all.
    pub protected: bool,
    /// Metadata address construction.
    pub addressing: Addressing,
    /// Counter management.
    pub counters: CounterMode,
    /// Whether metadata is fetched at 32 B sector granularity (PSSM) or
    /// whole 128 B lines (Naive).
    pub sectored_metadata: bool,
}

impl SchemeConfig {
    /// Configuration for one of the pre-built designs.
    pub fn of(kind: SchemeKind) -> Self {
        match kind {
            SchemeKind::Unprotected => Self {
                kind,
                protected: false,
                addressing: Addressing::Local,
                counters: CounterMode::Split,
                sectored_metadata: true,
            },
            SchemeKind::Naive => Self {
                kind,
                protected: true,
                addressing: Addressing::Physical,
                counters: CounterMode::Split,
                sectored_metadata: false,
            },
            SchemeKind::CommonCtr => Self {
                kind,
                protected: true,
                addressing: Addressing::Physical,
                counters: CounterMode::Common,
                sectored_metadata: false,
            },
            SchemeKind::Pssm => Self {
                kind,
                protected: true,
                addressing: Addressing::Local,
                counters: CounterMode::Split,
                sectored_metadata: true,
            },
            SchemeKind::PssmCctr => Self {
                kind,
                protected: true,
                addressing: Addressing::Local,
                counters: CounterMode::Common,
                sectored_metadata: true,
            },
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self.kind {
            SchemeKind::Unprotected => "Baseline",
            SchemeKind::Naive => "Naive",
            SchemeKind::CommonCtr => "Common_ctr",
            SchemeKind::Pssm => "PSSM",
            SchemeKind::PssmCctr => "PSSM_cctr",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_viii_configurations() {
        let naive = SchemeConfig::of(SchemeKind::Naive);
        assert_eq!(naive.addressing, Addressing::Physical);
        assert!(!naive.sectored_metadata);

        let pssm = SchemeConfig::of(SchemeKind::Pssm);
        assert_eq!(pssm.addressing, Addressing::Local);
        assert!(pssm.sectored_metadata);

        let cctr = SchemeConfig::of(SchemeKind::PssmCctr);
        assert_eq!(cctr.counters, CounterMode::Common);

        assert!(!SchemeConfig::of(SchemeKind::Unprotected).protected);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(SchemeConfig::of(SchemeKind::CommonCtr).name(), "Common_ctr");
        assert_eq!(SchemeConfig::of(SchemeKind::Pssm).name(), "PSSM");
    }
}
