//! The DRAM fabric: all partition channels plus the inter-partition crossbar.

use gpu_types::{GpuConfig, PartitionId, PartitionMap, PhysAddr, TrafficClass};
use shm_dram::{DramConfig, DramPartition};
use shm_telemetry::{Event, Probe};

/// Extra latency for a request that crosses the partition crossbar (a
/// metadata fetch whose metadata lives in another partition — only happens
/// with physical-address metadata construction).
const CROSSBAR_LATENCY: u64 = 20;

/// All GDDR channels of the GPU plus traffic accounting.
#[derive(Clone, Debug)]
pub struct DramFabric {
    partitions: Vec<DramPartition>,
    map: PartitionMap,
    /// Per-class read/write byte counters, aggregated over all partitions.
    traffic: gpu_types::TrafficBytes,
    cross_partition_accesses: u64,
    /// Completed requests, all classes (priority reads included).
    requests: u64,
    probe: Probe,
}

impl DramFabric {
    /// Builds the fabric from the GPU configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        let dram_cfg = DramConfig {
            bytes_per_cycle: cfg.partition_bytes_per_cycle(),
            ..DramConfig::default()
        };
        Self {
            partitions: (0..cfg.num_partitions)
                .map(|_| DramPartition::new(dram_cfg))
                .collect(),
            map: cfg.partition_map(),
            traffic: gpu_types::TrafficBytes::default(),
            cross_partition_accesses: 0,
            requests: 0,
            probe: Probe::disabled(),
        }
    }

    /// Attaches a telemetry probe; the DRAM layer reports per-request
    /// latency, per-class traffic and queue-depth gauges through it.
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// The partition interleaving map.
    pub fn map(&self) -> PartitionMap {
        self.map
    }

    /// Accesses `bytes` at a partition-local offset inside `partition`.
    /// Returns the completion cycle and records traffic under `class`.
    pub fn access_local(
        &mut self,
        now: u64,
        partition: PartitionId,
        offset: u64,
        bytes: u64,
        is_write: bool,
        class: TrafficClass,
    ) -> u64 {
        let _fabric_phase = shm_metrics::phase::guard(shm_metrics::phase::Phase::Fabric);
        self.traffic.record(class, bytes, is_write);
        self.requests += 1;
        let chan = &mut self.partitions[partition.index()];
        if self.probe.is_enabled() {
            let depth = chan.queue_delay(now);
            self.probe.emit(
                now,
                Event::DramQueueDepth {
                    partition: partition.index(),
                    depth,
                },
            );
        }
        let done = chan.access(now, offset, bytes, is_write);
        self.probe
            .on_traffic(now, partition.index(), class, bytes, is_write);
        self.probe.on_dram_request(done, done.saturating_sub(now));
        done
    }

    /// Accesses `bytes` at a *physical* address: the interleaving map picks
    /// the owning partition.  If `from` differs from the owner, the crossbar
    /// latency is added (cross-partition metadata traffic of the Naive
    /// design).
    pub fn access_phys(
        &mut self,
        now: u64,
        from: PartitionId,
        addr: PhysAddr,
        bytes: u64,
        is_write: bool,
        class: TrafficClass,
    ) -> u64 {
        let local = self.map.to_local(addr);
        let done = self.access_local(now, local.partition, local.offset, bytes, is_write, class);
        if local.partition != from {
            self.cross_partition_accesses += 1;
            done + CROSSBAR_LATENCY
        } else {
            done
        }
    }

    /// Issues a *priority* metadata read (an encryption-counter fetch on the
    /// read critical path): the controller reorders it ahead of bulk
    /// traffic, capping its queueing delay while charging its bandwidth.
    pub fn read_priority(
        &mut self,
        now: u64,
        from: PartitionId,
        partition: PartitionId,
        offset: u64,
        bytes: u64,
        class: TrafficClass,
    ) -> u64 {
        self.traffic.record(class, bytes, false);
        self.requests += 1;
        let done = self.partitions[partition.index()].access_priority(now, offset, bytes);
        self.probe
            .on_traffic(now, partition.index(), class, bytes, false);
        self.probe.on_dram_request(done, done.saturating_sub(now));
        if partition != from {
            self.cross_partition_accesses += 1;
            done + CROSSBAR_LATENCY
        } else {
            done
        }
    }

    /// Aggregate per-class traffic.
    pub fn traffic(&self) -> gpu_types::TrafficBytes {
        self.traffic
    }

    /// Number of accesses that crossed partitions.
    pub fn cross_partition_accesses(&self) -> u64 {
        self.cross_partition_accesses
    }

    /// Completed DRAM requests across all partitions and classes.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// One partition's channel (for utilization queries).
    pub fn partition(&self, id: PartitionId) -> &DramPartition {
        &self.partitions[id.index()]
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total bytes moved, all classes.
    pub fn total_bytes(&self) -> u64 {
        self.traffic.data_bytes() + self.traffic.metadata_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_types::GpuConfig;

    #[test]
    fn local_access_records_traffic() {
        let mut f = DramFabric::new(&GpuConfig::default());
        let done = f.access_local(0, PartitionId(0), 0, 32, false, TrafficClass::Data);
        assert!(done > 0);
        assert_eq!(f.traffic().data_bytes(), 32);
    }

    #[test]
    fn phys_access_routes_to_owner() {
        // Physical address 256 belongs to partition 1; compare the same
        // access issued locally vs across the crossbar on fresh fabrics.
        let mut f_same = DramFabric::new(&GpuConfig::default());
        let mut f_cross = DramFabric::new(&GpuConfig::default());
        let t_same = f_same.access_phys(
            0,
            PartitionId(1),
            PhysAddr::new(256),
            32,
            false,
            TrafficClass::Counter,
        );
        let t_cross = f_cross.access_phys(
            0,
            PartitionId(0),
            PhysAddr::new(256),
            32,
            false,
            TrafficClass::Counter,
        );
        assert!(t_cross > t_same, "crossbar latency missing");
        assert_eq!(f_same.cross_partition_accesses(), 0);
        assert_eq!(f_cross.cross_partition_accesses(), 1);
        assert_eq!(f_cross.traffic().class_total(TrafficClass::Counter), 32);
    }

    #[test]
    fn partitions_are_independent_channels() {
        let mut f = DramFabric::new(&GpuConfig::default());
        // Saturate partition 0; partition 1 must remain fast.
        for i in 0..100 {
            f.access_local(0, PartitionId(0), i * 32, 32, false, TrafficClass::Data);
        }
        let busy = f.access_local(0, PartitionId(0), 4000, 32, false, TrafficClass::Data);
        let idle = f.access_local(0, PartitionId(1), 4000, 32, false, TrafficClass::Data);
        assert!(idle < busy);
    }
}
