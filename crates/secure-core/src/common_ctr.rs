//! Common-value counter compression (Na et al., HPCA 2021).
//!
//! GPU kernels tend to write whole buffers uniformly: after a kernel, every
//! block of an output buffer has been written the same number of times, so
//! a single on-chip "common counter" value can stand in for all of the
//! per-block counters.  Reads of blocks whose counter equals the common
//! value need no counter fetch and no BMT walk; blocks that have diverged
//! (written this epoch but not yet recompressed) fall back to per-block
//! counters.
//!
//! The model tracks, per 4 KB page, which blocks have been written since the
//! page was last uniform.  When every block of the page has been written
//! exactly once more, the page recompresses (divergence map clears, common
//! value advances).  This captures the HPCA'21 behaviour that matters for
//! bandwidth: streaming writes stay compressed, random/partial writes decay
//! to per-block counter traffic.

use gpu_types::{FxHashMap, FxHashSet, CHUNK_BYTES, SECTOR_BYTES};

/// Sectors per 4 KB page (the sweep-bitmap width).
const SECTORS_PER_PAGE: u64 = CHUNK_BYTES / SECTOR_BYTES;

/// Per-page compression state.
#[derive(Clone, Debug, Default)]
struct PageState {
    /// Common counter value the page's blocks share when uniform.
    common: u64,
    /// Bitmask of sectors written once this epoch (tracked on chip; their
    /// counter is derivable as `common + 1`, so no memory traffic needed).
    swept: u128,
}

/// Pages of sweep state the on-chip table can track per partition.
///
/// The HPCA'21 design keeps compressed counters on chip; the structure is
/// finite, so only this many pages can be mid-sweep at once.  A page whose
/// state is displaced loses its sweep progress and spills to per-block
/// counters (never-written pages stay compressed at zero for free — their
/// state is implicit).
pub const DEFAULT_TABLE_PAGES: usize = 512;

/// The on-chip common-counter table for one partition.
#[derive(Clone, Debug)]
pub struct CommonCounterTable {
    pages: FxHashMap<u64, PageState>,
    /// Pages spilled to per-block counters (kept separately so displacing
    /// sweep state never forgets a spill).
    spilled: FxHashSet<u64>,
    /// FIFO of pages holding sweep state, for capacity eviction.
    resident: std::collections::VecDeque<u64>,
    capacity: usize,
    compressed_reads: u64,
    diverged_reads: u64,
}

impl Default for CommonCounterTable {
    fn default() -> Self {
        Self::new()
    }
}

impl CommonCounterTable {
    /// An empty table: every page starts uniform at counter 0 (the
    /// copy-then-execute initial state).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TABLE_PAGES)
    }

    /// A table tracking at most `capacity` mid-sweep pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "table needs at least one entry");
        Self {
            pages: FxHashMap::default(),
            spilled: FxHashSet::default(),
            resident: std::collections::VecDeque::new(),
            capacity,
            compressed_reads: 0,
            diverged_reads: 0,
        }
    }

    fn page_and_sector(offset: u64) -> (u64, u32) {
        (
            offset / CHUNK_BYTES,
            ((offset % CHUNK_BYTES) / SECTOR_BYTES) as u32,
        )
    }

    /// Whether a read of the block at `offset` can use the on-chip common
    /// value (no counter fetch, no BMT walk).
    ///
    /// Mid-sweep blocks are still compressed: their counter is derivable as
    /// `common + 1` from the on-chip bitmap.  Only spilled pages need
    /// per-block counter fetches.
    pub fn read_is_compressed(&mut self, offset: u64) -> bool {
        let (page, _) = Self::page_and_sector(offset);
        let compressed = !self.spilled.contains(&page);
        if compressed {
            self.compressed_reads += 1;
        } else {
            self.diverged_reads += 1;
        }
        compressed
    }

    /// Records a write to the block at `offset`.  Returns `true` if the page
    /// has *spilled* to per-block counters (counter traffic required), or
    /// `false` while the write pattern remains a uniform sweep handled
    /// entirely on chip.
    pub fn record_write(&mut self, offset: u64) -> bool {
        let (page, sector) = Self::page_and_sector(offset);
        if self.spilled.contains(&page) {
            return true;
        }
        if !self.pages.contains_key(&page) {
            // Allocate sweep state; displace the oldest mid-sweep page if
            // the on-chip structure is full (its progress is lost, so it
            // must fall back to per-block counters).
            if self.pages.len() >= self.capacity {
                if let Some(old) = self.resident.pop_front() {
                    if let Some(st) = self.pages.remove(&old) {
                        if st.swept != 0 {
                            self.spilled.insert(old);
                        }
                    }
                }
            }
            self.pages.insert(page, PageState::default());
            self.resident.push_back(page);
        }
        let st = self.pages.get_mut(&page).expect("just inserted");
        let bit = 1u128 << sector;
        if st.swept & bit != 0 {
            // Written twice before the sweep completed: not uniform.
            self.pages.remove(&page);
            self.resident.retain(|&p| p != page);
            self.spilled.insert(page);
            return true;
        }
        st.swept |= bit;
        let full: u128 = if SECTORS_PER_PAGE >= 128 {
            u128::MAX
        } else {
            (1u128 << SECTORS_PER_PAGE) - 1
        };
        if st.swept == full {
            // The whole page has been swept exactly once: recompress and
            // free the tracking entry.
            st.common += 1;
            st.swept = 0;
            self.pages.remove(&page);
            self.resident.retain(|&p| p != page);
        }
        false
    }

    /// Fraction of reads served from the compressed (on-chip) state.
    pub fn compression_rate(&self) -> f64 {
        let total = self.compressed_reads + self.diverged_reads;
        if total == 0 {
            0.0
        } else {
            self.compressed_reads as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_pages_are_compressed() {
        let mut t = CommonCounterTable::new();
        assert!(t.read_is_compressed(0));
        assert!(t.read_is_compressed(123 * 4096 + 128));
    }

    #[test]
    fn uniform_sweep_needs_no_counter_traffic() {
        let mut t = CommonCounterTable::new();
        for b in 0..32u64 {
            assert!(!t.record_write(b * 128), "sweep write {b} spilled");
        }
        for b in 0..32u64 {
            assert!(t.read_is_compressed(b * 128), "block {b} not recompressed");
        }
    }

    #[test]
    fn double_write_spills_the_page() {
        let mut t = CommonCounterTable::new();
        assert!(!t.record_write(0));
        assert!(t.record_write(0), "second write should spill");
        assert!(!t.read_is_compressed(0), "spilled page read as compressed");
        assert!(!t.read_is_compressed(128), "whole page spills together");
        assert!(t.read_is_compressed(4096), "other pages unaffected");
    }

    #[test]
    fn spilled_pages_stay_spilled() {
        let mut t = CommonCounterTable::new();
        t.record_write(0);
        t.record_write(0); // spill
        for b in 0..32u64 {
            assert!(
                t.record_write(b * 128),
                "spilled page write compressed again"
            );
        }
    }

    #[test]
    fn capacity_displacement_spills_mid_sweep_pages() {
        let mut t = CommonCounterTable::with_capacity(2);
        // Start sweeps on three pages; the first one's state is displaced.
        t.record_write(0);
        t.record_write(4096);
        t.record_write(2 * 4096);
        assert!(
            !t.read_is_compressed(0),
            "displaced mid-sweep page kept compressed"
        );
        assert!(t.read_is_compressed(4096));
        assert!(t.read_is_compressed(2 * 4096));
    }

    #[test]
    fn completed_sweeps_free_table_entries() {
        let mut t = CommonCounterTable::with_capacity(1);
        // Sweep page 0 fully: its entry frees, so page 1 can sweep without
        // displacing anything.
        for s in 0..128u64 {
            assert!(!t.record_write(s * 32));
        }
        assert!(!t.record_write(4096), "freed capacity not reusable");
        assert!(t.read_is_compressed(0), "completed sweep lost compression");
    }

    #[test]
    fn compression_rate_tracks_reads() {
        let mut t = CommonCounterTable::new();
        t.record_write(0);
        t.record_write(0); // spill page 0
        t.read_is_compressed(0); // diverged
        t.read_is_compressed(4096); // compressed
        assert!((t.compression_rate() - 0.5).abs() < 1e-12);
    }
}
