//! Set-sampling miss-rate monitor.
//!
//! Section IV-D enables the L2-as-victim-cache mechanism only when the
//! *regular data* miss rate is very high (e.g. >90%).  To measure that rate
//! accurately while metadata victims share the L2, a small portion of the
//! sets is reserved so only regular data accesses index them (the set
//! sampling idea of utility-based cache partitioning).  This monitor tracks
//! hits and misses for accesses that map to the sampled sets.

/// A set-sampling miss-rate monitor over a cache with `num_sets` sets.
#[derive(Clone, Debug)]
pub struct MissSampler {
    sample_stride: u64,
    hits: u64,
    misses: u64,
}

impl MissSampler {
    /// Samples one in every `sample_stride` sets.
    ///
    /// # Panics
    ///
    /// Panics if `sample_stride` is zero.
    pub fn new(sample_stride: u64) -> Self {
        assert!(sample_stride > 0);
        Self {
            sample_stride,
            hits: 0,
            misses: 0,
        }
    }

    /// Whether `set_index` belongs to the sampled subset.
    pub fn is_sampled(&self, set_index: u64) -> bool {
        set_index.is_multiple_of(self.sample_stride)
    }

    /// Records a data access that mapped to a sampled set.
    pub fn record(&mut self, set_index: u64, hit: bool) {
        if self.is_sampled(set_index) {
            if hit {
                self.hits += 1;
            } else {
                self.misses += 1;
            }
        }
    }

    /// Sampled accesses observed so far.
    pub fn samples(&self) -> u64 {
        self.hits + self.misses
    }

    /// Sampled miss rate, or `None` with fewer than `min_samples`
    /// observations.
    pub fn miss_rate(&self, min_samples: u64) -> Option<f64> {
        let n = self.samples();
        if n < min_samples {
            None
        } else {
            Some(self.misses as f64 / n as f64)
        }
    }

    /// Resets the counters (the paper resets after each kernel).
    pub fn reset(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_sampled_sets_count() {
        let mut s = MissSampler::new(4);
        s.record(0, false); // sampled
        s.record(1, false); // not sampled
        s.record(4, true); // sampled
        assert_eq!(s.samples(), 2);
        assert_eq!(s.miss_rate(1), Some(0.5));
    }

    #[test]
    fn min_samples_gate() {
        let mut s = MissSampler::new(1);
        s.record(0, false);
        assert_eq!(s.miss_rate(2), None);
        s.record(0, false);
        assert_eq!(s.miss_rate(2), Some(1.0));
    }

    #[test]
    fn reset_clears() {
        let mut s = MissSampler::new(1);
        s.record(0, false);
        s.reset();
        assert_eq!(s.samples(), 0);
    }

    #[test]
    fn high_miss_rate_detection() {
        let mut s = MissSampler::new(1);
        for i in 0..100 {
            s.record(0, i % 20 == 0); // 5% hits
        }
        let rate = s.miss_rate(50).expect("enough samples");
        assert!(rate > 0.9, "rate={rate}");
    }
}
