//! A set-associative, sectored, write-back cache with LRU replacement.

/// Outcome of a cache lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Lookup {
    /// The line is present and every requested sector is valid.
    Hit,
    /// The line is present but at least one requested sector is invalid
    /// (a "sector miss": only the missing sectors must be fetched).
    SectorMiss {
        /// Mask of requested sectors that are missing.
        missing: u8,
    },
    /// The line is not present at all.
    LineMiss,
}

/// A line evicted by a fill.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Eviction {
    /// Line-aligned address of the evicted line.
    pub addr: u64,
    /// Mask of sectors that were dirty and must be written back.
    pub dirty_sectors: u8,
    /// Mask of sectors that were valid (used by victim caching).
    pub valid_sectors: u8,
    /// Lookup hits the line served while resident — its hotness at eviction
    /// time (victim-policy telemetry).
    pub uses: u64,
}

impl Eviction {
    /// Whether the eviction produces any write-back traffic.
    pub fn is_dirty(&self) -> bool {
        self.dirty_sectors != 0
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    tag: u64,
    valid_sectors: u8,
    dirty_sectors: u8,
    lru: u64,
    uses: u64,
}

impl Way {
    fn is_valid(&self) -> bool {
        self.valid_sectors != 0
    }
}

/// A set-associative cache whose lines are divided into sectors that are
/// valid and dirty independently.
///
/// Addresses are raw `u64` byte addresses; the caller chooses the address
/// space (physical for the L2, metadata-local for the MDCs).  With
/// `sectors_per_line == 1` this degrades to a conventional non-sectored
/// cache.
#[derive(Clone, Debug)]
pub struct SectoredCache {
    sets: Vec<Vec<Way>>,
    num_sets: u64,
    line_bytes: u64,
    sectors_per_line: u32,
    sector_bytes: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SectoredCache {
    /// Creates a cache of `capacity_bytes` with `line_bytes` lines,
    /// `assoc`-way associativity and `sectors_per_line` sectors.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// whole sets, or non-power-of-two line size).
    pub fn new(capacity_bytes: u64, line_bytes: u64, assoc: u32, sectors_per_line: u32) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            (1..=8).contains(&sectors_per_line),
            "1..=8 sectors supported"
        );
        assert!(line_bytes.is_multiple_of(sectors_per_line as u64));
        let lines = capacity_bytes / line_bytes;
        assert!(
            lines >= assoc as u64,
            "capacity too small for associativity"
        );
        let num_sets = lines / assoc as u64;
        assert!(
            num_sets.is_power_of_two(),
            "number of sets must be a power of two"
        );
        Self {
            sets: vec![vec![Way::default(); assoc as usize]; num_sets as usize],
            num_sets,
            line_bytes,
            sectors_per_line,
            sector_bytes: line_bytes / sectors_per_line as u64,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Invalidates every line and zeroes the counters, keeping the allocated
    /// set storage so a pooled cache can be reused without reallocating.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            for way in set.iter_mut() {
                *way = Way::default();
            }
        }
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
    }

    /// Line-aligned address for `addr`.
    pub fn line_base(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }

    /// Sector index of `addr` within its line.
    pub fn sector_of(&self, addr: u64) -> u32 {
        ((addr % self.line_bytes) / self.sector_bytes) as u32
    }

    /// Single-sector mask for `addr`.
    pub fn sector_mask_of(&self, addr: u64) -> u8 {
        1u8 << self.sector_of(addr)
    }

    /// Mask covering every sector of a line.
    pub fn full_mask(&self) -> u8 {
        if self.sectors_per_line == 8 {
            0xFF
        } else {
            (1u8 << self.sectors_per_line) - 1
        }
    }

    /// Bytes per sector.
    pub fn sector_bytes(&self) -> u64 {
        self.sector_bytes
    }

    /// Bytes per line.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.num_sets
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count (line + sector misses).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resets hit/miss counters (e.g. between kernels).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    fn set_of(&self, line: u64) -> usize {
        ((line / self.line_bytes) % self.num_sets) as usize
    }

    /// Set index a raw address maps to (used by set-sampling monitors).
    pub fn set_index(&self, addr: u64) -> u64 {
        (self.line_base(addr) / self.line_bytes) % self.num_sets
    }

    /// Looks up `sectors` of the line containing `addr`, updating LRU and
    /// hit/miss counters.
    pub fn lookup(&mut self, addr: u64, sectors: u8) -> Lookup {
        let line = self.line_base(addr);
        let set = self.set_of(line);
        self.tick += 1;
        let tick = self.tick;
        for way in &mut self.sets[set] {
            if way.is_valid() && way.tag == line {
                way.lru = tick;
                let missing = sectors & !way.valid_sectors;
                return if missing == 0 {
                    self.hits += 1;
                    way.uses += 1;
                    Lookup::Hit
                } else {
                    self.misses += 1;
                    Lookup::SectorMiss { missing }
                };
            }
        }
        self.misses += 1;
        Lookup::LineMiss
    }

    /// Non-destructive probe: whether `sectors` of the line are all valid.
    pub fn probe(&self, addr: u64, sectors: u8) -> bool {
        let line = self.line_base(addr);
        let set = self.set_of(line);
        self.sets[set]
            .iter()
            .any(|w| w.is_valid() && w.tag == line && sectors & !w.valid_sectors == 0)
    }

    /// Fills `sectors` of the line containing `addr`, allocating a way if
    /// needed.  Returns the eviction this causes, if any.
    pub fn fill(&mut self, addr: u64, sectors: u8) -> Option<Eviction> {
        let line = self.line_base(addr);
        let set = self.set_of(line);
        self.tick += 1;
        let tick = self.tick;

        // Already present: merge sectors.
        if let Some(way) = self.sets[set]
            .iter_mut()
            .find(|w| w.is_valid() && w.tag == line)
        {
            way.valid_sectors |= sectors;
            way.lru = tick;
            return None;
        }

        // Free way?
        if let Some(way) = self.sets[set].iter_mut().find(|w| !w.is_valid()) {
            *way = Way {
                tag: line,
                valid_sectors: sectors,
                dirty_sectors: 0,
                lru: tick,
                uses: 0,
            };
            return None;
        }

        // Evict LRU.
        let victim_idx = self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.lru)
            .map(|(i, _)| i)
            .expect("set is non-empty");
        let victim = self.sets[set][victim_idx];
        self.sets[set][victim_idx] = Way {
            tag: line,
            valid_sectors: sectors,
            dirty_sectors: 0,
            lru: tick,
            uses: 0,
        };
        Some(Eviction {
            addr: victim.tag,
            dirty_sectors: victim.dirty_sectors,
            valid_sectors: victim.valid_sectors,
            uses: victim.uses,
        })
    }

    /// Marks `sectors` of the (present) line dirty.
    ///
    /// Returns `false` if the line is absent — the caller must `fill` first
    /// (write-allocate).
    pub fn mark_dirty(&mut self, addr: u64, sectors: u8) -> bool {
        let line = self.line_base(addr);
        let set = self.set_of(line);
        if let Some(way) = self.sets[set]
            .iter_mut()
            .find(|w| w.is_valid() && w.tag == line)
        {
            way.valid_sectors |= sectors;
            way.dirty_sectors |= sectors;
            true
        } else {
            false
        }
    }

    /// Clears the dirty bits of `sectors` of the line, if present.
    ///
    /// The SHM dual-granularity MAC controller marks freshly produced
    /// block-level MACs of a streaming chunk "not dirty" so they never
    /// generate write-back traffic (Section IV-C).
    pub fn clear_dirty(&mut self, addr: u64, sectors: u8) {
        let line = self.line_base(addr);
        let set = self.set_of(line);
        if let Some(way) = self.sets[set]
            .iter_mut()
            .find(|w| w.is_valid() && w.tag == line)
        {
            way.dirty_sectors &= !sectors;
        }
    }

    /// Invalidates a line, returning its eviction record if it was present.
    pub fn invalidate(&mut self, addr: u64) -> Option<Eviction> {
        let line = self.line_base(addr);
        let set = self.set_of(line);
        if let Some(way) = self.sets[set]
            .iter_mut()
            .find(|w| w.is_valid() && w.tag == line)
        {
            let ev = Eviction {
                addr: way.tag,
                dirty_sectors: way.dirty_sectors,
                valid_sectors: way.valid_sectors,
                uses: way.uses,
            };
            *way = Way::default();
            Some(ev)
        } else {
            None
        }
    }

    /// Drains every valid line (end-of-kernel flush), returning evictions.
    pub fn flush(&mut self) -> Vec<Eviction> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for way in set.iter_mut() {
                if way.is_valid() {
                    out.push(Eviction {
                        addr: way.tag,
                        dirty_sectors: way.dirty_sectors,
                        valid_sectors: way.valid_sectors,
                        uses: way.uses,
                    });
                    *way = Way::default();
                }
            }
        }
        out
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|w| w.is_valid()).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> SectoredCache {
        // 2 sets x 2 ways x 128 B lines, 4 sectors.
        SectoredCache::new(512, 128, 2, 4)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert_eq!(c.lookup(0x100, 0b0001), Lookup::LineMiss);
        assert_eq!(c.fill(0x100, 0b0001), None);
        assert_eq!(c.lookup(0x100, 0b0001), Lookup::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn sector_miss_reports_missing_mask() {
        let mut c = small();
        c.fill(0x100, 0b0001);
        match c.lookup(0x100, 0b0111) {
            Lookup::SectorMiss { missing } => assert_eq!(missing, 0b0110),
            other => panic!("expected sector miss, got {other:?}"),
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set 0 holds lines 0x000 and 0x400 (2 sets of 128 B lines: set = (addr/128)%2).
        c.fill(0x000, 0b1111);
        c.fill(0x400, 0b1111);
        // Touch 0x000 so 0x400 becomes LRU.
        assert_eq!(c.lookup(0x000, 0b0001), Lookup::Hit);
        let ev = c.fill(0x800, 0b1111).expect("eviction expected");
        assert_eq!(ev.addr, 0x400);
    }

    #[test]
    fn dirty_eviction_reports_dirty_sectors() {
        let mut c = small();
        c.fill(0x000, 0b1111);
        assert!(c.mark_dirty(0x020, 0b0010));
        c.fill(0x400, 0b1111);
        let ev = c.fill(0x800, 0b1111).expect("eviction");
        assert_eq!(ev.addr, 0x000);
        assert_eq!(ev.dirty_sectors, 0b0010);
        assert!(ev.is_dirty());
    }

    #[test]
    fn clear_dirty_suppresses_writeback() {
        let mut c = small();
        c.fill(0x000, 0b1111);
        c.mark_dirty(0x000, 0b1111);
        c.clear_dirty(0x000, 0b1111);
        c.fill(0x400, 0b1111);
        let ev = c.fill(0x800, 0b1111).expect("eviction");
        assert!(!ev.is_dirty());
    }

    #[test]
    fn eviction_carries_hotness() {
        let mut c = small();
        c.fill(0x000, 0b1111);
        for _ in 0..5 {
            assert_eq!(c.lookup(0x000, 0b0001), Lookup::Hit);
        }
        c.fill(0x400, 0b1111);
        // Touch 0x000 again so 0x400 (never hit) becomes LRU.
        assert_eq!(c.lookup(0x000, 0b0001), Lookup::Hit);
        let ev = c.fill(0x800, 0b1111).expect("eviction");
        assert_eq!(ev.addr, 0x400);
        assert_eq!(ev.uses, 0, "never-hit line evicts with zero hotness");
        let ev = c.fill(0xC00, 0b1111).expect("eviction");
        assert_eq!(ev.addr, 0x000);
        assert_eq!(ev.uses, 6, "hotness counts lookup hits while resident");
    }

    #[test]
    fn mark_dirty_requires_presence() {
        let mut c = small();
        assert!(!c.mark_dirty(0x100, 0b0001));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.fill(0x100, 0b1111);
        c.mark_dirty(0x100, 0b0001);
        let ev = c.invalidate(0x100).expect("was present");
        assert_eq!(ev.dirty_sectors, 0b0001);
        assert_eq!(c.lookup(0x100, 0b0001), Lookup::LineMiss);
        assert!(c.invalidate(0x100).is_none());
    }

    #[test]
    fn flush_returns_all_lines() {
        let mut c = small();
        c.fill(0x000, 0b1111);
        c.fill(0x080, 0b0001);
        c.fill(0x100, 0b0011);
        let evs = c.flush();
        assert_eq!(evs.len(), 3);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn fill_merges_sectors() {
        let mut c = small();
        c.fill(0x100, 0b0001);
        assert_eq!(c.fill(0x120, 0b0010), None);
        assert_eq!(c.lookup(0x100, 0b0011), Lookup::Hit);
    }

    #[test]
    fn non_sectored_mode() {
        let mut c = SectoredCache::new(512, 128, 2, 1);
        assert_eq!(c.full_mask(), 0b1);
        c.fill(0x100, 0b1);
        assert_eq!(c.lookup(0x17F, 0b1), Lookup::Hit, "whole line valid");
    }

    #[test]
    fn mdc_geometry_from_table_vi() {
        // 2 KB, 128 B lines, 4-way: 4 sets.
        let c = SectoredCache::new(2048, 128, 4, 4);
        assert_eq!(c.num_sets(), 4);
    }

    proptest! {
        #[test]
        fn prop_occupancy_bounded(addrs in proptest::collection::vec(0u64..1 << 16, 1..200)) {
            let mut c = SectoredCache::new(2048, 128, 4, 4);
            for a in addrs {
                c.fill(a, 0b1111);
                prop_assert!(c.occupancy() <= 16);
            }
        }

        #[test]
        fn prop_probe_after_fill(addr in 0u64..1 << 20, sectors in 1u8..16) {
            let mut c = SectoredCache::new(2048, 128, 4, 4);
            c.fill(addr, sectors);
            prop_assert!(c.probe(addr, sectors));
        }

        #[test]
        fn prop_evictions_never_exceed_fills(addrs in proptest::collection::vec(0u64..1 << 14, 1..300)) {
            let mut c = SectoredCache::new(1024, 128, 2, 4);
            let mut evictions = 0usize;
            for a in &addrs {
                if c.fill(*a, 0b1111).is_some() {
                    evictions += 1;
                }
            }
            prop_assert!(evictions <= addrs.len());
        }
    }
}
