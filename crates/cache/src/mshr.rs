//! Miss-status holding registers (MSHRs) with request merging.

use gpu_types::FxHashMap;

/// Result of attempting to allocate an MSHR for a missing line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MshrAllocation {
    /// A new entry was allocated — the miss must be sent to the next level.
    NewMiss,
    /// The line already has an outstanding miss — this request merged.
    Merged,
    /// The entry exists but cannot merge more requests (per-entry limit).
    EntryFull,
    /// The MSHR table is full — the request must stall.
    TableFull,
}

impl MshrAllocation {
    /// Whether the request was accepted (either started or merged).
    pub fn accepted(self) -> bool {
        matches!(self, MshrAllocation::NewMiss | MshrAllocation::Merged)
    }
}

/// An MSHR table tracking outstanding misses per line address.
#[derive(Clone, Debug)]
pub struct Mshr {
    entries: FxHashMap<u64, u32>,
    max_entries: usize,
    max_merges: u32,
}

impl Mshr {
    /// Creates a table with `max_entries` entries each merging up to
    /// `max_merges` requests.
    ///
    /// # Panics
    ///
    /// Panics if either limit is zero.
    pub fn new(max_entries: usize, max_merges: u32) -> Self {
        assert!(max_entries > 0 && max_merges > 0);
        Self {
            entries: FxHashMap::default(),
            max_entries,
            max_merges,
        }
    }

    /// Attempts to register a miss on `line`.
    pub fn allocate(&mut self, line: u64) -> MshrAllocation {
        if let Some(count) = self.entries.get_mut(&line) {
            if *count >= self.max_merges {
                MshrAllocation::EntryFull
            } else {
                *count += 1;
                MshrAllocation::Merged
            }
        } else if self.entries.len() >= self.max_entries {
            MshrAllocation::TableFull
        } else {
            self.entries.insert(line, 1);
            MshrAllocation::NewMiss
        }
    }

    /// Drops every outstanding entry (pooled-reuse reset).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Completes the outstanding miss on `line`, returning how many requests
    /// had merged into it (0 if the line had no entry).
    pub fn complete(&mut self, line: u64) -> u32 {
        self.entries.remove(&line).unwrap_or(0)
    }

    /// Whether `line` has an outstanding miss.
    pub fn is_pending(&self, line: u64) -> bool {
        self.entries.contains_key(&line)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no outstanding misses.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the table is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.max_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_merge() {
        let mut m = Mshr::new(2, 3);
        assert_eq!(m.allocate(0x100), MshrAllocation::NewMiss);
        assert_eq!(m.allocate(0x100), MshrAllocation::Merged);
        assert_eq!(m.allocate(0x100), MshrAllocation::Merged);
        assert_eq!(m.allocate(0x100), MshrAllocation::EntryFull);
        assert!(m.is_pending(0x100));
    }

    #[test]
    fn table_fills_up() {
        let mut m = Mshr::new(2, 16);
        assert_eq!(m.allocate(1), MshrAllocation::NewMiss);
        assert_eq!(m.allocate(2), MshrAllocation::NewMiss);
        assert_eq!(m.allocate(3), MshrAllocation::TableFull);
        assert!(m.is_full());
    }

    #[test]
    fn complete_frees_entry() {
        let mut m = Mshr::new(1, 16);
        m.allocate(7);
        m.allocate(7);
        assert_eq!(m.complete(7), 2);
        assert!(m.is_empty());
        assert_eq!(m.allocate(8), MshrAllocation::NewMiss);
    }

    #[test]
    fn complete_unknown_line_is_zero() {
        let mut m = Mshr::new(1, 1);
        assert_eq!(m.complete(99), 0);
    }

    #[test]
    fn accepted_helper() {
        assert!(MshrAllocation::NewMiss.accepted());
        assert!(MshrAllocation::Merged.accepted());
        assert!(!MshrAllocation::EntryFull.accepted());
        assert!(!MshrAllocation::TableFull.accepted());
    }
}
