//! Cache models for the SHM secure-GPU-memory simulator.
//!
//! Provides the building blocks shared by the L2 data cache and the three
//! security-metadata caches (counter / MAC / BMT):
//!
//! * [`SectoredCache`] — a set-associative, LRU, write-back cache whose
//!   lines are split into independently-valid sectors (GPGPU-Sim style).
//! * [`Mshr`] — miss-status holding registers with request merging.
//! * [`MissSampler`] — a set-sampling miss-rate monitor used to decide when
//!   to enable the L2-as-victim-cache mechanism (Section IV-D).
//!
//! Caches here are purely functional state machines: they track tags,
//! valid/dirty sectors and replacement state, while all timing lives in the
//! simulator crate.
//!
//! ```
//! use shm_cache::{SectoredCache, Lookup};
//!
//! let mut c = SectoredCache::new(2 * 1024, 128, 4, 4);
//! assert_eq!(c.lookup(0x80, 0b0001), Lookup::LineMiss);
//! c.fill(0x80, 0b0001);
//! assert_eq!(c.lookup(0x80, 0b0001), Lookup::Hit);
//! ```

pub mod mshr;
pub mod sampler;
pub mod sectored;

pub use mshr::{Mshr, MshrAllocation};
pub use sampler::MissSampler;
pub use sectored::{Eviction, Lookup, SectoredCache};
