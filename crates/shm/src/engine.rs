//! The SHM secure-memory system (Section IV).
//!
//! One per-partition state block composes the PSSM-style
//! partition-local MEE core from `secure-core` with the paper's adaptive
//! mechanisms:
//!
//! * reads/writes in predicted-read-only regions use the on-chip shared
//!   counter — no counter fetch, no BMT walk;
//! * a write into a read-only region transitions it (Fig. 8): counters
//!   propagate from the shared counter directly in the counter cache and
//!   the BMT grows to cover them;
//! * predicted-streaming chunks are authenticated with 8 B chunk-level MACs;
//!   predicted-random chunks with 8 B per-block MACs;
//! * tracker verdicts that contradict the prediction trigger the bandwidth
//!   fix-ups of Tables III and IV (charged as
//!   [`TrafficClass::MispredictFixup`]);
//! * optionally, the L2 serves as a victim cache for evicted metadata lines
//!   (enabled when the sampled L2 data miss rate exceeds the threshold).

use gpu_types::{
    GpuConfig, LocalAddr, PartitionId, PhysAddr, ShmConfig, SimStats, TrafficClass, BLOCK_BYTES,
};
use secure_core::mdc::NoVictim;
use secure_core::{Addressing, CommonCounterTable, DramFabric, MeeCore, MemRequest, VictimStore};
use shm_metadata::SharedCounter;
use shm_telemetry::{Event, Probe};

use crate::oracle::OracleProfile;
use crate::readonly::ReadOnlyPredictor;
use crate::streaming::{AccessTrackers, Detection, StreamingPredictor};
use crate::variant::ShmVariant;

/// Per-partition SHM state.
#[derive(Debug)]
struct PartitionShm {
    mee: MeeCore,
    readonly: ReadOnlyPredictor,
    streaming: StreamingPredictor,
    trackers: AccessTrackers,
    shared: SharedCounter,
    common: CommonCounterTable,
    /// Victim caching currently engaged (driven by sampled L2 miss rate).
    victim_engaged: bool,
}

/// The whole-GPU SHM secure-memory system.
#[derive(Debug)]
pub struct ShmSystem {
    variant: ShmVariant,
    shm_cfg: ShmConfig,
    partitions: Vec<PartitionShm>,
    oracle: Option<OracleProfile>,
    probe: Probe,
}

impl ShmSystem {
    /// Builds the system for `variant` over `cfg`'s geometry.
    ///
    /// `oracle` supplies ground truth: required for
    /// [`ShmVariant::UpperBound`], and used by every variant to break down
    /// predictor accuracy (Figs. 10/11).
    ///
    /// # Panics
    ///
    /// Panics if `variant` is `UpperBound` and no oracle is given.
    pub fn new(
        variant: ShmVariant,
        cfg: &GpuConfig,
        shm_cfg: ShmConfig,
        oracle: Option<OracleProfile>,
    ) -> Self {
        assert!(
            !variant.oracle() || oracle.is_some(),
            "SHM_upper_bound requires an oracle profile"
        );
        let span = cfg.protected_bytes_per_partition();
        // The dual-granularity MAC layout must agree with the streaming
        // detector's chunk size.
        let mdc = gpu_types::MdcConfig {
            chunk_bytes: shm_cfg.chunk_bytes,
            ..cfg.mdc.clone()
        };
        let partitions = (0..cfg.num_partitions)
            .map(|p| PartitionShm {
                mee: MeeCore::new(PartitionId(p), span, Addressing::Local, &mdc),
                readonly: ReadOnlyPredictor::new(
                    shm_cfg.readonly_predictor_entries,
                    shm_cfg.readonly_region_bytes,
                ),
                streaming: StreamingPredictor::new(
                    shm_cfg.streaming_predictor_entries,
                    shm_cfg.chunk_bytes,
                ),
                trackers: AccessTrackers::with_chunk_bytes(
                    shm_cfg.num_trackers,
                    shm_cfg.tracker_phase_accesses,
                    shm_cfg.tracker_timeout_cycles,
                    shm_cfg.chunk_bytes,
                ),
                shared: SharedCounter::new(),
                common: CommonCounterTable::new(),
                victim_engaged: false,
            })
            .collect();
        Self {
            variant,
            shm_cfg,
            partitions,
            oracle,
            probe: Probe::disabled(),
        }
    }

    /// The variant this system implements.
    pub fn variant(&self) -> ShmVariant {
        self.variant
    }

    /// Attaches a telemetry probe to the engine and every partition MEE;
    /// detector transitions and misprediction fix-ups are reported here,
    /// metadata-cache activity in the MEE cores.
    pub fn set_probe(&mut self, probe: &Probe) {
        self.probe = probe.clone();
        for p in &mut self.partitions {
            p.mee.set_probe(probe.clone());
        }
    }

    /// Marks a physical range read-only at context initialisation (host
    /// memory copies and constant/texture allocations).  The range is
    /// translated per partition via `map`.
    pub fn mark_readonly_range(&mut self, map: gpu_types::PartitionMap, start: PhysAddr, len: u64) {
        // Conservatively mark whole covered local regions per partition: a
        // long physical range covers `len / num_partitions` of each
        // partition's local space.
        let mut addr = start.raw();
        let end = start.raw() + len;
        let region = self.shm_cfg.readonly_region_bytes;
        while addr < end {
            let la = map.to_local(PhysAddr::new(addr));
            let p = &mut self.partitions[la.partition.index()];
            p.readonly.mark_readonly(la.offset, 1, la.partition);
            // Stride by one region in the local space = region * partitions
            // in physical space (approximately; re-derive each step).
            addr += region.min(end - addr).min(map.granularity());
        }
    }

    /// Applies the `InputReadOnlyReset(range)` API (Section IV-B): re-marks
    /// the range read-only and advances each partition's shared counter past
    /// the maximum scanned major counter.
    pub fn input_readonly_reset(
        &mut self,
        map: gpu_types::PartitionMap,
        start: PhysAddr,
        len: u64,
    ) {
        let mut addr = start.raw();
        let end = start.raw() + len;
        while addr < end {
            let la = map.to_local(PhysAddr::new(addr));
            let p = &mut self.partitions[la.partition.index()];
            p.readonly.input_readonly_reset(la.offset, 1, la.partition);
            addr += map.granularity();
        }
        for p in &mut self.partitions {
            // The scan returns the max major counter in the range; the
            // performance model tracks no counter *values*, so model the
            // conservative outcome: the register advances.
            p.shared.advance();
        }
    }

    /// Records a host memory copy performed *mid-context*: the overwritten
    /// regions are no longer read-only (their shared-counter ciphertext
    /// would alias), so the predictor bits clear, matching Section IV-B's
    /// "once a region is updated by a store instruction or another CUDA
    /// memory copy API, the bit will be reset".
    pub fn host_memcpy(&mut self, map: gpu_types::PartitionMap, start: PhysAddr, len: u64) {
        let mut addr = start.raw();
        let end = start.raw() + len;
        while addr < end {
            let la = map.to_local(PhysAddr::new(addr));
            let p = &mut self.partitions[la.partition.index()];
            p.readonly.on_write(la);
            addr += map.granularity();
        }
    }

    /// The metadata layout of one partition's MEE (used by the simulator to
    /// classify metadata addresses spilled into the L2 victim cache).
    pub fn layout(&self, partition: PartitionId) -> &shm_metadata::MetadataLayout {
        &self.partitions[partition.index()].mee.layout
    }

    /// Updates the victim-cache engagement decision for one partition from
    /// its sampled L2 data miss rate (Section IV-D).
    pub fn update_victim_policy(&mut self, partition: PartitionId, sampled_miss_rate: Option<f64>) {
        let p = &mut self.partitions[partition.index()];
        if !self.variant.victim_l2() {
            p.victim_engaged = false;
            return;
        }
        if let Some(rate) = sampled_miss_rate {
            p.victim_engaged = rate >= self.shm_cfg.l2_victim_miss_threshold;
        }
    }

    /// Whether victim caching is currently engaged for `partition`.
    pub fn victim_engaged(&self, partition: PartitionId) -> bool {
        self.partitions[partition.index()].victim_engaged
    }

    /// Read-only predictor accuracy, summed over partitions (Fig. 10).
    pub fn readonly_accuracy(&self) -> crate::readonly::RoAccuracy {
        let mut acc = crate::readonly::RoAccuracy::default();
        for p in &self.partitions {
            let a = p.readonly.accuracy();
            acc.correct += a.correct;
            acc.mp_init += a.mp_init;
            acc.mp_aliasing += a.mp_aliasing;
        }
        acc
    }

    /// Streaming predictor accuracy, summed over partitions (Fig. 11).
    pub fn streaming_accuracy(&self) -> crate::streaming::StreamAccuracy {
        let mut acc = crate::streaming::StreamAccuracy::default();
        for p in &self.partitions {
            let a = p.streaming.accuracy();
            acc.correct += a.correct;
            acc.mp_init += a.mp_init;
            acc.mp_runtime_read_only += a.mp_runtime_read_only;
            acc.mp_runtime_non_read_only += a.mp_runtime_non_read_only;
            acc.mp_aliasing += a.mp_aliasing;
        }
        acc
    }

    /// Processes one L2 miss / write-back.  `victim` is the partition's L2
    /// acting as victim store (pass a `NoVictim` if unavailable); it is only
    /// consulted while the victim policy is engaged.
    pub fn process_with_victim(
        &mut self,
        now: u64,
        req: &MemRequest,
        fabric: &mut DramFabric,
        victim: &mut dyn VictimStore,
        stats: &mut SimStats,
    ) -> u64 {
        let pid = req.local.partition;
        let p = &mut self.partitions[pid.index()];

        // --- prediction ------------------------------------------------
        let (mut ro_pred, stream_pred) =
            Self::predictions(self.variant, p, self.oracle.as_ref(), req.local);
        // Constant, texture and instruction memory are architecturally
        // read-only during kernel execution (Table I): the command
        // processor guarantees it, so no predictor is consulted and no
        // transition can occur.
        if req.space.is_architecturally_read_only() {
            ro_pred = true;
        }

        let mut no_victim = NoVictim;
        let victim: &mut dyn VictimStore = if p.victim_engaged {
            victim
        } else {
            &mut no_victim
        };

        // --- the data transfer itself -----------------------------------
        let data_done = fabric.access_local(
            now,
            pid,
            req.local.offset,
            req.bytes,
            req.is_write(),
            TrafficClass::Data,
        );

        let mee = &mut p.mee;
        let done = if req.is_write() {
            // ---------------- write-back path ---------------------------
            if ro_pred {
                // Transition read-only -> not-read-only (Fig. 8): clear the
                // bit and propagate the shared counter into per-block
                // counters directly in the counter cache.
                let transitioned = p.readonly.on_write(req.local);
                if transitioned {
                    stats.readonly_mispredictions += 1;
                    let region_base = req.local.offset & !(self.shm_cfg.readonly_region_bytes - 1);
                    self.probe.emit(
                        now,
                        Event::DetectorTransition {
                            partition: pid.index(),
                            region: region_base / self.shm_cfg.readonly_region_bytes,
                            detector: "readonly",
                        },
                    );
                    mee.propagate_region_counters(
                        now,
                        region_base,
                        self.shm_cfg.readonly_region_bytes,
                        pid,
                        fabric,
                        victim,
                        stats,
                    );
                }
                // From here on this is a normal counter-protected write.
                let needs_counter = if self.variant.common_counters() {
                    p.common.record_write(req.local.offset)
                } else {
                    true
                };
                if needs_counter {
                    mee.update_counter(now, req.local, req.phys, true, fabric, victim, stats);
                }
            } else {
                let needs_counter = if self.variant.common_counters() {
                    p.common.record_write(req.local.offset)
                } else {
                    true
                };
                if needs_counter {
                    mee.update_counter(now, req.local, req.phys, true, fabric, victim, stats);
                }
            }

            // MAC handling (Table IV).
            let truly_streaming = self
                .oracle
                .as_ref()
                .map(|o| o.chunk_streaming(req.local))
                .unwrap_or(true);
            if self.variant.dual_mac() && stream_pred && truly_streaming {
                // Streaming write: block MACs are produced on chip, kept
                // clean; only the chunk-level MAC is persisted.
                mee.produce_block_mac_clean(now, req.local, req.phys, fabric, victim, stats);
                mee.update_chunk_mac(now, req.local, req.phys, fabric, victim, stats);
            } else if self.variant.dual_mac() && stream_pred {
                // Mispredicted-streaming write to a chunk that never fully
                // streams: the chunk-level MAC can never be reproduced from
                // cached block MACs, so the block MAC must be persisted
                // (Table IV's stream→random row).
                stats.stream_mispredictions += 1;
                mee.update_block_mac(now, req.local, req.phys, true, fabric, victim, stats);
            } else {
                mee.update_block_mac(now, req.local, req.phys, true, fabric, victim, stats);
            }
            data_done
        } else {
            // ---------------- read path --------------------------------
            let ctr_ready = if ro_pred {
                // Shared counter: on-chip, no fetch, no BMT walk.
                stats.readonly_fast_path += 1;
                now
            } else if self.variant.common_counters()
                && p.common.read_is_compressed(req.local.offset)
            {
                now
            } else {
                mee.fetch_counter(now, req.local, req.phys, true, fabric, victim, stats)
            };

            // MAC handling (Table III): fetch per prediction; verification
            // is off the critical path.
            if self.variant.dual_mac() && stream_pred {
                mee.fetch_chunk_mac(now, req.local, req.phys, fabric, victim, stats);
                // A chunk that never fully streams can never be verified
                // against its chunk-level MAC (the other block MACs never
                // materialise in the MAC cache): the second-chance check of
                // Section IV-C falls back to the per-block MAC, costing its
                // fetch on every such read.
                let truly_streaming = self
                    .oracle
                    .as_ref()
                    .map(|o| o.chunk_streaming(req.local))
                    .unwrap_or(true);
                if !truly_streaming {
                    mee.fetch_block_mac(now, req.local, req.phys, true, fabric, victim, stats);
                    // The failed second-chance check is itself a pattern
                    // signal: the predictor entry flips to random so the
                    // chunk stops paying the double fetch.
                    if !self.variant.oracle() {
                        stats.stream_mispredictions += 1;
                        p.streaming.update(&Detection {
                            chunk: req.local.chunk(),
                            streaming: false,
                            had_write: false,
                            predicted_streaming: true,
                        });
                    }
                }
            } else {
                mee.fetch_block_mac(now, req.local, req.phys, true, fabric, victim, stats);
            }
            data_done.max(ctr_ready) + mee.aes_latency()
        };

        // --- detection & misprediction fix-ups --------------------------
        if self.variant.dual_mac() && !self.variant.oracle() {
            let mut dets = p.trackers.poll(now);
            if let Some(d) = p
                .trackers
                .observe(now, req.local, req.is_write(), stream_pred)
            {
                dets.push(d);
            }
            let chunk_bytes = self.shm_cfg.chunk_bytes;
            for det in dets {
                Self::apply_detection(
                    &det,
                    p,
                    self.variant,
                    chunk_bytes,
                    now,
                    fabric,
                    stats,
                    &self.probe,
                );
            }
        }

        done
    }

    /// Processes a request without a victim store.
    pub fn process(
        &mut self,
        now: u64,
        req: &MemRequest,
        fabric: &mut DramFabric,
        stats: &mut SimStats,
    ) -> u64 {
        let mut nv = NoVictim;
        self.process_with_victim(now, req, fabric, &mut nv, stats)
    }

    /// Computes the (read-only, streaming) predictions for a request,
    /// accounting accuracy against the oracle when available.
    fn predictions(
        variant: ShmVariant,
        p: &mut PartitionShm,
        oracle: Option<&OracleProfile>,
        la: LocalAddr,
    ) -> (bool, bool) {
        match (variant.oracle(), oracle) {
            (true, Some(o)) => (o.region_read_only(la), o.chunk_streaming(la)),
            (false, Some(o)) => {
                let ro_truth = o.region_read_only(la);
                let st_truth = o.chunk_streaming(la);
                let ro = p.readonly.predict_accounted(la, ro_truth);
                let st = p.streaming.predict_accounted(la, st_truth, ro_truth);
                (ro, st)
            }
            (false, None) => (p.readonly.predict(la), p.streaming.predict(la)),
            (true, None) => unreachable!("checked in constructor"),
        }
    }

    /// Applies a tracker verdict: updates the bit vector and charges the
    /// misprediction bandwidth of Tables III/IV.
    #[allow(clippy::too_many_arguments)]
    fn apply_detection(
        det: &Detection,
        p: &mut PartitionShm,
        variant: ShmVariant,
        chunk_bytes: u64,
        now: u64,
        fabric: &mut DramFabric,
        stats: &mut SimStats,
        probe: &Probe,
    ) {
        let chunk_base = LocalAddr::new(det.chunk.partition, det.chunk.index * chunk_bytes);
        // Compare against the *current* bit-vector prediction: the entry may
        // already have been corrected (e.g. by a failed chunk-MAC check)
        // since the tracker captured its prediction, in which case the
        // fix-up has already been paid.
        let current_pred = p.streaming.predict(chunk_base);
        p.streaming.update(det);
        if det.streaming == current_pred {
            return; // prediction already agrees: zero overhead
        }
        stats.stream_mispredictions += 1;
        probe.emit(
            now,
            Event::DetectorTransition {
                partition: det.chunk.partition.index(),
                region: det.chunk.index,
                detector: "streaming",
            },
        );
        let det = &Detection {
            predicted_streaming: current_pred,
            ..*det
        };
        let region_ro = p.readonly.predict(chunk_base);
        let pid = det.chunk.partition;
        let mut nv = NoVictim;

        match (
            det.predicted_streaming,
            det.streaming,
            region_ro,
            det.had_write,
        ) {
            // Predicted stream, detected random:
            (true, false, _, false) => {
                // No write ever happened under chunk-MAC mode, so the
                // per-block MACs in memory are still current (Table III's
                // read-only row, generalised by the tracker's write flag):
                // re-fetch them to verify the forwarded data.
                let bytes = chunk_bytes / BLOCK_BYTES * gpu_types::MAC_BYTES_PER_BLOCK;
                fabric.access_local(
                    now,
                    pid,
                    p.mee.layout.block_mac_sector(chunk_base.offset),
                    bytes,
                    false,
                    TrafficClass::MispredictFixup,
                );
                probe.emit(
                    now,
                    Event::MispredictFixup {
                        partition: pid.index(),
                        bytes,
                    },
                );
            }
            (true, false, _, _) => {
                // Written while predicted streaming: the in-memory block
                // MACs are stale, so every data block of the chunk must be
                // re-fetched to (re)produce the per-block MACs (Table IV).
                fabric.access_local(
                    now,
                    pid,
                    chunk_base.offset,
                    chunk_bytes,
                    false,
                    TrafficClass::MispredictFixup,
                );
                probe.emit(
                    now,
                    Event::MispredictFixup {
                        partition: pid.index(),
                        bytes: chunk_bytes,
                    },
                );
                // The produced block MACs are installed (clean -> dirty).
                for b in 0..(chunk_bytes / BLOCK_BYTES) {
                    let la = LocalAddr::new(pid, chunk_base.offset + b * BLOCK_BYTES);
                    p.mee.update_block_mac(
                        now,
                        la,
                        PhysAddr::new(la.offset),
                        true,
                        fabric,
                        &mut nv,
                        stats,
                    );
                }
            }
            // Predicted random, detected stream:
            (false, true, true, false) => {
                // Read-only: per-block MACs are always up to date — zero cost.
            }
            (true, true, _, _) | (false, false, _, _) => {
                unreachable!("handled by the early return on correct predictions")
            }
            (false, true, _, _) => {
                // Re-fetch and re-produce the chunk-level MAC.
                fabric.access_local(
                    now,
                    pid,
                    p.mee.layout.chunk_mac_sector(chunk_base.offset),
                    gpu_types::SECTOR_BYTES,
                    false,
                    TrafficClass::MispredictFixup,
                );
                probe.emit(
                    now,
                    Event::MispredictFixup {
                        partition: pid.index(),
                        bytes: gpu_types::SECTOR_BYTES,
                    },
                );
                if variant.dual_mac() {
                    p.mee.update_chunk_mac(
                        now,
                        chunk_base,
                        PhysAddr::new(chunk_base.offset),
                        fabric,
                        &mut nv,
                        stats,
                    );
                }
            }
        }
    }

    /// Flushes all metadata caches (end of context).
    pub fn flush(&mut self, now: u64, fabric: &mut DramFabric, stats: &mut SimStats) {
        let mut nv = NoVictim;
        for p in &mut self.partitions {
            p.mee.flush(now, fabric, &mut nv, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_types::{AccessKind, MemEvent, MemorySpace};

    fn cfg() -> GpuConfig {
        GpuConfig::default()
    }

    fn req(c: &GpuConfig, phys: u64, kind: AccessKind) -> MemRequest {
        MemRequest::new(
            PhysAddr::new(phys),
            c.partition_map(),
            kind,
            MemorySpace::Global,
            32,
        )
    }

    fn sys(variant: ShmVariant, oracle: Option<OracleProfile>) -> ShmSystem {
        ShmSystem::new(variant, &cfg(), ShmConfig::default(), oracle)
    }

    /// Streaming read trace over `n` sectors.
    fn stream_events(n: u64) -> Vec<MemEvent> {
        (0..n)
            .map(|i| MemEvent::global(PhysAddr::new(i * 32), AccessKind::Read))
            .collect()
    }

    fn run(system: &mut ShmSystem, events: &[MemEvent]) -> (SimStats, DramFabric) {
        let c = cfg();
        let mut fabric = DramFabric::new(&c);
        let mut stats = SimStats::default();
        for (i, ev) in events.iter().enumerate() {
            let r = req(&c, ev.addr.raw(), ev.kind);
            system.process(i as u64, &r, &mut fabric, &mut stats);
        }
        system.flush(events.len() as u64 * 10, &mut fabric, &mut stats);
        stats.traffic = fabric.traffic();
        (stats, fabric)
    }

    #[test]
    fn readonly_regions_skip_counters_and_bmt() {
        let events = stream_events(8192);
        let mut s = sys(ShmVariant::Full, None);
        s.mark_readonly_range(cfg().partition_map(), PhysAddr::new(0), 8192 * 32);
        let (stats, _) = run(&mut s, &events);
        assert_eq!(
            stats.traffic.class_total(TrafficClass::Counter)
                + stats.traffic.class_total(TrafficClass::Bmt),
            0,
            "read-only reads must not touch counters or BMT"
        );
        assert!(stats.readonly_fast_path > 0);
    }

    #[test]
    fn non_readonly_reads_fetch_counters() {
        let events = stream_events(4096);
        let mut s = sys(ShmVariant::Full, None);
        let (stats, _) = run(&mut s, &events);
        assert!(stats.traffic.class_total(TrafficClass::Counter) > 0);
    }

    #[test]
    fn streaming_chunks_use_chunk_macs() {
        // 8192 sequential sectors: predictor starts all-streaming, so chunk
        // MACs are used throughout; MAC traffic should be far below the
        // per-block 8B/128B ratio.
        let events = stream_events(8192);
        let mut s = sys(ShmVariant::Full, None);
        s.mark_readonly_range(cfg().partition_map(), PhysAddr::new(0), 8192 * 32);
        let (stats, _) = run(&mut s, &events);
        let data = stats.traffic.data_bytes();
        let mac = stats.traffic.class_total(TrafficClass::Mac);
        assert!(stats.chunk_mac_accesses > 0);
        assert!(
            (mac as f64) < 0.02 * data as f64,
            "chunk MACs should cost <2% of data: mac={mac} data={data}"
        );
    }

    #[test]
    fn shm_readonly_variant_uses_block_macs() {
        let events = stream_events(8192);
        let mut s = sys(ShmVariant::ReadOnlyOnly, None);
        s.mark_readonly_range(cfg().partition_map(), PhysAddr::new(0), 8192 * 32);
        let (stats, _) = run(&mut s, &events);
        let data = stats.traffic.data_bytes();
        let mac = stats.traffic.class_total(TrafficClass::Mac);
        assert_eq!(stats.chunk_mac_accesses, 0);
        // Per-block MACs: ~6.25% of data traffic on a streaming read.
        assert!(
            (mac as f64) > 0.04 * data as f64,
            "block MACs expected: mac={mac} data={data}"
        );
    }

    #[test]
    fn shm_beats_readonly_only_on_streaming_workloads() {
        let events = stream_events(8192);
        let c = cfg();
        let mut full = sys(ShmVariant::Full, None);
        full.mark_readonly_range(c.partition_map(), PhysAddr::new(0), 8192 * 32);
        let mut ro = sys(ShmVariant::ReadOnlyOnly, None);
        ro.mark_readonly_range(c.partition_map(), PhysAddr::new(0), 8192 * 32);
        let (full_stats, _) = run(&mut full, &events);
        let (ro_stats, _) = run(&mut ro, &events);
        assert!(
            full_stats.traffic.overhead_ratio() < ro_stats.traffic.overhead_ratio(),
            "SHM {:.4} should beat SHM_readOnly {:.4}",
            full_stats.traffic.overhead_ratio(),
            ro_stats.traffic.overhead_ratio()
        );
    }

    #[test]
    fn write_transition_propagates_counters() {
        let c = cfg();
        let mut s = sys(ShmVariant::Full, None);
        s.mark_readonly_range(c.partition_map(), PhysAddr::new(0), 1 << 20);
        let mut fabric = DramFabric::new(&c);
        let mut stats = SimStats::default();
        // A write into the read-only range triggers the Fig. 8 transition.
        s.process(
            0,
            &req(&c, 4096, AccessKind::Write),
            &mut fabric,
            &mut stats,
        );
        assert_eq!(stats.readonly_mispredictions, 1);
        // A second write to the same region is not a transition.
        s.process(
            1,
            &req(&c, 4128, AccessKind::Write),
            &mut fabric,
            &mut stats,
        );
        assert_eq!(stats.readonly_mispredictions, 1);
    }

    #[test]
    fn random_access_flips_predictor_and_uses_block_macs() {
        let c = cfg();
        let mut s = sys(ShmVariant::Full, None);
        let mut fabric = DramFabric::new(&c);
        let mut stats = SimStats::default();
        // Hammer 2 blocks of one chunk; the tracker can never reach K
        // distinct blocks, so the 6000-cycle timeout flips the chunk to
        // random.
        let mut flips_before = stats.stream_mispredictions;
        for i in 0..64u64 {
            let phys = (i % 2) * 32;
            s.process(
                i * 200,
                &req(&c, phys, AccessKind::Read),
                &mut fabric,
                &mut stats,
            );
        }
        flips_before = stats.stream_mispredictions - flips_before;
        assert!(flips_before >= 1, "tracker should flip the chunk to random");
        // Fix-up traffic was charged.
        assert!(
            fabric.traffic().class_total(TrafficClass::MispredictFixup) > 0,
            "misprediction fix-up bandwidth missing"
        );
    }

    #[test]
    fn upper_bound_requires_oracle() {
        let result = std::panic::catch_unwind(|| sys(ShmVariant::UpperBound, None));
        assert!(result.is_err());
    }

    #[test]
    fn upper_bound_has_no_mispredictions() {
        let events = stream_events(8192);
        let oracle = OracleProfile::from_trace(&events, cfg().partition_map());
        let mut s = sys(ShmVariant::UpperBound, Some(oracle));
        let (stats, _) = run(&mut s, &events);
        assert_eq!(stats.stream_mispredictions, 0);
        assert_eq!(stats.traffic.class_total(TrafficClass::MispredictFixup), 0);
    }

    #[test]
    fn upper_bound_no_worse_than_detected_shm() {
        let events = stream_events(8192);
        let map = cfg().partition_map();
        let oracle = OracleProfile::from_trace(&events, map);
        let mut ub = sys(ShmVariant::UpperBound, Some(oracle.clone()));
        let mut full = sys(ShmVariant::Full, Some(oracle));
        let (ub_stats, _) = run(&mut ub, &events);
        let (full_stats, _) = run(&mut full, &events);
        assert!(
            ub_stats.traffic.metadata_bytes() <= full_stats.traffic.metadata_bytes(),
            "oracle {} should not exceed detected {}",
            ub_stats.traffic.metadata_bytes(),
            full_stats.traffic.metadata_bytes()
        );
    }

    #[test]
    fn accuracy_accounting_with_oracle() {
        let events = stream_events(4096);
        let map = cfg().partition_map();
        let oracle = OracleProfile::from_trace(&events, map);
        let mut s = sys(ShmVariant::Full, Some(oracle));
        let _ = run(&mut s, &events);
        let ro = s.readonly_accuracy();
        let st = s.streaming_accuracy();
        assert!(ro.total() > 0);
        assert!(st.total() > 0);
        // The trace is read-only (no writes) but nothing was marked at init:
        // read-only mispredictions should be dominated by MP_Init.
        assert!(ro.mp_init > 0);
        assert!(ro.mp_aliasing <= ro.mp_init);
    }

    #[test]
    fn constant_and_texture_spaces_skip_counters_without_marking() {
        // Table I: architecturally read-only spaces need no predictor state
        // — even with nothing marked at init, their reads take the shared
        // counter fast path.
        let c = cfg();
        let mut s = sys(ShmVariant::Full, None);
        let mut fabric = DramFabric::new(&c);
        let mut stats = SimStats::default();
        for (i, space) in [
            gpu_types::MemorySpace::Constant,
            gpu_types::MemorySpace::Texture,
            gpu_types::MemorySpace::Instruction,
        ]
        .iter()
        .enumerate()
        {
            let r = MemRequest::new(
                PhysAddr::new(i as u64 * 4096),
                c.partition_map(),
                AccessKind::Read,
                *space,
                32,
            );
            s.process(i as u64, &r, &mut fabric, &mut stats);
        }
        assert_eq!(stats.readonly_fast_path, 3);
        assert_eq!(
            fabric.traffic().class_total(TrafficClass::Counter)
                + fabric.traffic().class_total(TrafficClass::Bmt),
            0
        );
    }

    #[test]
    fn victim_policy_gates_on_miss_rate() {
        let mut s = sys(ShmVariant::FullVictimL2, None);
        s.update_victim_policy(PartitionId(0), Some(0.95));
        assert!(s.victim_engaged(PartitionId(0)));
        s.update_victim_policy(PartitionId(0), Some(0.50));
        assert!(!s.victim_engaged(PartitionId(0)));
        // Non-victim variants never engage.
        let mut plain = sys(ShmVariant::Full, None);
        plain.update_victim_policy(PartitionId(0), Some(0.99));
        assert!(!plain.victim_engaged(PartitionId(0)));
    }

    #[test]
    fn input_readonly_reset_restores_fast_path() {
        let c = cfg();
        let mut s = sys(ShmVariant::Full, None);
        s.mark_readonly_range(c.partition_map(), PhysAddr::new(0), 1 << 20);
        let mut fabric = DramFabric::new(&c);
        let mut stats = SimStats::default();
        // Kernel 1 writes the region: transitions to per-block counters.
        s.process(0, &req(&c, 0, AccessKind::Write), &mut fabric, &mut stats);
        // Host resets it for kernel 2.
        s.input_readonly_reset(c.partition_map(), PhysAddr::new(0), 1 << 20);
        let before = stats.readonly_fast_path;
        s.process(1, &req(&c, 0, AccessKind::Read), &mut fabric, &mut stats);
        assert_eq!(stats.readonly_fast_path, before + 1);
    }
}
