//! The hardware read-only region detector (Section IV-B).
//!
//! A per-partition bit vector indexed by 16 KB region id (no tags).  Bits
//! are set at context initialisation for regions written by host memory
//! copies, cleared permanently the first time a kernel store touches the
//! region, and optionally re-set by the `InputReadOnlyReset(range)` API.
//!
//! Because the vector has no tags, regions alias; since bits only transition
//! read-only → not-read-only at runtime, aliasing can only *lose* a
//! bandwidth-saving opportunity, never create a security hole.

use gpu_types::{LocalAddr, RegionId};

/// Why a read-only prediction disagreed with the oracle (Fig. 10 breakdown).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RoMispredict {
    /// Region is truly read-only but was never marked at initialisation.
    Init,
    /// Region's bit was cleared by a *different* region sharing the index.
    Aliasing,
}

/// Per-entry provenance used to attribute mispredictions.
#[derive(Clone, Copy, Debug, Default)]
struct EntryState {
    /// Some region cleared this bit at runtime.
    cleared_by: Option<u64>,
}

/// Prediction-accuracy counters for Fig. 10.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoAccuracy {
    /// Predictions agreeing with the oracle.
    pub correct: u64,
    /// Mispredictions from missing initialisation.
    pub mp_init: u64,
    /// Mispredictions from bit-vector aliasing.
    pub mp_aliasing: u64,
}

impl RoAccuracy {
    /// Total classified predictions.
    pub fn total(&self) -> u64 {
        self.correct + self.mp_init + self.mp_aliasing
    }

    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            1.0
        } else {
            self.correct as f64 / t as f64
        }
    }
}

/// The per-partition read-only predictor: an `entries`-bit vector over
/// 16 KB regions of partition-local addresses.
#[derive(Clone, Debug)]
pub struct ReadOnlyPredictor {
    bits: Vec<bool>,
    state: Vec<EntryState>,
    region_bytes: u64,
    accuracy: RoAccuracy,
    transitions: u64,
}

impl ReadOnlyPredictor {
    /// Creates a predictor with `entries` bits over `region_bytes` regions.
    ///
    /// All bits start 0 (not-read-only by default).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `region_bytes` is not a power of two.
    pub fn new(entries: usize, region_bytes: u64) -> Self {
        assert!(entries > 0);
        assert!(region_bytes.is_power_of_two());
        Self {
            bits: vec![false; entries],
            state: vec![EntryState::default(); entries],
            region_bytes,
            accuracy: RoAccuracy::default(),
            transitions: 0,
        }
    }

    fn index_of_region(&self, region: RegionId) -> usize {
        (region.index % self.bits.len() as u64) as usize
    }

    fn region_of(&self, la: LocalAddr) -> RegionId {
        RegionId {
            partition: la.partition,
            index: la.offset / self.region_bytes,
        }
    }

    /// Marks a local-address range read-only at context initialisation
    /// (regions covered by host memory copies, or declared read-only by the
    /// programming model).
    pub fn mark_readonly(&mut self, start: u64, len: u64, partition: gpu_types::PartitionId) {
        let first = start / self.region_bytes;
        let last = (start + len.max(1) - 1) / self.region_bytes;
        for r in first..=last {
            let idx = self.index_of_region(RegionId {
                partition,
                index: r,
            });
            self.bits[idx] = true;
            self.state[idx].cleared_by = None;
        }
    }

    /// Predicts whether the region holding `la` is read-only.
    pub fn predict(&self, la: LocalAddr) -> bool {
        self.bits[self.index_of_region(self.region_of(la))]
    }

    /// Predicts and classifies the prediction against the oracle truth
    /// (`truly_readonly`), updating the Fig. 10 accuracy counters.
    pub fn predict_accounted(&mut self, la: LocalAddr, truly_readonly: bool) -> bool {
        let region = self.region_of(la);
        let idx = self.index_of_region(region);
        let predicted = self.bits[idx];
        if predicted == truly_readonly {
            self.accuracy.correct += 1;
        } else if !predicted && truly_readonly {
            // Predicted not-read-only though the region never gets written.
            match self.state[idx].cleared_by {
                Some(r) if r != region.index => self.accuracy.mp_aliasing += 1,
                _ => self.accuracy.mp_init += 1,
            }
        } else {
            // Predicted read-only but the region is actually written later:
            // counted as an initialisation artefact (the bit will clear at
            // the first store and stay correct afterwards).
            self.accuracy.mp_init += 1;
        }
        predicted
    }

    /// Records a store to `la`.  Returns `true` if this store transitions
    /// the region read-only → not-read-only (triggering shared-counter
    /// propagation, Fig. 8).
    pub fn on_write(&mut self, la: LocalAddr) -> bool {
        let region = self.region_of(la);
        let idx = self.index_of_region(region);
        let was_ro = self.bits[idx];
        if was_ro {
            self.bits[idx] = false;
            self.state[idx].cleared_by = Some(region.index);
            self.transitions += 1;
        }
        was_ro
    }

    /// Read-only → not-read-only transitions observed at runtime (each one
    /// triggers a shared-counter propagation; exported via telemetry).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Applies `InputReadOnlyReset(range)`: re-marks the range read-only.
    /// (The shared-counter adjustment is the engine's job.)
    pub fn input_readonly_reset(
        &mut self,
        start: u64,
        len: u64,
        partition: gpu_types::PartitionId,
    ) {
        self.mark_readonly(start, len, partition);
    }

    /// Accuracy counters accumulated by [`Self::predict_accounted`].
    pub fn accuracy(&self) -> RoAccuracy {
        self.accuracy
    }

    /// Number of predictor entries.
    pub fn entries(&self) -> usize {
        self.bits.len()
    }

    /// Region granularity in bytes.
    pub fn region_bytes(&self) -> u64 {
        self.region_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_types::PartitionId;

    const P: PartitionId = PartitionId(0);

    fn la(off: u64) -> LocalAddr {
        LocalAddr::new(P, off)
    }

    fn pred() -> ReadOnlyPredictor {
        ReadOnlyPredictor::new(1024, 16 * 1024)
    }

    #[test]
    fn default_is_not_read_only() {
        let p = pred();
        assert!(!p.predict(la(0)));
    }

    #[test]
    fn memcpy_marks_read_only() {
        let mut p = pred();
        p.mark_readonly(0, 64 * 1024, P);
        assert!(p.predict(la(0)));
        assert!(p.predict(la(48 * 1024)));
        assert!(!p.predict(la(64 * 1024)), "range end excluded");
    }

    #[test]
    fn first_store_transitions_once() {
        let mut p = pred();
        p.mark_readonly(0, 16 * 1024, P);
        assert!(p.on_write(la(128)), "first store should transition");
        assert!(!p.predict(la(0)), "region stays not-read-only");
        assert!(!p.on_write(la(256)), "second store is not a transition");
    }

    #[test]
    fn reset_api_restores_read_only() {
        let mut p = pred();
        p.mark_readonly(0, 16 * 1024, P);
        p.on_write(la(0));
        p.input_readonly_reset(0, 16 * 1024, P);
        assert!(p.predict(la(0)));
    }

    #[test]
    fn aliasing_clears_conflicting_region() {
        let mut p = ReadOnlyPredictor::new(4, 16 * 1024);
        // Regions 0 and 4 share index 0.
        p.mark_readonly(0, 16 * 1024, P);
        assert!(p.predict(la(0)));
        p.on_write(la(4 * 16 * 1024)); // write to aliasing region 4
        assert!(!p.predict(la(0)), "aliased write must clear the shared bit");
    }

    #[test]
    fn aliasing_is_conservative_not_unsafe() {
        // Aliasing may only flip read-only -> not-read-only (safe direction):
        // marking region A read-only also marks its alias, but only at init
        // time, which models the command processor's explicit marking.
        let mut p = ReadOnlyPredictor::new(4, 16 * 1024);
        p.on_write(la(0));
        assert!(!p.predict(la(4 * 16 * 1024)) || p.predict(la(4 * 16 * 1024)));
        // After any runtime write, both alias partners read as NRO.
        p.mark_readonly(0, 16 * 1024, P);
        p.on_write(la(4 * 16 * 1024));
        assert!(!p.predict(la(0)));
    }

    #[test]
    fn accuracy_breakdown_init_vs_aliasing() {
        let mut p = ReadOnlyPredictor::new(4, 16 * 1024);
        // Truly-RO region never marked: MP_Init.
        p.predict_accounted(la(0), true);
        assert_eq!(p.accuracy().mp_init, 1);

        // Mark it, then alias-clear it, then query: MP_Aliasing.
        p.mark_readonly(0, 16 * 1024, P);
        p.on_write(la(4 * 16 * 1024));
        p.predict_accounted(la(0), true);
        assert_eq!(p.accuracy().mp_aliasing, 1);

        // Correct prediction counted.
        p.mark_readonly(16 * 1024, 16 * 1024, P);
        p.predict_accounted(la(16 * 1024), true);
        assert_eq!(p.accuracy().correct, 1);
        assert!((p.accuracy().accuracy() - 1.0 / 3.0).abs() < 1e-12);
    }
}
