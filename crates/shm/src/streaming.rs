//! The streaming-access detector: prediction bit vector + memory access
//! trackers (Section IV-C).
//!
//! Each partition keeps a 2048-entry bit vector indexed by 4 KB chunk id
//! (eagerly initialised to all-streaming, since GPU workloads mostly
//! stream), plus eight *memory access trackers* (MATs).  A MAT latches onto
//! one chunk and counts which of its 32 blocks get touched; after K = 32
//! accesses or a 6000-cycle timeout it renders a verdict — streaming if
//! every block was touched, random otherwise — and updates the bit vector.

use gpu_types::{ChunkId, LocalAddr, BLOCK_BYTES};

/// Verdict produced when a tracker finishes a monitoring phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Detection {
    /// The monitored chunk.
    pub chunk: ChunkId,
    /// Whether the chunk was detected as streaming.
    pub streaming: bool,
    /// Whether any write-back hit the chunk during monitoring.
    pub had_write: bool,
    /// The prediction that was in force while monitoring.
    pub predicted_streaming: bool,
}

/// One chunk-level memory access tracker (Table IX: 20-bit tag, 32 1-bit
/// counters, write flag, 5-bit access counter, 13-bit timeout).
#[derive(Clone, Debug)]
struct Tracker {
    chunk: ChunkId,
    touched: u64,
    write_flag: bool,
    accesses: u32,
    started_at: u64,
    predicted_streaming: bool,
}

impl Tracker {
    fn verdict(&self, blocks_per_chunk: u64) -> bool {
        let full: u64 = if blocks_per_chunk >= 64 {
            u64::MAX
        } else {
            (1u64 << blocks_per_chunk) - 1
        };
        self.touched == full
    }
}

/// The set of MATs for one partition.
#[derive(Clone, Debug)]
pub struct AccessTrackers {
    trackers: Vec<Option<Tracker>>,
    phase_accesses: u32,
    timeout_cycles: u64,
    chunk_bytes: u64,
}

impl AccessTrackers {
    /// Creates `n` trackers over 4 KB chunks (the paper's configuration)
    /// with a `phase_accesses`-access monitoring phase and `timeout_cycles`
    /// timeout.
    pub fn new(n: usize, phase_accesses: u32, timeout_cycles: u64) -> Self {
        Self::with_chunk_bytes(n, phase_accesses, timeout_cycles, gpu_types::CHUNK_BYTES)
    }

    /// Creates trackers monitoring `chunk_bytes`-sized chunks (for the
    /// chunk-size sensitivity study; at most 64 blocks = 8 KB chunks).
    pub fn with_chunk_bytes(
        n: usize,
        phase_accesses: u32,
        timeout_cycles: u64,
        chunk_bytes: u64,
    ) -> Self {
        assert!(n > 0 && phase_accesses > 0);
        assert!(
            chunk_bytes.is_power_of_two()
                && chunk_bytes >= BLOCK_BYTES
                && chunk_bytes / BLOCK_BYTES <= 64,
            "chunk must be a power of two, one to 64 blocks"
        );
        Self {
            trackers: vec![None; n],
            phase_accesses,
            timeout_cycles,
            chunk_bytes,
        }
    }

    /// Expires trackers whose monitoring phase timed out, returning their
    /// verdicts.
    pub fn poll(&mut self, now: u64) -> Vec<Detection> {
        let timeout = self.timeout_cycles;
        let blocks = self.chunk_bytes / BLOCK_BYTES;
        let mut out = Vec::new();
        for slot in &mut self.trackers {
            if let Some(t) = slot {
                if now.saturating_sub(t.started_at) >= timeout {
                    out.push(Detection {
                        chunk: t.chunk,
                        streaming: t.verdict(blocks),
                        had_write: t.write_flag,
                        predicted_streaming: t.predicted_streaming,
                    });
                    *slot = None;
                }
            }
        }
        out
    }

    /// Feeds one memory access (an L2 miss or write-back).  If the access
    /// completes a monitoring phase, returns the verdict.
    ///
    /// `predicted_streaming` is the bit-vector prediction in force for the
    /// chunk, recorded so the engine can classify the verdict against it.
    pub fn observe(
        &mut self,
        now: u64,
        la: LocalAddr,
        is_write: bool,
        predicted_streaming: bool,
    ) -> Option<Detection> {
        let chunk = ChunkId {
            partition: la.partition,
            index: la.offset / self.chunk_bytes,
        };
        let block = ((la.offset % self.chunk_bytes) / BLOCK_BYTES) as usize;
        let blocks = self.chunk_bytes / BLOCK_BYTES;

        // Existing tracker for this chunk?
        if let Some(slot) = self
            .trackers
            .iter_mut()
            .find(|s| s.as_ref().is_some_and(|t| t.chunk == chunk))
        {
            let t = slot.as_mut().expect("checked above");
            let bit = 1u64 << block;
            // Counters are maintained at cache-block granularity (Section
            // IV-C): repeated sector accesses to an already-counted block
            // saturate its 1-bit counter and do not advance the phase.
            if t.touched & bit == 0 {
                t.touched |= bit;
                t.accesses += 1;
            }
            t.write_flag |= is_write;
            if t.accesses >= self.phase_accesses {
                let det = Detection {
                    chunk: t.chunk,
                    streaming: t.verdict(blocks),
                    had_write: t.write_flag,
                    predicted_streaming: t.predicted_streaming,
                };
                *slot = None;
                return Some(det);
            }
            return None;
        }

        // Allocate a free tracker; if none, the access goes unmonitored
        // (bounded hardware, Section IV-C).
        if let Some(slot) = self.trackers.iter_mut().find(|s| s.is_none()) {
            *slot = Some(Tracker {
                chunk,
                touched: 1u64 << block,
                write_flag: is_write,
                accesses: 1,
                started_at: now,
                predicted_streaming,
            });
        }
        None
    }

    /// Number of chunks currently being monitored.
    pub fn active(&self) -> usize {
        self.trackers.iter().filter(|s| s.is_some()).count()
    }
}

/// Why a streaming prediction disagreed with the oracle (Fig. 11 breakdown).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StreamMispredict {
    /// The eager all-streaming initialisation was wrong for this chunk.
    Init,
    /// The access pattern changed at runtime, in a read-only region.
    RuntimeReadOnly,
    /// The access pattern changed at runtime, in a non-read-only region.
    RuntimeNonReadOnly,
    /// A different chunk sharing the bit-vector index overwrote the entry.
    Aliasing,
}

/// Prediction-accuracy counters for Fig. 11.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamAccuracy {
    /// Predictions agreeing with the oracle.
    pub correct: u64,
    /// Mispredictions from the all-streaming initialisation.
    pub mp_init: u64,
    /// Runtime pattern changes in read-only regions.
    pub mp_runtime_read_only: u64,
    /// Runtime pattern changes in non-read-only regions.
    pub mp_runtime_non_read_only: u64,
    /// Bit-vector aliasing.
    pub mp_aliasing: u64,
}

impl StreamAccuracy {
    /// Total classified predictions.
    pub fn total(&self) -> u64 {
        self.correct
            + self.mp_init
            + self.mp_runtime_read_only
            + self.mp_runtime_non_read_only
            + self.mp_aliasing
    }

    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            1.0
        } else {
            self.correct as f64 / t as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct StreamEntry {
    streaming: bool,
    /// Chunk index that last wrote this entry (None = initial value).
    writer: Option<u64>,
}

/// The per-partition streaming prediction bit vector.
#[derive(Clone, Debug)]
pub struct StreamingPredictor {
    entries: Vec<StreamEntry>,
    chunk_bytes: u64,
    accuracy: StreamAccuracy,
    flips: u64,
}

impl StreamingPredictor {
    /// Creates a predictor with `entries` bits over `chunk_bytes` chunks,
    /// eagerly initialised to all-streaming.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `chunk_bytes` is not a power of two.
    pub fn new(entries: usize, chunk_bytes: u64) -> Self {
        assert!(entries > 0);
        assert!(chunk_bytes.is_power_of_two());
        Self {
            entries: vec![
                StreamEntry {
                    streaming: true,
                    writer: None
                };
                entries
            ],
            chunk_bytes,
            accuracy: StreamAccuracy::default(),
            flips: 0,
        }
    }

    fn index_of(&self, chunk: ChunkId) -> usize {
        (chunk.index % self.entries.len() as u64) as usize
    }

    /// Predicts whether the chunk holding `la` is streaming-accessed.
    pub fn predict(&self, la: LocalAddr) -> bool {
        let chunk = ChunkId {
            partition: la.partition,
            index: la.offset / self.chunk_bytes,
        };
        self.entries[self.index_of(chunk)].streaming
    }

    /// Predicts and classifies against the oracle truth for Fig. 11.
    ///
    /// `truly_streaming` is the oracle's verdict for this chunk and
    /// `region_read_only` the oracle's read-only truth for its region.
    pub fn predict_accounted(
        &mut self,
        la: LocalAddr,
        truly_streaming: bool,
        region_read_only: bool,
    ) -> bool {
        let chunk = ChunkId {
            partition: la.partition,
            index: la.offset / self.chunk_bytes,
        };
        let idx = self.index_of(chunk);
        let entry = self.entries[idx];
        let predicted = entry.streaming;
        if predicted == truly_streaming {
            self.accuracy.correct += 1;
        } else {
            match entry.writer {
                None => self.accuracy.mp_init += 1,
                Some(w) if w != chunk.index => self.accuracy.mp_aliasing += 1,
                Some(_) => {
                    // The entry was written by a detection of this very
                    // chunk, yet disagrees with the oracle: the pattern
                    // changed at runtime.
                    if region_read_only {
                        self.accuracy.mp_runtime_read_only += 1;
                    } else {
                        self.accuracy.mp_runtime_non_read_only += 1;
                    }
                }
            }
        }
        predicted
    }

    /// Applies a tracker verdict to the bit vector.
    pub fn update(&mut self, det: &Detection) {
        let idx = self.index_of(det.chunk);
        if self.entries[idx].streaming != det.streaming {
            self.flips += 1;
        }
        self.entries[idx] = StreamEntry {
            streaming: det.streaming,
            writer: Some(det.chunk.index),
        };
    }

    /// Bit-vector state changes applied by tracker verdicts (exported via
    /// telemetry as detector-transition activity).
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Accuracy counters accumulated by [`Self::predict_accounted`].
    pub fn accuracy(&self) -> StreamAccuracy {
        self.accuracy
    }

    /// Number of predictor entries.
    pub fn entries(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_types::PartitionId;

    const P: PartitionId = PartitionId(0);

    fn la(off: u64) -> LocalAddr {
        LocalAddr::new(P, off)
    }

    #[test]
    fn predictor_starts_all_streaming() {
        let p = StreamingPredictor::new(2048, 4096);
        assert!(p.predict(la(0)));
        assert!(p.predict(la(123 * 4096)));
    }

    #[test]
    fn tracker_detects_streaming_sweep() {
        let mut mats = AccessTrackers::new(8, 32, 6000);
        let mut det = None;
        for b in 0..32u64 {
            det = mats.observe(b, la(b * 128), false, true).or(det);
        }
        let d = det.expect("phase should complete after 32 accesses");
        assert!(d.streaming, "full sweep must be streaming");
        assert!(!d.had_write);
    }

    #[test]
    fn tracker_detects_random_pattern() {
        let mut mats = AccessTrackers::new(8, 32, 6000);
        // Repeated accesses to only 4 distinct blocks never reach the K
        // distinct-block threshold; the timeout renders the verdict.
        for i in 0..32u64 {
            assert_eq!(mats.observe(i, la((i % 4) * 128), true, true), None);
        }
        let dets = mats.poll(6001);
        assert_eq!(dets.len(), 1);
        assert!(!dets[0].streaming, "partial coverage must be random");
        assert!(dets[0].had_write);
    }

    #[test]
    fn tracker_timeout_renders_verdict() {
        let mut mats = AccessTrackers::new(8, 32, 6000);
        mats.observe(0, la(0), false, true);
        mats.observe(10, la(128), false, true);
        assert_eq!(mats.active(), 1);
        let dets = mats.poll(7000);
        assert_eq!(dets.len(), 1);
        assert!(!dets[0].streaming, "2 of 32 blocks touched at timeout");
        assert_eq!(mats.active(), 0);
    }

    #[test]
    fn trackers_are_bounded() {
        let mut mats = AccessTrackers::new(2, 32, 6000);
        mats.observe(0, la(0), false, true);
        mats.observe(0, la(4096), false, true);
        mats.observe(0, la(8192), false, true); // no free tracker: dropped
        assert_eq!(mats.active(), 2);
    }

    #[test]
    fn verdict_updates_bit_vector() {
        let mut p = StreamingPredictor::new(2048, 4096);
        let det = Detection {
            chunk: ChunkId {
                partition: P,
                index: 5,
            },
            streaming: false,
            had_write: false,
            predicted_streaming: true,
        };
        p.update(&det);
        assert!(!p.predict(la(5 * 4096)));
        assert!(p.predict(la(6 * 4096)), "other chunks unaffected");
    }

    #[test]
    fn accuracy_breakdown() {
        let mut p = StreamingPredictor::new(4, 4096);
        // Initial all-streaming vs random truth: MP_Init.
        p.predict_accounted(la(0), false, false);
        assert_eq!(p.accuracy().mp_init, 1);

        // Self-written entry that later disagrees: runtime change.
        p.update(&Detection {
            chunk: ChunkId {
                partition: P,
                index: 0,
            },
            streaming: false,
            had_write: true,
            predicted_streaming: true,
        });
        p.predict_accounted(la(0), true, false);
        assert_eq!(p.accuracy().mp_runtime_non_read_only, 1);
        p.predict_accounted(la(0), true, true);
        assert_eq!(p.accuracy().mp_runtime_read_only, 1);

        // Entry written by an aliasing chunk (index 4 aliases 0 in a 4-entry
        // vector): MP_Aliasing.
        p.update(&Detection {
            chunk: ChunkId {
                partition: P,
                index: 4,
            },
            streaming: true,
            had_write: false,
            predicted_streaming: true,
        });
        p.predict_accounted(la(0), false, false);
        assert_eq!(p.accuracy().mp_aliasing, 1);

        // Agreement counts as correct.
        p.predict_accounted(la(0), true, false);
        assert_eq!(p.accuracy().correct, 1);
        assert_eq!(p.accuracy().total(), 5);
    }

    #[test]
    fn phase_resets_after_verdict() {
        let mut mats = AccessTrackers::new(1, 4, 6000);
        for b in 0..4u64 {
            mats.observe(b, la(b * 128), false, true);
        }
        assert_eq!(mats.active(), 0, "tracker freed after verdict");
        // Tracker can immediately monitor another chunk.
        mats.observe(10, la(4096), false, true);
        assert_eq!(mats.active(), 1);
    }
}
