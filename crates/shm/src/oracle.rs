//! Oracle profiling of a memory trace (offline ground truth).
//!
//! The paper measures predictor accuracy against offline profiling (Figs.
//! 10/11) and evaluates `SHM_upper_bound` with unlimited, pre-initialised
//! predictors.  [`OracleProfile`] provides both: a pass over the trace that
//! records which 16 KB regions are truly read-only (never written) and which
//! 4 KB chunks are truly streaming (every 128 B block touched).

use gpu_types::{
    ChunkId, FxHashMap, FxHashSet, LocalAddr, MemEvent, PartitionMap, RegionId, BLOCKS_PER_CHUNK,
};

/// Ground-truth classification of regions and chunks for one trace.
#[derive(Clone, Debug, Default)]
pub struct OracleProfile {
    written_regions: FxHashSet<RegionId>,
    chunk_touch: FxHashMap<ChunkId, u32>,
}

impl OracleProfile {
    /// Profiles a trace of warp-level events under the partition `map`.
    pub fn from_trace<'a>(
        events: impl IntoIterator<Item = &'a MemEvent>,
        map: PartitionMap,
    ) -> Self {
        let mut p = Self::default();
        for ev in events {
            let la = map.to_local(ev.addr);
            p.observe(la, ev.kind.is_write());
        }
        p
    }

    /// Records one access during profiling.
    pub fn observe(&mut self, la: LocalAddr, is_write: bool) {
        if is_write {
            self.written_regions.insert(la.region());
        }
        *self.chunk_touch.entry(la.chunk()).or_insert(0) |= 1 << la.block_in_chunk();
    }

    /// Whether the region holding `la` is truly read-only (never written in
    /// the trace).
    pub fn region_read_only(&self, la: LocalAddr) -> bool {
        !self.written_regions.contains(&la.region())
    }

    /// Whether the chunk holding `la` is truly streaming (all blocks
    /// touched over the trace).
    pub fn chunk_streaming(&self, la: LocalAddr) -> bool {
        let full: u32 = if BLOCKS_PER_CHUNK >= 32 {
            u32::MAX
        } else {
            (1 << BLOCKS_PER_CHUNK) - 1
        };
        self.chunk_touch
            .get(&la.chunk())
            .is_some_and(|&m| m == full)
    }

    /// Fraction of `events` that touch truly read-only regions (Fig. 5's
    /// read-only series).
    pub fn read_only_fraction<'a>(
        &self,
        events: impl IntoIterator<Item = &'a MemEvent>,
        map: PartitionMap,
    ) -> f64 {
        let mut total = 0u64;
        let mut ro = 0u64;
        for ev in events {
            total += 1;
            if self.region_read_only(map.to_local(ev.addr)) {
                ro += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            ro as f64 / total as f64
        }
    }

    /// Fraction of `events` that touch truly streaming chunks (Fig. 5's
    /// streaming series).
    pub fn streaming_fraction<'a>(
        &self,
        events: impl IntoIterator<Item = &'a MemEvent>,
        map: PartitionMap,
    ) -> f64 {
        let mut total = 0u64;
        let mut st = 0u64;
        for ev in events {
            total += 1;
            if self.chunk_streaming(map.to_local(ev.addr)) {
                st += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            st as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_types::{AccessKind, MemEvent, PhysAddr};

    fn map() -> PartitionMap {
        PartitionMap::new(12, 256)
    }

    fn read(addr: u64) -> MemEvent {
        MemEvent::global(PhysAddr::new(addr), AccessKind::Read)
    }

    fn write(addr: u64) -> MemEvent {
        MemEvent::global(PhysAddr::new(addr), AccessKind::Write)
    }

    #[test]
    fn never_written_region_is_read_only() {
        let evs: Vec<_> = (0..512).map(|i| read(i * 32)).collect();
        let p = OracleProfile::from_trace(&evs, map());
        assert!(p.region_read_only(map().to_local(PhysAddr::new(0))));
        assert!((p.read_only_fraction(&evs, map()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_write_taints_its_region() {
        let mut evs: Vec<_> = (0..512).map(|i| read(i * 32)).collect();
        evs.push(write(128));
        let p = OracleProfile::from_trace(&evs, map());
        assert!(!p.region_read_only(map().to_local(PhysAddr::new(0))));
    }

    #[test]
    fn full_local_chunk_sweep_is_streaming() {
        // Sweep enough physical space that partition 0's first local chunk
        // (4 KB) is fully covered: 12 partitions x 4 KB = 48 KB of physical
        // sweep at 32 B granularity.
        let evs: Vec<_> = (0..(48 * 1024 / 32)).map(|i| read(i * 32)).collect();
        let p = OracleProfile::from_trace(&evs, map());
        let la = map().to_local(PhysAddr::new(0));
        assert!(p.chunk_streaming(la));
        assert!(p.streaming_fraction(&evs, map()) > 0.99);
    }

    #[test]
    fn sparse_chunk_is_random() {
        let evs = vec![read(0), read(256 * 12)];
        let p = OracleProfile::from_trace(&evs, map());
        assert!(!p.chunk_streaming(map().to_local(PhysAddr::new(0))));
        assert_eq!(p.streaming_fraction(&evs, map()), 0.0);
    }

    #[test]
    fn empty_trace_fractions_are_zero() {
        let p = OracleProfile::default();
        let evs: Vec<MemEvent> = Vec::new();
        assert_eq!(p.read_only_fraction(&evs, map()), 0.0);
        assert_eq!(p.streaming_fraction(&evs, map()), 0.0);
    }
}
