//! SHM — adaptive security support for heterogeneous memory on GPUs.
//!
//! This crate implements the primary contribution of the HPCA 2022 paper:
//! secure GPU memory that *adapts* its protection mechanisms to the kind of
//! data being protected, retaining the confidentiality / integrity /
//! freshness guarantees of CPU TEEs while dramatically reducing the
//! security-metadata bandwidth they cost.
//!
//! The two adaptive mechanisms, each backed by a lightweight hardware
//! detector:
//!
//! 1. **Read-only regions** ([`readonly::ReadOnlyPredictor`]) — data that is
//!    never written during kernel execution (constant memory, texture
//!    memory, instruction memory, and most copied-in input buffers) cannot
//!    be meaningfully replayed within a kernel, so it needs no per-block
//!    counters and no Bonsai-Merkle-Tree coverage.  One on-chip shared
//!    counter provides temporal uniqueness across kernels; the
//!    `InputReadOnlyReset` API keeps it fresh when the host reuses input
//!    regions.
//!
//! 2. **Streaming chunks** ([`streaming`]) — chunks whose blocks are all
//!    touched can be authenticated by a single 8 B *chunk-level* MAC instead
//!    of thirty-two 8 B block MACs, cutting MAC bandwidth ~32×.  Randomly
//!    accessed chunks keep per-block MACs.  Mispredictions cost bandwidth,
//!    never correctness (Tables III/IV).
//!
//! [`engine::ShmSystem`] combines both with the PSSM-style partition-local
//! metadata engine from `secure-core`, in the variants evaluated by the
//! paper: `SHM_readOnly`, `SHM`, `SHM_cctr`, `SHM_vL2` and
//! `SHM_upper_bound`.

pub mod engine;
pub mod oracle;
pub mod policy;
pub mod readonly;
pub mod streaming;
pub mod variant;

pub use engine::ShmSystem;
pub use oracle::OracleProfile;
pub use policy::{required_mechanisms, DataProperty, Protection};
pub use readonly::ReadOnlyPredictor;
pub use streaming::{AccessTrackers, Detection, StreamingPredictor};
pub use variant::ShmVariant;
