//! The SHM design variants evaluated in the paper (Table VIII).

/// Which SHM configuration to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShmVariant {
    /// `SHM_readOnly`: per-block MACs, but the shared counter removes
    /// counter + BMT traffic for read-only regions.
    ReadOnlyOnly,
    /// `SHM`: read-only optimisation + dual-granularity MACs.
    Full,
    /// `SHM_cctr`: SHM combined with common counters.
    FullCctr,
    /// `SHM_vL2`: SHM using the L2 as a victim cache for metadata.
    FullVictimL2,
    /// `SHM_upper_bound`: SHM with oracle (unlimited, profiled) predictors.
    UpperBound,
}

impl ShmVariant {
    /// All variants, in the paper's figure order.
    pub const ALL: [ShmVariant; 5] = [
        ShmVariant::ReadOnlyOnly,
        ShmVariant::Full,
        ShmVariant::FullCctr,
        ShmVariant::FullVictimL2,
        ShmVariant::UpperBound,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ShmVariant::ReadOnlyOnly => "SHM_readOnly",
            ShmVariant::Full => "SHM",
            ShmVariant::FullCctr => "SHM_cctr",
            ShmVariant::FullVictimL2 => "SHM_vL2",
            ShmVariant::UpperBound => "SHM_upper_bound",
        }
    }

    /// Whether dual-granularity MACs are enabled.
    pub fn dual_mac(self) -> bool {
        !matches!(self, ShmVariant::ReadOnlyOnly)
    }

    /// Whether common counters are layered on top.
    pub fn common_counters(self) -> bool {
        matches!(self, ShmVariant::FullCctr)
    }

    /// Whether the L2 victim cache is used for metadata.
    pub fn victim_l2(self) -> bool {
        matches!(self, ShmVariant::FullVictimL2)
    }

    /// Whether oracle predictors replace the hardware detectors.
    pub fn oracle(self) -> bool {
        matches!(self, ShmVariant::UpperBound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(ShmVariant::Full.name(), "SHM");
        assert_eq!(ShmVariant::ReadOnlyOnly.name(), "SHM_readOnly");
        assert_eq!(ShmVariant::FullCctr.name(), "SHM_cctr");
        assert_eq!(ShmVariant::FullVictimL2.name(), "SHM_vL2");
        assert_eq!(ShmVariant::UpperBound.name(), "SHM_upper_bound");
    }

    #[test]
    fn feature_matrix() {
        assert!(!ShmVariant::ReadOnlyOnly.dual_mac());
        assert!(ShmVariant::Full.dual_mac());
        assert!(ShmVariant::FullCctr.common_counters());
        assert!(!ShmVariant::Full.common_counters());
        assert!(ShmVariant::FullVictimL2.victim_l2());
        assert!(ShmVariant::UpperBound.oracle());
    }
}
