//! Security-mechanism policy for heterogeneous GPU memory (Tables I and II).
//!
//! The paper's first observation: not every GPU memory space needs every
//! security mechanism.  On-chip spaces need none (the GPU die is the trusted
//! computing base).  Off-chip read-only data needs confidentiality and
//! integrity but not freshness — replaying a value that never changes is
//! meaningless within a kernel.  Only off-chip read/write data needs the
//! full C + I + F stack.

use gpu_types::MemorySpace;

/// The set of security mechanisms a piece of data requires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Protection {
    /// Confidentiality — counter-mode encryption.
    pub confidentiality: bool,
    /// Integrity — MAC verification.
    pub integrity: bool,
    /// Freshness — integrity-tree (replay) protection.
    pub freshness: bool,
}

impl Protection {
    /// No protection (on-chip data inside the TCB).
    pub const NONE: Protection = Protection {
        confidentiality: false,
        integrity: false,
        freshness: false,
    };

    /// Confidentiality + integrity (read-only off-chip data).
    pub const CI: Protection = Protection {
        confidentiality: true,
        integrity: true,
        freshness: false,
    };

    /// Full confidentiality + integrity + freshness.
    pub const CIF: Protection = Protection {
        confidentiality: true,
        integrity: true,
        freshness: true,
    };

    /// Compact notation used in the paper's tables.
    pub fn notation(self) -> &'static str {
        match (self.confidentiality, self.integrity, self.freshness) {
            (false, false, false) => "—",
            (true, true, false) => "C + I",
            (true, true, true) => "C + I + F",
            _ => "custom",
        }
    }
}

/// Application-data classification (Table II).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataProperty {
    /// Application code (read-only).
    ApplicationCode,
    /// Kernel input buffers (read-only).
    Input,
    /// Kernel output buffers (read/write).
    Output,
    /// In-flight intermediate data (read/write).
    InFlight,
}

impl DataProperty {
    /// Whether the data is read-only during kernel execution.
    pub const fn is_read_only(self) -> bool {
        matches!(self, DataProperty::ApplicationCode | DataProperty::Input)
    }

    /// Security guarantees required for this data class (Table II).
    pub const fn required(self) -> Protection {
        if self.is_read_only() {
            Protection::CI
        } else {
            Protection::CIF
        }
    }
}

/// Security mechanisms required for a memory space (Table I).
///
/// Register files, shared memory and caches are on-chip and need nothing;
/// this function covers the off-chip spaces that appear in traces.
pub const fn required_mechanisms(space: MemorySpace) -> Protection {
    match space {
        MemorySpace::Global | MemorySpace::Local => Protection::CIF,
        MemorySpace::Constant | MemorySpace::Texture | MemorySpace::Instruction => Protection::CI,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_space_mechanisms() {
        assert_eq!(required_mechanisms(MemorySpace::Global), Protection::CIF);
        assert_eq!(required_mechanisms(MemorySpace::Local), Protection::CIF);
        assert_eq!(required_mechanisms(MemorySpace::Constant), Protection::CI);
        assert_eq!(required_mechanisms(MemorySpace::Texture), Protection::CI);
        assert_eq!(
            required_mechanisms(MemorySpace::Instruction),
            Protection::CI
        );
    }

    #[test]
    fn table_ii_data_mechanisms() {
        assert_eq!(DataProperty::ApplicationCode.required(), Protection::CI);
        assert_eq!(DataProperty::Input.required(), Protection::CI);
        assert_eq!(DataProperty::Output.required(), Protection::CIF);
        assert_eq!(DataProperty::InFlight.required(), Protection::CIF);
    }

    #[test]
    fn notation_matches_paper() {
        assert_eq!(Protection::NONE.notation(), "—");
        assert_eq!(Protection::CI.notation(), "C + I");
        assert_eq!(Protection::CIF.notation(), "C + I + F");
    }

    #[test]
    fn read_only_data_never_needs_freshness() {
        for d in [DataProperty::ApplicationCode, DataProperty::Input] {
            assert!(d.is_read_only());
            assert!(!d.required().freshness);
            assert!(d.required().confidentiality && d.required().integrity);
        }
    }
}
