//! Physical and partition-local addresses and the partition interleaving map.

use core::fmt;

use crate::{BLOCK_BYTES, CHUNK_BYTES, REGION_BYTES, SECTOR_BYTES};

/// A physical address in the simulated GPU device-memory space.
///
/// Physical addresses cover the whole protected range (4 GB by default) and
/// are interleaved across memory partitions by [`PartitionMap`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw byte offset.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Raw byte offset of this address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The address aligned down to its 128 B block.
    pub const fn block_base(self) -> Self {
        Self(self.0 & !(BLOCK_BYTES - 1))
    }

    /// The address aligned down to its 32 B sector.
    pub const fn sector_base(self) -> Self {
        Self(self.0 & !(SECTOR_BYTES - 1))
    }

    /// Index of the sector within its 128 B block (0..=3).
    pub const fn sector_in_block(self) -> usize {
        ((self.0 % BLOCK_BYTES) / SECTOR_BYTES) as usize
    }

    /// Offsets the address by `delta` bytes.
    pub const fn offset(self, delta: u64) -> Self {
        Self(self.0 + delta)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysAddr({:#x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

/// Identifier of one GDDR memory partition (0..num_partitions).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PartitionId(pub u16);

impl PartitionId {
    /// Numeric index of the partition.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A partition-local address: `(partition, offset-within-partition)`.
///
/// This is the "local address" of the PSSM paper — the byte offset a physical
/// address maps to after partition interleaving.  Metadata constructed from
/// local addresses is private to one partition, eliminating the redundant
/// cross-partition metadata traffic of physical-address construction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LocalAddr {
    /// The partition this address lives in.
    pub partition: PartitionId,
    /// The byte offset within the partition.
    pub offset: u64,
}

impl LocalAddr {
    /// Creates a local address.
    pub const fn new(partition: PartitionId, offset: u64) -> Self {
        Self { partition, offset }
    }

    /// The offset aligned down to its 128 B block.
    pub const fn block_base(self) -> Self {
        Self {
            partition: self.partition,
            offset: self.offset & !(BLOCK_BYTES - 1),
        }
    }

    /// Index of the 128 B block within the partition.
    pub const fn block_index(self) -> u64 {
        self.offset / BLOCK_BYTES
    }

    /// The 4 KB chunk this local address belongs to.
    pub const fn chunk(self) -> ChunkId {
        ChunkId {
            partition: self.partition,
            index: self.offset / CHUNK_BYTES,
        }
    }

    /// The 16 KB read-only region this local address belongs to.
    pub const fn region(self) -> RegionId {
        RegionId {
            partition: self.partition,
            index: self.offset / REGION_BYTES,
        }
    }

    /// Index of the 128 B block within its 4 KB chunk (0..=31).
    pub const fn block_in_chunk(self) -> usize {
        ((self.offset % CHUNK_BYTES) / BLOCK_BYTES) as usize
    }
}

impl fmt::Display for LocalAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{:#x}", self.partition, self.offset)
    }
}

/// Identifier of a 4 KB chunk within one partition (streaming granularity).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChunkId {
    /// Partition that holds the chunk.
    pub partition: PartitionId,
    /// Chunk index within the partition's local space.
    pub index: u64,
}

impl ChunkId {
    /// Local address of the first byte of the chunk.
    pub const fn base(self) -> LocalAddr {
        LocalAddr::new(self.partition, self.index * CHUNK_BYTES)
    }
}

/// Identifier of a 16 KB region within one partition (read-only granularity).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegionId {
    /// Partition that holds the region.
    pub partition: PartitionId,
    /// Region index within the partition's local space.
    pub index: u64,
}

impl RegionId {
    /// Local address of the first byte of the region.
    pub const fn base(self) -> LocalAddr {
        LocalAddr::new(self.partition, self.index * REGION_BYTES)
    }
}

/// Interleaves physical addresses across partitions at a fixed granularity.
///
/// The mapping is the standard GPU partition hash used by GPGPU-Sim style
/// models: the physical space is split into `granularity`-sized stripes that
/// are distributed round-robin across partitions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PartitionMap {
    num_partitions: u16,
    granularity: u64,
}

impl PartitionMap {
    /// Creates a map over `num_partitions` partitions with `granularity`-byte
    /// interleaving.
    ///
    /// # Panics
    ///
    /// Panics if `num_partitions` is zero or `granularity` is not a power of
    /// two at least the block size.
    pub fn new(num_partitions: u16, granularity: u64) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        assert!(
            granularity.is_power_of_two() && granularity >= BLOCK_BYTES,
            "granularity must be a power of two >= {BLOCK_BYTES}"
        );
        Self {
            num_partitions,
            granularity,
        }
    }

    /// Number of partitions.
    pub const fn num_partitions(self) -> u16 {
        self.num_partitions
    }

    /// Interleaving granularity in bytes.
    pub const fn granularity(self) -> u64 {
        self.granularity
    }

    /// Maps a physical address to its partition-local address.
    pub fn to_local(self, pa: PhysAddr) -> LocalAddr {
        let stripe = pa.raw() / self.granularity;
        let within = pa.raw() % self.granularity;
        let partition = PartitionId((stripe % self.num_partitions as u64) as u16);
        let local_stripe = stripe / self.num_partitions as u64;
        LocalAddr::new(partition, local_stripe * self.granularity + within)
    }

    /// Maps a partition-local address back to the physical address.
    pub fn to_phys(self, la: LocalAddr) -> PhysAddr {
        let local_stripe = la.offset / self.granularity;
        let within = la.offset % self.granularity;
        let stripe = local_stripe * self.num_partitions as u64 + la.partition.0 as u64;
        PhysAddr::new(stripe * self.granularity + within)
    }

    /// Bytes of the protected physical range that land in each partition.
    pub fn local_span(self, protected_bytes: u64) -> u64 {
        protected_bytes.div_ceil(self.num_partitions as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_simple() {
        let map = PartitionMap::new(12, 256);
        for raw in [0u64, 1, 255, 256, 257, 4095, 1 << 20, (1 << 32) - 1] {
            let pa = PhysAddr::new(raw);
            assert_eq!(map.to_phys(map.to_local(pa)), pa, "raw={raw:#x}");
        }
    }

    #[test]
    fn adjacent_stripes_hit_adjacent_partitions() {
        let map = PartitionMap::new(12, 256);
        let a = map.to_local(PhysAddr::new(0));
        let b = map.to_local(PhysAddr::new(256));
        assert_eq!(a.partition.0, 0);
        assert_eq!(b.partition.0, 1);
        assert_eq!(a.offset, b.offset);
    }

    #[test]
    fn wraparound_increments_local_offset() {
        let map = PartitionMap::new(12, 256);
        let a = map.to_local(PhysAddr::new(0));
        let b = map.to_local(PhysAddr::new(12 * 256));
        assert_eq!(b.partition, a.partition);
        assert_eq!(b.offset, a.offset + 256);
    }

    #[test]
    fn chunk_and_region_derivation() {
        let la = LocalAddr::new(PartitionId(3), 5 * 4096 + 129);
        assert_eq!(la.chunk().index, 5);
        assert_eq!(la.block_in_chunk(), 1);
        assert_eq!(la.region().index, (5 * 4096 + 129) / (16 * 1024));
    }

    #[test]
    fn sector_arithmetic() {
        let pa = PhysAddr::new(0x1234);
        assert_eq!(pa.block_base().raw(), 0x1200);
        assert_eq!(pa.sector_base().raw(), 0x1220);
        assert_eq!(pa.sector_in_block(), 1);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(raw in 0u64..(1 << 40), parts in 1u16..64, gran_log in 7u32..12) {
            let map = PartitionMap::new(parts, 1 << gran_log);
            let pa = PhysAddr::new(raw);
            prop_assert_eq!(map.to_phys(map.to_local(pa)), pa);
        }

        #[test]
        fn prop_local_offsets_dense(stripe in 0u64..10_000, parts in 1u16..33) {
            // Every partition sees a dense, gap-free sequence of stripes.
            let map = PartitionMap::new(parts, 256);
            let pa = PhysAddr::new(stripe * 256);
            let la = map.to_local(pa);
            prop_assert!(la.offset / 256 == stripe / parts as u64);
        }
    }
}
