//! A small deterministic PRNG used for reproducible trace generation.

/// SplitMix64 — a tiny, fast, well-distributed PRNG.
///
/// Workload generators need deterministic, seedable randomness that is
/// stable across platforms and independent of external crate versions, so
/// the simulator carries its own splitmix implementation.
///
/// ```
/// use gpu_types::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling (Lemire); slight bias is irrelevant
        // for workload generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounded_sampling_in_range() {
        let mut r = SplitMix64::new(1);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(2);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_frequency_roughly_matches() {
        let mut r = SplitMix64::new(3);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(4);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }
}
