//! A small in-tree FxHash-style hasher for the simulator's hot maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which is
//! DoS-resistant but costs tens of cycles per lookup.  The simulator's
//! hottest maps (L2 pending-fill tracking, MSHR entries, the functional
//! secure-memory stores) are keyed by trusted, internally generated `u64`
//! addresses, so collision-flooding resistance buys nothing — a
//! multiply-and-rotate hash in the style of rustc's `FxHasher` is both
//! faster and deterministic across runs (a requirement for the parallel
//! sweep executor's byte-identical-output guarantee).
//!
//! This is **not** a cryptographic hash and must never key data an
//! adversary controls.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from rustc's FxHasher (derived from the golden
/// ratio, chosen for good bit dispersion under wrapping multiplication).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Rotation applied before each mix so consecutive keys spread across the
/// whole word.
const ROTATE: u32 = 5;

/// A fast, deterministic, non-cryptographic hasher for trusted keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" and "ab\0" cannot collide trivially.
            self.mix(u64::from_le_bytes(tail) ^ ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.mix(n as u64);
        self.mix((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (zero-sized, `Default`-constructible).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`]; drop-in for hot simulator maps.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(0xDEAD_BEEFu64), hash_of(0xDEAD_BEEFu64));
        assert_eq!(hash_of("streaming"), hash_of("streaming"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Block-aligned addresses differing in one step must not collide.
        let hashes: Vec<u64> = (0..1024u64).map(|i| hash_of(i * 128)).collect();
        let unique: FxHashSet<u64> = hashes.iter().copied().collect();
        assert_eq!(unique.len(), hashes.len());
    }

    #[test]
    fn tail_length_matters() {
        assert_ne!(hash_of(b"ab".as_slice()), hash_of(b"ab\0".as_slice()));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 32, i);
        }
        assert_eq!(m.len(), 10_000);
        assert_eq!(m.get(&(42 * 32)), Some(&42));
        assert_eq!(m.get(&1), None);
    }
}
