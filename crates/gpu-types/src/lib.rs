//! Common types for the SHM (Secure Heterogeneous Memory) GPU simulator.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: physical and partition-local addresses, the partition mapping
//! used by the simulated GPU, memory-space classification (global, constant,
//! texture, local), memory access records, and the top-level hardware
//! configuration (Tables V and VI of the paper).
//!
//! # Address spaces
//!
//! The simulated GPU interleaves physical addresses across `num_partitions`
//! memory partitions at a fixed interleaving granularity (256 B in the
//! Turing-like baseline).  A *partition-local address* ("local address" in
//! the PSSM and SHM papers) is the byte offset within one partition after
//! that mapping.  Security metadata can be constructed from either address
//! kind; constructing it from local addresses removes cross-partition
//! redundancy, which is the key idea of PSSM and is inherited by SHM.
//!
//! ```
//! use gpu_types::{GpuConfig, PhysAddr};
//!
//! let cfg = GpuConfig::default();
//! let pa = PhysAddr::new(0x1_0040);
//! let loc = cfg.partition_map().to_local(pa);
//! assert_eq!(cfg.partition_map().to_phys(loc), pa);
//! ```

pub mod access;
pub mod addr;
pub mod config;
pub mod fxhash;
pub mod rng;
pub mod stats;

pub use access::{AccessKind, MemEvent, MemorySpace, Warp};
pub use addr::{ChunkId, LocalAddr, PartitionId, PartitionMap, PhysAddr, RegionId};
pub use config::{GpuConfig, MdcConfig, ShmConfig};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use rng::SplitMix64;
pub use stats::{SimStats, TrafficBytes, TrafficClass};

/// Size of a cache line / memory block in bytes (a "block" in the paper).
pub const BLOCK_BYTES: u64 = 128;

/// Size of a DRAM sector (minimum transfer granularity) in bytes.
pub const SECTOR_BYTES: u64 = 32;

/// Number of sectors in a cache line.
pub const SECTORS_PER_BLOCK: usize = (BLOCK_BYTES / SECTOR_BYTES) as usize;

/// Size of a streaming-detection chunk in bytes (4 KB in the paper).
pub const CHUNK_BYTES: u64 = 4096;

/// Number of 128 B blocks per 4 KB chunk.
pub const BLOCKS_PER_CHUNK: usize = (CHUNK_BYTES / BLOCK_BYTES) as usize;

/// Size of a read-only-detection region in bytes (16 KB in the paper).
pub const REGION_BYTES: u64 = 16 * 1024;

/// Bytes of MAC per protected 128 B block (8 B in the paper).
pub const MAC_BYTES_PER_BLOCK: u64 = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants_are_consistent() {
        assert_eq!(SECTORS_PER_BLOCK as u64 * SECTOR_BYTES, BLOCK_BYTES);
        assert_eq!(BLOCKS_PER_CHUNK as u64 * BLOCK_BYTES, CHUNK_BYTES);
        assert_eq!(REGION_BYTES % CHUNK_BYTES, 0);
    }
}
