//! Hardware configuration structures (Tables V, VI and IX of the paper).

use crate::addr::PartitionMap;

/// Top-level GPU configuration (Table V).
///
/// Defaults model the Nvidia-Turing-like baseline used by the paper: 30 SMs
/// at 1506 MHz, 12 memory partitions with two 128 KB L2 banks each (3 MB L2
/// total) and 336 GB/s of aggregate GDDR bandwidth.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Core clock in MHz (used only to convert bandwidth to bytes/cycle).
    pub core_clock_mhz: u32,
    /// Number of GDDR memory partitions.
    pub num_partitions: u16,
    /// Partition interleaving granularity in bytes.
    pub interleave_bytes: u64,
    /// L2 banks per partition.
    pub l2_banks_per_partition: u32,
    /// Capacity of each L2 bank in bytes.
    pub l2_bank_bytes: u64,
    /// L2 associativity.
    pub l2_assoc: u32,
    /// MSHR entries per L2 bank.
    pub l2_mshr_entries: u32,
    /// Requests merged per MSHR entry.
    pub l2_mshr_merges: u32,
    /// Aggregate DRAM bandwidth in GB/s.
    pub dram_bw_gbps: f64,
    /// Uncontended DRAM access latency in core cycles.
    pub dram_latency_cycles: u32,
    /// Bytes of device memory protected by the secure-memory engine.
    pub protected_bytes: u64,
    /// Maximum in-flight memory accesses per SM (memory-level parallelism).
    pub sm_max_outstanding: u32,
    /// Metadata-cache configuration (Table VI).
    pub mdc: MdcConfig,
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self {
            num_sms: 30,
            core_clock_mhz: 1506,
            num_partitions: 12,
            interleave_bytes: 256,
            l2_banks_per_partition: 2,
            l2_bank_bytes: 128 * 1024,
            l2_assoc: 16,
            l2_mshr_entries: 192,
            l2_mshr_merges: 16,
            dram_bw_gbps: 336.0,
            dram_latency_cycles: 220,
            protected_bytes: 4 << 30,
            sm_max_outstanding: 48,
            mdc: MdcConfig::default(),
        }
    }
}

impl GpuConfig {
    /// The partition interleaving map for this configuration.
    pub fn partition_map(&self) -> PartitionMap {
        PartitionMap::new(self.num_partitions, self.interleave_bytes)
    }

    /// DRAM bandwidth available to one partition, in bytes per core cycle.
    pub fn partition_bytes_per_cycle(&self) -> f64 {
        let total_bytes_per_cycle = self.dram_bw_gbps * 1e9 / (self.core_clock_mhz as f64 * 1e6);
        total_bytes_per_cycle / self.num_partitions as f64
    }

    /// Bytes of protected space mapped to each partition.
    pub fn protected_bytes_per_partition(&self) -> u64 {
        self.partition_map().local_span(self.protected_bytes)
    }
}

/// Metadata-cache (MDC) and memory-encryption-engine organization (Table VI).
#[derive(Clone, Debug, PartialEq)]
pub struct MdcConfig {
    /// Capacity of each metadata cache (counter / MAC / BMT) in bytes.
    pub cache_bytes: u64,
    /// Metadata cache line size in bytes.
    pub line_bytes: u64,
    /// Metadata cache associativity.
    pub assoc: u32,
    /// MSHR entries per metadata cache.
    pub mshr_entries: u32,
    /// Latency of the hash/MAC engine in cycles.
    pub hash_latency: u32,
    /// Latency of the pipelined AES engine in cycles.
    pub aes_latency: u32,
    /// Arity of the integrity tree (16 = BMT with 8 B hashes per 128 B
    /// node, 8 = SGX-style counter tree with 56-bit versions).
    pub tree_arity: u64,
    /// Bytes of MAC per 128 B block (8 default; 4 = PSSM's truncated MACs,
    /// which Section III-C shows is below the birthday-attack bound).
    pub mac_bytes_per_block: u64,
    /// Chunk-MAC coverage in bytes (4 KB in the paper).
    pub chunk_bytes: u64,
}

impl Default for MdcConfig {
    fn default() -> Self {
        Self {
            cache_bytes: 2 * 1024,
            line_bytes: 128,
            assoc: 4,
            mshr_entries: 256,
            hash_latency: 40,
            aes_latency: 40,
            tree_arity: 16,
            mac_bytes_per_block: 8,
            chunk_bytes: 4096,
        }
    }
}

/// Configuration of the SHM adaptive mechanisms (Section IV / Table IX).
#[derive(Clone, Debug, PartialEq)]
pub struct ShmConfig {
    /// Entries in the per-partition read-only predictor bit vector.
    pub readonly_predictor_entries: usize,
    /// Read-only region granularity in bytes (16 KB).
    pub readonly_region_bytes: u64,
    /// Entries in the per-partition streaming predictor bit vector.
    pub streaming_predictor_entries: usize,
    /// Streaming chunk granularity in bytes (4 KB).
    pub chunk_bytes: u64,
    /// Memory access trackers per partition.
    pub num_trackers: usize,
    /// Accesses per tracker monitoring phase (K).
    pub tracker_phase_accesses: u32,
    /// Tracker timeout in cycles.
    pub tracker_timeout_cycles: u64,
    /// Enable the L2-as-victim-cache mechanism.
    pub l2_victim_cache: bool,
    /// Sampled L2 miss-rate threshold above which the victim cache engages.
    pub l2_victim_miss_threshold: f64,
    /// Use oracle (profiled, unlimited) predictors — the SHM_upper_bound design.
    pub oracle_predictors: bool,
}

impl Default for ShmConfig {
    fn default() -> Self {
        Self {
            readonly_predictor_entries: 1024,
            readonly_region_bytes: 16 * 1024,
            streaming_predictor_entries: 2048,
            chunk_bytes: 4096,
            num_trackers: 8,
            tracker_phase_accesses: 32,
            tracker_timeout_cycles: 6000,
            l2_victim_cache: false,
            l2_victim_miss_threshold: 0.90,
            oracle_predictors: false,
        }
    }
}

impl ShmConfig {
    /// Storage cost in bits of one partition's predictors and trackers
    /// (Table IX: 128 B + 256 B + 8×71 bit in the default configuration).
    pub fn partition_storage_bits(&self) -> u64 {
        let ro = self.readonly_predictor_entries as u64;
        let st = self.streaming_predictor_entries as u64;
        let blocks_per_chunk = self.chunk_bytes / crate::BLOCK_BYTES;
        // tag (20b for 32-bit local addresses / 4 KB chunks) + write flag +
        // per-block 1-bit counters + 5-bit access counter + 13-bit timeout.
        let tracker_bits = 20 + 1 + blocks_per_chunk + 5 + 13;
        ro + st + self.num_trackers as u64 * tracker_bits
    }

    /// Total storage cost in bytes across `num_partitions` partitions.
    pub fn total_storage_bytes(&self, num_partitions: u16) -> u64 {
        (self.partition_storage_bits() * num_partitions as u64).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bandwidth_per_partition() {
        let cfg = GpuConfig::default();
        let bpc = cfg.partition_bytes_per_cycle();
        // 336 GB/s over 12 partitions at 1506 MHz ~= 18.6 B/cycle per partition.
        assert!((bpc - 18.59).abs() < 0.1, "got {bpc}");
    }

    #[test]
    fn table_ix_storage_overhead() {
        let shm = ShmConfig::default();
        // 1024 + 2048 + 8*71 bits = 3640 bits = 455 B per partition.
        assert_eq!(shm.partition_storage_bits(), 1024 + 2048 + 8 * 71);
        // 12 partitions: 5460 B (the paper's 5.33 KB total).
        assert_eq!(shm.total_storage_bytes(12), 5460);
    }

    #[test]
    fn protected_span_divides_across_partitions() {
        let cfg = GpuConfig::default();
        let span = cfg.protected_bytes_per_partition();
        assert!(span >= (4 << 30) / 12);
        assert!(span <= (4 << 30) / 12 + cfg.interleave_bytes);
    }
}
