//! Memory access records flowing through the simulated memory system.

use core::fmt;

use crate::addr::PhysAddr;

/// The GPU memory space an access targets.
///
/// Only off-chip spaces reach the memory partitions; on-chip spaces
/// (registers, shared memory) never appear in a trace.  The distinction
/// matters to the security engine: constant and texture memory are read-only
/// during kernel execution, so they need confidentiality and integrity but
/// not freshness (Table I of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MemorySpace {
    /// General-purpose global memory (read/write).
    Global,
    /// Per-thread local memory spills (read/write).
    Local,
    /// Constant memory (read-only during kernel execution).
    Constant,
    /// Texture memory (read-only during kernel execution).
    Texture,
    /// Instruction fetches from application code (read-only).
    Instruction,
}

impl MemorySpace {
    /// Whether the programming model guarantees this space is read-only
    /// during kernel execution.
    pub const fn is_architecturally_read_only(self) -> bool {
        matches!(
            self,
            MemorySpace::Constant | MemorySpace::Texture | MemorySpace::Instruction
        )
    }
}

impl fmt::Display for MemorySpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemorySpace::Global => "global",
            MemorySpace::Local => "local",
            MemorySpace::Constant => "constant",
            MemorySpace::Texture => "texture",
            MemorySpace::Instruction => "instruction",
        };
        f.write_str(s)
    }
}

/// Whether an access reads or writes memory.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load (an L2 miss becomes a DRAM read).
    Read,
    /// A store (an L2 write-back becomes a DRAM write).
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// Identifier of the issuing warp (used by the front-end for MLP limits).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Warp(pub u32);

/// One warp-level memory event in a kernel trace.
///
/// Each event models one coalesced 32 B sector access produced by a warp
/// (GPGPU-Sim style sectored accesses).  `think_cycles` is the number of
/// compute cycles the issuing SM spends before this access becomes ready,
/// which is how workload arithmetic intensity is expressed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemEvent {
    /// Physical address of the accessed 32 B sector.
    pub addr: PhysAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// Memory space of the access.
    pub space: MemorySpace,
    /// Issuing warp.
    pub warp: Warp,
    /// Compute cycles preceding this access on the issuing SM.
    pub think_cycles: u32,
}

impl MemEvent {
    /// Convenience constructor for a global-memory event with no think time.
    pub fn global(addr: PhysAddr, kind: AccessKind) -> Self {
        Self {
            addr,
            kind,
            space: MemorySpace::Global,
            warp: Warp(0),
            think_cycles: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_only_spaces() {
        assert!(MemorySpace::Constant.is_architecturally_read_only());
        assert!(MemorySpace::Texture.is_architecturally_read_only());
        assert!(MemorySpace::Instruction.is_architecturally_read_only());
        assert!(!MemorySpace::Global.is_architecturally_read_only());
        assert!(!MemorySpace::Local.is_architecturally_read_only());
    }

    #[test]
    fn display_names() {
        assert_eq!(MemorySpace::Global.to_string(), "global");
        assert_eq!(MemorySpace::Texture.to_string(), "texture");
    }

    #[test]
    fn event_constructor() {
        let e = MemEvent::global(PhysAddr::new(64), AccessKind::Write);
        assert!(e.kind.is_write());
        assert_eq!(e.space, MemorySpace::Global);
        assert_eq!(e.think_cycles, 0);
    }
}
