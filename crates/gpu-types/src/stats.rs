//! Simulation statistics: traffic accounting, breakdowns and derived metrics.

use core::fmt;
use std::ops::AddAssign;

/// Categories of DRAM traffic tracked separately (drives Fig. 14).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TrafficClass {
    /// Regular application data.
    Data,
    /// Encryption counter blocks.
    Counter,
    /// Per-block or per-chunk MACs.
    Mac,
    /// Bonsai Merkle Tree nodes.
    Bmt,
    /// Extra data re-fetches caused by streaming/read-only mispredictions.
    MispredictFixup,
}

impl TrafficClass {
    /// All classes, in display order.
    pub const ALL: [TrafficClass; 5] = [
        TrafficClass::Data,
        TrafficClass::Counter,
        TrafficClass::Mac,
        TrafficClass::Bmt,
        TrafficClass::MispredictFixup,
    ];

    /// Short label used in reports.
    pub const fn label(self) -> &'static str {
        match self {
            TrafficClass::Data => "data",
            TrafficClass::Counter => "counter",
            TrafficClass::Mac => "mac",
            TrafficClass::Bmt => "bmt",
            TrafficClass::MispredictFixup => "fixup",
        }
    }
}

/// Byte counters per traffic class.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct TrafficBytes {
    /// DRAM read bytes per class (indexed by `TrafficClass::ALL` order).
    pub read: [u64; 5],
    /// DRAM write bytes per class.
    pub write: [u64; 5],
}

impl TrafficBytes {
    /// Records `bytes` of DRAM traffic for `class`.
    pub fn record(&mut self, class: TrafficClass, bytes: u64, is_write: bool) {
        let idx = class as usize;
        if is_write {
            self.write[idx] += bytes;
        } else {
            self.read[idx] += bytes;
        }
    }

    /// Total bytes for one class, reads plus writes.
    pub fn class_total(&self, class: TrafficClass) -> u64 {
        let idx = class as usize;
        self.read[idx] + self.write[idx]
    }

    /// Total bytes of regular data traffic.
    pub fn data_bytes(&self) -> u64 {
        self.class_total(TrafficClass::Data)
    }

    /// Total bytes of security-metadata traffic (everything but data).
    pub fn metadata_bytes(&self) -> u64 {
        TrafficClass::ALL
            .iter()
            .filter(|c| !matches!(c, TrafficClass::Data))
            .map(|&c| self.class_total(c))
            .sum()
    }

    /// Metadata traffic normalized to data traffic (Fig. 14's y-axis).
    pub fn overhead_ratio(&self) -> f64 {
        let data = self.data_bytes();
        if data == 0 {
            0.0
        } else {
            self.metadata_bytes() as f64 / data as f64
        }
    }
}

impl AddAssign for TrafficBytes {
    fn add_assign(&mut self, rhs: Self) {
        for i in 0..5 {
            self.read[i] += rhs.read[i];
            self.write[i] += rhs.write[i];
        }
    }
}

/// End-of-run statistics from one simulation.
#[derive(Clone, Default, Debug, PartialEq)]
pub struct SimStats {
    /// Total simulated core cycles.
    pub cycles: u64,
    /// Instructions retired (trace events completed, including think time).
    pub instructions: u64,
    /// Warp-level memory accesses issued.
    pub accesses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L2 write-backs sent to DRAM.
    pub l2_writebacks: u64,
    /// Counter-cache hits/misses.
    pub ctr_hits: u64,
    /// Counter-cache misses.
    pub ctr_misses: u64,
    /// MAC-cache hits.
    pub mac_hits: u64,
    /// MAC-cache misses.
    pub mac_misses: u64,
    /// BMT-cache hits.
    pub bmt_hits: u64,
    /// BMT-cache misses.
    pub bmt_misses: u64,
    /// Victim-cache (L2) hits for metadata.
    pub victim_hits: u64,
    /// DRAM traffic broken down by class.
    pub traffic: TrafficBytes,
    /// Accesses that skipped counter fetch + BMT walk via the shared counter.
    pub readonly_fast_path: u64,
    /// Accesses served by a chunk-level MAC.
    pub chunk_mac_accesses: u64,
    /// Streaming-predictor mispredictions observed.
    pub stream_mispredictions: u64,
    /// Read-only-predictor mispredictions observed.
    pub readonly_mispredictions: u64,
    /// Sum of access completion latencies (completion - issue), cycles.
    pub lat_sum: u64,
    /// Maximum access completion latency observed.
    pub lat_max: u64,
    /// DRAM requests completed by the fabric (all traffic classes).
    pub dram_requests: u64,
    /// Pages migrated CPU→GPU through the secure inter-pool channel
    /// (heterogeneous-pool runs only; zero in single-pool mode).
    pub pool_migrations: u64,
    /// Pages spilled GPU→CPU to make room for a hot page.
    pub pool_spills: u64,
    /// Data accesses served by the CPU-side pool.
    pub pool_cpu_accesses: u64,
    /// Accesses that hit GPU-pool capacity pressure (gpu-only policy).
    pub pool_capacity_events: u64,
    /// Bytes the coherent link carried toward the GPU pool.
    pub link_bytes_to_gpu: u64,
    /// Bytes the coherent link carried toward the CPU pool.
    pub link_bytes_to_cpu: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// L2 miss rate over data accesses.
    pub fn l2_miss_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_misses as f64 / total as f64
        }
    }

    /// Achieved DRAM data bandwidth utilization against `peak_bytes_per_cycle`.
    pub fn bandwidth_utilization(&self, peak_bytes_per_cycle: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let total = self.traffic.data_bytes() + self.traffic.metadata_bytes();
        total as f64 / self.cycles as f64 / peak_bytes_per_cycle
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles={} instr={} ipc={:.3} l2_miss={:.1}%",
            self.cycles,
            self.instructions,
            self.ipc(),
            self.l2_miss_rate() * 100.0
        )?;
        write!(
            f,
            "traffic: data={}B metadata={}B overhead={:.2}%",
            self.traffic.data_bytes(),
            self.traffic.metadata_bytes(),
            self.traffic.overhead_ratio() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_accounting() {
        let mut t = TrafficBytes::default();
        t.record(TrafficClass::Data, 128, false);
        t.record(TrafficClass::Data, 32, true);
        t.record(TrafficClass::Mac, 32, false);
        t.record(TrafficClass::Bmt, 64, true);
        assert_eq!(t.data_bytes(), 160);
        assert_eq!(t.metadata_bytes(), 96);
        assert!((t.overhead_ratio() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn overhead_ratio_zero_data_is_zero() {
        let mut t = TrafficBytes::default();
        t.record(TrafficClass::Mac, 32, false);
        assert_eq!(t.overhead_ratio(), 0.0);
    }

    #[test]
    fn addassign_sums_fields() {
        let mut a = TrafficBytes::default();
        a.record(TrafficClass::Counter, 10, false);
        let mut b = TrafficBytes::default();
        b.record(TrafficClass::Counter, 5, true);
        a += b;
        assert_eq!(a.class_total(TrafficClass::Counter), 15);
    }

    #[test]
    fn ipc_and_miss_rate() {
        let stats = SimStats {
            cycles: 100,
            instructions: 250,
            l2_hits: 30,
            l2_misses: 70,
            ..Default::default()
        };
        assert!((stats.ipc() - 2.5).abs() < 1e-12);
        assert!((stats.l2_miss_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let stats = SimStats::default();
        assert_eq!(stats.ipc(), 0.0);
        assert_eq!(stats.l2_miss_rate(), 0.0);
        assert_eq!(stats.bandwidth_utilization(18.6), 0.0);
    }
}
