//! Epoch write-ahead log over secure-metadata updates.
//!
//! One [`WalRecord`] per logical write holds the before and after images of
//! everything the write touches off-chip: ciphertext, per-block MAC and the
//! counter sector (the BMT path is recomputable from the counters, so it is
//! never journaled).  Records are appended *before* the write's micro-ops
//! start and become durable in groups: the log buffer is flushed to the
//! persistence domain every `flush_interval` appends (group commit — the
//! "epoch" of the epoch WAL).
//!
//! `flush_interval == 1` is strict write-ahead logging: the record of a
//! torn write is always durable, so recovery can always redo or undo it.
//! Larger intervals trade durability for write traffic, exactly like a
//! buffered metadata cache: a crash inside an unflushed epoch leaves the
//! torn region with no journal record, and recovery can only detect and
//! quarantine it (the unrecoverable-detected outcome).

use shm_metadata::CounterSector;

/// Before/after images of one logical secure-memory write.
#[derive(Clone, Debug)]
pub struct WalRecord {
    /// Sequence number (submission order of the write).
    pub seq: usize,
    /// Block-aligned data address written.
    pub addr: u64,
    /// Stored ciphertext before the write.
    pub old_ct: [u8; 128],
    /// Stored per-block MAC before the write.
    pub old_mac: u64,
    /// Counter sector covering `addr` before the write.
    pub old_sector: CounterSector,
    /// Stored ciphertext after the write.
    pub new_ct: [u8; 128],
    /// Stored per-block MAC after the write.
    pub new_mac: u64,
    /// Counter sector covering `addr` after the write.
    pub new_sector: CounterSector,
}

/// An in-memory WAL with a durable prefix, modelling group commit.
#[derive(Clone, Debug)]
pub struct WriteAheadLog {
    records: Vec<WalRecord>,
    /// Records `0..durable` have reached the persistence domain.
    durable: usize,
    /// Appends per group commit (the epoch length); at least 1.
    flush_interval: usize,
}

impl WriteAheadLog {
    /// A fresh log flushing every `flush_interval` appends.
    pub fn new(flush_interval: usize) -> Self {
        Self {
            records: Vec::new(),
            durable: 0,
            flush_interval: flush_interval.max(1),
        }
    }

    /// Appends a record; when the unflushed epoch reaches the flush
    /// interval the whole buffer becomes durable.
    pub fn append(&mut self, record: WalRecord) {
        let _wal_phase = shm_metrics::phase::guard(shm_metrics::phase::Phase::Wal);
        self.records.push(record);
        if self.records.len() - self.durable >= self.flush_interval {
            self.durable = self.records.len();
            shm_metrics::counter!("shm_wal_flushes_total", "WAL group commits made durable").inc();
        }
    }

    /// Forces everything appended so far durable (clean shutdown).
    pub fn flush(&mut self) {
        let _wal_phase = shm_metrics::phase::guard(shm_metrics::phase::Phase::Wal);
        if self.durable < self.records.len() {
            shm_metrics::counter!("shm_wal_flushes_total", "WAL group commits made durable").inc();
        }
        self.durable = self.records.len();
    }

    /// Records that survive a power cut right now, oldest first.
    pub fn durable_records(&self) -> &[WalRecord] {
        &self.records[..self.durable]
    }

    /// The most recent *durable* record for `addr`, if any.
    pub fn durable_record_for(&self, addr: u64) -> Option<&WalRecord> {
        self.durable_records().iter().rev().find(|r| r.addr == addr)
    }

    /// Total records appended (durable or not).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The configured group-commit interval.
    pub fn flush_interval(&self) -> usize {
        self.flush_interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: usize, addr: u64) -> WalRecord {
        WalRecord {
            seq,
            addr,
            old_ct: [0; 128],
            old_mac: 0,
            old_sector: CounterSector::default(),
            new_ct: [1; 128],
            new_mac: 1,
            new_sector: CounterSector::default(),
        }
    }

    #[test]
    fn strict_wal_is_durable_per_append() {
        let mut log = WriteAheadLog::new(1);
        log.append(rec(0, 0x80));
        log.append(rec(1, 0x100));
        assert_eq!(log.durable_records().len(), 2);
    }

    #[test]
    fn group_commit_leaves_tail_epoch_volatile() {
        let mut log = WriteAheadLog::new(4);
        for i in 0..6 {
            log.append(rec(i, i as u64 * 128));
        }
        // First epoch of 4 flushed; the 2-record tail is volatile.
        assert_eq!(log.durable_records().len(), 4);
        assert!(log.durable_record_for(4 * 128).is_none());
        assert!(log.durable_record_for(2 * 128).is_some());
        log.flush();
        assert_eq!(log.durable_records().len(), 6);
    }

    #[test]
    fn latest_durable_record_wins_per_address() {
        let mut log = WriteAheadLog::new(1);
        log.append(rec(0, 0x80));
        log.append(rec(1, 0x80));
        assert_eq!(log.durable_record_for(0x80).expect("present").seq, 1);
    }
}
