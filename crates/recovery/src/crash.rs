//! Power-cut model and log-replay recovery for the secure-memory engine.
//!
//! A logical write of [`SecureMemory`] reaches DRAM as four micro-ops —
//! ① ciphertext, ② per-block MAC, ③ counter sector, ④ BMT path — so
//! cutting power at micro-op cycle `N` tears write `N / 4` between phase
//! `N % 4` and the next.  [`run_crash`] drives a seeded write workload,
//! journals it through a [`WriteAheadLog`], reconstructs the exact torn
//! DRAM state at the cut, then recovers: replay the durable log (redo the
//! torn write from its journaled after-images, or undo to the
//! before-images), rebuild stale counters and BMT branches through the
//! consistent [`SecureMemory`] restore path, re-verify every region and
//! classify the run.  The golden, uncrashed run is mirrored as plaintext
//! and every verifying read is checked against it: a read that verifies
//! but returns bytes outside the acceptable set is a **silent
//! divergence**, and the whole subsystem exists to prove there are none.

use gpu_types::{SplitMix64, BLOCK_BYTES};
use shm_crypto::KeyTuple;
use shm_metadata::SecureMemory;
use std::collections::HashMap;

use crate::wal::{WalRecord, WriteAheadLog};

/// Micro-ops (DRAM cycles) one logical secure write occupies:
/// ciphertext, block MAC, counter sector, BMT path.
pub const MICRO_OPS_PER_WRITE: u64 = 4;

/// One seeded crash experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashConfig {
    /// Seed for the write workload (addresses and payloads).
    pub seed: u64,
    /// Logical writes issued after the primed checkpoint.
    pub ops: usize,
    /// Micro-op cycle of the power cut, `0..=ops * MICRO_OPS_PER_WRITE`.
    pub at_cycle: u64,
    /// WAL group-commit interval (1 = strict write-ahead logging).
    pub flush_interval: usize,
    /// Distinct block slots the workload writes into.
    pub blocks: u64,
}

impl CrashConfig {
    /// The smoke-sized experiment the CLI and CI sweep: 12 writes over 8
    /// blocks with strict logging.
    pub fn smoke(seed: u64, at_cycle: u64) -> Self {
        Self {
            seed,
            ops: 12,
            at_cycle,
            flush_interval: 1,
            blocks: 8,
        }
    }

    /// Total micro-op cycles the workload spans.
    pub fn total_cycles(&self) -> u64 {
        self.ops as u64 * MICRO_OPS_PER_WRITE
    }
}

/// Classification of one whole crash-recovery run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashOutcome {
    /// The cut landed on an op boundary; every region verified as-is.
    Clean,
    /// At least one region was torn and log replay repaired all of them.
    Recovered,
    /// At least one torn region had no durable journal record; it was
    /// detected and quarantined, never served silently.
    UnrecoverableDetected,
}

impl CrashOutcome {
    /// Stable lower-case label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            CrashOutcome::Clean => "clean",
            CrashOutcome::Recovered => "recovered",
            CrashOutcome::UnrecoverableDetected => "unrecoverable_detected",
        }
    }
}

/// What recovery did to one region (block address).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegionOutcome {
    /// Verified without repair.
    Clean,
    /// Repaired by rolling forward to the journaled after-images.
    RecoveredRedo,
    /// Repaired by rolling back to the journaled before-images.
    RecoveredUndo,
    /// Torn with no durable record: detected, quarantined, never served.
    Quarantined,
}

/// Everything one crash experiment learned.
#[derive(Clone, Debug)]
pub struct CrashReport {
    /// The experiment configuration.
    pub config: CrashConfig,
    /// Writes fully committed before the cut.
    pub committed_ops: usize,
    /// Micro-ops of the torn write that landed (0 = boundary, no tear).
    pub torn_phase: u8,
    /// Address of the torn write, when there is one.
    pub torn_addr: Option<u64>,
    /// Per-region verdicts, sorted by address.
    pub regions: Vec<(u64, RegionOutcome)>,
    /// Verifying reads whose plaintext left the golden acceptable set
    /// (must be zero — the subsystem's core invariant).
    pub silent_divergences: usize,
    /// Regions re-verified after recovery (everything not quarantined).
    pub verified_regions: usize,
    /// Overall classification.
    pub outcome: CrashOutcome,
}

/// Deterministic payload of write `seq` under `seed` (priming uses
/// `seq == usize::MAX - slot`).
fn payload(seed: u64, seq: usize) -> [u8; 128] {
    let mut r = SplitMix64::new(seed ^ (seq as u64).rotate_left(23) ^ 0xD15C_0B5E);
    [r.next_u64() as u8; 128]
}

/// The seeded workload: `(addr, payload)` per logical write.
fn workload(cfg: &CrashConfig) -> Vec<(u64, [u8; 128])> {
    let mut rng = SplitMix64::new(cfg.seed ^ 0xC4A5_4C0D);
    (0..cfg.ops)
        .map(|seq| {
            let addr = rng.next_below(cfg.blocks) * BLOCK_BYTES;
            (addr, payload(cfg.seed, seq))
        })
        .collect()
}

/// Runs one crash experiment end to end; see the module docs for the
/// phases.  Never panics: every anomaly is reported in the returned
/// [`CrashReport`] (tests assert on it).
pub fn run_crash(cfg: CrashConfig) -> CrashReport {
    let keys = KeyTuple::derive(cfg.seed ^ 0x0FF1_CE00);
    let span = cfg.blocks * BLOCK_BYTES;
    let mut mem = SecureMemory::new(span, &keys);
    let mut log = WriteAheadLog::new(cfg.flush_interval);

    // Golden mirror: the plaintext an uncrashed run would hold.
    let mut golden: HashMap<u64, [u8; 128]> = HashMap::new();

    // Primed checkpoint: every slot durably written before cycle 0.
    for slot in 0..cfg.blocks {
        let addr = slot * BLOCK_BYTES;
        let init = payload(cfg.seed ^ 0xBA5E, usize::MAX - slot as usize);
        mem.write_block(addr, &init);
        golden.insert(addr, init);
    }

    let ops = workload(&cfg);
    let committed = ((cfg.at_cycle / MICRO_OPS_PER_WRITE) as usize).min(cfg.ops);
    let torn_phase = if committed < cfg.ops {
        (cfg.at_cycle % MICRO_OPS_PER_WRITE) as u8
    } else {
        0
    };

    // Committed writes: journal, then apply all four micro-ops.
    for (seq, &(addr, pt)) in ops.iter().take(committed).enumerate() {
        let (old_ct, old_mac) = mem.snapshot_block(addr);
        let old_sector = mem.snapshot_counter(addr);
        mem.write_block(addr, &pt);
        let (new_ct, new_mac) = mem.snapshot_block(addr);
        let new_sector = mem.snapshot_counter(addr);
        log.append(WalRecord {
            seq,
            addr,
            old_ct,
            old_mac,
            old_sector,
            new_ct,
            new_mac,
            new_sector,
        });
        golden.insert(addr, pt);
    }

    // The torn write: journaled (append precedes the micro-ops), applied in
    // full, then rolled back to the micro-op boundary the cut hit.
    let mut torn_addr = None;
    let mut torn_new_pt = None;
    if torn_phase > 0 {
        let (addr, pt) = ops[committed];
        let (old_ct, old_mac) = mem.snapshot_block(addr);
        let old_sector = mem.snapshot_counter(addr);
        let old_leaf = mem.snapshot_bmt_leaf(addr);
        mem.write_block(addr, &pt);
        let (new_ct, new_mac) = mem.snapshot_block(addr);
        let new_sector = mem.snapshot_counter(addr);
        log.append(WalRecord {
            seq: committed,
            addr,
            old_ct,
            old_mac,
            old_sector: old_sector.clone(),
            new_ct,
            new_mac,
            new_sector,
        });
        match torn_phase {
            // ① landed: MAC, counter and BMT still hold pre-write state.
            1 => {
                mem.restore_block_mac(addr, old_mac);
                mem.restore_counter(addr, old_sector);
            }
            // ①② landed: counter and BMT still hold pre-write state.
            2 => {
                mem.restore_counter(addr, old_sector);
            }
            // ①②③ landed: only the BMT path is stale.
            _ => {
                mem.tamper_bmt_leaf(addr, old_leaf);
            }
        }
        torn_addr = Some(addr);
        torn_new_pt = Some(pt);
    }

    // --- Power is back: detect, replay the log tail, re-verify. ---
    let acceptable = |addr: u64, pt: &[u8; 128]| -> bool {
        golden.get(&addr).is_some_and(|g| g == pt)
            || (torn_addr == Some(addr) && torn_new_pt.as_ref() == Some(pt))
    };

    // Detection pass: which regions fail verification as-is?  A torn BMT
    // path breaks *every* block sharing the counter line, so failures here
    // are symptoms, not yet verdicts.
    let failing: Vec<u64> = (0..cfg.blocks)
        .map(|slot| slot * BLOCK_BYTES)
        .filter(|&addr| mem.read_block(addr).is_err())
        .collect();

    // Repair pass.  The only record recovery may trust for repair is the
    // log tail, and only when that tail is the *last write issued* — the
    // write-ahead guarantee says a torn write's record precedes its
    // micro-ops, so "durable tail == last append" identifies the tear
    // exactly.  Replaying any older record would resurrect
    // stale-but-authentic state (a self-replay), so it is never done; a
    // tear inside an unflushed group-commit epoch therefore stays
    // unrecoverable — and detected.
    let mut repaired: Option<(u64, RegionOutcome)> = None;
    if let Some(tail) = log.durable_records().last() {
        if tail.seq + 1 == log.len() && failing.contains(&tail.addr) {
            let addr = tail.addr;
            // Redo: roll forward to the after-images; restore_counter
            // rebuilds the BMT branch, transitively healing line-mates
            // that failed only through the shared leaf.
            mem.restore_ciphertext(addr, tail.new_ct);
            mem.restore_block_mac(addr, tail.new_mac);
            mem.restore_counter(addr, tail.new_sector.clone());
            match mem.read_block(addr) {
                Ok(pt) if acceptable(addr, &pt) => {
                    repaired = Some((addr, RegionOutcome::RecoveredRedo));
                }
                _ => {
                    // Redo images rejected: undo to the before-images.
                    mem.restore_ciphertext(addr, tail.old_ct);
                    mem.restore_block_mac(addr, tail.old_mac);
                    mem.restore_counter(addr, tail.old_sector.clone());
                    if matches!(mem.read_block(addr), Ok(pt) if acceptable(addr, &pt)) {
                        repaired = Some((addr, RegionOutcome::RecoveredUndo));
                    }
                }
            }
        }
    }

    // Re-verification pass over every region: what still fails after
    // replay is quarantined, never served.
    let mut regions = Vec::new();
    let mut silent = 0usize;
    let mut verified = 0usize;
    for slot in 0..cfg.blocks {
        let addr = slot * BLOCK_BYTES;
        match mem.read_block(addr) {
            Ok(pt) => {
                if !acceptable(addr, &pt) {
                    silent += 1;
                }
                verified += 1;
                let outcome = match repaired {
                    Some((a, o)) if a == addr => o,
                    _ => RegionOutcome::Clean,
                };
                regions.push((addr, outcome));
            }
            Err(_) => regions.push((addr, RegionOutcome::Quarantined)),
        }
    }

    let quarantined = regions
        .iter()
        .filter(|(_, o)| *o == RegionOutcome::Quarantined)
        .count();
    let repaired = regions
        .iter()
        .filter(|(_, o)| {
            matches!(
                o,
                RegionOutcome::RecoveredRedo | RegionOutcome::RecoveredUndo
            )
        })
        .count();
    let outcome = if quarantined > 0 {
        CrashOutcome::UnrecoverableDetected
    } else if repaired > 0 {
        CrashOutcome::Recovered
    } else {
        CrashOutcome::Clean
    };

    CrashReport {
        config: cfg,
        committed_ops: committed,
        torn_phase,
        torn_addr,
        regions,
        silent_divergences: silent,
        verified_regions: verified,
        outcome,
    }
}

/// A crash experiment at every micro-op cycle of the workload.
#[derive(Clone, Debug)]
pub struct CrashSweepReport {
    /// Per-cycle reports, `at_cycle == index`.
    pub reports: Vec<CrashReport>,
}

impl CrashSweepReport {
    /// Runs cut after cut: `at_cycle` from 0 through the whole workload.
    pub fn new(seed: u64, ops: usize, flush_interval: usize) -> Self {
        let total = ops as u64 * MICRO_OPS_PER_WRITE;
        let reports = (0..=total)
            .map(|at_cycle| {
                run_crash(CrashConfig {
                    at_cycle,
                    ops,
                    flush_interval,
                    ..CrashConfig::smoke(seed, at_cycle)
                })
            })
            .collect();
        Self { reports }
    }

    /// Count of runs with the given outcome.
    pub fn count(&self, outcome: CrashOutcome) -> usize {
        self.reports.iter().filter(|r| r.outcome == outcome).count()
    }

    /// Silent divergences summed over every run (must be zero).
    pub fn total_silent_divergences(&self) -> usize {
        self.reports.iter().map(|r| r.silent_divergences).sum()
    }

    /// Fixed-format summary table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let first = &self.reports[0].config;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "crash sweep: seed {} / {} ops / flush interval {} / {} cut points",
            first.seed,
            first.ops,
            first.flush_interval,
            self.reports.len()
        );
        for outcome in [
            CrashOutcome::Clean,
            CrashOutcome::Recovered,
            CrashOutcome::UnrecoverableDetected,
        ] {
            let _ = writeln!(out, "  {:<24} {}", outcome.label(), self.count(outcome));
        }
        let _ = writeln!(
            out,
            "  {:<24} {}",
            "silent_divergences",
            self.total_silent_divergences()
        );
        out
    }
}

/// Convenience wrapper: full sweep with [`CrashConfig::smoke`] sizing.
pub fn crash_sweep(seed: u64, ops: usize, flush_interval: usize) -> CrashSweepReport {
    CrashSweepReport::new(seed, ops, flush_interval)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_cut_is_clean() {
        for at in [0, 4, 8, 48] {
            let r = run_crash(CrashConfig::smoke(7, at));
            assert_eq!(r.outcome, CrashOutcome::Clean, "cycle {at}");
            assert_eq!(r.silent_divergences, 0);
            assert!(r.torn_addr.is_none());
        }
    }

    #[test]
    fn mid_write_cut_recovers_under_strict_wal() {
        for phase in 1..4u64 {
            let r = run_crash(CrashConfig::smoke(7, 4 * 5 + phase));
            assert_eq!(r.outcome, CrashOutcome::Recovered, "phase {phase}");
            assert_eq!(r.silent_divergences, 0);
            assert!(r.torn_addr.is_some());
            assert!(r
                .regions
                .iter()
                .any(|(_, o)| matches!(o, RegionOutcome::RecoveredRedo)));
        }
    }

    #[test]
    fn unflushed_epoch_tear_is_detected_not_silent() {
        // Flush interval 4: a tear inside an unflushed epoch has no durable
        // record — the region must be quarantined, never served.
        let cfg = CrashConfig {
            flush_interval: 4,
            at_cycle: 4 * 5 + 2,
            ..CrashConfig::smoke(7, 0)
        };
        let r = run_crash(cfg);
        assert_eq!(r.outcome, CrashOutcome::UnrecoverableDetected);
        assert_eq!(r.silent_divergences, 0);
    }

    #[test]
    fn same_config_same_report() {
        let a = run_crash(CrashConfig::smoke(11, 17));
        let b = run_crash(CrashConfig::smoke(11, 17));
        assert_eq!(a.regions, b.regions);
        assert_eq!(a.outcome, b.outcome);
    }

    #[test]
    fn sweep_covers_every_cycle_with_zero_divergence() {
        let sweep = crash_sweep(7, 6, 1);
        assert_eq!(sweep.reports.len(), 25);
        assert_eq!(sweep.total_silent_divergences(), 0);
        assert_eq!(sweep.count(CrashOutcome::UnrecoverableDetected), 0);
        assert!(sweep.count(CrashOutcome::Recovered) > 0);
        assert!(sweep.count(CrashOutcome::Clean) > 0);
        assert!(sweep.render().contains("silent_divergences       0"));
    }
}
