//! Crash consistency for the secure-memory model and the sweep harness.
//!
//! Two layers, one concern: nothing the system said it durably did may be
//! silently lost or silently wrong after a power cut or a kill signal.
//!
//! **Layer 1 — model level** ([`wal`], [`crash`]).  Every logical write of
//! [`shm_metadata::SecureMemory`] lands in DRAM as four separate micro-ops
//! (ciphertext, per-block MAC, counter sector, BMT path), so a power cut
//! can tear a write between any two of them.  [`wal::WriteAheadLog`]
//! journals before/after images of each write with a group-commit flush
//! interval; [`crash::run_crash`] cuts power at an arbitrary micro-op
//! cycle, reconstructs the torn DRAM state, runs
//! [`crash::recover`]-style log replay, re-verifies every region and
//! classifies the run as clean / recovered / unrecoverable-detected —
//! asserting **zero silent divergence** against the uncrashed golden run.
//!
//! **Layer 2 — harness level** ([`journal`]).  A sweep is a list of
//! independent (benchmark, design) jobs; [`journal::JobJournal`] is a
//! durable JSONL record of completed jobs keyed by label and guarded by a
//! config hash.  [`journal::map_journaled`] skips already-journaled jobs,
//! appends each completion durably *as it finishes*, and drains in-flight
//! jobs on cooperative cancellation — so `--resume` after SIGINT/SIGTERM
//! or a kill re-runs only what is missing and reproduces byte-identical
//! final tables.  The JSONL journal format is deliberately the seam a
//! future distributed backend can speak.
//!
//! [`checkpoint`] extends layer 2 to the cluster: the distributed
//! coordinator periodically checkpoints assignment/result state in the
//! same JSONL-with-config-guard discipline, so a coordinator killed
//! mid-sweep restarts, replays the checkpoint, re-dispatches only the
//! unresolved jobs, and renders byte-identical merged tables.

pub mod checkpoint;
pub mod crash;
pub mod journal;
pub mod wal;

pub use checkpoint::{CkptOutcome, CoordinatorCheckpoint, CHECKPOINT_VERSION};
pub use crash::{
    crash_sweep, run_crash, CrashConfig, CrashOutcome, CrashReport, CrashSweepReport,
    RegionOutcome, MICRO_OPS_PER_WRITE,
};
pub use journal::{
    config_hash, map_journaled, JobJournal, JournalCodec, JournaledSweep, RecoveryError,
    SweepOptions,
};
pub use wal::{WalRecord, WriteAheadLog};
