//! Durable job journal + resumable sweep execution.
//!
//! A sweep is a list of independent jobs with stable string labels (e.g.
//! `"fdtd2d under SHM"`).  [`JobJournal`] is an append-only JSONL file: a
//! leading `journal_meta` line carrying a config hash, then one `job` line
//! per completed job with its encoded result.  Each completion is appended
//! and synced *as it happens*, from whichever worker thread finished it, so
//! a SIGKILL at any instant leaves at most one torn final line — which
//! [`JobJournal::open`] tolerates and drops.
//!
//! [`map_journaled`] is the resume engine: journaled jobs are skipped and
//! their results decoded back (`reused`), missing jobs run on a
//! [`sim_exec::Executor`] under a [`CancelToken`] (`executed`), and results
//! come back in submission order — so a resumed sweep renders the exact
//! bytes an uninterrupted one would.  The config hash guards against
//! resuming with a different benchmark set, scale or design list.

use gpu_types::{SimStats, TrafficBytes};
use sim_exec::{CancelToken, Executor, JobPanic, LabelledPanic, SweepError};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal format version; bump on any schema change.
pub const JOURNAL_VERSION: u32 = 1;

/// FNV-1a hash of an ordered list of config parts (benchmark names, design
/// labels, scale, …) — the guard a journal stores so `--resume` refuses to
/// mix results from different sweep configurations.
pub fn config_hash(parts: &[&str]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for p in parts {
        for b in p.bytes() {
            eat(b);
        }
        eat(0x1f); // unit separator: ["ab","c"] != ["a","bc"]
    }
    h
}

/// How a job result crosses the journal boundary.  Implementations must
/// round-trip exactly: `decode(encode(x)) == x`, or resumed tables would
/// not be byte-identical.
pub trait JournalCodec: Sized {
    /// Appends the JSON value encoding `self` (no surrounding whitespace).
    fn encode_journal(&self, out: &mut String);
    /// Parses a value previously produced by [`Self::encode_journal`].
    fn decode_journal(payload: &str) -> Option<Self>;
}

/// Extracts `"key":<u64>` from a flat JSON object.
pub(crate) fn json_u64(s: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = &s[s.find(&pat)? + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key":[a,b,c,d,e]` from a flat JSON object.
fn json_arr5(s: &str, key: &str) -> Option<[u64; 5]> {
    let pat = format!("\"{key}\":[");
    let rest = &s[s.find(&pat)? + pat.len()..];
    let body = &rest[..rest.find(']')?];
    let mut out = [0u64; 5];
    let mut parts = body.split(',');
    for slot in &mut out {
        *slot = parts.next()?.trim().parse().ok()?;
    }
    parts.next().is_none().then_some(out)
}

impl JournalCodec for SimStats {
    fn encode_journal(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"cycles\":{},\"instructions\":{},\"accesses\":{},\"l2_hits\":{},\"l2_misses\":{},\
             \"l2_writebacks\":{},\"ctr_hits\":{},\"ctr_misses\":{},\"mac_hits\":{},\
             \"mac_misses\":{},\"bmt_hits\":{},\"bmt_misses\":{},\"victim_hits\":{},",
            self.cycles,
            self.instructions,
            self.accesses,
            self.l2_hits,
            self.l2_misses,
            self.l2_writebacks,
            self.ctr_hits,
            self.ctr_misses,
            self.mac_hits,
            self.mac_misses,
            self.bmt_hits,
            self.bmt_misses,
            self.victim_hits,
        );
        for (key, arr) in [("read", &self.traffic.read), ("write", &self.traffic.write)] {
            let _ = write!(out, "\"{key}\":[");
            for (i, v) in arr.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push_str("],");
        }
        let _ = write!(
            out,
            "\"readonly_fast_path\":{},\"chunk_mac_accesses\":{},\"stream_mispredictions\":{},\
             \"readonly_mispredictions\":{},\"lat_sum\":{},\"lat_max\":{},\"dram_requests\":{},\
             \"pool_migrations\":{},\"pool_spills\":{},\"pool_cpu_accesses\":{},\
             \"pool_capacity_events\":{},\"link_bytes_to_gpu\":{},\"link_bytes_to_cpu\":{}}}",
            self.readonly_fast_path,
            self.chunk_mac_accesses,
            self.stream_mispredictions,
            self.readonly_mispredictions,
            self.lat_sum,
            self.lat_max,
            self.dram_requests,
            self.pool_migrations,
            self.pool_spills,
            self.pool_cpu_accesses,
            self.pool_capacity_events,
            self.link_bytes_to_gpu,
            self.link_bytes_to_cpu,
        );
    }

    fn decode_journal(payload: &str) -> Option<Self> {
        Some(SimStats {
            cycles: json_u64(payload, "cycles")?,
            instructions: json_u64(payload, "instructions")?,
            accesses: json_u64(payload, "accesses")?,
            l2_hits: json_u64(payload, "l2_hits")?,
            l2_misses: json_u64(payload, "l2_misses")?,
            l2_writebacks: json_u64(payload, "l2_writebacks")?,
            ctr_hits: json_u64(payload, "ctr_hits")?,
            ctr_misses: json_u64(payload, "ctr_misses")?,
            mac_hits: json_u64(payload, "mac_hits")?,
            mac_misses: json_u64(payload, "mac_misses")?,
            bmt_hits: json_u64(payload, "bmt_hits")?,
            bmt_misses: json_u64(payload, "bmt_misses")?,
            victim_hits: json_u64(payload, "victim_hits")?,
            traffic: TrafficBytes {
                read: json_arr5(payload, "read")?,
                write: json_arr5(payload, "write")?,
            },
            readonly_fast_path: json_u64(payload, "readonly_fast_path")?,
            chunk_mac_accesses: json_u64(payload, "chunk_mac_accesses")?,
            stream_mispredictions: json_u64(payload, "stream_mispredictions")?,
            readonly_mispredictions: json_u64(payload, "readonly_mispredictions")?,
            lat_sum: json_u64(payload, "lat_sum")?,
            lat_max: json_u64(payload, "lat_max")?,
            dram_requests: json_u64(payload, "dram_requests")?,
            pool_migrations: json_u64(payload, "pool_migrations")?,
            pool_spills: json_u64(payload, "pool_spills")?,
            pool_cpu_accesses: json_u64(payload, "pool_cpu_accesses")?,
            pool_capacity_events: json_u64(payload, "pool_capacity_events")?,
            link_bytes_to_gpu: json_u64(payload, "link_bytes_to_gpu")?,
            link_bytes_to_cpu: json_u64(payload, "link_bytes_to_cpu")?,
        })
    }
}

impl JournalCodec for String {
    fn encode_journal(&self, out: &mut String) {
        out.push('"');
        escape_into(self, out);
        out.push('"');
    }

    fn decode_journal(payload: &str) -> Option<Self> {
        let inner = payload.strip_prefix('"')?.strip_suffix('"')?;
        unescape(inner)
    }
}

pub(crate) fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

pub(crate) fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Anything the crash-consistency layer can fail with.
#[derive(Debug)]
pub enum RecoveryError {
    /// Journal file I/O failed.
    Io(std::io::Error),
    /// The journal on disk was written under a different configuration.
    ConfigMismatch {
        /// Journal file path.
        path: PathBuf,
        /// Hash the caller's configuration produces.
        expected: u64,
        /// Hash stored in the journal.
        found: u64,
    },
    /// A non-final journal line failed to parse (real corruption — a torn
    /// *final* line is tolerated and dropped instead).
    Corrupt {
        /// Journal file path.
        path: PathBuf,
        /// 1-based line number of the offending record.
        line: usize,
    },
    /// One or more jobs panicked while running the missing set.
    Sweep(SweepError),
}

impl core::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "journal I/O error: {e}"),
            RecoveryError::ConfigMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "journal {} was written under a different configuration \
                 (expected hash {expected:#018x}, found {found:#018x}); \
                 delete it or re-run without --resume",
                path.display()
            ),
            RecoveryError::Corrupt { path, line } => {
                write!(f, "journal {} is corrupt at line {line}", path.display())
            }
            RecoveryError::Sweep(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<std::io::Error> for RecoveryError {
    fn from(e: std::io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

impl From<SweepError> for RecoveryError {
    fn from(e: SweepError) -> Self {
        RecoveryError::Sweep(e)
    }
}

/// A durable JSONL record of completed sweep jobs, keyed by label.
#[derive(Debug)]
pub struct JobJournal {
    path: PathBuf,
    file: std::fs::File,
    completed: BTreeMap<String, String>,
    /// Which worker produced each result (distributed sweeps only; local
    /// sweeps record no attribution).
    workers: BTreeMap<String, String>,
}

impl JobJournal {
    /// Opens (or creates) the journal at `path` for the configuration
    /// hashed as `config_hash`.
    ///
    /// An existing journal is validated — its meta line must carry the same
    /// version and config hash — and its complete `job` lines are loaded.
    /// A torn final line (crash mid-append) is dropped silently; a torn
    /// line anywhere else is reported as [`RecoveryError::Corrupt`].
    ///
    /// # Errors
    ///
    /// [`RecoveryError::Io`], [`RecoveryError::ConfigMismatch`] or
    /// [`RecoveryError::Corrupt`].
    pub fn open(path: impl AsRef<Path>, config_hash: u64) -> Result<Self, RecoveryError> {
        let path = path.as_ref().to_path_buf();
        let existing = match std::fs::read_to_string(&path) {
            Ok(s) => Some(s),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };

        let mut completed = BTreeMap::new();
        let mut workers = BTreeMap::new();
        let mut needs_meta = true;
        if let Some(doc) = &existing {
            let lines: Vec<&str> = doc.lines().collect();
            for (i, line) in lines.iter().enumerate() {
                let is_last = i + 1 == lines.len();
                if i == 0 {
                    match parse_meta(line) {
                        Some((version, found)) => {
                            if version != JOURNAL_VERSION || found != config_hash {
                                return Err(RecoveryError::ConfigMismatch {
                                    path,
                                    expected: config_hash,
                                    found,
                                });
                            }
                            needs_meta = false;
                        }
                        None if is_last => break, // torn meta: rewrite below
                        None => return Err(RecoveryError::Corrupt { path, line: 1 }),
                    }
                    continue;
                }
                match parse_job(line) {
                    Some((label, worker, payload)) => {
                        if let Some(w) = worker {
                            workers.insert(label.clone(), w);
                        }
                        completed.insert(label, payload);
                    }
                    None if is_last => {} // torn final record: drop it
                    None => return Err(RecoveryError::Corrupt { path, line: i + 1 }),
                }
            }
        }

        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        if needs_meta {
            // Fresh (or torn-before-meta) journal: start it with the guard.
            let line = format!(
                "{{\"type\":\"journal_meta\",\"version\":{JOURNAL_VERSION},\
                 \"config_hash\":\"{config_hash:016x}\"}}\n"
            );
            file.write_all(line.as_bytes())?;
            file.sync_data()?;
        }
        Ok(Self {
            path,
            file,
            completed,
            workers,
        })
    }

    /// Journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Completed jobs on record.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// True when no job has completed yet.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// True when `label` has a completed result on record.
    pub fn contains(&self, label: &str) -> bool {
        self.completed.contains_key(label)
    }

    /// Labels of every completed job, sorted.
    pub fn completed_labels(&self) -> Vec<&str> {
        self.completed.keys().map(String::as_str).collect()
    }

    /// Decodes the recorded result for `label`, if present and readable.
    pub fn get<T: JournalCodec>(&self, label: &str) -> Option<T> {
        T::decode_journal(self.completed.get(label)?)
    }

    /// Appends one completed job durably: the whole line is written in a
    /// single call and synced before this returns, so a crash can tear at
    /// most the line being appended — never an earlier record.
    ///
    /// # Errors
    ///
    /// Propagates file write/sync errors.
    pub fn record<T: JournalCodec>(&mut self, label: &str, value: &T) -> std::io::Result<()> {
        self.record_with_worker(label, None, value)
    }

    /// [`JobJournal::record`], attributing the result to the distributed
    /// worker that produced it.  The attribution is informational — resume
    /// matches on labels only, so a journal written by a cluster resumes
    /// fine locally and vice versa.
    ///
    /// # Errors
    ///
    /// Propagates file write/sync errors.
    pub fn record_with_worker<T: JournalCodec>(
        &mut self,
        label: &str,
        worker: Option<&str>,
        value: &T,
    ) -> std::io::Result<()> {
        let mut line = String::with_capacity(128);
        line.push_str("{\"type\":\"job\",\"label\":\"");
        escape_into(label, &mut line);
        line.push('"');
        if let Some(w) = worker {
            line.push_str(",\"worker\":\"");
            escape_into(w, &mut line);
            line.push('"');
        }
        line.push_str(",\"payload\":");
        let mut payload = String::new();
        value.encode_journal(&mut payload);
        line.push_str(&payload);
        line.push_str("}\n");
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()?;
        self.completed.insert(label.to_string(), payload);
        if let Some(w) = worker {
            self.workers.insert(label.to_string(), w.to_string());
        }
        Ok(())
    }

    /// Which worker produced the result for `label`, when the journal was
    /// written by a distributed sweep.
    pub fn worker_of(&self, label: &str) -> Option<&str> {
        self.workers.get(label).map(String::as_str)
    }
}

/// Parses the `journal_meta` line into `(version, config_hash)`.
fn parse_meta(line: &str) -> Option<(u32, u64)> {
    if !line.starts_with("{\"type\":\"journal_meta\"") || !line.ends_with('}') {
        return None;
    }
    let version = json_u64(line, "version")? as u32;
    let pat = "\"config_hash\":\"";
    let rest = &line[line.find(pat)? + pat.len()..];
    let hex = &rest[..rest.find('"')?];
    Some((version, u64::from_str_radix(hex, 16).ok()?))
}

/// Finds the closing quote of an escaped string starting at `s[0]`.
fn escaped_string_end(s: &str) -> Option<usize> {
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        match (escaped, c) {
            (true, _) => escaped = false,
            (false, '\\') => escaped = true,
            (false, '"') => return Some(i),
            _ => {}
        }
    }
    None
}

/// Parses a `job` line into `(label, worker, payload)`.  The `worker`
/// field is optional — local sweeps never write it — so journals from
/// before the distributed backend still parse.
fn parse_job(line: &str) -> Option<(String, Option<String>, String)> {
    let rest = line.strip_prefix("{\"type\":\"job\",\"label\":\"")?;
    if !line.ends_with('}') {
        return None;
    }
    let end = escaped_string_end(rest)?;
    let label = unescape(&rest[..end])?;
    let mut rest = rest[end..].strip_prefix('"')?;
    let mut worker = None;
    if let Some(w) = rest.strip_prefix(",\"worker\":\"") {
        let wend = escaped_string_end(w)?;
        worker = Some(unescape(&w[..wend])?);
        rest = w[wend..].strip_prefix('"')?;
    }
    let payload = rest.strip_prefix(",\"payload\":")?;
    let payload = payload.strip_suffix('}')?;
    Some((label, worker, payload.to_string()))
}

/// Knobs for [`map_journaled`] beyond the journal itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepOptions {
    /// Deterministic kill switch for tests and CI: trip the cancel token
    /// after this many journal appends *in this invocation*, simulating a
    /// crash at a fixed job index.
    pub crash_after_jobs: Option<usize>,
}

/// What a journaled sweep produced.
#[derive(Clone, Debug)]
pub struct JournaledSweep<T> {
    /// Per-item results in submission order; `None` = not completed (the
    /// sweep was interrupted before the job ran).
    pub results: Vec<Option<T>>,
    /// Jobs whose results were decoded from the journal.
    pub reused: usize,
    /// Jobs executed (and journaled) by this invocation.
    pub executed: usize,
    /// True when cancellation left at least one job incomplete.
    pub interrupted: bool,
}

impl<T> JournaledSweep<T> {
    /// All results, when every job completed; `None` if interrupted.
    pub fn complete(self) -> Option<Vec<T>> {
        self.results.into_iter().collect()
    }
}

/// Runs `work` over `items` with journal-backed resume and cooperative
/// cancellation — see the module docs for the contract.
///
/// Completions are journaled from worker threads *as they finish*; when
/// `token` trips (Ctrl-C, or the [`SweepOptions::crash_after_jobs`] test
/// knob), workers stop pulling new jobs, in-flight jobs drain into the
/// journal, and the partial result set comes back with
/// [`JournaledSweep::interrupted`] set.
///
/// # Errors
///
/// [`RecoveryError::Sweep`] when any job panicked, [`RecoveryError::Io`]
/// when a journal append failed (the sweep stops early in that case).
pub fn map_journaled<I, T, F, L>(
    exec: &Executor,
    items: &[I],
    journal: &mut JobJournal,
    token: &CancelToken,
    opts: SweepOptions,
    label: L,
    work: F,
) -> Result<JournaledSweep<T>, RecoveryError>
where
    I: Sync,
    T: JournalCodec + Send,
    F: Fn(usize, &I) -> T + Sync,
    L: Fn(usize, &I) -> String,
{
    let labels: Vec<String> = items
        .iter()
        .enumerate()
        .map(|(i, it)| label(i, it))
        .collect();

    let mut results: Vec<Option<T>> = Vec::with_capacity(items.len());
    let mut missing: Vec<usize> = Vec::new();
    let mut reused = 0usize;
    for (i, l) in labels.iter().enumerate() {
        match journal.get::<T>(l) {
            Some(v) => {
                reused += 1;
                results.push(Some(v));
            }
            None => {
                missing.push(i);
                results.push(None);
            }
        }
    }

    struct Shared<'j> {
        journal: &'j mut JobJournal,
        appended: usize,
        io_error: Option<std::io::Error>,
    }
    let shared = Mutex::new(Shared {
        journal,
        appended: 0,
        io_error: None,
    });

    let outcomes = exec.map_cancellable(&missing, token, |_, &idx| {
        let value = work(idx, &items[idx]);
        let mut g = shared.lock().unwrap_or_else(|e| e.into_inner());
        if g.io_error.is_none() {
            match g.journal.record(&labels[idx], &value) {
                Ok(()) => {
                    g.appended += 1;
                    if opts.crash_after_jobs == Some(g.appended) {
                        token.cancel();
                    }
                }
                Err(e) => {
                    // The journal is gone; finishing more jobs would lose
                    // their results anyway, so drain and stop.
                    g.io_error = Some(e);
                    token.cancel();
                }
            }
        }
        value
    });

    let mut executed = 0usize;
    let mut failed: Vec<LabelledPanic> = Vec::new();
    for (&idx, outcome) in missing.iter().zip(outcomes) {
        match outcome {
            None => {}
            Some(Ok(v)) => {
                executed += 1;
                results[idx] = Some(v);
            }
            Some(Err(p)) => {
                let l = labels[idx].clone();
                failed.push(LabelledPanic {
                    label: l.clone(),
                    panic: JobPanic {
                        label: Some(l),
                        ..p
                    },
                });
            }
        }
    }

    let shared = shared.into_inner().unwrap_or_else(|e| e.into_inner());
    if let Some(e) = shared.io_error {
        return Err(e.into());
    }
    if !failed.is_empty() {
        return Err(SweepError { failed }.into());
    }
    let interrupted = results.iter().any(Option::is_none);
    Ok(JournaledSweep {
        results,
        reused,
        executed,
        interrupted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("shm-journal-{}-{name}.jsonl", std::process::id()))
    }

    fn stats(k: u64) -> SimStats {
        SimStats {
            cycles: 100 + k,
            instructions: 200 + k,
            accesses: 300 + k,
            l2_hits: 1 + k,
            l2_misses: 2 + k,
            l2_writebacks: 3 + k,
            ctr_hits: 4 + k,
            ctr_misses: 5 + k,
            mac_hits: 6 + k,
            mac_misses: 7 + k,
            bmt_hits: 8 + k,
            bmt_misses: 9 + k,
            victim_hits: 10 + k,
            traffic: TrafficBytes {
                read: [k, k + 1, k + 2, k + 3, k + 4],
                write: [k + 5, k + 6, k + 7, k + 8, k + 9],
            },
            readonly_fast_path: 11 + k,
            chunk_mac_accesses: 12 + k,
            stream_mispredictions: 13 + k,
            readonly_mispredictions: 14 + k,
            lat_sum: 15 + k,
            lat_max: 16 + k,
            dram_requests: 17 + k,
            pool_migrations: 18 + k,
            pool_spills: 19 + k,
            pool_cpu_accesses: 20 + k,
            pool_capacity_events: 21 + k,
            link_bytes_to_gpu: 22 + k,
            link_bytes_to_cpu: 23 + k,
        }
    }

    #[test]
    fn sim_stats_codec_roundtrips_exactly() {
        let s = stats(41);
        let mut enc = String::new();
        s.encode_journal(&mut enc);
        assert_eq!(SimStats::decode_journal(&enc).expect("decodes"), s);
    }

    #[test]
    fn journal_roundtrips_across_reopen() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let hash = config_hash(&["suite", "0.25"]);
        {
            let mut j = JobJournal::open(&path, hash).expect("create");
            j.record("a under SHM", &stats(1)).expect("append");
            j.record("b under SGX", &stats(2)).expect("append");
            assert_eq!(j.len(), 2);
        }
        let j = JobJournal::open(&path, hash).expect("reopen");
        assert_eq!(j.len(), 2);
        assert_eq!(j.get::<SimStats>("a under SHM"), Some(stats(1)));
        assert_eq!(j.get::<SimStats>("b under SGX"), Some(stats(2)));
        assert!(j.contains("b under SGX"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let path = tmp("mismatch");
        let _ = std::fs::remove_file(&path);
        drop(JobJournal::open(&path, 1).expect("create"));
        match JobJournal::open(&path, 2) {
            Err(RecoveryError::ConfigMismatch {
                expected, found, ..
            }) => {
                assert_eq!(expected, 2);
                assert_eq!(found, 1);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_dropped_earlier_corruption_is_fatal() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = JobJournal::open(&path, 9).expect("create");
            j.record("done", &"ok".to_string()).expect("append");
        }
        // Simulate a crash mid-append: a torn, newline-less final record.
        let mut doc = std::fs::read_to_string(&path).expect("read");
        doc.push_str("{\"type\":\"job\",\"label\":\"half");
        std::fs::write(&path, &doc).expect("write torn");
        let j = JobJournal::open(&path, 9).expect("torn tail tolerated");
        assert_eq!(j.len(), 1);
        assert!(j.contains("done"));
        drop(j);

        // The same torn bytes *before* a valid line are real corruption.
        let mut lines: Vec<String> = std::fs::read_to_string(&path)
            .expect("read")
            .lines()
            .map(str::to_string)
            .collect();
        let last = lines.len() - 1;
        lines.swap(1, last);
        std::fs::write(&path, lines.join("\n") + "\n").expect("write corrupt");
        assert!(matches!(
            JobJournal::open(&path, 9),
            Err(RecoveryError::Corrupt { line: 2, .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn map_journaled_resumes_without_rerunning_completed_jobs() {
        let path = tmp("resume");
        let _ = std::fs::remove_file(&path);
        let hash = config_hash(&["resume-test"]);
        let items: Vec<u64> = (0..6).collect();
        let exec = Executor::new(1);
        let runs = std::sync::atomic::AtomicUsize::new(0);
        let work = |_: usize, &x: &u64| {
            runs.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            format!("result-{x}")
        };
        let label = |_: usize, x: &u64| format!("job-{x}");

        // First invocation crashes after 2 completions.
        {
            let mut j = JobJournal::open(&path, hash).expect("create");
            let token = CancelToken::new();
            let sweep = map_journaled(
                &exec,
                &items,
                &mut j,
                &token,
                SweepOptions {
                    crash_after_jobs: Some(2),
                },
                label,
                work,
            )
            .expect("no panics");
            assert!(sweep.interrupted);
            assert_eq!(sweep.executed, 2);
            assert_eq!(j.len(), 2);
        }
        assert_eq!(runs.load(std::sync::atomic::Ordering::SeqCst), 2);

        // Resume: only the missing 4 run; results are complete and ordered.
        let mut j = JobJournal::open(&path, hash).expect("reopen");
        let token = CancelToken::new();
        let sweep = map_journaled(
            &exec,
            &items,
            &mut j,
            &token,
            SweepOptions::default(),
            label,
            work,
        )
        .expect("no panics");
        assert!(!sweep.interrupted);
        assert_eq!(sweep.reused, 2);
        assert_eq!(sweep.executed, 4);
        assert_eq!(runs.load(std::sync::atomic::Ordering::SeqCst), 6);
        assert_eq!(j.len(), 6);
        let all = sweep.complete().expect("complete");
        let expected: Vec<String> = items.iter().map(|x| format!("result-{x}")).collect();
        assert_eq!(all, expected);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn map_journaled_reports_panics_with_labels() {
        let path = tmp("panics");
        let _ = std::fs::remove_file(&path);
        let mut j = JobJournal::open(&path, 3).expect("create");
        let items = [1u64, 2, 3];
        let err = map_journaled(
            &Executor::new(1),
            &items,
            &mut j,
            &CancelToken::new(),
            SweepOptions::default(),
            |_, x| format!("job-{x}"),
            |_, &x| {
                if x == 2 {
                    panic!("boom");
                }
                format!("ok-{x}")
            },
        )
        .expect_err("job 2 panics");
        match err {
            RecoveryError::Sweep(e) => {
                assert_eq!(e.failed.len(), 1);
                assert_eq!(e.failed[0].label, "job-2");
            }
            other => panic!("expected sweep error, got {other}"),
        }
        // The panicking job is absent; the others were journaled.
        let j2 = JobJournal::open(&path, 3).expect("reopen");
        assert_eq!(j2.len(), 2);
        assert!(!j2.contains("job-2"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn worker_attribution_roundtrips_and_stays_optional() {
        let path = tmp("worker-attr");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = JobJournal::open(&path, 5).expect("create");
            j.record("local job", &stats(1)).expect("append");
            j.record_with_worker("remote \"job\"", Some("node-a:2"), &stats(2))
                .expect("append");
            assert_eq!(j.worker_of("local job"), None);
            assert_eq!(j.worker_of("remote \"job\""), Some("node-a:2"));
        }
        // Attribution survives reopen and never disturbs result lookup.
        let j = JobJournal::open(&path, 5).expect("reopen");
        assert_eq!(j.len(), 2);
        assert_eq!(j.get::<SimStats>("local job"), Some(stats(1)));
        assert_eq!(j.get::<SimStats>("remote \"job\""), Some(stats(2)));
        assert_eq!(j.worker_of("local job"), None);
        assert_eq!(j.worker_of("remote \"job\""), Some("node-a:2"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn config_hash_separates_parts() {
        assert_ne!(config_hash(&["ab", "c"]), config_hash(&["a", "bc"]));
        assert_ne!(config_hash(&["a"]), config_hash(&["a", ""]));
        assert_eq!(config_hash(&["x", "y"]), config_hash(&["x", "y"]));
    }
}
