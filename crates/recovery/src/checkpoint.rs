//! Durable coordinator checkpoints for crash-resumable distributed sweeps.
//!
//! The distributed coordinator ([`sim_dist`]'s `run_with_events`) is the
//! single point of failure in a cluster sweep: workers are stateless and
//! reconnect, but if the coordinator process dies every in-flight and
//! resolved job is lost with it.  [`CoordinatorCheckpoint`] closes that
//! hole with the same discipline as [`crate::journal::JobJournal`]: an
//! append-only JSONL file, a `ckpt_meta` guard line carrying a config
//! hash, and a torn-final-line tolerance so a SIGKILL mid-append never
//! poisons earlier records.
//!
//! Three record types follow the meta line:
//!
//! | line                                          | meaning                          |
//! |-----------------------------------------------|----------------------------------|
//! | `{"type":"assign","index":N,"worker":"w"}`    | job N dispatched to worker `w`   |
//! | `{"type":"resolve","index":N,"ok":true,...}`  | job N settled (payload + run_ns) |
//! | `{"type":"quarantine","worker":"w","reason":"..."}` | worker `w` was quarantined |
//!
//! A job may legitimately resolve **twice** — the byzantine defense
//! un-resolves results delivered by a worker that is later quarantined and
//! re-runs them — so replay is last-line-wins.  `assign` and `quarantine`
//! lines are informational (they drive `in_flight()` reporting and audit
//! trails); only `resolve` lines affect resumed results.
//!
//! Durability is group-committed: every line is written immediately, but
//! `sync_data` runs once per [`CoordinatorCheckpoint::flush_every`]
//! records (and on [`CoordinatorCheckpoint::flush`]/drop).  A power cut
//! can therefore lose at most the unsynced suffix — those jobs simply
//! re-run on resume, which is safe because jobs are deterministic and
//! idempotent.  What can never happen is a *silently wrong* resume: the
//! config-hash guard refuses checkpoints from a different sweep shape,
//! and replayed payloads re-enter the merge byte-for-byte.

use crate::journal::{escape_into, json_u64, unescape, RecoveryError};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Checkpoint format version; bump on any schema change.
pub const CHECKPOINT_VERSION: u32 = 1;

/// How a checkpointed job ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CkptOutcome {
    /// The job produced a payload (worker-measured runtime attached).
    Ok {
        /// Encoded job result, exactly as the worker returned it.
        payload: String,
        /// Worker-measured job runtime in nanoseconds.
        run_ns: u64,
    },
    /// The job failed permanently with a labelled error.
    Failed {
        /// Human-readable failure label (never silently empty).
        label: String,
    },
}

/// Append-only JSONL checkpoint of a coordinator's sweep progress.
#[derive(Debug)]
pub struct CoordinatorCheckpoint {
    path: PathBuf,
    file: std::fs::File,
    resolved: BTreeMap<u64, CkptOutcome>,
    assigned: BTreeMap<u64, String>,
    quarantined: Vec<(String, String)>,
    /// Records appended since the last `sync_data`.
    unsynced: usize,
    /// Group-commit interval: sync after this many records (min 1).
    flush_every: usize,
}

impl CoordinatorCheckpoint {
    /// Opens (or creates) the checkpoint at `path` for the sweep
    /// configuration hashed as `config_hash`, group-committing every
    /// `flush_every` records (clamped to at least 1).
    ///
    /// An existing file is validated and replayed: the meta line must
    /// carry the same version and config hash, complete records load
    /// (resolve lines last-line-wins), a torn *final* line is dropped,
    /// and a torn line anywhere else is [`RecoveryError::Corrupt`].
    ///
    /// # Errors
    ///
    /// [`RecoveryError::Io`], [`RecoveryError::ConfigMismatch`] or
    /// [`RecoveryError::Corrupt`].
    pub fn open(
        path: impl AsRef<Path>,
        config_hash: u64,
        flush_every: usize,
    ) -> Result<Self, RecoveryError> {
        let path = path.as_ref().to_path_buf();
        let existing = match std::fs::read_to_string(&path) {
            Ok(s) => Some(s),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };

        let mut resolved = BTreeMap::new();
        let mut assigned = BTreeMap::new();
        let mut quarantined = Vec::new();
        let mut needs_meta = true;
        if let Some(doc) = &existing {
            let lines: Vec<&str> = doc.lines().collect();
            for (i, line) in lines.iter().enumerate() {
                let is_last = i + 1 == lines.len();
                if i == 0 {
                    match parse_ckpt_meta(line) {
                        Some((version, found)) => {
                            if version != CHECKPOINT_VERSION || found != config_hash {
                                return Err(RecoveryError::ConfigMismatch {
                                    path,
                                    expected: config_hash,
                                    found,
                                });
                            }
                            needs_meta = false;
                        }
                        None if is_last => break, // torn meta: rewrite below
                        None => return Err(RecoveryError::Corrupt { path, line: 1 }),
                    }
                    continue;
                }
                match parse_record(line) {
                    Some(Record::Assign { index, worker }) => {
                        assigned.insert(index, worker);
                    }
                    Some(Record::Resolve { index, outcome }) => {
                        // Last line wins: quarantine invalidation may
                        // legitimately re-resolve an index.
                        resolved.insert(index, outcome);
                    }
                    Some(Record::Quarantine { worker, reason }) => {
                        quarantined.push((worker, reason));
                    }
                    None if is_last => {} // torn final record: drop it
                    None => return Err(RecoveryError::Corrupt { path, line: i + 1 }),
                }
            }
        }

        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        if needs_meta {
            let line = format!(
                "{{\"type\":\"ckpt_meta\",\"version\":{CHECKPOINT_VERSION},\
                 \"config_hash\":\"{config_hash:016x}\"}}\n"
            );
            file.write_all(line.as_bytes())?;
            file.sync_data()?;
        }
        Ok(Self {
            path,
            file,
            resolved,
            assigned,
            quarantined,
            unsynced: 0,
            flush_every: flush_every.max(1),
        })
    }

    /// Checkpoint file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Resolved jobs on record, keyed by job index.
    pub fn resolved(&self) -> &BTreeMap<u64, CkptOutcome> {
        &self.resolved
    }

    /// Number of resolved jobs on record.
    pub fn len(&self) -> usize {
        self.resolved.len()
    }

    /// True when no job has resolved yet.
    pub fn is_empty(&self) -> bool {
        self.resolved.is_empty()
    }

    /// Quarantined workers on record as `(worker_id, reason)` pairs.
    pub fn quarantined(&self) -> &[(String, String)] {
        &self.quarantined
    }

    /// Job indexes that were assigned but never resolved — the work a
    /// resumed coordinator must re-dispatch (alongside never-assigned
    /// jobs, which the caller derives from its own job list).
    pub fn in_flight(&self) -> Vec<u64> {
        self.assigned
            .keys()
            .filter(|i| !self.resolved.contains_key(i))
            .copied()
            .collect()
    }

    /// Records a dispatch.  Informational: drives [`Self::in_flight`].
    ///
    /// # Errors
    ///
    /// Propagates file write/sync errors.
    pub fn record_assign(&mut self, index: u64, worker: &str) -> std::io::Result<()> {
        let mut line = String::with_capacity(64);
        line.push_str("{\"type\":\"assign\",\"index\":");
        push_u64(&mut line, index);
        line.push_str(",\"worker\":\"");
        escape_into(worker, &mut line);
        line.push_str("\"}\n");
        self.assigned.insert(index, worker.to_string());
        self.append(&line)
    }

    /// Records a settled job.  Replay is last-line-wins, so re-recording
    /// an index (quarantine invalidation) is correct, not an error.
    ///
    /// # Errors
    ///
    /// Propagates file write/sync errors.
    pub fn record_resolve(&mut self, index: u64, outcome: &CkptOutcome) -> std::io::Result<()> {
        let mut line = String::with_capacity(96);
        line.push_str("{\"type\":\"resolve\",\"index\":");
        push_u64(&mut line, index);
        match outcome {
            CkptOutcome::Ok { payload, run_ns } => {
                line.push_str(",\"ok\":true,\"payload\":\"");
                escape_into(payload, &mut line);
                line.push_str("\",\"run_ns\":");
                push_u64(&mut line, *run_ns);
            }
            CkptOutcome::Failed { label } => {
                line.push_str(",\"ok\":false,\"error\":\"");
                escape_into(label, &mut line);
                line.push('"');
            }
        }
        line.push_str("}\n");
        self.resolved.insert(index, outcome.clone());
        self.append(&line)
    }

    /// Records a worker quarantine for the audit trail.
    ///
    /// # Errors
    ///
    /// Propagates file write/sync errors.
    pub fn record_quarantine(&mut self, worker: &str, reason: &str) -> std::io::Result<()> {
        let mut line = String::with_capacity(64);
        line.push_str("{\"type\":\"quarantine\",\"worker\":\"");
        escape_into(worker, &mut line);
        line.push_str("\",\"reason\":\"");
        escape_into(reason, &mut line);
        line.push_str("\"}\n");
        self.quarantined
            .push((worker.to_string(), reason.to_string()));
        self.append(&line)
    }

    /// Forces any unsynced records to disk now.
    ///
    /// # Errors
    ///
    /// Propagates `sync_data` errors.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    fn append(&mut self, line: &str) -> std::io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.unsynced += 1;
        if self.unsynced >= self.flush_every {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }
}

impl Drop for CoordinatorCheckpoint {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

fn push_u64(out: &mut String, v: u64) {
    use std::fmt::Write as _;
    let _ = write!(out, "{v}");
}

/// Parses the `ckpt_meta` line into `(version, config_hash)`.
fn parse_ckpt_meta(line: &str) -> Option<(u32, u64)> {
    if !line.starts_with("{\"type\":\"ckpt_meta\"") || !line.ends_with('}') {
        return None;
    }
    let version = json_u64(line, "version")? as u32;
    let pat = "\"config_hash\":\"";
    let rest = &line[line.find(pat)? + pat.len()..];
    let hex = &rest[..rest.find('"')?];
    Some((version, u64::from_str_radix(hex, 16).ok()?))
}

enum Record {
    Assign { index: u64, worker: String },
    Resolve { index: u64, outcome: CkptOutcome },
    Quarantine { worker: String, reason: String },
}

/// Extracts an escaped `"key":"..."` string field from a flat object.
fn json_str(s: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let rest = &s[s.find(&pat)? + pat.len()..];
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        match (escaped, c) {
            (true, _) => escaped = false,
            (false, '\\') => escaped = true,
            (false, '"') => return unescape(&rest[..i]),
            _ => {}
        }
    }
    None
}

fn parse_record(line: &str) -> Option<Record> {
    if !line.ends_with('}') {
        return None;
    }
    if line.starts_with("{\"type\":\"assign\"") {
        return Some(Record::Assign {
            index: json_u64(line, "index")?,
            worker: json_str(line, "worker")?,
        });
    }
    if line.starts_with("{\"type\":\"resolve\"") {
        let index = json_u64(line, "index")?;
        let outcome = if line.contains("\"ok\":true") {
            CkptOutcome::Ok {
                payload: json_str(line, "payload")?,
                run_ns: json_u64(line, "run_ns")?,
            }
        } else if line.contains("\"ok\":false") {
            CkptOutcome::Failed {
                label: json_str(line, "error")?,
            }
        } else {
            return None;
        };
        return Some(Record::Resolve { index, outcome });
    }
    if line.starts_with("{\"type\":\"quarantine\"") {
        return Some(Record::Quarantine {
            worker: json_str(line, "worker")?,
            reason: json_str(line, "reason")?,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("shm-ckpt-{}-{name}.jsonl", std::process::id()))
    }

    #[test]
    fn checkpoint_roundtrips_across_reopen() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut c = CoordinatorCheckpoint::open(&path, 0xAB, 4).expect("create");
            c.record_assign(0, "w-a").expect("assign");
            c.record_assign(1, "w-b").expect("assign");
            c.record_resolve(
                0,
                &CkptOutcome::Ok {
                    payload: "cycles=42 \"quoted\"".to_string(),
                    run_ns: 1234,
                },
            )
            .expect("resolve");
            c.record_quarantine("w-b", "result digest mismatch")
                .expect("quarantine");
        }
        let c = CoordinatorCheckpoint::open(&path, 0xAB, 4).expect("reopen");
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.resolved().get(&0),
            Some(&CkptOutcome::Ok {
                payload: "cycles=42 \"quoted\"".to_string(),
                run_ns: 1234,
            })
        );
        assert_eq!(c.in_flight(), vec![1]);
        assert_eq!(
            c.quarantined(),
            &[("w-b".to_string(), "result digest mismatch".to_string())]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn re_resolve_is_last_line_wins() {
        let path = tmp("rewrite");
        let _ = std::fs::remove_file(&path);
        {
            let mut c = CoordinatorCheckpoint::open(&path, 7, 1).expect("create");
            c.record_resolve(
                3,
                &CkptOutcome::Ok {
                    payload: "lie".to_string(),
                    run_ns: 1,
                },
            )
            .expect("resolve");
            // Quarantine invalidation re-runs the job and resolves again.
            c.record_resolve(
                3,
                &CkptOutcome::Ok {
                    payload: "truth".to_string(),
                    run_ns: 2,
                },
            )
            .expect("re-resolve");
        }
        let c = CoordinatorCheckpoint::open(&path, 7, 1).expect("reopen");
        assert_eq!(
            c.resolved().get(&3),
            Some(&CkptOutcome::Ok {
                payload: "truth".to_string(),
                run_ns: 2,
            })
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_outcome_and_torn_tail() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut c = CoordinatorCheckpoint::open(&path, 9, 1).expect("create");
            c.record_resolve(
                0,
                &CkptOutcome::Failed {
                    label: "retry budget exhausted".to_string(),
                },
            )
            .expect("resolve");
        }
        // Crash mid-append: newline-less torn final record is dropped.
        let mut doc = std::fs::read_to_string(&path).expect("read");
        doc.push_str("{\"type\":\"resolve\",\"index\":1,\"ok\":tr");
        std::fs::write(&path, &doc).expect("write torn");
        let c = CoordinatorCheckpoint::open(&path, 9, 1).expect("torn tail tolerated");
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.resolved().get(&0),
            Some(&CkptOutcome::Failed {
                label: "retry budget exhausted".to_string(),
            })
        );
        drop(c);

        // The same torn bytes before a valid line are real corruption.
        let lines: Vec<String> = std::fs::read_to_string(&path)
            .expect("read")
            .lines()
            .map(str::to_string)
            .collect();
        let mut swapped = lines.clone();
        let last = swapped.len() - 1;
        swapped.swap(1, last);
        std::fs::write(&path, swapped.join("\n") + "\n").expect("write corrupt");
        assert!(matches!(
            CoordinatorCheckpoint::open(&path, 9, 1),
            Err(RecoveryError::Corrupt { line: 2, .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let path = tmp("mismatch");
        let _ = std::fs::remove_file(&path);
        drop(CoordinatorCheckpoint::open(&path, 1, 1).expect("create"));
        match CoordinatorCheckpoint::open(&path, 2, 1) {
            Err(RecoveryError::ConfigMismatch {
                expected, found, ..
            }) => {
                assert_eq!(expected, 2);
                assert_eq!(found, 1);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn group_commit_still_lands_after_flush() {
        let path = tmp("group");
        let _ = std::fs::remove_file(&path);
        let mut c = CoordinatorCheckpoint::open(&path, 5, 64).expect("create");
        for i in 0..10u64 {
            c.record_resolve(
                i,
                &CkptOutcome::Ok {
                    payload: format!("r{i}"),
                    run_ns: i,
                },
            )
            .expect("resolve");
        }
        c.flush().expect("flush");
        drop(c);
        let c = CoordinatorCheckpoint::open(&path, 5, 64).expect("reopen");
        assert_eq!(c.len(), 10);
        let _ = std::fs::remove_file(&path);
    }
}
