//! A from-scratch AES-128 block cipher (FIPS-197).
//!
//! Implemented directly from the specification: S-box substitution, row
//! shifts, GF(2^8) column mixing and a 10-round key schedule.  Checked
//! against the FIPS-197 Appendix B test vector.  Simulation-grade only —
//! not constant time.

/// The AES S-box.
const SBOX: [u8; 256] = build_sbox();

/// Builds the S-box at compile time from the GF(2^8) multiplicative inverse
/// followed by the affine transformation.
const fn build_sbox() -> [u8; 256] {
    // Compute inverses via exhaustive multiplication (const-friendly).
    let mut sbox = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        let inv = if i == 0 { 0 } else { gf_inv(i as u8) };
        // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        let b = inv;
        let s =
            b ^ b.rotate_left(1) ^ b.rotate_left(2) ^ b.rotate_left(3) ^ b.rotate_left(4) ^ 0x63;
        sbox[i] = s;
        i += 1;
    }
    sbox
}

/// GF(2^8) multiplication with the AES reduction polynomial 0x11B.
const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
        i += 1;
    }
    p
}

/// GF(2^8) multiplicative inverse by brute force (compile-time only).
const fn gf_inv(a: u8) -> u8 {
    let mut x = 1u16;
    while x < 256 {
        if gf_mul(a, x as u8) == 1 {
            return x as u8;
        }
        x += 1;
    }
    0
}

/// Round constants for the key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36];

/// An expanded AES-128 key ready for encryption.
///
/// The simulator only ever encrypts (counter mode needs no block decryption),
/// so no inverse cipher is provided.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expands `key` into the 11 round keys.
    pub fn new(key: [u8; 16]) -> Self {
        let mut rk = [[0u8; 16]; 11];
        rk[0] = key;
        for round in 1..11 {
            let prev = rk[round - 1];
            let mut w = [prev[12], prev[13], prev[14], prev[15]];
            // RotWord + SubWord + Rcon
            w.rotate_left(1);
            for b in w.iter_mut() {
                *b = SBOX[*b as usize];
            }
            w[0] ^= RCON[round - 1];
            for i in 0..4 {
                rk[round][i] = prev[i] ^ w[i];
            }
            for i in 4..16 {
                rk[round][i] = prev[i] ^ rk[round][i - 4];
            }
        }
        Self { round_keys: rk }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        let mut s = block;
        add_round_key(&mut s, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, &self.round_keys[round]);
        }
        sub_bytes(&mut s);
        shift_rows(&mut s);
        add_round_key(&mut s, &self.round_keys[10]);
        s
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// State is column-major: byte `state[c*4 + r]` is row r, column c.
fn shift_rows(state: &mut [u8; 16]) {
    let orig = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[c * 4 + r] = orig[((c + r) % 4) * 4 + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[c * 4],
            state[c * 4 + 1],
            state[c * 4 + 2],
            state[c * 4 + 3],
        ];
        state[c * 4] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[c * 4 + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[c * 4 + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[c * 4 + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B: plaintext/key/ciphertext example.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(key);
        assert_eq!(aes.encrypt_block(pt), expected);
    }

    #[test]
    fn fips197_appendix_c_vector() {
        // FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233...ff.
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(key);
        assert_eq!(aes.encrypt_block(pt), expected);
    }

    #[test]
    fn sbox_spot_values() {
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Aes128::new([0u8; 16]);
        let b = Aes128::new([1u8; 16]);
        let pt = [7u8; 16];
        assert_ne!(a.encrypt_block(pt), b.encrypt_block(pt));
    }

    #[test]
    fn encryption_is_deterministic() {
        let aes = Aes128::new([9u8; 16]);
        assert_eq!(aes.encrypt_block([3u8; 16]), aes.encrypt_block([3u8; 16]));
    }
}
