//! A from-scratch AES-128 block cipher (FIPS-197).
//!
//! Implemented directly from the specification and checked against the
//! FIPS-197 Appendix B/C test vectors.  The cipher is the innermost hot
//! loop of the functional secure-memory model (eight invocations per
//! 128 B line for counter-mode pads).  Two interchangeable backends are
//! provided and selected once per process:
//!
//! * **AES-NI** (`x86_64` only): one `AESENC` per round via `std::arch`,
//!   used when `is_x86_feature_detected!("aes")` reports hardware support.
//! * **T-tables**: the classic 32-bit formulation — one 256-entry table of
//!   premixed `MixColumns ∘ SubBytes` columns, rotated for the other three
//!   rows — as the portable fallback.  Table lookups are not constant time;
//!   simulation-grade only.
//!
//! The environment knob `SHM_AES=auto|aesni|ttable` overrides the choice
//! (requesting `aesni` on a CPU without it falls back to T-tables).  Both
//! backends are cross-checked against the per-byte [`reference`] cipher.

use std::sync::OnceLock;

/// The AES S-box.
const SBOX: [u8; 256] = build_sbox();

/// T-table for row 0: `T0[x]` is the MixColumns output column
/// `(2·S[x], S[x], S[x], 3·S[x])` packed big-endian.  Rows 1–3 use the
/// same table rotated right by 8/16/24 bits.
const T0: [u32; 256] = build_t0();

/// Builds the S-box at compile time from the GF(2^8) multiplicative inverse
/// followed by the affine transformation.
const fn build_sbox() -> [u8; 256] {
    // Compute inverses via exhaustive multiplication (const-friendly).
    let mut sbox = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        let inv = if i == 0 { 0 } else { gf_inv(i as u8) };
        // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        let b = inv;
        let s =
            b ^ b.rotate_left(1) ^ b.rotate_left(2) ^ b.rotate_left(3) ^ b.rotate_left(4) ^ 0x63;
        sbox[i] = s;
        i += 1;
    }
    sbox
}

/// Builds the round T-table at compile time from the S-box.
const fn build_t0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let s = SBOX[i];
        let s2 = gf_mul(s, 2);
        let s3 = s2 ^ s; // 3·s = 2·s ⊕ s in GF(2^8)
        t[i] = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
        i += 1;
    }
    t
}

/// GF(2^8) multiplication with the AES reduction polynomial 0x11B.
const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
        i += 1;
    }
    p
}

/// GF(2^8) multiplicative inverse by brute force (compile-time only).
const fn gf_inv(a: u8) -> u8 {
    let mut x = 1u16;
    while x < 256 {
        if gf_mul(a, x as u8) == 1 {
            return x as u8;
        }
        x += 1;
    }
    0
}

/// Round constants for the key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36];

/// Applies the S-box to every byte of a big-endian word.
#[inline]
fn sub_word(w: u32) -> u32 {
    let b = w.to_be_bytes();
    u32::from_be_bytes([
        SBOX[b[0] as usize],
        SBOX[b[1] as usize],
        SBOX[b[2] as usize],
        SBOX[b[3] as usize],
    ])
}

/// Environment variable selecting the AES backend
/// (`auto`/`aesni`/`ttable`; `soft` is an alias for `ttable`).
pub const AES_BACKEND_ENV: &str = "SHM_AES";

/// Which block-encrypt implementation a process uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AesBackend {
    /// Portable 32-bit T-table rounds.
    TTable,
    /// Hardware `AESENC` rounds via `std::arch` (x86_64 with AES-NI).
    AesNi,
}

impl AesBackend {
    /// Stable label used in `shm env` and bench output.
    pub fn name(self) -> &'static str {
        match self {
            AesBackend::TTable => "ttable",
            AesBackend::AesNi => "aesni",
        }
    }
}

/// True when the CPU supports the AES-NI path.
pub fn aesni_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("aes")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The backend every `Aes128` built in this process will use: AES-NI when
/// the CPU has it, unless `SHM_AES=ttable` (or an unsupported `aesni`
/// request forces the fallback).  Decided once and cached.
pub fn selected_backend() -> AesBackend {
    static CHOICE: OnceLock<AesBackend> = OnceLock::new();
    *CHOICE.get_or_init(|| {
        let want = std::env::var(AES_BACKEND_ENV).unwrap_or_default();
        match want.as_str() {
            "ttable" | "soft" => AesBackend::TTable,
            // "aesni", "auto", unset, or anything else: hardware when present.
            _ => {
                if aesni_available() {
                    AesBackend::AesNi
                } else {
                    AesBackend::TTable
                }
            }
        }
    })
}

/// An expanded AES-128 key ready for encryption.
///
/// The simulator only ever encrypts (counter mode needs no block decryption),
/// so no inverse cipher is provided.  Round keys are kept both as the 44
/// big-endian words the T-table rounds consume directly and as the eleven
/// 16-byte round keys the AES-NI rounds load.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Aes128 {
    round_keys: [u32; 44],
    round_key_bytes: [[u8; 16]; 11],
    backend: AesBackend,
}

impl Aes128 {
    /// Expands `key` into the 44 round-key words (FIPS-197 §5.2).
    pub fn new(key: [u8; 16]) -> Self {
        let mut w = [0u32; 44];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 4..44 {
            let mut t = w[i - 1];
            if i % 4 == 0 {
                t = sub_word(t.rotate_left(8)) ^ ((RCON[i / 4 - 1] as u32) << 24);
            }
            w[i] = w[i - 4] ^ t;
        }
        let mut round_key_bytes = [[0u8; 16]; 11];
        for (r, rk) in round_key_bytes.iter_mut().enumerate() {
            for i in 0..4 {
                rk[i * 4..i * 4 + 4].copy_from_slice(&w[4 * r + i].to_be_bytes());
            }
        }
        Self {
            round_keys: w,
            round_key_bytes,
            backend: selected_backend(),
        }
    }

    /// The backend this key will encrypt with.
    pub fn backend(&self) -> AesBackend {
        self.backend
    }

    /// Encrypts one 16-byte block with the process-selected backend.
    #[inline]
    pub fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        #[cfg(target_arch = "x86_64")]
        if self.backend == AesBackend::AesNi {
            // SAFETY: AesNi is only selected when the `aes` feature was
            // detected at runtime.
            return unsafe { aesni::encrypt_block(&self.round_key_bytes, block) };
        }
        self.encrypt_block_ttable(block)
    }

    /// Encrypts one block on the hardware path, or `None` without AES-NI.
    /// Exposed for cross-check tests and microbenches.
    pub fn encrypt_block_aesni(&self, block: [u8; 16]) -> Option<[u8; 16]> {
        #[cfg(target_arch = "x86_64")]
        if aesni_available() {
            // SAFETY: feature detection passed above.
            return Some(unsafe { aesni::encrypt_block(&self.round_key_bytes, block) });
        }
        let _ = block;
        None
    }

    /// Encrypts one 16-byte block with the portable T-table rounds.
    pub fn encrypt_block_ttable(&self, block: [u8; 16]) -> [u8; 16] {
        let rk = &self.round_keys;
        // Columns of the state as big-endian words (row 0 in the MSB).
        let mut c0 = u32::from_be_bytes([block[0], block[1], block[2], block[3]]) ^ rk[0];
        let mut c1 = u32::from_be_bytes([block[4], block[5], block[6], block[7]]) ^ rk[1];
        let mut c2 = u32::from_be_bytes([block[8], block[9], block[10], block[11]]) ^ rk[2];
        let mut c3 = u32::from_be_bytes([block[12], block[13], block[14], block[15]]) ^ rk[3];

        // Rounds 1–9: SubBytes + ShiftRows + MixColumns + AddRoundKey fused
        // into four table lookups per output column.  ShiftRows appears as
        // output column j reading rows 1/2/3 from columns j+1/j+2/j+3.
        #[inline]
        fn round_col(a: u32, b: u32, c: u32, d: u32, k: u32) -> u32 {
            T0[(a >> 24) as usize]
                ^ T0[((b >> 16) & 0xFF) as usize].rotate_right(8)
                ^ T0[((c >> 8) & 0xFF) as usize].rotate_right(16)
                ^ T0[(d & 0xFF) as usize].rotate_right(24)
                ^ k
        }
        for round in 1..10 {
            let k = 4 * round;
            let n0 = round_col(c0, c1, c2, c3, rk[k]);
            let n1 = round_col(c1, c2, c3, c0, rk[k + 1]);
            let n2 = round_col(c2, c3, c0, c1, rk[k + 2]);
            let n3 = round_col(c3, c0, c1, c2, rk[k + 3]);
            (c0, c1, c2, c3) = (n0, n1, n2, n3);
        }

        // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        #[inline]
        fn last_col(a: u32, b: u32, c: u32, d: u32, k: u32) -> u32 {
            (u32::from(SBOX[(a >> 24) as usize]) << 24
                | u32::from(SBOX[((b >> 16) & 0xFF) as usize]) << 16
                | u32::from(SBOX[((c >> 8) & 0xFF) as usize]) << 8
                | u32::from(SBOX[(d & 0xFF) as usize]))
                ^ k
        }
        let e0 = last_col(c0, c1, c2, c3, rk[40]);
        let e1 = last_col(c1, c2, c3, c0, rk[41]);
        let e2 = last_col(c2, c3, c0, c1, rk[42]);
        let e3 = last_col(c3, c0, c1, c2, rk[43]);

        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&e0.to_be_bytes());
        out[4..8].copy_from_slice(&e1.to_be_bytes());
        out[8..12].copy_from_slice(&e2.to_be_bytes());
        out[12..16].copy_from_slice(&e3.to_be_bytes());
        out
    }
}

/// Hardware rounds: `AESENC` consumes the state and a round key per round.
/// Round keys are the big-endian word bytes in memory order, exactly what
/// `round_key_bytes` stores.
#[cfg(target_arch = "x86_64")]
mod aesni {
    use core::arch::x86_64::{
        __m128i, _mm_aesenc_si128, _mm_aesenclast_si128, _mm_loadu_si128, _mm_storeu_si128,
        _mm_xor_si128,
    };

    /// # Safety
    /// Caller must ensure the CPU supports the `aes` target feature.
    #[target_feature(enable = "aes")]
    pub unsafe fn encrypt_block(rk: &[[u8; 16]; 11], block: [u8; 16]) -> [u8; 16] {
        let key = |r: usize| -> __m128i { _mm_loadu_si128(rk[r].as_ptr().cast()) };
        let mut s = _mm_loadu_si128(block.as_ptr().cast());
        s = _mm_xor_si128(s, key(0));
        for r in 1..10 {
            s = _mm_aesenc_si128(s, key(r));
        }
        s = _mm_aesenclast_si128(s, key(10));
        let mut out = [0u8; 16];
        _mm_storeu_si128(out.as_mut_ptr().cast(), s);
        out
    }
}

/// Straightforward per-byte reference cipher (the pre-T-table
/// implementation), kept to cross-check both optimized backends.  Public so
/// microbenches and integration tests can compare against it; never used on
/// the simulation hot path.
pub mod reference {
    use super::{gf_mul, RCON, SBOX};

    /// Expands `key` into the eleven per-round 16-byte keys.
    pub fn expand(key: [u8; 16]) -> [[u8; 16]; 11] {
        let mut rk = [[0u8; 16]; 11];
        rk[0] = key;
        for round in 1..11 {
            let prev = rk[round - 1];
            let mut w = [prev[12], prev[13], prev[14], prev[15]];
            w.rotate_left(1);
            for b in w.iter_mut() {
                *b = SBOX[*b as usize];
            }
            w[0] ^= RCON[round - 1];
            for i in 0..4 {
                rk[round][i] = prev[i] ^ w[i];
            }
            for i in 4..16 {
                rk[round][i] = prev[i] ^ rk[round][i - 4];
            }
        }
        rk
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    /// State is column-major: byte `state[c*4 + r]` is row r, column c.
    fn shift_rows(state: &mut [u8; 16]) {
        let orig = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[c * 4 + r] = orig[((c + r) % 4) * 4 + r];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[c * 4],
                state[c * 4 + 1],
                state[c * 4 + 2],
                state[c * 4 + 3],
            ];
            state[c * 4] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
            state[c * 4 + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
            state[c * 4 + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
            state[c * 4 + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
        }
    }

    /// Encrypts one block with the pre-expanded round keys from [`expand`].
    pub fn encrypt_block(rk: &[[u8; 16]; 11], block: [u8; 16]) -> [u8; 16] {
        let mut s = block;
        add_round_key(&mut s, &rk[0]);
        for round_key in rk.iter().take(10).skip(1) {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, round_key);
        }
        sub_bytes(&mut s);
        shift_rows(&mut s);
        add_round_key(&mut s, &rk[10]);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B: plaintext/key/ciphertext example.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(key);
        assert_eq!(aes.encrypt_block(pt), expected);
    }

    #[test]
    fn fips197_appendix_c_vector() {
        // FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233...ff.
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(key);
        assert_eq!(aes.encrypt_block(pt), expected);
    }

    #[test]
    fn sbox_spot_values() {
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
    }

    #[test]
    fn t_table_matches_per_byte_reference() {
        // The T-table cipher must agree with the per-byte GF(2^8) reference
        // on a spread of keys and plaintexts (SplitMix-style sequence).
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..64 {
            let mut key = [0u8; 16];
            let mut pt = [0u8; 16];
            key[0..8].copy_from_slice(&next().to_le_bytes());
            key[8..16].copy_from_slice(&next().to_le_bytes());
            pt[0..8].copy_from_slice(&next().to_le_bytes());
            pt[8..16].copy_from_slice(&next().to_le_bytes());
            let fast = Aes128::new(key).encrypt_block_ttable(pt);
            let slow = reference::encrypt_block(&reference::expand(key), pt);
            assert_eq!(fast, slow, "divergence for key {key:02x?} pt {pt:02x?}");
        }
    }

    #[test]
    fn aesni_matches_ttable_when_available() {
        if !aesni_available() {
            eprintln!("skipping: CPU lacks AES-NI");
            return;
        }
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            x = x.wrapping_add(0x243F_6A88_85A3_08D3);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..64 {
            let mut key = [0u8; 16];
            let mut pt = [0u8; 16];
            key[0..8].copy_from_slice(&next().to_le_bytes());
            key[8..16].copy_from_slice(&next().to_le_bytes());
            pt[0..8].copy_from_slice(&next().to_le_bytes());
            pt[8..16].copy_from_slice(&next().to_le_bytes());
            let aes = Aes128::new(key);
            let hw = aes.encrypt_block_aesni(pt).expect("AES-NI detected");
            assert_eq!(
                hw,
                aes.encrypt_block_ttable(pt),
                "backend divergence for key {key:02x?} pt {pt:02x?}"
            );
        }
    }

    #[test]
    fn selected_backend_is_consistent() {
        let aes = Aes128::new([5u8; 16]);
        assert_eq!(aes.backend(), selected_backend());
        if selected_backend() == AesBackend::AesNi {
            assert!(aesni_available());
        }
        assert!(matches!(selected_backend().name(), "ttable" | "aesni"));
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Aes128::new([0u8; 16]);
        let b = Aes128::new([1u8; 16]);
        let pt = [7u8; 16];
        assert_ne!(a.encrypt_block(pt), b.encrypt_block(pt));
    }

    #[test]
    fn encryption_is_deterministic() {
        let aes = Aes128::new([9u8; 16]);
        assert_eq!(aes.encrypt_block([3u8; 16]), aes.encrypt_block([3u8; 16]));
    }
}
