//! One-time-pad generation for counter-mode memory encryption.
//!
//! The seed fed into the AES engine concatenates the block address, the
//! chunk id within the cache line (the "encryption CID" — a 128 B line is
//! broken into eight 16 B AES outputs), the major counter and the minor
//! counter (Fig. 3 of the paper).  Temporal uniqueness comes from the
//! counters; spatial uniqueness from the address and CID.

use crate::aes::Aes128;

/// Number of 16 B AES outputs needed to pad one 128 B cache line.
pub const PADS_PER_BLOCK: usize = 8;

/// Builds the 16-byte AES seed for one 16 B chunk of a cache line.
///
/// Layout: `address (8 B) ‖ cid (1 B) ‖ major (5 B) ‖ minor (2 B)`.
/// Address and CID provide spatial uniqueness; the counters provide temporal
/// uniqueness — see Section III-B.
pub fn seed(address: u64, cid: u8, major: u64, minor: u16) -> [u8; 16] {
    let mut s = [0u8; 16];
    s[0..8].copy_from_slice(&address.to_le_bytes());
    s[8] = cid;
    s[9..14].copy_from_slice(&major.to_le_bytes()[0..5]);
    s[14..16].copy_from_slice(&minor.to_le_bytes());
    s
}

/// Generates the 128-byte one-time pad for a full cache line.
pub fn block_pad(aes: &Aes128, address: u64, major: u64, minor: u16) -> [u8; 128] {
    let _aes_phase = shm_metrics::phase::guard(shm_metrics::phase::Phase::Aes);
    let mut pad = [0u8; 128];
    for cid in 0..PADS_PER_BLOCK {
        let block = aes.encrypt_block(seed(address, cid as u8, major, minor));
        pad[cid * 16..(cid + 1) * 16].copy_from_slice(&block);
    }
    pad
}

/// XORs `data` in place with the pad for `(address, major, minor)`.
///
/// Counter-mode encryption and decryption are the same operation.
pub fn xor_pad(aes: &Aes128, address: u64, major: u64, minor: u16, data: &mut [u8; 128]) {
    let pad = block_pad(aes, address, major, minor);
    for (d, p) in data.iter_mut().zip(pad.iter()) {
        *d ^= p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let aes = Aes128::new([5u8; 16]);
        let mut data = [0xA5u8; 128];
        xor_pad(&aes, 0x4000, 10, 2, &mut data);
        assert_ne!(data, [0xA5u8; 128], "ciphertext equals plaintext");
        xor_pad(&aes, 0x4000, 10, 2, &mut data);
        assert_eq!(data, [0xA5u8; 128]);
    }

    #[test]
    fn pads_differ_across_addresses_and_counters() {
        let aes = Aes128::new([5u8; 16]);
        let base = block_pad(&aes, 0x1000, 1, 1);
        assert_ne!(base, block_pad(&aes, 0x1080, 1, 1), "address ignored");
        assert_ne!(base, block_pad(&aes, 0x1000, 2, 1), "major ignored");
        assert_ne!(base, block_pad(&aes, 0x1000, 1, 2), "minor ignored");
    }

    #[test]
    fn seed_fields_do_not_collide() {
        // Different (major, minor) pairs must never alias in the seed.
        let a = seed(0, 0, 0x0100, 0);
        let b = seed(0, 0, 0, 0x0100);
        assert_ne!(a, b);
    }

    #[test]
    fn sixteen_byte_chunks_use_distinct_pads() {
        let aes = Aes128::new([5u8; 16]);
        let pad = block_pad(&aes, 0, 0, 0);
        for i in 0..PADS_PER_BLOCK {
            for j in (i + 1)..PADS_PER_BLOCK {
                assert_ne!(
                    &pad[i * 16..(i + 1) * 16],
                    &pad[j * 16..(j + 1) * 16],
                    "cid {i} and {j} collide"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(addr in any::<u64>(), major in any::<u64>(), minor in any::<u16>(), byte in any::<u8>()) {
            let aes = Aes128::new([9u8; 16]);
            let mut data = [byte; 128];
            xor_pad(&aes, addr, major, minor, &mut data);
            xor_pad(&aes, addr, major, minor, &mut data);
            prop_assert_eq!(data, [byte; 128]);
        }
    }
}
