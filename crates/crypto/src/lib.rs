//! Functional cryptography for the SHM secure-memory simulator.
//!
//! The simulator models AES and MAC engines primarily as latency/bandwidth
//! actors, but this crate implements them *functionally* so the test suite
//! can verify real end-to-end security properties: counter-mode
//! confidentiality, stateful-MAC integrity, and Merkle-tree freshness.
//!
//! Contents:
//!
//! * [`aes::Aes128`] — a from-scratch AES-128 block cipher (FIPS-197).
//! * [`otp`] — one-time-pad generation for counter-mode memory encryption
//!   (step ①/② of Fig. 1 in the paper).
//! * [`mac`] — a 64-bit keyed MAC (SipHash-2-4 core) used for both per-block
//!   stateful MACs and per-chunk MACs.
//!
//! This is simulation-grade cryptography: AES-128 here is a correct,
//! test-vector-checked implementation, but it is not constant-time and must
//! not be used outside the simulator.
//!
//! ```
//! use shm_crypto::{Aes128, otp};
//!
//! let aes = Aes128::new([0u8; 16]);
//! let pad = otp::block_pad(&aes, 0x1000, 7, 3);
//! let ct: Vec<u8> = vec![0xAAu8; 128].iter().zip(pad.iter()).map(|(p, k)| p ^ k).collect();
//! let pt: Vec<u8> = ct.iter().zip(pad.iter()).map(|(c, k)| c ^ k).collect();
//! assert_eq!(pt, vec![0xAAu8; 128]);
//! ```

pub mod aes;
pub mod mac;
pub mod otp;

pub use aes::{aesni_available, selected_backend, Aes128, AesBackend, AES_BACKEND_ENV};
pub use mac::{chunk_mac, stateful_mac, MacKey};

/// A 128-bit key tuple produced by the GPU command processor's key generator:
/// `k_enc` for memory encryption, `k_mac` for integrity, `k_tree` for the
/// integrity tree (Section IV-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyTuple {
    /// Memory-encryption key (K1).
    pub k_enc: [u8; 16],
    /// Memory-integrity key (K2).
    pub k_mac: [u8; 16],
    /// Integrity-tree key (K3).
    pub k_tree: [u8; 16],
}

impl KeyTuple {
    /// Derives a key tuple deterministically from a context seed.
    ///
    /// Real hardware uses a TRNG; the simulator derives keys from the GPU
    /// context id so runs are reproducible.
    pub fn derive(context_seed: u64) -> Self {
        let mut ks = [[0u8; 16]; 3];
        for (i, k) in ks.iter_mut().enumerate() {
            let mut x = context_seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for chunk in k.chunks_mut(8) {
                x = x
                    .rotate_left(23)
                    .wrapping_mul(0x2545_F491_4F6C_DD1D)
                    .wrapping_add(0x1234_5678_9ABC_DEF0);
                chunk.copy_from_slice(&x.to_le_bytes());
            }
        }
        Self {
            k_enc: ks[0],
            k_mac: ks[1],
            k_tree: ks[2],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_keys_are_distinct_and_deterministic() {
        let a = KeyTuple::derive(1);
        let b = KeyTuple::derive(1);
        let c = KeyTuple::derive(2);
        assert_eq!(a, b);
        assert_ne!(a.k_enc, a.k_mac);
        assert_ne!(a.k_mac, a.k_tree);
        assert_ne!(a.k_enc, c.k_enc);
    }
}
