//! 64-bit keyed MACs (SipHash-2-4 core).
//!
//! The paper uses 8-byte (64-bit) MACs per 128 B block, computed over the
//! ciphertext, its encryption counter and its address ("stateful MACs"),
//! plus 8-byte per-chunk MACs computed over the 32 block MACs of a 4 KB
//! chunk.  SipHash-2-4 is a fast keyed PRF with a 64-bit output — exactly
//! the interface a hardware MAC engine exposes to the memory controller.

/// A 128-bit MAC key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MacKey {
    k0: u64,
    k1: u64,
}

impl MacKey {
    /// Creates a key from 16 raw bytes.
    pub fn new(bytes: [u8; 16]) -> Self {
        Self {
            k0: u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")),
            k1: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
        }
    }

    /// Computes the 64-bit MAC of `data`.
    pub fn mac(&self, data: &[u8]) -> u64 {
        siphash24(self.k0, self.k1, data)
    }
}

impl From<[u8; 16]> for MacKey {
    fn from(bytes: [u8; 16]) -> Self {
        Self::new(bytes)
    }
}

/// Computes a stateful per-block MAC: `MAC(ciphertext ‖ counter ‖ address)`.
///
/// Including the counter makes the MAC "stateful" (Rogers et al.), which is
/// what lets the Bonsai Merkle Tree cover only counters instead of all data.
pub fn stateful_mac(key: &MacKey, ciphertext: &[u8], counter: u64, address: u64) -> u64 {
    let mut buf = Vec::with_capacity(ciphertext.len() + 16);
    buf.extend_from_slice(ciphertext);
    buf.extend_from_slice(&counter.to_le_bytes());
    buf.extend_from_slice(&address.to_le_bytes());
    key.mac(&buf)
}

/// Computes a per-chunk MAC from the per-block MACs of a chunk.
///
/// The paper produces the chunk-level MAC "by hashing the per block MAC
/// within this chunk" (Section IV-A), so a chunk MAC is 8 bytes covering a
/// 4 KB chunk.
pub fn chunk_mac(key: &MacKey, block_macs: &[u64]) -> u64 {
    let mut buf = Vec::with_capacity(block_macs.len() * 8);
    for m in block_macs {
        buf.extend_from_slice(&m.to_le_bytes());
    }
    key.mac(&buf)
}

/// SipHash-2-4 over `data` with key `(k0, k1)`.
fn siphash24(k0: u64, k1: u64, data: &[u8]) -> u64 {
    let mut v0 = 0x736f_6d65_7073_6575u64 ^ k0;
    let mut v1 = 0x646f_7261_6e64_6f6du64 ^ k1;
    let mut v2 = 0x6c79_6765_6e65_7261u64 ^ k0;
    let mut v3 = 0x7465_6462_7974_6573u64 ^ k1;

    macro_rules! sipround {
        () => {
            v0 = v0.wrapping_add(v1);
            v1 = v1.rotate_left(13);
            v1 ^= v0;
            v0 = v0.rotate_left(32);
            v2 = v2.wrapping_add(v3);
            v3 = v3.rotate_left(16);
            v3 ^= v2;
            v0 = v0.wrapping_add(v3);
            v3 = v3.rotate_left(21);
            v3 ^= v0;
            v2 = v2.wrapping_add(v1);
            v1 = v1.rotate_left(17);
            v1 ^= v2;
            v2 = v2.rotate_left(32);
        };
    }

    let len = data.len();
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        v3 ^= m;
        sipround!();
        sipround!();
        v0 ^= m;
    }

    let rem = chunks.remainder();
    let mut last = (len as u64 & 0xff) << 56;
    for (i, &b) in rem.iter().enumerate() {
        last |= (b as u64) << (8 * i);
    }
    v3 ^= last;
    sipround!();
    sipround!();
    v0 ^= last;

    v2 ^= 0xff;
    sipround!();
    sipround!();
    sipround!();
    sipround!();

    v0 ^ v1 ^ v2 ^ v3
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference test vector from the SipHash paper (Appendix A):
    /// key = 00..0f, input = 00..0e (15 bytes), output = 0xa129ca6149be45e5.
    #[test]
    fn siphash_reference_vector() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let input: Vec<u8> = (0u8..15).collect();
        let k = MacKey::new(key);
        assert_eq!(k.mac(&input), 0xa129_ca61_49be_45e5);
    }

    #[test]
    fn mac_depends_on_every_input() {
        let k = MacKey::new([1u8; 16]);
        let ct = [0u8; 128];
        let base = stateful_mac(&k, &ct, 5, 0x1000);
        assert_ne!(base, stateful_mac(&k, &ct, 6, 0x1000), "counter ignored");
        assert_ne!(base, stateful_mac(&k, &ct, 5, 0x1080), "address ignored");
        let mut ct2 = ct;
        ct2[0] ^= 1;
        assert_ne!(base, stateful_mac(&k, &ct2, 5, 0x1000), "data ignored");
    }

    #[test]
    fn mac_depends_on_key() {
        let ct = [7u8; 128];
        let a = stateful_mac(&MacKey::new([1u8; 16]), &ct, 0, 0);
        let b = stateful_mac(&MacKey::new([2u8; 16]), &ct, 0, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn chunk_mac_changes_with_any_block_mac() {
        let k = MacKey::new([3u8; 16]);
        let macs: Vec<u64> = (0..32).collect();
        let base = chunk_mac(&k, &macs);
        for i in 0..32 {
            let mut m = macs.clone();
            m[i] ^= 0xdead;
            assert_ne!(base, chunk_mac(&k, &m), "block {i} not covered");
        }
    }

    #[test]
    fn chunk_mac_is_order_sensitive() {
        let k = MacKey::new([4u8; 16]);
        let a = chunk_mac(&k, &[1, 2]);
        let b = chunk_mac(&k, &[2, 1]);
        assert_ne!(a, b);
    }
}
