//! Deterministic in-process TCP chaos proxy.
//!
//! Sits between workers and a coordinator, parses the frame stream at
//! frame boundaries ([`crate::protocol::frame_wire_len`]), and executes a
//! seeded, reproducible fault schedule per frame: drop, delay,
//! duplication, truncation, bit corruption, abrupt connection reset, and
//! timed partition windows.  Every roll comes from a pure SplitMix64
//! stream keyed on `(seed, connection, direction, frame index)`, so the
//! same seed and schedule replay the same faults — the foundation of the
//! `shm chaos` campaign's determinism contract (`docs/ROBUSTNESS.md`).
//!
//! The proxy is intentionally *hostile but honest about framing*: faults
//! that desynchronise the byte stream (truncation, corruption that the
//! CRC will reject) are followed by a connection sever, mirroring how a
//! real middlebox failure surfaces.  Workers reconnect through the proxy
//! and the coordinator's reassignment/timeout machinery takes over.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::protocol::frame_wire_len;
use crate::splitmix64;

/// A timed partition: between `start_ms` and `start_ms + duration_ms`
/// (measured from proxy start) no frames flow in either direction; TCP
/// backpressure holds them, mimicking a network partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionWindow {
    pub start_ms: u64,
    pub duration_ms: u64,
}

/// Fault schedule for a [`ChaosProxy`].  All `*_per_mille` fields are
/// per-frame probabilities in 1/1000 units; 0 disables the fault.
#[derive(Clone, Debug, Default)]
pub struct ChaosConfig {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Silently drop the frame.
    pub drop_per_mille: u32,
    /// Forward the frame twice.
    pub dup_per_mille: u32,
    /// Flip one bit in the frame (then sever — the CRC rejects it).
    pub corrupt_per_mille: u32,
    /// Forward a prefix of the frame, then sever.
    pub truncate_per_mille: u32,
    /// Hold the frame for [`ChaosConfig::delay_ms`] before forwarding.
    pub delay_per_mille: u32,
    /// Delay applied to delayed frames.
    pub delay_ms: u64,
    /// Abruptly reset the connection after this many forwarded frames
    /// (both directions counted together).
    pub reset_after_frames: Option<u64>,
    /// Timed partition windows, relative to proxy start.
    pub partitions: Vec<PartitionWindow>,
}

/// Counters of everything the proxy did, for campaign reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    pub connections: u64,
    pub frames_forwarded: u64,
    pub frames_dropped: u64,
    pub frames_duplicated: u64,
    pub frames_corrupted: u64,
    pub frames_truncated: u64,
    pub frames_delayed: u64,
    pub resets: u64,
    pub partition_stalls: u64,
}

impl ChaosStats {
    /// Total injected faults (everything except clean forwards).
    pub fn faults(&self) -> u64 {
        self.frames_dropped
            + self.frames_duplicated
            + self.frames_corrupted
            + self.frames_truncated
            + self.frames_delayed
            + self.resets
            + self.partition_stalls
    }
}

/// A running chaos proxy; workers connect to [`ChaosProxy::local_addr`]
/// and traffic is piped to the upstream coordinator through the fault
/// schedule.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<Mutex<ChaosStats>>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds a loopback listener and starts proxying to `upstream`.
    pub fn start(upstream: SocketAddr, cfg: ChaosConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(Mutex::new(ChaosStats::default()));
        let started = Instant::now();
        let accept_handle = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                accept_loop(listener, upstream, cfg, stop, stats, started);
            })
        };
        Ok(Self {
            local_addr,
            stop,
            stats,
            accept_handle: Some(accept_handle),
        })
    }

    /// The address workers should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the fault counters.
    pub fn stats(&self) -> ChaosStats {
        self.stats.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Stops accepting and joins the proxy threads.  Existing piped
    /// connections are severed.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    cfg: ChaosConfig,
    stop: Arc<AtomicBool>,
    stats: Arc<Mutex<ChaosStats>>,
    started: Instant,
) {
    let mut conn_id: u64 = 0;
    let mut pumps: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                conn_id += 1;
                stats.lock().unwrap_or_else(|e| e.into_inner()).connections += 1;
                let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(5))
                else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                // Both directions share the forwarded-frame counter that
                // triggers `reset_after_frames`.
                let forwarded = Arc::new(AtomicU64::new(0));
                for (dir_salt, src, dst) in [
                    (0x5550_u64, &client, &server), // worker → coordinator
                    (0xD035_u64, &server, &client), // coordinator → worker
                ] {
                    let (Ok(src), Ok(dst)) = (src.try_clone(), dst.try_clone()) else {
                        let _ = client.shutdown(Shutdown::Both);
                        let _ = server.shutdown(Shutdown::Both);
                        continue;
                    };
                    let cfg = cfg.clone();
                    let stop = Arc::clone(&stop);
                    let stats = Arc::clone(&stats);
                    let forwarded = Arc::clone(&forwarded);
                    pumps.push(std::thread::spawn(move || {
                        pump(PumpCtx {
                            src,
                            dst,
                            cfg,
                            stop,
                            stats,
                            started,
                            conn_id,
                            dir_salt,
                            forwarded,
                        });
                    }));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    for h in pumps {
        let _ = h.join();
    }
}

struct PumpCtx {
    src: TcpStream,
    dst: TcpStream,
    cfg: ChaosConfig,
    stop: Arc<AtomicBool>,
    stats: Arc<Mutex<ChaosStats>>,
    started: Instant,
    conn_id: u64,
    dir_salt: u64,
    forwarded: Arc<AtomicU64>,
}

/// Per-frame deterministic roll: one independent sub-stream per fault
/// kind so probabilities compose without correlation.
fn roll(cfg: &ChaosConfig, conn: u64, dir: u64, frame: u64, kind: u64) -> u64 {
    splitmix64(
        cfg.seed
            ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ dir.wrapping_mul(0xA24B_AED4_963E_E407)
            ^ frame.wrapping_mul(0x2545_F491_4F6C_DD1D)
            ^ kind,
    )
}

fn sever(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

fn pump(ctx: PumpCtx) {
    let PumpCtx {
        mut src,
        mut dst,
        cfg,
        stop,
        stats,
        started,
        conn_id,
        dir_salt,
        forwarded,
    } = ctx;
    let _ = src.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    let mut frame_idx: u64 = 0;

    loop {
        if stop.load(Ordering::SeqCst) {
            sever(&src, &dst);
            return;
        }
        // Honour partition windows before touching the wire.
        let now_ms = started.elapsed().as_millis() as u64;
        if let Some(w) = cfg
            .partitions
            .iter()
            .find(|w| now_ms >= w.start_ms && now_ms < w.start_ms + w.duration_ms)
        {
            stats
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .partition_stalls += 1;
            let until = w.start_ms + w.duration_ms;
            while (started.elapsed().as_millis() as u64) < until {
                if stop.load(Ordering::SeqCst) {
                    sever(&src, &dst);
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }

        match src.read(&mut chunk) {
            Ok(0) => {
                sever(&src, &dst);
                return;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                sever(&src, &dst);
                return;
            }
        }

        // Forward every complete frame in the buffer through the fault
        // schedule.
        loop {
            let wire_len = match frame_wire_len(&buf) {
                Ok(Some(len)) if buf.len() >= len => len,
                Ok(_) => break, // incomplete — read more
                Err(_) => {
                    // Unparseable stream (shouldn't happen with honest
                    // peers): flush raw and keep piping to avoid deadlock.
                    if dst.write_all(&buf).is_err() {
                        sever(&src, &dst);
                        return;
                    }
                    buf.clear();
                    break;
                }
            };
            let mut frame: Vec<u8> = buf.drain(..wire_len).collect();
            frame_idx += 1;
            let sub = |kind: u64| roll(&cfg, conn_id, dir_salt, frame_idx, kind);

            if cfg.drop_per_mille > 0 && sub(1) % 1000 < u64::from(cfg.drop_per_mille) {
                bump(&stats, |s| s.frames_dropped += 1);
                fault_metric("drop");
                continue;
            }
            if cfg.truncate_per_mille > 0 && sub(2) % 1000 < u64::from(cfg.truncate_per_mille) {
                bump(&stats, |s| s.frames_truncated += 1);
                fault_metric("truncate");
                let keep = 1 + (sub(20) as usize % (wire_len - 1));
                let _ = dst.write_all(&frame[..keep]);
                sever(&src, &dst);
                return;
            }
            if cfg.corrupt_per_mille > 0 && sub(3) % 1000 < u64::from(cfg.corrupt_per_mille) {
                bump(&stats, |s| s.frames_corrupted += 1);
                fault_metric("corrupt");
                // Flip one bit past the magic; the receiver's CRC (or
                // length bound) rejects the frame and poisons the stream,
                // so sever right after — fail-closed on both ends.
                let byte = 4 + (sub(30) as usize % (wire_len - 4));
                let bit = (sub(31) % 8) as u8;
                frame[byte] ^= 1 << bit;
                let _ = dst.write_all(&frame);
                sever(&src, &dst);
                return;
            }
            if cfg.delay_per_mille > 0 && sub(4) % 1000 < u64::from(cfg.delay_per_mille) {
                bump(&stats, |s| s.frames_delayed += 1);
                fault_metric("delay");
                std::thread::sleep(Duration::from_millis(cfg.delay_ms));
            }
            let dup = cfg.dup_per_mille > 0 && sub(5) % 1000 < u64::from(cfg.dup_per_mille);
            let copies = if dup { 2 } else { 1 };
            if dup {
                bump(&stats, |s| s.frames_duplicated += 1);
                fault_metric("dup");
            }
            for _ in 0..copies {
                if dst.write_all(&frame).is_err() {
                    sever(&src, &dst);
                    return;
                }
            }
            bump(&stats, |s| s.frames_forwarded += 1);
            let total = forwarded.fetch_add(1, Ordering::SeqCst) + 1;
            if let Some(limit) = cfg.reset_after_frames {
                if total >= limit {
                    bump(&stats, |s| s.resets += 1);
                    fault_metric("reset");
                    sever(&src, &dst);
                    return;
                }
            }
        }
    }
}

fn bump(stats: &Arc<Mutex<ChaosStats>>, f: impl FnOnce(&mut ChaosStats)) {
    f(&mut stats.lock().unwrap_or_else(|e| e.into_inner()));
}

fn fault_metric(kind: &'static str) {
    shm_metrics::labeled_counter(
        "shm_chaos_faults_total",
        "Faults injected by the chaos proxy",
        &[("kind", kind)],
    )
    .inc();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{write_frame, Frame, FrameReader};
    fn heartbeat_bytes(n: u64) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, &Frame::Heartbeat { jobs_done: n }).unwrap();
        out
    }

    /// Echo upstream: accepts one connection and pipes it back verbatim.
    fn echo_upstream() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            if let Ok((mut s, _)) = l.accept() {
                let mut buf = [0u8; 4096];
                loop {
                    match s.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            if s.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                    }
                }
            }
        });
        (addr, h)
    }

    #[test]
    fn clean_config_passes_frames_through_unchanged() {
        let (addr, up) = echo_upstream();
        let mut proxy = ChaosProxy::start(addr, ChaosConfig::default()).unwrap();
        let mut conn = TcpStream::connect(proxy.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        for i in 0..8u64 {
            conn.write_all(&heartbeat_bytes(i)).unwrap();
        }
        let mut reader = FrameReader::new(conn.try_clone().unwrap());
        for i in 0..8u64 {
            loop {
                match reader.read_frame() {
                    Ok(Frame::Heartbeat { jobs_done }) => {
                        assert_eq!(jobs_done, i);
                        break;
                    }
                    Ok(other) => panic!("unexpected frame {other:?}"),
                    Err(crate::protocol::FrameError::Timeout) => continue,
                    Err(e) => panic!("frame error: {e}"),
                }
            }
        }
        let stats = proxy.stats();
        assert_eq!(stats.frames_forwarded, 16, "8 up + 8 echoed down");
        assert_eq!(stats.faults(), 0);
        drop(conn);
        proxy.shutdown();
        let _ = up.join();
    }

    #[test]
    fn corrupt_always_fails_closed_at_the_reader() {
        let (addr, up) = echo_upstream();
        let cfg = ChaosConfig {
            seed: 7,
            corrupt_per_mille: 1000,
            ..ChaosConfig::default()
        };
        let mut proxy = ChaosProxy::start(addr, cfg).unwrap();
        let mut conn = TcpStream::connect(proxy.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        conn.write_all(&heartbeat_bytes(1)).unwrap();
        let mut reader = FrameReader::new(conn.try_clone().unwrap());
        // The echoed frame crossed the proxy twice; whichever direction
        // corrupted it, the reader must end Corrupt or severed — never a
        // clean heartbeat.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match reader.read_frame() {
                Ok(f) => panic!("corrupted frame must not decode, got {f:?}"),
                Err(crate::protocol::FrameError::Timeout) => {
                    assert!(Instant::now() < deadline, "no verdict before deadline");
                }
                Err(_) => break, // Corrupt or Eof: fail-closed either way
            }
        }
        assert!(proxy.stats().frames_corrupted >= 1);
        proxy.shutdown();
        let _ = up.join();
    }

    #[test]
    fn same_seed_injects_identical_fault_pattern() {
        let run = |seed: u64| -> (u64, u64, ChaosStats) {
            let (addr, up) = echo_upstream();
            let cfg = ChaosConfig {
                seed,
                drop_per_mille: 300,
                dup_per_mille: 200,
                ..ChaosConfig::default()
            };
            let mut proxy = ChaosProxy::start(addr, cfg).unwrap();
            let mut conn = TcpStream::connect(proxy.local_addr()).unwrap();
            conn.set_read_timeout(Some(Duration::from_millis(50)))
                .unwrap();
            for i in 0..32u64 {
                conn.write_all(&heartbeat_bytes(i)).unwrap();
            }
            // Read echoes until quiet so downstream rolls happen too.
            let mut reader = FrameReader::new(conn.try_clone().unwrap());
            let mut got = 0u64;
            let mut quiet = 0;
            while quiet < 6 {
                match reader.read_frame() {
                    Ok(_) => {
                        got += 1;
                        quiet = 0;
                    }
                    Err(crate::protocol::FrameError::Timeout) => quiet += 1,
                    Err(_) => break,
                }
            }
            drop(conn);
            let stats = proxy.stats();
            proxy.shutdown();
            let _ = up.join();
            (got, stats.frames_dropped, stats)
        };
        let (got_a, dropped_a, stats_a) = run(42);
        let (got_b, dropped_b, stats_b) = run(42);
        assert_eq!(got_a, got_b, "same seed must deliver same frame count");
        assert_eq!(dropped_a, dropped_b);
        assert_eq!(stats_a.frames_duplicated, stats_b.frames_duplicated);
    }
}
